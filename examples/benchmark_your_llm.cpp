/**
 * @file
 * Run CacheMindBench against a custom backend profile: shows how a
 * downstream user would plug a new "LLM" (here: a hypothetical
 * profile) into the evaluation harness and read per-category scores.
 *
 *   $ ./example_benchmark_your_llm
 */

#include <cstdio>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Astar,
                         trace::WorkloadKind::Mcf};
    // Full-length traces: the question generator needs enough PC
    // diversity (Belady-vs-LRU gaps with >= 100 accesses) to fill
    // every category of even a reduced suite.
    const auto database = db::buildDatabase(options);

    // A reduced suite keeps the demo quick.
    benchsuite::SuiteComposition comp;
    comp.hit_miss = 10;
    comp.miss_rate = 5;
    comp.policy_comparison = 5;
    comp.count = 3;
    comp.arithmetic = 5;
    comp.trick = 2;
    comp.concepts = 3;
    comp.code_gen = 2;
    comp.policy_analysis = 2;
    comp.workload_analysis = 2;
    comp.semantic_analysis = 2;
    const benchsuite::BenchGenerator generator(database, 0x5eedULL,
                                               comp);
    const benchsuite::EvalHarness harness(generator.generate());
    std::printf("Suite: %zu questions.\n\n", harness.suite().size());

    // Engines are assembled by registry name; the whole suite runs
    // through the engine's batched ask() on its worker pool.
    for (const char *retriever_name : {"sieve", "ranger"}) {
        auto engine = core::CacheMind::Builder(database)
                          .withRetriever(retriever_name)
                          .withBackend("gpt-4o-mini")
                          .withBatchWorkers(4)
                          .build()
                          .expect("building the benchmark engine");
        const auto result = harness.evaluate(engine);
        std::printf("=== %s + GPT-4o-mini ===\n", retriever_name);
        for (const auto &[cat, score] : result.by_category) {
            std::printf("  %-28s %5.1f%% (%zu questions)\n",
                        benchsuite::categoryName(cat), score.pct(),
                        score.questions);
        }
        std::printf("  %-28s %5.1f%%\n", "weighted total",
                    result.weightedTotalPct());
        const auto stats = engine.stats();
        std::printf("  served %llu questions, p99 latency %.2f ms\n",
                    static_cast<unsigned long long>(stats.questions),
                    stats.latency_p99_ms);
    }
    return 0;
}
