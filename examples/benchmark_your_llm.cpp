/**
 * @file
 * Run CacheMindBench against a custom backend profile: shows how a
 * downstream user would plug a new "LLM" (here: a hypothetical
 * profile) into the evaluation harness and read per-category scores.
 *
 *   $ ./example_benchmark_your_llm
 */

#include <cstdio>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Astar,
                         trace::WorkloadKind::Mcf};
    options.accesses_override = 80000;
    const auto database = db::buildDatabase(options);

    // A reduced suite keeps the demo quick.
    benchsuite::SuiteComposition comp;
    comp.hit_miss = 10;
    comp.miss_rate = 5;
    comp.policy_comparison = 5;
    comp.count = 3;
    comp.arithmetic = 5;
    comp.trick = 2;
    comp.concepts = 3;
    comp.code_gen = 2;
    comp.policy_analysis = 2;
    comp.workload_analysis = 2;
    comp.semantic_analysis = 2;
    const benchsuite::BenchGenerator generator(database, 0x5eedULL,
                                               comp);
    const benchsuite::EvalHarness harness(generator.generate());
    std::printf("Suite: %zu questions.\n\n", harness.suite().size());

    const llm::GeneratorLlm backend(llm::BackendKind::Gpt4oMini);
    for (const auto retriever_kind :
         {core::RetrieverKind::Sieve, core::RetrieverKind::Ranger}) {
        benchsuite::EvalResult result;
        if (retriever_kind == core::RetrieverKind::Sieve) {
            retrieval::SieveRetriever sieve(database);
            result = harness.evaluate(sieve, backend);
        } else {
            retrieval::RangerRetriever ranger(database);
            result = harness.evaluate(ranger, backend);
        }
        std::printf("=== %s + GPT-4o-mini ===\n",
                    core::retrieverKindName(retriever_kind));
        for (const auto &[cat, score] : result.by_category) {
            std::printf("  %-28s %5.1f%% (%zu questions)\n",
                        benchsuite::categoryName(cat), score.pct(),
                        score.questions);
        }
        std::printf("  %-28s %5.1f%%\n", "weighted total",
                    result.weightedTotalPct());
    }
    return 0;
}
