/**
 * @file
 * Replacement-policy tournament: replay one workload's LLC stream
 * under every policy in the library and rank them — the kind of
 * cross-policy study CacheMind's database construction makes cheap.
 *
 *   $ ./example_policy_tournament [workload]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "policy/parrot.hh"
#include "sim/llc_replay.hh"
#include "trace/workload.hh"

using namespace cachemind;

int
main(int argc, char **argv)
{
    trace::WorkloadKind kind = trace::WorkloadKind::Lbm;
    if (argc > 1) {
        if (!trace::workloadKindFromName(argv[1], kind)) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
            return 1;
        }
    }

    auto model = trace::makeWorkload(kind);
    std::printf("Workload: %s\n%s\n\n", model->info().name.c_str(),
                model->info().description.c_str());

    const auto t = model->generate();
    const auto stream = sim::captureLlcStream(t);
    const auto oracle = sim::computeOracle(stream);
    std::printf("LLC demand stream: %zu accesses\n\n", stream.size());

    struct Row
    {
        std::string name;
        double hit_rate;
        std::uint64_t bypasses;
    };
    std::vector<Row> rows;

    for (const auto pk : policy::allPolicies()) {
        std::unique_ptr<policy::ReplacementPolicy> pol;
        if (pk == policy::PolicyKind::Parrot) {
            auto parrot = std::make_unique<policy::ParrotPolicy>();
            parrot->setModel(
                sim::ParrotModelBuilder::train(stream, oracle));
            pol = std::move(parrot);
        } else {
            pol = policy::makePolicy(pk);
        }
        sim::LlcReplayer rep(sim::defaultHierarchyConfig().llc,
                             std::move(pol));
        const auto stats = rep.replay(stream, &oracle, nullptr);
        rows.push_back(Row{policy::policyName(pk), stats.hitRate(),
                           stats.bypasses});
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.hit_rate > b.hit_rate;
    });
    std::printf("%-12s %10s %10s\n", "policy", "hit rate", "bypasses");
    for (const auto &row : rows) {
        std::printf("%-12s %9.2f%% %10llu\n", row.name.c_str(),
                    100.0 * row.hit_rate,
                    static_cast<unsigned long long>(row.bypasses));
    }
    std::printf("\nBelady's oracle tops the table by construction; "
                "the learned policies close part of the gap.\n");
    return 0;
}
