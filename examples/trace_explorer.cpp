/**
 * @file
 * Trace-database explorer: the raw artifacts behind the natural-
 * language interface — per-access rows with the full §4.3 schema
 * (snapshots, scores, history, disassembly), per-PC statistics, and
 * the metadata summary string (a Figure 2-style excerpt).
 *
 *   $ ./example_trace_explorer
 */

#include <cstdio>

#include "base/str.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building lbm trace database under PARROT...\n");
    const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Lbm, policy::PolicyKind::Parrot, 80000);
    const auto *entry = database.find("lbm_evictions_parrot");

    std::printf("\n=== Metadata ===\n%s\n", entry->metadata.c_str());

    // Find an eviction-carrying row and dump the full record.
    const auto &table = entry->table;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (!table.hasVictimAt(i))
            continue;
        const auto row = table.row(i);
        std::printf("\n=== Row %zu (Figure 2-style excerpt) ===\n", i);
        std::printf("PC:        %s\n",
                    str::hex(row.program_counter).c_str());
        std::printf("Address:   %s\n",
                    str::hex(row.memory_address).c_str());
        std::printf("Set ID:    %u\n", row.cache_set_id);
        std::printf("Evict:     %s (%s)\n",
                    row.is_miss ? "Cache Miss" : "Cache Hit",
                    sim::missTypeName(row.miss_type));
        std::printf("Evicted:   %s (needed again in %lld accesses)\n",
                    str::hex(row.evicted_address).c_str(),
                    static_cast<long long>(row.evicted_reuse_distance));
        std::printf("Recency:   %s\n", row.recency_text.c_str());
        std::printf("Cache lines (pc, line address):\n");
        for (const auto &line : row.current_cache_lines) {
            std::printf("  {%s, %s}\n", str::hex(line.address).c_str(),
                        str::hex(line.pc).c_str());
        }
        std::printf("Eviction scores:");
        for (const auto score : row.cache_line_eviction_scores)
            std::printf(" %llu",
                        static_cast<unsigned long long>(score));
        std::printf("\nAccess history:\n");
        for (const auto &h : row.recent_access_history) {
            std::printf("  {%s, %s}\n", str::hex(h.address).c_str(),
                        str::hex(h.pc).c_str());
        }
        std::printf("Function:  %s\n", row.function_name.c_str());
        std::printf("Assembly:\n%s", row.assembly_code.c_str());
        break;
    }

    // Per-PC statistics table.
    const auto *expert = database.statsFor("lbm_evictions_parrot");
    std::printf("\n=== Per-PC statistics ===\n");
    std::printf("%-12s %9s %9s %10s %12s\n", "pc", "accesses",
                "missrate", "meanreuse", "wrongevict%");
    for (const auto &s : expert->allPcStats()) {
        std::printf("%-12s %9llu %8.2f%% %10.0f %11.2f%%\n",
                    str::hex(s.pc).c_str(),
                    static_cast<unsigned long long>(s.accesses),
                    100.0 * s.missRate(), s.mean_reuse_distance,
                    s.wrongEvictionPct());
    }
    return 0;
}
