/**
 * @file
 * Streaming REPL: the interactive "why did this line get evicted?"
 * workflow with first evidence on screen before the full answer is
 * generated. Each question runs through CacheMind::askStream; the
 * loop prints pipeline events as they arrive — parsed slots, the
 * retrieval plan, every evidence section mid-retrieval, then the
 * answer text delta by delta — and the terminal response is
 * byte-identical to a blocking ask(). Every question runs as a
 * traced RequestContext, so after the done frame the REPL prints
 * which pipeline stage produced the first on-screen event and the
 * per-stage span tree of the request that just streamed.
 *
 *   $ ./example_streaming_repl          # type questions, ^D to exit
 *   $ ./example_streaming_repl < /dev/null   # scripted demo
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "obs/trace_export.hh"

using namespace cachemind;

namespace {

void
streamOne(core::CacheMind &engine, const std::string &question,
          std::size_t number)
{
    // The unified request surface: question + correlation id + trace
    // in one value. Tracing changes nothing about the answer; it
    // only records where the time went.
    core::RequestContext ctx(question);
    ctx.withRequestId("repl-" + std::to_string(number)).traced();
    auto result = engine.askStream(ctx);
    if (!result.ok()) {
        std::printf("error: %s\n",
                    core::errorMessage(result.error()).c_str());
        return;
    }
    auto stream = std::move(result).value();
    bool in_answer = false;
    std::string first_stage;
    while (auto event = stream.next()) {
        const char *kind = core::streamEventKindName(event->kind);
        if (first_stage.empty() && event->span != 0)
            first_stage = ctx.trace->spanName(event->span);
        switch (event->kind) {
          case core::StreamEvent::Kind::Parsed:
            std::printf("  [%s] %s\n", kind,
                        event->parsed.slotKey().c_str());
            break;
          case core::StreamEvent::Kind::Planned:
            std::printf("  [%s] cache key %s\n", kind,
                        event->cache_key.empty()
                            ? "(uncacheable)"
                            : event->cache_key.c_str());
            break;
          case core::StreamEvent::Kind::EvidenceChunk:
            std::printf("  [%s:%s] %zu bytes\n", kind,
                        event->label.c_str(), event->text.size());
            break;
          case core::StreamEvent::Kind::AnswerDelta:
            if (!in_answer) {
                std::printf("A: ");
                in_answer = true;
            }
            std::printf("%s", event->text.c_str());
            std::fflush(stdout);
            break;
          case core::StreamEvent::Kind::Done:
            if (!in_answer)
                std::printf("A: %s", event->response->text.c_str());
            std::printf("\n");
            break;
        }
    }
    std::printf("  first event from stage '%s'\n%s",
                first_stage.c_str(), obs::toText(*ctx.trace).c_str());
}

} // namespace

int
main()
{
    std::printf("Building trace database (mcf under LRU + Belady)"
                "...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Mcf};
    options.policies = {policy::PolicyKind::Lru,
                        policy::PolicyKind::Belady};
    options.accesses_override = 60000;
    const db::TraceDatabase database = db::buildDatabase(options);

    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("sieve")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the CacheMind engine");

    // Warm every shard's postings index in parallel up front so the
    // first question's first event is not delayed by a lazy build
    // (askStream would otherwise do this on its first call).
    engine.warmup();

    std::printf("Ask trace-grounded questions; ^D to exit.\n");
    std::string question;
    bool interactive = false;
    std::size_t number = 0;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, question)) {
        interactive = true;
        if (!str::trim(question).empty())
            streamOne(engine, question, ++number);
    }
    std::printf("\n");

    if (!interactive) {
        // No stdin (CI smoke run): stream a scripted demo instead.
        const auto *entry = database.find("mcf_evictions_lru");
        const std::vector<std::string> demo = {
            "What is the miss rate for PC " +
                str::hex(entry->table.pcAt(0)) +
                " in the mcf workload with LRU?",
            "Which policy has the lowest miss rate in the mcf "
            "workload?",
            "Why does Belady outperform LRU in the mcf workload?",
        };
        for (const auto &q : demo) {
            std::printf("> %s\n", q.c_str());
            streamOne(engine, q, ++number);
        }
    }

    const auto stats = engine.stats();
    std::printf("\n%llu streams, %llu events (%llu evidence chunks, "
                "%llu answer deltas), first event p50 %.3f ms vs "
                "full-answer p50 %.3f ms\n",
                static_cast<unsigned long long>(stats.stream.streams),
                static_cast<unsigned long long>(stats.stream.events),
                static_cast<unsigned long long>(
                    stats.stream.evidence_chunks),
                static_cast<unsigned long long>(
                    stats.stream.answer_deltas),
                stats.stream.first_event_p50_ms,
                stats.latency_p50_ms);
    return 0;
}
