/**
 * @file
 * The §6.3 bypass workflow end-to-end as a library user would run it:
 * discover bypassable PCs from a Belady-annotated mcf trace, apply a
 * conditional bypass filter to the LRU LLC, and measure the change.
 *
 *   $ ./example_bypass_optimization
 */

#include <cstdio>
#include <unordered_set>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "insights/insights.hh"
#include "policy/basic_policies.hh"
#include "sim/core_model.hh"
#include "trace/workload.hh"

using namespace cachemind;

int
main()
{
    std::printf("Analyzing mcf under Belady's optimal policy...\n");
    const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Mcf, policy::PolicyKind::Belady, 80000);

    // Discovery through the natural-language interface first, the way
    // the §6.3 transcript runs it...
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("sieve")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the discovery engine");
    const auto discovery =
        engine
            .ask("Identify PCs suitable for bypassing to improve IPC "
                 "in the mcf workload under Belady.")
            .expect("discovery question");
    std::printf("\nQ: Identify PCs suitable for bypassing to improve "
                "IPC in the mcf workload under Belady.\nA: %s\n\n",
                discovery.text.c_str());

    // ...then the verified analysis the intervention actually uses.
    const auto candidates =
        insights::recommendBypassPcs(database, "mcf", "belady", 10);
    std::printf("Bypass candidates:\n");
    std::unordered_set<std::uint64_t> bypass_pcs;
    for (const auto &c : candidates) {
        bypass_pcs.insert(c.pc);
        std::printf("  %-10s hit=%5.2f%% mean_reuse=%8.0f dead=%4.0f%%\n",
                    str::hex(c.pc).c_str(), 100.0 * c.hit_rate,
                    c.mean_reuse_distance, 100.0 * c.dead_fraction);
    }

    const auto cfg = sim::defaultHierarchyConfig();
    const auto t =
        trace::makeWorkload(trace::WorkloadKind::Mcf)->generate(80000);

    const auto base = sim::runTrace(
        t, cfg, policy::makePolicy(policy::PolicyKind::Lru));

    sim::Hierarchy hier(cfg, policy::makePolicy(policy::PolicyKind::Lru));
    hier.llc().setBypassFilter([&bypass_pcs](std::uint64_t pc) {
        return bypass_pcs.count(pc) > 0;
    });
    const auto with_bypass = sim::runTrace(t, hier);

    std::printf("\nLLC hit rate: %.2f%% -> %.2f%%\n",
                100.0 * base.llc.hitRate(),
                100.0 * with_bypass.llc.hitRate());
    std::printf("IPC:          %.6f -> %.6f (%+.2f%%)\n", base.ipc,
                with_bypass.ipc,
                100.0 * (with_bypass.ipc - base.ipc) / base.ipc);
    return 0;
}
