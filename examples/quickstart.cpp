/**
 * @file
 * Quickstart: build a small trace database, stand up a CacheMind
 * engine with the v2 fluent Builder, and ask trace-grounded questions
 * in natural language — one at a time, as a concurrent batch, and
 * once as a traced RequestContext whose per-stage span tree is
 * printed at the end.
 *
 *   $ ./example_quickstart
 */

#include <cstdio>

#include "core/cachemind.hh"
#include "db/builder.hh"
#include "obs/trace_export.hh"

using namespace cachemind;

int
main()
{
    // 1. Build the external database: simulate the mcf workload
    //    through the Table 2 hierarchy and annotate every LLC access
    //    under LRU and Belady's optimal policy.
    std::printf("Building trace database (mcf under LRU + Belady)"
                "...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Mcf};
    options.policies = {policy::PolicyKind::Lru,
                        policy::PolicyKind::Belady};
    options.accesses_override = 60000; // quick demo-sized trace
    const db::TraceDatabase database = db::buildDatabase(options);

    for (const auto &key : database.keys()) {
        std::printf("  %s: %zu rows\n", key.c_str(),
                    database.find(key)->table.size());
    }

    // 2. Create the engine: components are picked by registry name,
    //    and misconfiguration surfaces as a typed error instead of a
    //    silent default.
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("sieve")
                      .withBackend("gpt-4o")
                      .withShotMode(llm::ShotMode::ZeroShot)
                      .build()
                      .expect("building the CacheMind engine");

    // 3. Ask questions. Every answer is grounded in retrieved rows,
    //    statistics, and metadata from the database.
    const std::vector<std::string> questions = {
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "Why does Belady outperform LRU on PC 0x4037ba in the mcf "
        "workload?",
    };
    for (const auto &question : questions) {
        std::printf("\nQ: %s\n", question.c_str());
        auto result = engine.ask(question);
        if (!result.ok()) {
            std::printf("error: %s\n",
                        core::errorMessage(result.error()).c_str());
            continue;
        }
        const auto &response = result.value();
        std::printf("A: %s\n", response.text.c_str());
        std::printf("   [retriever=%s, trace=%s, %.2f ms]\n",
                    response.bundle.retriever.c_str(),
                    response.bundle.trace_key.c_str(),
                    response.bundle.retrieval_ms);
    }

    // 4. The same questions as one concurrent batch: answers are
    //    byte-identical to the sequential loop and keep their order.
    const auto batch = engine.askBatch(questions)
                           .expect("batched ask over the demo questions");
    std::printf("\n=== askBatch (%zu questions, up to %zu workers) "
                "===\n",
                batch.size(), engine.options().batch_workers);
    for (std::size_t i = 0; i < batch.size(); ++i)
        std::printf("A%zu: %.72s...\n", i, batch[i].text.c_str());

    const auto stats = engine.stats();
    std::printf("\nEngine stats: %llu questions, %llu batch(es), "
                "%.0f%% high-quality retrieval, p50=%.2f ms "
                "p99=%.2f ms\n",
                static_cast<unsigned long long>(stats.questions),
                static_cast<unsigned long long>(stats.batches),
                100.0 * stats.highQualityFraction(),
                stats.latency_p50_ms, stats.latency_p99_ms);
    // The batch re-asked the three sequential questions, so the
    // shared cross-question retrieval cache served their evidence
    // bundles without re-running retrieval.
    std::printf("Retrieval cache: %llu hits / %llu misses "
                "(%.0f%% hit rate)\n",
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses),
                100.0 * stats.cache.hitRate());

    // 5. The unified request surface: a RequestContext bundles the
    //    question, per-call options, a correlation id, and (with
    //    traced()) a per-stage span tree. The answer is byte-
    //    identical to the untraced ask — tracing never changes
    //    results, only records where the time went.
    core::RequestContext ctx(questions[0]);
    ctx.withRequestId("quickstart-1").traced();
    const auto traced = engine.ask(ctx).expect("traced ask");
    std::printf("\n=== traced ask (request_id=quickstart-1) ===\n");
    std::printf("A: %.72s...\n%s", traced.text.c_str(),
                obs::toText(*ctx.trace).c_str());
    return 0;
}
