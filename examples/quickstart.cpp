/**
 * @file
 * Quickstart: build a small trace database, stand up a CacheMind
 * engine, and ask trace-grounded questions in natural language.
 *
 *   $ ./example_quickstart
 */

#include <cstdio>

#include "core/cachemind.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    // 1. Build the external database: simulate the mcf workload
    //    through the Table 2 hierarchy and annotate every LLC access
    //    under LRU and Belady's optimal policy.
    std::printf("Building trace database (mcf under LRU + Belady)"
                "...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Mcf};
    options.policies = {policy::PolicyKind::Lru,
                        policy::PolicyKind::Belady};
    options.accesses_override = 60000; // quick demo-sized trace
    const db::TraceDatabase database = db::buildDatabase(options);

    for (const auto &key : database.keys()) {
        std::printf("  %s: %zu rows\n", key.c_str(),
                    database.find(key)->table.size());
    }

    // 2. Create the engine: Sieve retrieval + the GPT-4o-profile
    //    generator backend.
    core::CacheMind engine(database);

    // 3. Ask questions. Every answer is grounded in retrieved rows,
    //    statistics, and metadata from the database.
    const char *questions[] = {
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "Why does Belady outperform LRU on PC 0x4037ba in the mcf "
        "workload?",
    };
    for (const char *question : questions) {
        std::printf("\nQ: %s\n", question);
        const auto response = engine.ask(question);
        std::printf("A: %s\n", response.text.c_str());
        std::printf("   [retriever=%s, trace=%s, %.2f ms]\n",
                    response.bundle.retriever.c_str(),
                    response.bundle.trace_key.c_str(),
                    response.bundle.retrieval_ms);
    }
    return 0;
}
