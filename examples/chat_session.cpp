/**
 * @file
 * Multi-turn chat with conversation memory: the "microarchitectural
 * microscope" workflow of the paper's use-case transcripts. Follow-up
 * questions lean on facts recalled from earlier turns.
 *
 *   $ ./example_chat_session
 */

#include <cstdio>

#include "core/cachemind.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database (astar under LRU + Belady)"
                "...\n");
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Astar};
    options.policies = {policy::PolicyKind::Lru,
                        policy::PolicyKind::Belady};
    options.accesses_override = 60000;
    const auto database = db::buildDatabase(options);

    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("ranger")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the chat engine");
    core::ChatSession chat(engine);

    const char *turns[] = {
        "List all unique PCs in the astar workload under LRU.",
        "Which policy has the lowest miss rate in the astar workload?",
        "Identify 5 hot and 5 cold sets by hit rate for the astar "
        "workload under LRU.",
        "How many times did PC 0x409270 appear in the astar workload "
        "under LRU?",
        // Under-specified follow-up: conversation memory fills the
        // workload/policy slots before retrieval.
        "What is the miss rate for PC 0x409270?",
    };
    for (const char *turn : turns)
        chat.ask(turn).expect("chat turn");

    std::printf("\n=== Transcript ===\n%s", chat.transcript().c_str());
    std::printf("=== Memory state ===\n");
    std::printf("turns: %zu, recallable facts: %zu\n",
                chat.memory().totalTurns(), chat.memory().factCount());
    const auto recalled =
        chat.memory().recall("miss rate of PC 0x409270");
    std::printf("recall(\"miss rate of PC 0x409270\") top hit:\n  %s\n",
                recalled.empty() ? "(none)"
                                 : recalled.front().substr(0, 120).c_str());
    return 0;
}
