/**
 * @file
 * The serving front-end, end to end: spin up a line-protocol Server
 * over a small trace database, then talk to it over TCP exactly as a
 * remote client would — ping, a streamed ask per retriever (each
 * carrying a v1.1 request_id the server echoes on every frame and
 * keys a per-request trace by), the span tree back via the `trace`
 * verb, and a STATS snapshot.
 *
 * Two modes:
 *
 *   $ ./example_serve_client
 *       Self-contained demo: in-process server + client round trips.
 *       Used by CI as a smoke test (no arguments, exits non-zero on
 *       any protocol violation).
 *
 *   $ ./example_serve_client --serve [port] [--chaos]
 *       Server-only: build the database, listen (port 0 = ephemeral),
 *       print "LISTENING <port>" on stdout, and serve until stdin
 *       closes. scripts/load_smoke.py drives this mode with 32
 *       concurrent external clients; --chaos additionally honours the
 *       "failpoints" protocol verb so scripts/chaos_smoke.py can arm
 *       fault schedules over the wire (never enable it in production).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "db/builder.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace cachemind;
using namespace cachemind::serve;

namespace {

db::TraceDatabase
buildDb()
{
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Astar};
    options.policies = {policy::PolicyKind::Lru,
                        policy::PolicyKind::Belady};
    options.accesses_override = 30000;
    return db::buildDatabase(options);
}

/** Run one ask and print its frames; false on any protocol breach. */
bool
askAndPrint(LineClient &client, const std::string &id,
            const std::string &question, const std::string &retriever)
{
    Request req;
    req.op = Request::Op::Ask;
    req.id = id;
    // Protocol v1.1: a client-chosen correlation id. The server
    // echoes it on every frame of this request and records a
    // per-stage trace retrievable through the `trace` verb below.
    req.request_id = "demo-" + retriever;
    req.question = question;
    req.retriever = retriever;
    if (!client.sendLine(renderRequest(req)))
        return false;
    std::string deltas;
    while (auto line = client.recvLine()) {
        const auto frame = parseJsonObject(*line);
        if (!frame.has_value()) {
            std::fprintf(stderr, "malformed frame: %s\n",
                         line->c_str());
            return false;
        }
        const auto &kind = frame->at("frame");
        if (kind == "evidence") {
            std::printf("  [%s] %zu bytes of evidence\n",
                        frame->at("label").c_str(),
                        frame->at("text").size());
        } else if (kind == "delta") {
            deltas += frame->at("text");
        } else if (kind == "done") {
            const auto &answer = frame->at("answer");
            if (deltas != answer) {
                std::fprintf(stderr,
                             "delta bytes diverge from the answer\n");
                return false;
            }
            std::printf("  answer (%s): %.72s...\n", retriever.c_str(),
                        answer.c_str());
            return true;
        } else if (kind == "error" || kind == "overloaded") {
            std::fprintf(stderr, "server refused: %s\n",
                         line->c_str());
            return false;
        }
    }
    std::fprintf(stderr, "connection dropped mid-stream\n");
    return false;
}

int
runServeMode(std::uint16_t port, bool chaos)
{
    const auto database = buildDb();
    ServeOptions opts;
    opts.port = port;
    opts.max_sessions = 64;
    opts.debug_failpoints = chaos;
    Server server(database, opts);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "start failed: %s\n", error.c_str());
        return 1;
    }
    std::printf("LISTENING %u\n", server.port());
    std::fflush(stdout);
    // Serve until the driver closes our stdin.
    char sink[256];
    while (std::fgets(sink, sizeof(sink), stdin) != nullptr) {
    }
    server.stop();
    const auto stats = server.stats();
    std::fprintf(stderr,
                 "served: accepted=%llu completed=%llu "
                 "rejected=%llu cancelled=%llu malformed=%llu\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.rejected),
                 static_cast<unsigned long long>(stats.cancelled),
                 static_cast<unsigned long long>(stats.malformed));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
        int port = 0;
        bool chaos = false;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--chaos") == 0)
                chaos = true;
            else
                port = std::atoi(argv[i]);
        }
        return runServeMode(static_cast<std::uint16_t>(port), chaos);
    }

    std::printf("Building trace database...\n");
    const auto database = buildDb();

    ServeOptions opts;
    Server server(database, opts);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "start failed: %s\n", error.c_str());
        return 1;
    }
    std::printf("Serving on 127.0.0.1:%u\n\n", server.port());

    LineClient client;
    if (!client.connect("127.0.0.1", server.port())) {
        std::fprintf(stderr, "connect failed\n");
        return 1;
    }
    // The server greets every admitted session with a hello banner.
    if (auto hello = client.recvLine())
        std::printf("<- %s\n", hello->c_str());

    client.sendLine("{\"op\":\"ping\",\"id\":\"0\"}");
    if (auto pong = client.recvLine())
        std::printf("<- %s\n\n", pong->c_str());

    const std::string question =
        "Which policy has the lowest miss rate in the astar workload?";
    int id = 1;
    for (const char *retriever : {"sieve", "ranger", "llamaindex"}) {
        std::printf("ask via %s:\n", retriever);
        if (!askAndPrint(client, std::to_string(id++), question,
                         retriever))
            return 1;
    }

    // The trace verb: fetch the span tree the sieve ask recorded
    // (parse/plan/retrieve with per-section children/generate under
    // the session's serve.ask root).
    client.sendLine("{\"op\":\"trace\",\"id\":\"98\","
                    "\"request_id\":\"demo-sieve\"}");
    if (auto trace = client.recvLine())
        std::printf("\n<- %.160s...\n", trace->c_str());

    client.sendLine("{\"op\":\"stats\",\"id\":\"99\"}");
    if (auto stats = client.recvLine())
        std::printf("\n<- %s\n", stats->c_str());

    client.close();
    server.stop();
    std::printf("\nDone.\n");
    return 0;
}
