/**
 * @file
 * E7 (Figure 8): CacheMind-Sieve vs CacheMind-Ranger across the
 * trace-grounded categories (GPT-4o generator), plus the tier totals.
 *
 * Expected shape (paper): Ranger ~89% vs Sieve ~67% on the
 * trace-grounded tier — Ranger executes programs over the full table,
 * so Count and Arithmetic flip from near-zero to near-perfect — while
 * the reasoning tier *crosses over* (Sieve ~85% vs Ranger ~65%):
 * Ranger's narrow computed results lack the descriptions, metadata,
 * and disassembly the reasoning rubric rewards.
 */

#include <cstdio>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "db/builder.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());

    const llm::GeneratorLlm gen(llm::BackendKind::Gpt4o);
    retrieval::SieveRetriever sieve(database);
    retrieval::RangerRetriever ranger(database);
    const auto res_sieve = harness.evaluate(sieve, gen);
    const auto res_ranger = harness.evaluate(ranger, gen);

    std::printf("\n=== Figure 8: retriever comparison (GPT-4o "
                "generator) ===\n");
    std::printf("%-28s %16s %16s\n", "Category", "CacheMind-Sieve",
                "CacheMind-Ranger");
    for (const auto cat : benchsuite::allCategories()) {
        if (!benchsuite::isTraceGrounded(cat))
            continue;
        const auto s = res_sieve.by_category.at(cat);
        const auto r = res_ranger.by_category.at(cat);
        std::printf("%-28s %15.1f%% %15.1f%%\n",
                    benchsuite::categoryName(cat), s.pct(), r.pct());
    }
    std::printf("%-28s %15.1f%% %15.1f%%\n", "TG total (75q)",
                res_sieve.tgPct(), res_ranger.tgPct());
    std::printf("%-28s %15.1f%% %15.1f%%\n", "ARA total (25q)",
                res_sieve.araPct(), res_ranger.araPct());
    std::printf("\nCrossover check: Ranger wins trace-grounded "
                "retrieval (%.1f%% vs %.1f%%), Sieve wins the "
                "reasoning tier (%.1f%% vs %.1f%%).\n",
                res_ranger.tgPct(), res_sieve.tgPct(),
                res_sieve.araPct(), res_ranger.araPct());
    return 0;
}
