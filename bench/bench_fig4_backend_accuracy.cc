/**
 * @file
 * E3 (Figure 4): accuracy of CacheMind with five LLM backends across
 * all eleven CacheMindBench categories, under the Sieve retriever
 * (the paper's generator evaluation setting). Prints one row per
 * category and the weighted totals.
 *
 * Expected shape (paper): GPT-4o best weighted total (~75%), o3 next,
 * then finetuned-4o-mini and GPT-3.5; Count is 0 for every backend
 * (the Sieve window cannot support full-trace counting); trick
 * questions separate GPT-4o/4o-mini (high) from o3/3.5/finetuned
 * (low); fine-tuning does not beat its base model.
 */

#include <cstdio>
#include <memory>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "retrieval/cache.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database (3 workloads x 4 policies)"
                "...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());
    std::printf("CacheMindBench: %zu questions generated.\n\n",
                harness.suite().size());

    // All five engines differ only in backend; retrieval is
    // backend-independent, so one shared cross-engine bundle cache
    // makes every backend after the first retrieve for free.
    auto shared_cache =
        std::make_shared<retrieval::RetrievalCache>(1 << 14);

    std::vector<benchsuite::EvalResult> results;
    for (const auto backend : llm::allBackends()) {
        auto engine = core::CacheMind::Builder(database)
                          .withRetriever("sieve")
                          .withBackend(llm::backendKey(backend))
                          .withBatchWorkers(4)
                          .withSharedRetrievalCache(shared_cache)
                          .build()
                          .expect("building the Figure 4 engine");
        results.push_back(harness.evaluate(engine));
    }

    std::printf("=== Figure 4: accuracy by category x backend (Sieve "
                "retrieval) ===\n");
    std::printf("%-28s", "Category");
    for (const auto backend : llm::allBackends())
        std::printf(" %17s", llm::backendName(backend));
    std::printf("\n");

    for (const auto cat : benchsuite::allCategories()) {
        std::printf("%-28s", benchsuite::categoryName(cat));
        for (const auto &res : results) {
            const auto it = res.by_category.find(cat);
            const double pct =
                it == res.by_category.end() ? 0.0 : it->second.pct();
            std::printf(" %16.1f%%", pct);
        }
        std::printf("\n");
    }
    std::printf("%-28s", "TG total (75q)");
    for (const auto &res : results)
        std::printf(" %16.1f%%", res.tgPct());
    std::printf("\n%-28s", "ARA total (25q)");
    for (const auto &res : results)
        std::printf(" %16.1f%%", res.araPct());
    std::printf("\n%-28s", "Weighted total (100q)");
    for (const auto &res : results)
        std::printf(" %16.1f%%", res.weightedTotalPct());
    std::printf("\n");
    const auto cache_counters = shared_cache->counters();
    std::printf("\nShared cross-engine bundle cache: %llu hits / %llu "
                "misses over %zu backends.\n",
                static_cast<unsigned long long>(cache_counters.hits),
                static_cast<unsigned long long>(cache_counters.misses),
                results.size());
    return 0;
}
