/**
 * @file
 * E8 (Figure 9): retrieval-context accuracy and latency of
 * LlamaIndex-style dense retrieval vs CacheMind-Sieve vs
 * CacheMind-Ranger on ten evaluation queries spanning five
 * trace-grounded categories.
 *
 * Expected shape (paper): LlamaIndex ~10% (dense embeddings cannot
 * separate rows differing in a few hex digits) and the slowest;
 * Sieve ~60%; Ranger ~90%, slightly slower than Sieve (codegen +
 * execution overhead). Absolute times are local-machine milliseconds,
 * not the paper's API-bound seconds; the ordering is the claim.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "base/stopwatch.hh"
#include "base/str.hh"
#include "benchsuite/generator.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"

using namespace cachemind;

namespace {

/** Does the bundle contain the question's gold evidence? */
bool
contextIsCorrect(const benchsuite::Question &q,
                 const retrieval::ContextBundle &bundle)
{
    using benchsuite::Category;
    switch (q.category) {
      case Category::HitMiss: {
        for (const auto &row : bundle.rows) {
            const bool pc_ok = !bundle.parsed.pc ||
                               row.program_counter == *bundle.parsed.pc;
            const bool addr_ok =
                !bundle.parsed.address ||
                row.memory_address == *bundle.parsed.address;
            if (pc_ok && addr_ok)
                return true;
        }
        // Textual form must carry both identifiers and an outcome.
        if (bundle.parsed.pc && bundle.parsed.address) {
            const auto &text = bundle.result_text;
            return text.find(str::hex(*bundle.parsed.pc)) !=
                       std::string::npos &&
                   text.find(str::hex(*bundle.parsed.address)) !=
                       std::string::npos &&
                   (text.find("Cache Miss") != std::string::npos ||
                    text.find("Cache Hit") != std::string::npos);
        }
        return false;
      }
      case Category::MissRate:
        return (bundle.pc_stats && bundle.parsed.pc &&
                bundle.pc_stats->pc == *bundle.parsed.pc) ||
               bundle.computed.has_value();
      case Category::PolicyComparison:
        return bundle.policy_numbers.size() >= 2;
      case Category::Count: return bundle.total_is_exact;
      case Category::Arithmetic:
        return bundle.computed.has_value() ||
               (bundle.pc_stats && bundle.parsed.pc &&
                bundle.pc_stats->pc == *bundle.parsed.pc);
      default: return false;
    }
}

} // namespace

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();

    // Ten queries: two per trace-grounded category (ex-trick).
    benchsuite::SuiteComposition comp;
    comp.hit_miss = 2;
    comp.miss_rate = 2;
    comp.policy_comparison = 2;
    comp.count = 2;
    comp.arithmetic = 2;
    comp.trick = 0;
    comp.concepts = 0;
    comp.code_gen = 0;
    comp.policy_analysis = 0;
    comp.workload_analysis = 0;
    comp.semantic_analysis = 0;
    const benchsuite::BenchGenerator generator(database, 0xf19ULL,
                                               comp);
    const auto queries = generator.generate();

    // Builder-configured engines (scenario knobs) instead of direct
    // retriever construction; retrieval is measured per question on
    // each engine's primary retriever, so per-bundle latency stays
    // visible (askBatch would hide it behind the worker pool).
    std::printf("Building engines (LlamaIndex embeds every 4th row "
                "chunk)...\n\n");
    // Engines are paced at a simulated decode rate so the streaming
    // section below reports realistic TTFE-vs-TTLB gaps; pacing only
    // touches answerStreaming, so the retrieval loop is unaffected.
    constexpr double kTokensPerSecond = 1500.0;
    std::vector<core::CacheMind> engines;
    engines.push_back(core::CacheMind::Builder(database)
                          .withRetriever("llamaindex")
                          .withRetrieverParam("row_stride", "4")
                          .withTokensPerSecond(kTokensPerSecond)
                          .build()
                          .expect("llamaindex engine"));
    engines.push_back(core::CacheMind::Builder(database)
                          .withRetriever("sieve")
                          .withTokensPerSecond(kTokensPerSecond)
                          .build()
                          .expect("sieve engine"));
    engines.push_back(core::CacheMind::Builder(database)
                          .withRetriever("ranger")
                          .withTokensPerSecond(kTokensPerSecond)
                          .build()
                          .expect("ranger engine"));

    std::printf("=== Figure 9: retrieval comparison over %zu queries "
                "===\n",
                queries.size());
    std::printf("%-14s %22s %20s\n", "Retriever", "correct context",
                "avg retrieval time");
    for (auto &engine : engines) {
        retrieval::Retriever &retriever = engine.retriever();
        std::size_t correct = 0;
        double total_ms = 0.0;
        for (const auto &q : queries) {
            const auto bundle = retriever.retrieve(q.text);
            correct += contextIsCorrect(q, bundle);
            total_ms += bundle.retrieval_ms;
        }
        std::printf("%-14s %13zu/%zu (%3.0f%%) %17.2f ms\n",
                    retriever.name(), correct, queries.size(),
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(queries.size()),
                    total_ms / static_cast<double>(queries.size()));
    }
    std::printf("\nDense cosine retrieval cannot separate rows that "
                "differ only in hex digits; symbolic filtering (Sieve) "
                "and executed programs (Ranger) can.\n");

    // End-to-end streamed asks at the simulated decode rate: the
    // user-visible split between time-to-first-event (retrieval +
    // framing) and time-to-last-byte (plus paced generation). The
    // sample is small — this is a qualitative column, the
    // statistically sound timings live in bench_micro_perf.
    const std::size_t streamed_queries =
        std::min<std::size_t>(queries.size(), 8);
    std::printf("\n=== Streamed asks at %.0f tokens/s (%zu "
                "queries) ===\n",
                kTokensPerSecond, streamed_queries);
    std::printf("%-14s %15s %15s\n", "Retriever", "avg TTFE",
                "avg TTLB");
    for (auto &engine : engines) {
        engine.warmup(); // keep cold index cost out of TTFE
        double ttfe_ms = 0.0;
        double ttlb_ms = 0.0;
        for (std::size_t i = 0; i < streamed_queries; ++i) {
            Stopwatch timer;
            auto stream =
                engine.askStream(queries[i].text).expect("askStream");
            bool first = true;
            while (auto event = stream.next()) {
                if (first) {
                    ttfe_ms += timer.milliseconds();
                    first = false;
                }
            }
            ttlb_ms += timer.milliseconds();
        }
        std::printf("%-14s %12.2f ms %12.2f ms\n",
                    engine.retriever().name(),
                    ttfe_ms / static_cast<double>(streamed_queries),
                    ttlb_ms / static_cast<double>(streamed_queries));
    }
    std::printf("\nStreaming hides generation latency: the first "
                "evidence frame lands as soon as retrieval starts "
                "emitting, while the full answer pays the decode "
                "rate.\n");
    return 0;
}
