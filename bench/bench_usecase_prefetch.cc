/**
 * @file
 * E11 (§6.3 "PC-Information Applications, Software Intervention and
 * Prefetcher Use Case", Figure 12): CacheMind identifies the dominant
 * miss-causing PC of a pointer-chasing microbenchmark through the
 * natural-language interface; inserting a software prefetch at that
 * PC lifts IPC substantially.
 *
 * Expected shape (paper): IPC 0.131 -> 0.231, a ~76% speedup. The
 * absolute IPCs here come from the analytic core model; the claim is
 * the large relative gain from prefetching the single dominant PC.
 */

#include <cstdio>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "insights/insights.hh"
#include "policy/basic_policies.hh"
#include "sim/core_model.hh"
#include "trace/workload_models.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building microbenchmark trace database...\n");
    const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Microbench, policy::PolicyKind::Lru);

    // --- Figure 12 chat: recover the unknown dominant PC.
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("ranger")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the prefetch-study engine");
    core::ChatSession chat(engine);
    std::printf("\n=== Chat transcript (Figure 12) ===\n");
    chat.ask("List all unique PCs in the microbench workload under "
             "LRU.")
        .expect("chat turn");
    chat.ask("From the unique PCs, identify the PC causing the most "
             "cache misses in the microbench workload under LRU.")
        .expect("chat turn");
    const auto verified = insights::findDominantMissPc(
        database, "microbench", "lru");
    chat.ask("What is the miss rate of PC " + str::hex(verified.pc) +
             " in the microbench workload under LRU?")
        .expect("chat turn");
    std::printf("%s", chat.transcript().c_str());

    std::printf("Verified dominant miss PC: %s in %s (%.2f%% miss "
                "rate, %.1f%% of all misses)\n",
                str::hex(verified.pc).c_str(),
                verified.function_name.c_str(),
                100.0 * verified.miss_rate,
                100.0 * verified.miss_share);

    // --- Apply the software fix and measure IPC.
    const auto cfg = sim::defaultHierarchyConfig();
    auto base_model = trace::makeWorkload(trace::WorkloadKind::Microbench);
    const auto base_trace = base_model->generate();
    const auto s_base = sim::runTrace(
        base_trace, cfg, policy::makePolicy(policy::PolicyKind::Lru));

    auto fixed_model = trace::makeMicrobenchModel(
        0xcafef00dULL + static_cast<std::uint64_t>(
                            trace::WorkloadKind::Microbench),
        24);
    const auto fixed_trace = fixed_model->generate();
    const auto s_fixed = sim::runTrace(
        fixed_trace, cfg, policy::makePolicy(policy::PolicyKind::Lru));

    const double speedup =
        100.0 * (s_fixed.ipc - s_base.ipc) / s_base.ipc;
    std::printf("\n=== Software prefetch intervention ===\n");
    std::printf("%-26s %10s %12s %12s\n", "variant", "IPC",
                "LLC misses", "L1D miss%");
    std::printf("%-26s %10.6f %12llu %11.2f%%\n", "baseline",
                s_base.ipc,
                static_cast<unsigned long long>(s_base.llc.misses),
                100.0 * s_base.l1d.missRate());
    std::printf("%-26s %10.6f %12llu %11.2f%%\n",
                "with software prefetch", s_fixed.ipc,
                static_cast<unsigned long long>(s_fixed.llc.misses),
                100.0 * s_fixed.l1d.missRate());
    std::printf("\nSpeedup from prefetching PC %s: %.1f%% "
                "(paper: ~76%%)\n",
                str::hex(verified.pc).c_str(), speedup);
    return 0;
}
