/**
 * @file
 * E10 (§6.3 "Signature Optimization for Bypass Logic", Figure 11):
 * CacheMind identifies mcf PCs with near-zero hit rate and huge reuse
 * distances under Belady's policy; conditionally bypassing those PCs
 * in the LRU cache raises hit rate and IPC.
 *
 * Expected shape (paper): bypassing ten identified PCs lifts the mcf
 * LLC hit rate by several percent relative (paper: 25.06% -> 26.98%,
 * +7.66% rel) and IPC by ~2% (paper: +2.04%).
 */

#include <cstdio>
#include <unordered_set>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "insights/insights.hh"
#include "policy/basic_policies.hh"
#include "sim/core_model.hh"
#include "trace/workload.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building mcf trace database (Belady for analysis)"
                "...\n");
    db::BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Mcf};
    opts.policies = {policy::PolicyKind::Belady,
                     policy::PolicyKind::Lru};
    const auto database = db::buildDatabase(opts);

    // --- Figure 11 chat: the discovery queries.
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("sieve")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the bypass-study engine");
    core::ChatSession chat(engine);
    std::printf("\n=== Chat transcript (Figure 11) ===\n");
    chat.ask("List all PCs in the mcf workload under Belady.")
        .expect("chat turn");
    chat.ask("Identify PCs suitable for bypassing to improve IPC in "
             "the mcf workload under Belady.")
        .expect("chat turn");
    std::printf("%s", chat.transcript().c_str());

    const auto candidates =
        insights::recommendBypassPcs(database, "mcf", "belady", 10);
    std::printf("Verified bypass candidates (%zu):\n",
                candidates.size());
    std::unordered_set<std::uint64_t> bypass_pcs;
    for (const auto &c : candidates) {
        bypass_pcs.insert(c.pc);
        std::printf("  %s hit_rate=%.2f%% mean_reuse=%.0f "
                    "dead=%.0f%% accesses=%llu\n",
                    str::hex(c.pc).c_str(), 100.0 * c.hit_rate,
                    c.mean_reuse_distance, 100.0 * c.dead_fraction,
                    static_cast<unsigned long long>(c.accesses));
    }

    // --- Apply conditional bypass in the LRU LLC and measure.
    const auto cfg = sim::defaultHierarchyConfig();
    auto model = trace::makeWorkload(trace::WorkloadKind::Mcf);
    const auto t = model->generate();

    const auto s_base = sim::runTrace(
        t, cfg, policy::makePolicy(policy::PolicyKind::Lru));

    sim::Hierarchy hier(cfg, policy::makePolicy(policy::PolicyKind::Lru));
    hier.llc().setBypassFilter([&bypass_pcs](std::uint64_t pc) {
        return bypass_pcs.count(pc) > 0;
    });
    const auto s_bypass = sim::runTrace(t, hier);

    const double hit_base = s_base.llc.hitRate();
    const double hit_new = s_bypass.llc.hitRate();
    const double hit_rel = 100.0 * (hit_new - hit_base) / hit_base;
    const double ipc_rel =
        100.0 * (s_bypass.ipc - s_base.ipc) / s_base.ipc;

    std::printf("\n=== Conditional bypass intervention (mcf, LRU LLC) "
                "===\n");
    std::printf("%-26s %12s %10s\n", "variant", "LLC hit rate", "IPC");
    std::printf("%-26s %11.2f%% %10.6f\n", "LRU baseline",
                100.0 * hit_base, s_base.ipc);
    std::printf("%-26s %11.2f%% %10.6f\n", "LRU + bypass (10 PCs)",
                100.0 * hit_new, s_bypass.ipc);
    std::printf("\nHit rate: %+.2f%% relative (paper: +7.66%%); "
                "IPC: %+.2f%% (paper: +2.04%%)\n",
                hit_rel, ipc_rel);
    return 0;
}
