/**
 * @file
 * E13 (§6.1 "Belady vs. PARROT"): per-PC hit rates under Belady's
 * globally optimal policy vs PARROT's PC-local learned policy.
 *
 * Expected shape (paper): PARROT beats Belady on a handful of
 * individual PCs per workload (paper: 2 on astar, 5 on lbm, 3 on
 * mcf) even though Belady dominates in aggregate — OPT's guarantee
 * is global, not per-PC.
 */

#include <cstdio>

#include "base/str.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database (Belady + PARROT)...\n");
    db::BuildOptions opts;
    opts.policies = {policy::PolicyKind::Belady,
                     policy::PolicyKind::Parrot};
    const auto database = db::buildDatabase(opts);

    std::printf("\n=== Belady vs PARROT: per-PC hit-rate wins ===\n");
    std::printf("%-10s %18s %18s %14s\n", "workload",
                "aggregate Belady", "aggregate PARROT",
                "PCs PARROT>OPT");
    for (const auto &workload : database.workloads()) {
        const auto *opt_exp = database.statsFor(
            db::TraceDatabase::keyFor(workload, "belady"));
        const auto *par_exp = database.statsFor(
            db::TraceDatabase::keyFor(workload, "parrot"));
        if (!opt_exp || !par_exp)
            continue;

        std::size_t parrot_wins = 0;
        std::printf("  winners:");
        for (const auto &ps : par_exp->allPcStats()) {
            const auto os = opt_exp->pcStats(ps.pc);
            if (!os || ps.accesses < 30)
                continue;
            if (ps.hitRate() > os->hitRate() + 1e-9) {
                ++parrot_wins;
                std::printf(" %s(%.1f%%>%.1f%%)",
                            str::hex(ps.pc).c_str(),
                            100.0 * ps.hitRate(),
                            100.0 * os->hitRate());
            }
        }
        std::printf("\n");
        std::printf("%-10s %17.2f%% %17.2f%% %14zu\n",
                    workload.c_str(),
                    100.0 * (1.0 - opt_exp->summary().missRate()),
                    100.0 * (1.0 - par_exp->summary().missRate()),
                    parrot_wins);
    }
    std::printf("\nBelady's optimality is a guarantee over the whole "
                "trace; PC-local learned policies can beat it on "
                "individual PCs while losing in aggregate.\n");
    return 0;
}
