/**
 * @file
 * E1 (Table 1): CacheMindBench composition — the 11 categories, their
 * sizes, tier membership, scoring mode, and one representative
 * generated question per category.
 */

#include <cstdio>
#include <map>

#include "benchsuite/generator.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const auto suite = generator.generate();

    std::map<benchsuite::Category, std::size_t> counts;
    std::map<benchsuite::Category, std::string> examples;
    for (const auto &q : suite) {
        ++counts[q.category];
        if (examples.find(q.category) == examples.end())
            examples[q.category] = q.text;
    }

    std::printf("\n=== Table 1: CacheMindBench categories (%zu "
                "questions) ===\n",
                suite.size());
    std::size_t tg = 0, ara = 0;
    for (const auto cat : benchsuite::allCategories()) {
        const bool grounded = benchsuite::isTraceGrounded(cat);
        (grounded ? tg : ara) += counts[cat];
        std::printf("%-28s %-16s %-12s %3zu\n",
                    benchsuite::categoryName(cat),
                    grounded ? "Trace-Grounded" : "Reasoning",
                    grounded ? "exact 0/1" : "rubric 0-5",
                    counts[cat]);
        std::printf("    e.g. \"%s\"\n", examples[cat].c_str());
    }
    std::printf("\nTier sizes: %zu trace-grounded, %zu reasoning.\n",
                tg, ara);
    return 0;
}
