/**
 * @file
 * E4 (Figure 5): reasoning accuracy bucketed by qualitative
 * retrieval-context quality (Low / Medium / High) for every backend.
 *
 * Bucket membership is assessed mechanically per question from the
 * bundle contents (does it hold the evidence class the question
 * needs?). To populate all three buckets the harness pools three
 * retrieval regimes, as the paper's qualitative analysis does:
 * a dense-embedding baseline (mostly Low-quality context), a degraded
 * Sieve with a tiny evidence window (Medium), and the full Sieve
 * (mostly High).
 *
 * Every regime is a Builder-configured engine (scenario knobs instead
 * of direct retriever construction), and all engines share ONE
 * cross-engine RetrievalCache: retrieval is backend-independent, so
 * after the first backend's sweep every evidence bundle is a cache
 * hit — the 5-backend sweep pays retrieval roughly once.
 *
 * Expected shape (paper): accuracy climbs steeply from Low to High
 * for every backend — retrieval quality is the precondition for
 * trace-grounded reasoning.
 */

#include <cstdio>
#include <map>
#include <string>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "retrieval/cache.hh"

using namespace cachemind;

namespace {

/** One retrieval regime, expressed purely as Builder scenario knobs. */
struct Regime
{
    const char *retriever;
    std::map<std::string, std::string> params;
    std::size_t batch_workers;
};

} // namespace

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());

    const Regime regimes[] = {
        // Dense baseline: mostly Low-quality context. One worker —
        // every extra batch worker would re-embed the whole index.
        {"llamaindex", {{"row_stride", "32"}}, 1},
        // Degraded Sieve: tiny window, no address filter (Medium).
        {"sieve",
         {{"evidence_window", "4"},
          {"listing_limit", "8"},
          {"degrade_filters", "true"}},
         4},
        // Full Sieve: mostly High-quality context.
        {"sieve", {}, 4},
    };

    // One bundle cache across all 15 engines (3 regimes x 5
    // backends): engines with identical retriever fingerprints share
    // their evidence, so only the first backend pays retrieval.
    auto shared_cache =
        std::make_shared<retrieval::RetrievalCache>(1 << 14);

    std::printf("\n=== Figure 5: accuracy vs retrieval-context quality "
                "===\n");
    std::printf("%-18s %8s %5s %8s %5s %8s %5s\n", "Backend", "Low",
                "(n)", "Medium", "(n)", "High", "(n)");
    double avg[3] = {0, 0, 0};
    int models = 0;
    for (const auto backend : llm::allBackends()) {
        benchsuite::EvalResult pooled;
        for (const auto &regime : regimes) {
            auto builder =
                core::CacheMind::Builder(database)
                    .withRetriever(regime.retriever)
                    .withBackend(llm::backendKey(backend))
                    .withBatchWorkers(regime.batch_workers)
                    .withSharedRetrievalCache(shared_cache);
            for (const auto &[key, value] : regime.params)
                builder.withRetrieverParam(key, value);
            auto engine =
                builder.build().expect("building a Figure 5 engine");
            const auto res = harness.evaluate(engine);
            pooled.records.insert(pooled.records.end(),
                                  res.records.begin(),
                                  res.records.end());
        }
        using retrieval::ContextQuality;
        const double lo = pooled.qualityBucketPct(ContextQuality::Low);
        const double me =
            pooled.qualityBucketPct(ContextQuality::Medium);
        const double hi = pooled.qualityBucketPct(ContextQuality::High);
        std::printf("%-18s %7.1f%% %5zu %7.1f%% %5zu %7.1f%% %5zu\n",
                    llm::backendName(backend), lo,
                    pooled.qualityBucketCount(ContextQuality::Low), me,
                    pooled.qualityBucketCount(ContextQuality::Medium),
                    hi,
                    pooled.qualityBucketCount(ContextQuality::High));
        avg[0] += lo;
        avg[1] += me;
        avg[2] += hi;
        ++models;
    }
    std::printf("%-18s %7.1f%% %5s %7.1f%% %5s %7.1f%% %5s\n",
                "Average", avg[0] / models, "", avg[1] / models, "",
                avg[2] / models, "");
    const auto cache_counters = shared_cache->counters();
    std::printf("\nShared cross-engine bundle cache: %llu hits / %llu "
                "misses across the sweep.\n",
                static_cast<unsigned long long>(cache_counters.hits),
                static_cast<unsigned long long>(cache_counters.misses));
    std::printf("Retrieval quality gates reasoning: the average "
                "accuracy climbs monotonically from Low to High.\n");
    return 0;
}
