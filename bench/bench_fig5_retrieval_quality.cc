/**
 * @file
 * E4 (Figure 5): reasoning accuracy bucketed by qualitative
 * retrieval-context quality (Low / Medium / High) for every backend.
 *
 * Bucket membership is assessed mechanically per question from the
 * bundle contents (does it hold the evidence class the question
 * needs?). To populate all three buckets the harness pools three
 * retrieval regimes, as the paper's qualitative analysis does:
 * a dense-embedding baseline (mostly Low-quality context), a degraded
 * Sieve with a tiny evidence window (Medium), and the full Sieve
 * (mostly High).
 *
 * Expected shape (paper): accuracy climbs steeply from Low to High
 * for every backend — retrieval quality is the precondition for
 * trace-grounded reasoning.
 */

#include <cstdio>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "db/builder.hh"
#include "retrieval/llamaindex.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());

    std::printf("Building retrieval regimes...\n");
    retrieval::LlamaIndexConfig llama_cfg;
    llama_cfg.row_stride = 32;
    retrieval::LlamaIndexRetriever llamaindex(database, llama_cfg);
    retrieval::SieveConfig degraded;
    degraded.evidence_window = 4;
    degraded.listing_limit = 8;
    degraded.degrade_filters = true;

    std::printf("\n=== Figure 5: accuracy vs retrieval-context quality "
                "===\n");
    std::printf("%-18s %8s %5s %8s %5s %8s %5s\n", "Backend", "Low",
                "(n)", "Medium", "(n)", "High", "(n)");
    double avg[3] = {0, 0, 0};
    int models = 0;
    for (const auto backend : llm::allBackends()) {
        const llm::GeneratorLlm gen(backend);
        retrieval::SieveRetriever sieve_degraded(database, degraded);
        retrieval::SieveRetriever sieve_full(database);

        benchsuite::EvalResult pooled;
        for (retrieval::Retriever *retriever :
             {static_cast<retrieval::Retriever *>(&llamaindex),
              static_cast<retrieval::Retriever *>(&sieve_degraded),
              static_cast<retrieval::Retriever *>(&sieve_full)}) {
            const auto res = harness.evaluate(*retriever, gen);
            pooled.records.insert(pooled.records.end(),
                                  res.records.begin(),
                                  res.records.end());
        }
        using retrieval::ContextQuality;
        const double lo = pooled.qualityBucketPct(ContextQuality::Low);
        const double me =
            pooled.qualityBucketPct(ContextQuality::Medium);
        const double hi = pooled.qualityBucketPct(ContextQuality::High);
        std::printf("%-18s %7.1f%% %5zu %7.1f%% %5zu %7.1f%% %5zu\n",
                    llm::backendName(backend), lo,
                    pooled.qualityBucketCount(ContextQuality::Low), me,
                    pooled.qualityBucketCount(ContextQuality::Medium),
                    hi,
                    pooled.qualityBucketCount(ContextQuality::High));
        avg[0] += lo;
        avg[1] += me;
        avg[2] += hi;
        ++models;
    }
    std::printf("%-18s %7.1f%% %5s %7.1f%% %5s %7.1f%% %5s\n",
                "Average", avg[0] / models, "", avg[1] / models, "",
                avg[2] / models, "");
    std::printf("\nRetrieval quality gates reasoning: the average "
                "accuracy climbs monotonically from Low to High.\n");
    return 0;
}
