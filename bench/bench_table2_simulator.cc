/**
 * @file
 * E2 (Table 2) + E14 (§5 database statistics).
 *
 * Prints the simulated processor/memory configuration in the format of
 * the paper's Table 2, then builds the LLC streams for every workload
 * and reports, per (workload, policy), the trace-database row counts
 * and headline statistics (miss rate, eviction counts, wrong-eviction
 * percentage) that the paper's §5 "Traces and Metadata" describes.
 */

#include <cstdio>
#include <memory>

#include "base/str.hh"
#include "policy/basic_policies.hh"
#include "policy/replacement.hh"
#include "sim/core_model.hh"
#include "sim/llc_replay.hh"
#include "trace/workload.hh"

using namespace cachemind;

int
main()
{
    const auto cfg = sim::defaultHierarchyConfig();
    std::printf("=== Table 2: Processor and Memory Configuration ===\n");
    std::printf("%s\n", sim::describeConfig(cfg).c_str());

    std::printf("=== Per-trace database statistics (paper SS5) ===\n");
    std::printf("%-12s %-11s %10s %10s %9s %10s %8s\n", "workload",
                "policy", "accesses", "misses", "missrate", "evictions",
                "wrongev");

    const policy::PolicyKind policies[] = {
        policy::PolicyKind::Belady, policy::PolicyKind::Lru,
        policy::PolicyKind::Parrot, policy::PolicyKind::Mlp};

    for (const auto wk : trace::allWorkloads()) {
        auto model = trace::makeWorkload(wk);
        const auto cpu_trace = model->generate();
        const auto stream = sim::captureLlcStream(cpu_trace, cfg);
        const auto oracle = sim::computeOracle(stream);

        for (const auto pk : policies) {
            std::unique_ptr<policy::ReplacementPolicy> pol;
            if (pk == policy::PolicyKind::Parrot) {
                auto parrot = std::make_unique<policy::ParrotPolicy>();
                parrot->setModel(
                    sim::ParrotModelBuilder::train(stream, oracle));
                pol = std::move(parrot);
            } else {
                pol = policy::makePolicy(pk);
            }
            sim::LlcReplayer rep(cfg.llc, std::move(pol));
            std::uint64_t wrong = 0, evictions = 0;
            const auto stats =
                rep.replay(stream, &oracle, [&](const sim::ReplayEvent &e) {
                    evictions += e.has_victim;
                    wrong += e.wrong_eviction;
                });
            const double wrong_pct =
                evictions ? 100.0 * static_cast<double>(wrong) /
                                static_cast<double>(evictions)
                          : 0.0;
            std::printf("%-12s %-11s %10zu %10llu %8.2f%% %10llu %7.2f%%\n",
                        model->info().name.c_str(), policy::policyName(pk),
                        stream.size(),
                        static_cast<unsigned long long>(stats.misses),
                        100.0 * stats.missRate(),
                        static_cast<unsigned long long>(evictions),
                        wrong_pct);
        }
    }
    return 0;
}
