/**
 * @file
 * E12 (§6.3 "Set Hotness Analysis Use Case", Figure 13): CacheMind
 * identifies hot and cold cache sets for astar under Belady and LRU
 * and compares them.
 *
 * Expected shape (paper): hot sets arise from intrinsic workload
 * locality, so the hot-set identity overlaps strongly between LRU and
 * Belady, and Belady amplifies hotness (its hot-set hit rates are
 * higher).
 */

#include <cstdio>

#include "core/cachemind.hh"
#include "db/builder.hh"
#include "insights/insights.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building astar trace database (Belady + LRU)...\n");
    db::BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Astar};
    opts.policies = {policy::PolicyKind::Belady,
                     policy::PolicyKind::Lru};
    const auto database = db::buildDatabase(opts);

    // --- Figure 13 chat.
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("sieve")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the set-hotness engine");
    core::ChatSession chat(engine);
    std::printf("\n=== Chat transcript (Figure 13) ===\n");
    chat.ask("For the astar workload and Belady replacement policy, "
             "could you list the unique cache sets in ascending "
             "order?")
        .expect("chat turn");
    chat.ask("Identify 5 hot and 5 cold sets by hit rate for the "
             "astar workload under Belady.")
        .expect("chat turn");
    chat.ask("Identify 5 hot and 5 cold sets by hit rate for the "
             "astar workload under LRU.")
        .expect("chat turn");
    std::printf("%s", chat.transcript().c_str());

    // --- Verified analysis + cross-policy comparison.
    const auto belady =
        insights::analyzeSetHotness(database, "astar", "belady", 5);
    const auto lru =
        insights::analyzeSetHotness(database, "astar", "lru", 5);

    auto show = [](const char *label,
                   const insights::SetHotnessReport &r) {
        std::printf("%s hot:", label);
        for (const auto &s : r.hot)
            std::printf(" %u(%.1f%%)", s.set, 100.0 * s.hitRate());
        std::printf("  cold:");
        for (const auto &s : r.cold)
            std::printf(" %u(%.1f%%)", s.set, 100.0 * s.hitRate());
        std::printf("\n");
    };
    std::printf("\n=== Hot/cold sets (top/bottom 5 by hit rate) ===\n");
    show("Belady", belady);
    show("LRU   ", lru);

    const std::size_t overlap =
        insights::hotSetOverlap(belady.hot, lru.hot);
    double belady_hot_avg = 0.0, lru_hot_avg = 0.0;
    for (const auto &s : belady.hot)
        belady_hot_avg += s.hitRate() / belady.hot.size();
    for (const auto &s : lru.hot)
        lru_hot_avg += s.hitRate() / lru.hot.size();

    std::printf("\nHot-set overlap LRU vs Belady: %zu/5 "
                "(hotness is intrinsic to the workload)\n",
                overlap);
    std::printf("Belady amplifies hotness: mean hot-set hit rate "
                "%.1f%% vs %.1f%% under LRU\n",
                100.0 * belady_hot_avg, 100.0 * lru_hot_avg);
    return 0;
}
