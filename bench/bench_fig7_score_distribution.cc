/**
 * @file
 * E6 (Figure 7): distribution of reasoning-tier rubric scores (0-5)
 * per backend with CacheMind-Sieve.
 *
 * Expected shape (paper): o3 is bimodal — mass at 0 (disengaged) and
 * at 4-5 (engaged and strong) — while GPT-4o is consistently
 * competent (mass concentrated at 3-5) and GPT-3.5-Turbo / the
 * fine-tuned 4o-mini spread lower.
 */

#include <cstdio>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "db/builder.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());

    std::printf("\n=== Figure 7: ARA rubric score distribution "
                "(25 questions each) ===\n");
    std::printf("%-18s %6s %6s %6s %6s %6s %6s\n", "Backend", "0", "1",
                "2", "3", "4", "5");
    for (const auto backend : llm::allBackends()) {
        retrieval::SieveRetriever sieve(database);
        const llm::GeneratorLlm gen(backend);
        const auto res = harness.evaluate(sieve, gen);
        const auto hist = res.araScoreHistogram();
        std::printf("%-18s", llm::backendName(backend));
        for (const auto count : hist)
            std::printf(" %6zu", count);
        std::printf("\n");
    }
    std::printf("\nBimodality check: o3 concentrates at 0 and 4-5; "
                "GPT-4o has little mass below 3.\n");
    return 0;
}
