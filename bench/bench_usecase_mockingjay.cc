/**
 * @file
 * E9 (§6.3 "Mockingjay Use Case", Figure 10): CacheMind groups PCs by
 * reuse-distance (ETR) variance; restricting Mockingjay's
 * reuse-distance predictor training to the stable (low-variance) PCs
 * yields a small IPC gain on milc.
 *
 * Expected shape (paper): stable-PC training lifts IPC from 0.47698
 * to 0.480307, a +0.7% speedup. Here the magnitude depends on the
 * analytic core model; the claim is a positive gain from filtering
 * the RDP's training set to predictable PCs.
 */

#include <cstdio>
#include <memory>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "insights/insights.hh"
#include "policy/mockingjay.hh"
#include "sim/core_model.hh"
#include "trace/workload.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building milc trace database...\n");
    const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Milc, policy::PolicyKind::Lru);

    // --- Figure 10 chat: grouping PCs by ETR variance.
    auto engine = core::CacheMind::Builder(database)
                      .withRetriever("ranger")
                      .withBackend("gpt-4o")
                      .build()
                      .expect("building the mockingjay-study engine");
    core::ChatSession chat(engine);
    std::printf("\n=== Chat transcript (Figure 10) ===\n");
    chat.ask("List all unique PCs in the milc workload under LRU.")
        .expect("chat turn");
    chat.ask("What is the standard deviation of the reuse distance of "
             "PC 0x413930 in the milc workload under LRU?")
        .expect("chat turn");
    chat.ask("What is the standard deviation of the reuse distance of "
             "PC 0x413948 in the milc workload under LRU?")
        .expect("chat turn");
    std::printf("%s", chat.transcript().c_str());

    const auto buckets =
        insights::classifyPcStability(database, "milc", "lru");
    auto show = [](const char *name,
                   const std::vector<insights::PcStability> &pcs) {
        std::printf("%s:", name);
        for (const auto &p : pcs)
            std::printf(" %s(cov=%.2f)", str::hex(p.pc).c_str(), p.cov);
        std::printf("\n");
    };
    show("LowVar ", buckets.low_variance);
    show("MedVar ", buckets.medium_variance);
    show("HighVar", buckets.high_variance);

    // --- Train Mockingjay's RDP on stable PCs only and measure.
    const auto cfg = sim::defaultHierarchyConfig();
    auto model = trace::makeWorkload(trace::WorkloadKind::Milc);
    const auto t = model->generate();

    const auto s_base = sim::runTrace(
        t, cfg, std::make_unique<policy::MockingjayPolicy>());

    auto filtered = std::make_unique<policy::MockingjayPolicy>();
    filtered->setTrainingFilter(buckets.stablePcSet());
    const auto s_stable = sim::runTrace(t, cfg, std::move(filtered));

    const double speedup =
        100.0 * (s_stable.ipc - s_base.ipc) / s_base.ipc;
    std::printf("\n=== Mockingjay RDP training intervention (milc) "
                "===\n");
    std::printf("%-30s %10s %14s\n", "variant", "IPC",
                "LLC hit rate");
    std::printf("%-30s %10.6f %13.2f%%\n", "Mockingjay (all PCs)",
                s_base.ipc, 100.0 * s_base.llc.hitRate());
    std::printf("%-30s %10.6f %13.2f%%\n",
                "Mockingjay (stable PCs only)", s_stable.ipc,
                100.0 * s_stable.llc.hitRate());
    std::printf("\nSpeedup from stable-PC training: %+.2f%% "
                "(paper: +0.7%%)\n",
                speedup);
    return 0;
}
