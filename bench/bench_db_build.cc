/**
 * @file
 * Micro-bench for the parallel database build: constructs the same
 * 3-workload x 4-policy database sequentially (build_threads=1) and
 * on a 4-thread pool, reports both wall-clock times, and verifies the
 * outputs are identical (keys, metadata strings, per-entry row
 * counts). On a multicore host the parallel build approaches the
 * per-workload critical path; on a single core it degrades to
 * sequential cost plus noise — either way the outputs must match.
 */

#include <cstdio>
#include <string>

#include "base/stopwatch.hh"
#include "db/builder.hh"

using namespace cachemind;

int
main()
{
    db::BuildOptions options;
    // Default 3 workloads x 4 policies; a bounded trace length keeps
    // the bench in seconds while every stage (generation, capture,
    // oracle, Parrot training, replay) still runs.
    options.accesses_override = 120000;

    options.build_threads = 1;
    Stopwatch seq_timer;
    const auto sequential = db::buildDatabase(options);
    const double seq_ms = seq_timer.milliseconds();

    options.build_threads = 4;
    Stopwatch par_timer;
    const auto parallel = db::buildDatabase(options);
    const double par_ms = par_timer.milliseconds();

    std::printf("=== Parallel database build ===\n");
    std::printf("entries: %zu (%zu workloads x %zu policies)\n",
                sequential.size(), options.workloads.size(),
                options.policies.size());
    std::printf("sequential (build_threads=1): %10.1f ms\n", seq_ms);
    std::printf("parallel   (build_threads=4): %10.1f ms\n", par_ms);
    std::printf("speedup: %.2fx\n", par_ms > 0.0 ? seq_ms / par_ms : 0.0);

    // Equivalence check: the parallel build must be byte-identical.
    bool identical = sequential.keys() == parallel.keys();
    if (identical) {
        for (const auto &key : sequential.keys()) {
            const auto *a = sequential.find(key);
            const auto *b = parallel.find(key);
            if (!b || a->metadata != b->metadata ||
                a->description != b->description ||
                a->table.size() != b->table.size()) {
                identical = false;
                std::printf("MISMATCH at %s\n", key.c_str());
                break;
            }
        }
    }
    std::printf("outputs identical: %s\n", identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
