/**
 * @file
 * E5 (Figure 6 + §6.1 "One and Few-shot Prompting"): zero- vs one- vs
 * few-shot prompting for every backend (Sieve retrieval), plus the
 * rendered one-shot prompt itself.
 *
 * Expected shape (paper): overall accuracy barely moves; trick
 * questions improve with shots (the examples demonstrate premise
 * rejection); weak models with poor retrieval sometimes adopt the
 * example's context as their own and lose accuracy.
 */

#include <cstdio>
#include <memory>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "retrieval/cache.hh"

using namespace cachemind;

int
main()
{
    std::printf("Building trace database...\n");
    const auto database = db::buildDatabase();
    const benchsuite::BenchGenerator generator(database);
    const benchsuite::EvalHarness harness(generator.generate());

    // Show the canonical one-shot prompt (Figure 6).
    {
        llm::Prompt prompt;
        prompt.system = llm::defaultSystemPrompt();
        prompt.shots = llm::canonicalShots(llm::ShotMode::OneShot);
        prompt.context = "(retrieved context for the actual question)";
        prompt.question =
            "Does the memory access with PC 0x401dc9 and address "
            "0x47ea85d37f result in a cache hit or cache miss for the "
            "lbm workload and PARROT replacement policy?";
        std::printf("\n=== Figure 6: one-shot prompt ===\n%s\n",
                    prompt.render().c_str());
    }

    const llm::ShotMode modes[] = {llm::ShotMode::ZeroShot,
                                   llm::ShotMode::OneShot,
                                   llm::ShotMode::FewShot};

    // 15 Builder-configured engines (5 backends x 3 shot modes) share
    // one bundle cache: prompting changes generation, never
    // retrieval, so every engine after the first serves its evidence
    // from the shared cache.
    auto shared_cache =
        std::make_shared<retrieval::RetrievalCache>(1 << 14);

    std::printf("\n=== Prompting ablation (weighted total / trick "
                "accuracy) ===\n");
    std::printf("%-18s", "Backend");
    for (const auto mode : modes)
        std::printf(" %22s", llm::shotModeName(mode));
    std::printf("\n");
    for (const auto backend : llm::allBackends()) {
        std::printf("%-18s", llm::backendName(backend));
        for (const auto mode : modes) {
            auto engine = core::CacheMind::Builder(database)
                              .withRetriever("sieve")
                              .withBackend(llm::backendKey(backend))
                              .withShotMode(mode)
                              .withBatchWorkers(4)
                              .withSharedRetrievalCache(shared_cache)
                              .build()
                              .expect("building a Figure 6 engine");
            const auto res = harness.evaluate(engine);
            const auto trick = res.by_category.at(
                benchsuite::Category::TrickQuestion);
            std::printf("      %5.1f%% / %5.1f%%", res.weightedTotalPct(),
                        trick.pct());
        }
        std::printf("\n");
    }
    const auto cache_counters = shared_cache->counters();
    std::printf("\nShared cross-engine bundle cache: %llu hits / %llu "
                "misses across the 15-engine sweep.\n",
                static_cast<unsigned long long>(cache_counters.hits),
                static_cast<unsigned long long>(cache_counters.misses));
    std::printf("Shots barely move the totals but improve trick "
                "rejection; context-overreliant models can copy the "
                "example's context when retrieval is poor.\n");
    return 0;
}
