/**
 * @file
 * E15: google-benchmark microbenchmarks for the performance-critical
 * substrate paths — cache simulation throughput, oracle pre-passes,
 * embedding, retrieval latency (Sieve vs Ranger), the DSL
 * interpreter, and the serving pipeline's cross-question retrieval
 * cache (repeated-slot askBatch, cache on vs off). These back the
 * Figure 9 latency ordering with statistically sound timings.
 *
 * JSON output (counters like repeated-slot hit_rate included):
 *   ./bench_micro_perf --benchmark_format=json \
 *       --benchmark_out=BENCH_micro_perf.json
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "policy/basic_policies.hh"
#include "query/dsl.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"
#include "sim/core_model.hh"
#include "sim/llc_replay.hh"
#include "text/embedding.hh"
#include "trace/workload.hh"

using namespace cachemind;

namespace {

/** Shared fixtures (built once; google-benchmark reruns the loop). */
const trace::Trace &
mcfTrace()
{
    static const trace::Trace t =
        trace::makeWorkload(trace::WorkloadKind::Mcf)->generate(60000);
    return t;
}

const std::vector<sim::LlcAccess> &
mcfStream()
{
    static const auto stream = sim::captureLlcStream(mcfTrace());
    return stream;
}

const db::TraceDatabase &
microDb()
{
    static const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Mcf, policy::PolicyKind::Lru, 60000);
    return database;
}

} // namespace

static void
BM_CacheSimThroughput(benchmark::State &state)
{
    const auto &t = mcfTrace();
    for (auto _ : state) {
        sim::Hierarchy hier(sim::defaultHierarchyConfig(),
                            std::make_unique<policy::LruPolicy>());
        for (const auto &r : t)
            benchmark::DoNotOptimize(hier.access(r.pc, r.address,
                                                 r.type));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_CacheSimThroughput)->Unit(benchmark::kMillisecond);

static void
BM_OraclePrePass(benchmark::State &state)
{
    const auto &stream = mcfStream();
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::computeOracle(stream));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_OraclePrePass)->Unit(benchmark::kMillisecond);

static void
BM_BeladyReplay(benchmark::State &state)
{
    const auto &stream = mcfStream();
    static const auto oracle = sim::computeOracle(stream);
    for (auto _ : state) {
        sim::LlcReplayer rep(sim::defaultHierarchyConfig().llc,
                             std::make_unique<policy::BeladyPolicy>());
        benchmark::DoNotOptimize(rep.replay(stream, &oracle, nullptr));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BeladyReplay)->Unit(benchmark::kMillisecond);

static void
BM_HashEmbedder(benchmark::State &state)
{
    const text::HashEmbedder embedder(128);
    const std::string doc =
        "TRACE_ID: mcf_evictions_lru program_counter=0x4037aa "
        "memory_address=0x1b73be82e3f evict=Cache Miss recency=recent";
    for (auto _ : state)
        benchmark::DoNotOptimize(embedder.embed(doc));
}
BENCHMARK(BM_HashEmbedder);

static void
BM_SieveRetrieval(benchmark::State &state)
{
    const auto &database = microDb();
    retrieval::SieveRetriever sieve(database);
    const std::string query =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    for (auto _ : state)
        benchmark::DoNotOptimize(sieve.retrieve(query));
}
BENCHMARK(BM_SieveRetrieval)->Unit(benchmark::kMicrosecond);

static void
BM_RangerRetrieval(benchmark::State &state)
{
    const auto &database = microDb();
    retrieval::RangerRetriever ranger(database);
    const std::string query =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    for (auto _ : state)
        benchmark::DoNotOptimize(ranger.retrieve(query));
}
BENCHMARK(BM_RangerRetrieval)->Unit(benchmark::kMicrosecond);

static void
BM_DslCountFullTable(benchmark::State &state)
{
    const auto &database = microDb();
    const query::Interpreter interp(database);
    query::DslProgram prog;
    prog.trace_key = "mcf_evictions_lru";
    prog.pc = 0x4037aa;
    prog.op = query::DslOp::CountRows;
    for (auto _ : state)
        benchmark::DoNotOptimize(interp.run(prog));
}
BENCHMARK(BM_DslCountFullTable)->Unit(benchmark::kMicrosecond);

static void
BM_StatsExpertBuild(benchmark::State &state)
{
    const auto &database = microDb();
    const auto *entry = database.find("mcf_evictions_lru");
    for (auto _ : state)
        benchmark::DoNotOptimize(db::StatsExpert(entry->table));
}
BENCHMARK(BM_StatsExpertBuild)->Unit(benchmark::kMillisecond);

namespace {

/**
 * The serving-cache scenario: a batch of 64 questions drawn from 8
 * distinct slot tuples (each asked through several phrasings, the
 * overlapping-users pattern of the paper's serving story). With the
 * cross-question cache on, slot-equal questions share one retrieval.
 */
std::vector<std::string>
repeatedSlotQuestions()
{
    const auto &database = microDb();
    const auto *entry = database.find("mcf_evictions_lru");
    std::vector<std::string> questions;
    for (std::size_t slot = 0; slot < 8; ++slot) {
        const std::string pc =
            str::hex(entry->table.pcAt(slot * 64));
        const std::string a = "What is the miss rate for PC " + pc +
                              " in the mcf workload with LRU?";
        const std::string b = "For the mcf workload under LRU, what "
                              "miss rate does PC " +
                              pc + " have?";
        for (int rep = 0; rep < 4; ++rep) {
            questions.push_back(a);
            questions.push_back(b);
        }
    }
    return questions;
}

} // namespace

static void
BM_AskBatchRepeatedSlots(benchmark::State &state)
{
    const bool cache_on = state.range(0) != 0;
    const auto questions = repeatedSlotQuestions();
    auto engine =
        core::CacheMind::Builder(microDb())
            .withBatchWorkers(4)
            .withRetrievalCacheCapacity(cache_on ? 4096 : 0)
            .build()
            .expect("bench engine");
    for (auto _ : state) {
        auto batch = engine.askBatch(questions);
        benchmark::DoNotOptimize(batch);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(questions.size()));
    const auto stats = engine.stats();
    state.counters["hit_rate"] = stats.cache.hitRate();
    state.counters["cache_hits"] =
        static_cast<double>(stats.cache.hits);
    state.counters["cache_misses"] =
        static_cast<double>(stats.cache.misses);
}
BENCHMARK(BM_AskBatchRepeatedSlots)
    ->Arg(0)  // cache off
    ->Arg(1)  // cache on
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
