/**
 * @file
 * E15: google-benchmark microbenchmarks for the performance-critical
 * substrate paths — cache simulation throughput, oracle pre-passes,
 * embedding, retrieval latency (Sieve vs Ranger), the DSL
 * interpreter, cold-question retrieval over the postings index vs the
 * reference scan, the per-shard index build itself, and the serving
 * pipeline's cross-question retrieval cache (repeated-slot askBatch,
 * cache on vs off). These back the Figure 9 latency ordering with
 * statistically sound timings.
 *
 * The binary emits the machine-readable perf trajectory
 * `BENCH_micro_perf.json` by default (cold vs cached retrieval
 * throughput, index build time, cache hit rates); pass your own
 * --benchmark_out=... to override.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <list>
#include <mutex>
#include <unordered_map>

#include "base/random.hh"
#include "base/str.hh"
#include "core/cachemind.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "db/builder.hh"
#include "db/index.hh"
#include "db/postings_ops.hh"
#include "policy/basic_policies.hh"
#include "query/dsl.hh"
#include "retrieval/cache.hh"
#include "retrieval/clock_cache.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/core_model.hh"
#include "sim/llc_replay.hh"
#include "text/embedding.hh"
#include "trace/workload.hh"

using namespace cachemind;

namespace {

/** Shared fixtures (built once; google-benchmark reruns the loop). */
const trace::Trace &
mcfTrace()
{
    static const trace::Trace t =
        trace::makeWorkload(trace::WorkloadKind::Mcf)->generate(60000);
    return t;
}

const std::vector<sim::LlcAccess> &
mcfStream()
{
    static const auto stream = sim::captureLlcStream(mcfTrace());
    return stream;
}

const db::TraceDatabase &
microDb()
{
    static const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Mcf, policy::PolicyKind::Lru, 60000);
    return database;
}

} // namespace

static void
BM_CacheSimThroughput(benchmark::State &state)
{
    const auto &t = mcfTrace();
    for (auto _ : state) {
        sim::Hierarchy hier(sim::defaultHierarchyConfig(),
                            std::make_unique<policy::LruPolicy>());
        for (const auto &r : t)
            benchmark::DoNotOptimize(hier.access(r.pc, r.address,
                                                 r.type));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_CacheSimThroughput)->Unit(benchmark::kMillisecond);

static void
BM_OraclePrePass(benchmark::State &state)
{
    const auto &stream = mcfStream();
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::computeOracle(stream));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_OraclePrePass)->Unit(benchmark::kMillisecond);

static void
BM_BeladyReplay(benchmark::State &state)
{
    const auto &stream = mcfStream();
    static const auto oracle = sim::computeOracle(stream);
    for (auto _ : state) {
        sim::LlcReplayer rep(sim::defaultHierarchyConfig().llc,
                             std::make_unique<policy::BeladyPolicy>());
        benchmark::DoNotOptimize(rep.replay(stream, &oracle, nullptr));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BeladyReplay)->Unit(benchmark::kMillisecond);

static void
BM_HashEmbedder(benchmark::State &state)
{
    const text::HashEmbedder embedder(128);
    const std::string doc =
        "TRACE_ID: mcf_evictions_lru program_counter=0x4037aa "
        "memory_address=0x1b73be82e3f evict=Cache Miss recency=recent";
    for (auto _ : state)
        benchmark::DoNotOptimize(embedder.embed(doc));
}
BENCHMARK(BM_HashEmbedder);

static void
BM_SieveRetrieval(benchmark::State &state)
{
    const auto &database = microDb();
    retrieval::SieveRetriever sieve(database);
    const std::string query =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    for (auto _ : state)
        benchmark::DoNotOptimize(sieve.retrieve(query));
}
BENCHMARK(BM_SieveRetrieval)->Unit(benchmark::kMicrosecond);

static void
BM_RangerRetrieval(benchmark::State &state)
{
    const auto &database = microDb();
    retrieval::RangerRetriever ranger(database);
    const std::string query =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    for (auto _ : state)
        benchmark::DoNotOptimize(ranger.retrieve(query));
}
BENCHMARK(BM_RangerRetrieval)->Unit(benchmark::kMicrosecond);

static void
BM_DslCountFullTable(benchmark::State &state)
{
    const auto &database = microDb();
    const query::Interpreter interp(database);
    query::DslProgram prog;
    prog.trace_key = "mcf_evictions_lru";
    prog.pc = 0x4037aa;
    prog.op = query::DslOp::CountRows;
    for (auto _ : state)
        benchmark::DoNotOptimize(interp.run(prog));
}
BENCHMARK(BM_DslCountFullTable)->Unit(benchmark::kMicrosecond);

static void
BM_StatsExpertBuild(benchmark::State &state)
{
    const auto &database = microDb();
    const auto *entry = database.find("mcf_evictions_lru");
    for (auto _ : state)
        benchmark::DoNotOptimize(db::StatsExpert(entry->table));
}
BENCHMARK(BM_StatsExpertBuild)->Unit(benchmark::kMillisecond);

static void
BM_TraceIndexBuild(benchmark::State &state)
{
    // The one-time per-shard cost the lazy postings index pays before
    // filters and DSL aggregates go sublinear.
    const auto &database = microDb();
    const auto *entry = database.find("mcf_evictions_lru");
    for (auto _ : state) {
        db::TraceIndex index(entry->table);
        benchmark::DoNotOptimize(index.totals());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(entry->table.size()));
}
BENCHMARK(BM_TraceIndexBuild)->Unit(benchmark::kMillisecond);

namespace {

/**
 * The postings-intersection grid: row-id lists drawn at the given
 * densities (per-mille of a 4-chunk universe), so the arms cover the
 * adaptive selector's whole decision surface — skewed pairs (gallop),
 * balanced sparse pairs (linear SIMD merge), and dense pairs (bitmap
 * containers, word-wise AND).
 */
struct IntersectFixture
{
    std::vector<std::uint32_t> a, b;
    db::PostingsStore sa, sb;

    IntersectFixture(int density_a_pm, int density_b_pm)
    {
        std::mt19937 rng(0x9E3779B9u ^
                         static_cast<std::uint32_t>(
                             density_a_pm * 1000 + density_b_pm));
        const std::uint32_t universe = 4u * db::kPostingsChunkSize;
        const auto draw = [&](int pm) {
            std::bernoulli_distribution keep(pm / 1000.0);
            std::vector<std::uint32_t> rows;
            for (std::uint32_t r = 0; r < universe; ++r)
                if (keep(rng))
                    rows.push_back(r);
            return rows;
        };
        a = draw(density_a_pm);
        b = draw(density_b_pm);
        sa.appendKey(a.data(), a.size());
        sa.shrink();
        sb.appendKey(b.data(), b.size());
        sb.shrink();
    }
};

const IntersectFixture &
intersectFixture(int density_a_pm, int density_b_pm)
{
    // One fixture per grid point, built lazily and kept for the run.
    static std::vector<std::unique_ptr<IntersectFixture>> cache;
    static std::vector<std::pair<int, int>> keys;
    for (std::size_t i = 0; i < keys.size(); ++i)
        if (keys[i] == std::make_pair(density_a_pm, density_b_pm))
            return *cache[i];
    keys.emplace_back(density_a_pm, density_b_pm);
    cache.push_back(std::make_unique<IntersectFixture>(density_a_pm,
                                                       density_b_pm));
    return *cache.back();
}

/**
 * The pre-PR kernel, kept verbatim for the speedup denominator: flat
 * uint32 postings with exponential-probe galloping from the old
 * TraceIndex::intersect. BM_PostingsIntersect's perf gate is measured
 * against this arm on the same lists.
 */
std::size_t
flatGallopLowerBound(const std::vector<std::uint32_t> &rows,
                     std::size_t lo, std::uint32_t target)
{
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < rows.size() && rows[hi] < target) {
        lo = hi;
        hi += step;
        step <<= 1;
    }
    const auto begin = rows.begin() +
                       static_cast<std::ptrdiff_t>(lo);
    const auto end = rows.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(hi, rows.size()));
    return static_cast<std::size_t>(
        std::lower_bound(begin, end, target) - rows.begin());
}

void
flatGallopIntersect(const std::vector<std::uint32_t> &small,
                    const std::vector<std::uint32_t> &large,
                    std::vector<std::uint32_t> &out)
{
    out.clear();
    std::size_t pos = 0;
    for (const std::uint32_t row : small) {
        pos = flatGallopLowerBound(large, pos, row);
        if (pos == large.size())
            break;
        if (large[pos] == row)
            out.push_back(row);
    }
}

} // namespace

static void
BM_PostingsIntersect(benchmark::State &state)
{
    // Chunked containers + adaptive kernel selector (the PR under
    // test). Grid: {skewed sparse/dense, balanced sparse, balanced
    // mid, dense/dense} as (density_a, density_b) per-mille pairs.
    const auto &fx = intersectFixture(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
    const db::PostingsList la = fx.sa.list(0);
    const db::PostingsList lb = fx.sb.list(0);
    std::vector<std::uint32_t> out;
    for (auto _ : state) {
        db::intersectLists(la, lb, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fx.a.size() + fx.b.size()));
    state.counters["matches"] = static_cast<double>(out.size());
    state.counters["simd"] = db::simdCompiled() ? 1.0 : 0.0;
}
BENCHMARK(BM_PostingsIntersect)
    ->Args({1, 100})   // skewed: gallop territory
    ->Args({10, 10})   // balanced sparse: linear (SIMD) merge
    ->Args({50, 50})   // balanced mid: merge near the array cap
    ->Args({200, 200}) // dense: bitmap word-AND
    ->Unit(benchmark::kMicrosecond);

static void
BM_PostingsIntersectRef(benchmark::State &state)
{
    // The pre-PR galloping baseline on the identical lists; the perf
    // gate tracks BM_PostingsIntersect's speedup over this arm.
    const auto &fx = intersectFixture(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
    const auto &small = fx.a.size() <= fx.b.size() ? fx.a : fx.b;
    const auto &large = fx.a.size() <= fx.b.size() ? fx.b : fx.a;
    std::vector<std::uint32_t> out;
    for (auto _ : state) {
        flatGallopIntersect(small, large, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fx.a.size() + fx.b.size()));
    state.counters["matches"] = static_cast<double>(out.size());
}
BENCHMARK(BM_PostingsIntersectRef)
    ->Args({1, 100})
    ->Args({10, 10})
    ->Args({50, 50})
    ->Args({200, 200})
    ->Unit(benchmark::kMicrosecond);

namespace {

/**
 * The cold-sweep scenario (the CacheMindBench common case): every
 * question is unique, so the cross-question bundle cache never hits
 * and each question pays full filter/DSL execution on its shard.
 */
const db::TraceDatabase &
fullDb()
{
    // The default 12-table composition (3 workloads x 4 policies),
    // bounded per-trace so the one-time fixture build stays quick.
    static const auto database = [] {
        db::BuildOptions options;
        options.accesses_override = 150000;
        options.build_threads = 0;
        return db::buildDatabase(options);
    }();
    return database;
}

std::vector<std::string>
coldUniqueQuestions()
{
    const auto &database = fullDb();
    std::vector<std::string> questions;
    for (const auto &key : database.keys()) {
        const auto *entry = database.find(key);
        const auto &pcs = entry->table.uniquePcsScan();
        // 8 distinct PCs per shard, spread across the PC space; one
        // DSL-heavy question form per (shard, pc) — all unique.
        for (std::size_t k = 0; k < 8 && k < pcs.size(); ++k) {
            const std::string pc = str::hex(
                pcs[(k * pcs.size()) / 8 % pcs.size()]);
            const std::string where = " in the " + entry->workload +
                                      " workload under " +
                                      entry->policy + "?";
            switch (k % 4) {
              case 0:
                questions.push_back(
                    "What is the miss rate for PC " + pc + where);
                break;
              case 1:
                questions.push_back("How many times did PC " + pc +
                                    " appear" + where);
                break;
              case 2:
                questions.push_back(
                    "What is the average reuse distance of PC " + pc +
                    where);
                break;
              default:
                questions.push_back(
                    "What is the standard deviation of the reuse "
                    "distance of PC " + pc + where);
                break;
            }
        }
    }
    return questions;
}

} // namespace

static void
BM_ColdQuestionRetrieval(benchmark::State &state)
{
    // All-unique questions, retrieval cache off: arg 0 executes on
    // the pre-index reference scan path, arg 1 on the postings index.
    const bool use_index = state.range(0) != 0;
    const auto questions = coldUniqueQuestions();
    auto engine =
        core::CacheMind::Builder(fullDb())
            .withRetriever("ranger")
            .withBatchWorkers(4)
            .withRetrievalCacheCapacity(0)
            .withRetrieverParam("use_index", use_index ? "1" : "0")
            .build()
            .expect("cold-question bench engine");
    for (auto _ : state) {
        auto batch = engine.askBatch(questions);
        benchmark::DoNotOptimize(batch);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(questions.size()));
    const auto stats = engine.stats();
    state.counters["index_build_ms"] = stats.index.build_ms_total;
    state.counters["indexed_lookups"] =
        static_cast<double>(stats.index.lookups);
    state.counters["rows_skipped"] =
        static_cast<double>(stats.index.rows_skipped);
}
BENCHMARK(BM_ColdQuestionRetrieval)
    ->Arg(0)  // reference scan path
    ->Arg(1)  // postings index
    ->Unit(benchmark::kMillisecond);

static void
BM_MultiProgramPlan(benchmark::State &state)
{
    // Ranger's policy-comparison plan: one DSL program per policy
    // shard, the fan-out that shard-parallel execution targets. Arg
    // is the exec_threads knob (1 = sequential, 4 = parallel); the
    // bundle is byte-identical in both arms, only wall clock moves.
    const auto &database = fullDb();
    retrieval::RangerConfig cfg;
    cfg.exec_threads = static_cast<std::size_t>(state.range(0));
    retrieval::RangerRetriever ranger(database, cfg);
    const std::vector<std::string> questions = {
        "Which policy has the lowest miss rate in the mcf workload?",
        "Which policy has the highest miss rate in the astar "
        "workload?",
        "Which policy has the lowest miss rate in the lbm workload?",
    };
    std::size_t qi = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ranger.retrieve(questions[qi++ % questions.size()]));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultiProgramPlan)
    ->Arg(1)  // sequential program execution
    ->Arg(4)  // shard-parallel workers
    ->Unit(benchmark::kMillisecond);

namespace {

/**
 * The serving-cache scenario: a batch of 64 questions drawn from 8
 * distinct slot tuples (each asked through several phrasings, the
 * overlapping-users pattern of the paper's serving story). With the
 * cross-question cache on, slot-equal questions share one retrieval.
 */
std::vector<std::string>
repeatedSlotQuestions()
{
    const auto &database = microDb();
    const auto *entry = database.find("mcf_evictions_lru");
    std::vector<std::string> questions;
    for (std::size_t slot = 0; slot < 8; ++slot) {
        const std::string pc =
            str::hex(entry->table.pcAt(slot * 64));
        const std::string a = "What is the miss rate for PC " + pc +
                              " in the mcf workload with LRU?";
        const std::string b = "For the mcf workload under LRU, what "
                              "miss rate does PC " +
                              pc + " have?";
        for (int rep = 0; rep < 4; ++rep) {
            questions.push_back(a);
            questions.push_back(b);
        }
    }
    return questions;
}

} // namespace

static void
BM_AskBatchRepeatedSlots(benchmark::State &state)
{
    const bool cache_on = state.range(0) != 0;
    const auto questions = repeatedSlotQuestions();
    auto engine =
        core::CacheMind::Builder(microDb())
            .withBatchWorkers(4)
            .withRetrievalCacheCapacity(cache_on ? 4096 : 0)
            .build()
            .expect("bench engine");
    for (auto _ : state) {
        auto batch = engine.askBatch(questions);
        benchmark::DoNotOptimize(batch);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(questions.size()));
    const auto stats = engine.stats();
    state.counters["hit_rate"] = stats.cache.hitRate();
    state.counters["cache_hits"] =
        static_cast<double>(stats.cache.hits);
    state.counters["cache_misses"] =
        static_cast<double>(stats.cache.misses);
}
BENCHMARK(BM_AskBatchRepeatedSlots)
    ->Arg(0)  // cache off
    ->Arg(1)  // cache on
    ->Unit(benchmark::kMillisecond);

namespace {

/**
 * The interactive cold sweep: reasoning-heavy per-PC "why" questions,
 * one per shard with a distinct PC, every question unique so the
 * bundle cache never hits. Each full answer pays real analytic
 * retrieval — premise scan, evidence slice, per-PC statistics across
 * every policy shard, ranked top-PC stats — plus generation, while
 * the streamed overview chunk goes on the wire before any of it.
 */
std::vector<std::string>
explainQuestions()
{
    const auto &database = fullDb();
    std::vector<std::string> questions;
    const auto policies = database.policies();
    std::size_t k = 0;
    for (const auto &key : database.keys()) {
        const auto *entry = database.find(key);
        const std::string pc =
            str::hex(entry->table.pcAt((k * 257) % entry->table.size()));
        const std::string &other =
            policies[(k + 1) % policies.size()];
        questions.push_back("Why does " + entry->policy +
                            " outperform " + other + " on PC " + pc +
                            " in the " + entry->workload +
                            " workload?");
        ++k;
    }
    return questions;
}

} // namespace

static void
BM_AskStreamFirstEvent(benchmark::State &state)
{
    // Time-to-first-evidence vs full-answer latency on the cold
    // sweep: arg 0 measures a blocking ask() end to end; arg 1
    // measures askStream() from call to the first EvidenceChunk
    // reaching the consumer (the streamed overview goes on the wire
    // before the ranked-stats analysis and generation run). Same
    // engine config, same questions, warmed indexes for both.
    const bool streamed = state.range(0) != 0;
    const auto questions = explainQuestions();
    auto engine = core::CacheMind::Builder(fullDb())
                      .withRetrievalCacheCapacity(0)
                      .build()
                      .expect("stream bench engine");
    engine.warmup();
    std::size_t qi = 0;
    for (auto _ : state) {
        const auto &question = questions[qi++ % questions.size()];
        if (streamed) {
            auto stream =
                engine.askStream(question).expect("askStream");
            while (auto event = stream.next()) {
                if (event->kind ==
                    core::StreamEvent::Kind::EvidenceChunk) {
                    break;
                }
            }
            // Drain the rest off the clock: only the latency until
            // first evidence is the measured quantity.
            state.PauseTiming();
            while (stream.next()) {
            }
            state.ResumeTiming();
        } else {
            benchmark::DoNotOptimize(engine.ask(question));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    const auto stats = engine.stats();
    if (streamed) {
        state.counters["first_event_p50_ms"] =
            stats.stream.first_event_p50_ms;
        state.counters["events"] =
            static_cast<double>(stats.stream.events);
    }
}
BENCHMARK(BM_AskStreamFirstEvent)
    ->Arg(0)  // full blocking answer
    ->Arg(1)  // time to first streamed evidence
    ->Unit(benchmark::kMicrosecond);

static void
BM_ServeRoundTrip(benchmark::State &state)
{
    // One line-protocol ask round trip through the real serving
    // path: TCP write -> session relay -> streamed frames -> done,
    // against a warm pooled engine with the shared retrieval cache
    // on. The gap between this and BM_AskStreamFirstEvent's blocking
    // arm is the serving overhead itself (framing, socket hops,
    // session bookkeeping), which is what this entry tracks.
    static serve::Server *server = [] {
        serve::ServeOptions opts;
        opts.max_sessions = 4;
        auto *s = new serve::Server(fullDb(), opts);
        std::string error;
        if (!s->start(&error))
            std::fprintf(stderr, "serve bench: %s\n", error.c_str());
        return s;
    }();
    serve::LineClient client;
    if (!client.connect("127.0.0.1", server->port()) ||
        !client.recvLine().has_value()) { // hello banner
        state.SkipWithError("serve bench: connect failed");
        return;
    }
    const auto questions = explainQuestions();
    std::size_t qi = 0;
    const auto roundTrip = [&](const std::string &question) {
        serve::Request req;
        req.op = serve::Request::Op::Ask;
        req.id = std::to_string(qi);
        req.question = question;
        req.retriever = "sieve";
        if (!client.sendLine(serve::renderRequest(req)))
            return false;
        while (auto line = client.recvLine()) {
            if (line->find("\"frame\":\"done\"") != std::string::npos)
                return true;
            if (line->find("\"frame\":\"error\"") != std::string::npos)
                return false;
        }
        return false;
    };
    // Pay engine construction + index warm-up off the clock.
    if (!roundTrip(questions[0])) {
        state.SkipWithError("serve bench: warm-up ask failed");
        return;
    }
    for (auto _ : state) {
        if (!roundTrip(questions[qi++ % questions.size()])) {
            state.SkipWithError("serve bench: ask failed");
            return;
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    const auto stats = server->stats();
    state.counters["completed"] =
        static_cast<double>(stats.completed);
    state.counters["cache_hits"] =
        static_cast<double>(stats.engine.cache.hits);
}
BENCHMARK(BM_ServeRoundTrip)->Unit(benchmark::kMicrosecond);

namespace {

/**
 * The pre-tier hot path, reconstructed for comparison: a sharded-lock
 * LRU where every hit takes its shard's mutex to splice the recency
 * list to front. This is what the retrieval cache's fast path looked
 * like before the clock hot tier; BM_CacheHitConcurrent quantifies
 * what the lock-free hit protocol bought over it under serving-level
 * concurrency.
 */
class ShardedLruCache
{
  public:
    using BundlePtr = retrieval::RetrievalCache::BundlePtr;

    ShardedLruCache(std::size_t capacity, std::size_t shards)
    {
        const std::size_t per = (capacity + shards - 1) / shards;
        shards_.reserve(shards);
        for (std::size_t i = 0; i < shards; ++i)
            shards_.push_back(std::make_unique<Shard>(per));
    }

    BundlePtr
    lookup(const std::string &key)
    {
        Shard &s = shardOf(key);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it == s.map.end())
            return nullptr;
        s.order.splice(s.order.begin(), s.order, it->second.order_it);
        return it->second.value;
    }

    void
    insert(const std::string &key, BundlePtr value)
    {
        Shard &s = shardOf(key);
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.map.count(key) != 0)
            return;
        while (s.map.size() >= s.capacity && !s.order.empty()) {
            s.map.erase(s.order.back());
            s.order.pop_back();
        }
        s.order.push_front(key);
        s.map.emplace(key, Entry{std::move(value), s.order.begin()});
    }

  private:
    struct Entry
    {
        BundlePtr value;
        std::list<std::string>::iterator order_it;
    };
    struct Shard
    {
        explicit Shard(std::size_t cap) : capacity(cap) {}
        std::mutex mu;
        std::size_t capacity;
        std::list<std::string> order;
        std::unordered_map<std::string, Entry> map;
    };

    Shard &
    shardOf(const std::string &key)
    {
        return *shards_[fnv1a(key) % shards_.size()];
    }

    std::vector<std::unique_ptr<Shard>> shards_;
};

/** Both hit-path arms pre-populated with the same resident keys. */
struct HitBenchFixture
{
    std::vector<std::string> keys;
    ShardedLruCache lru{256, 8};
    retrieval::ClockCacheTier clock{256};

    HitBenchFixture()
    {
        for (int i = 0; i < 128; ++i) {
            keys.push_back("bench-slot-key-" + std::to_string(i));
            auto bundle =
                std::make_shared<retrieval::ContextBundle>();
            bundle->retriever = "bench";
            bundle->trace_key = "mcf_evictions_lru";
            bundle->result_text = keys.back();
            lru.insert(keys.back(), bundle);
            clock.insert(keys.back(), bundle);
        }
    }
};

} // namespace

static void
BM_CacheHitConcurrent(benchmark::State &state)
{
    // 16 threads hammer the hit path over the 4 hottest keys (the
    // serving pattern: many sessions asking about the same trace
    // slice): arg 0 is the pre-tier sharded-lock LRU, where every hit
    // takes the hot shard's mutex to splice the recency list — the
    // hottest keys serialize every session on one lock — and arg 1
    // the clock hot tier, where a hit is an atomic pin on one slot
    // word and readers never contend. The ratio between the two arms
    // is the concurrency win the tier refactor is gated on.
    static constexpr std::size_t kHotKeys = 4;
    static HitBenchFixture &fixture = *new HitBenchFixture;
    const bool clock_arm = state.range(0) != 0;
    std::size_t i =
        static_cast<std::size_t>(state.thread_index()) * 29u;
    if (clock_arm) {
        for (auto _ : state)
            benchmark::DoNotOptimize(
                fixture.clock.lookup(fixture.keys[i++ % kHotKeys]));
    } else {
        for (auto _ : state)
            benchmark::DoNotOptimize(
                fixture.lru.lookup(fixture.keys[i++ % kHotKeys]));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHitConcurrent)
    ->Arg(0)  // sharded-lock LRU hit path (pre-tier)
    ->Arg(1)  // clock hot tier lock-free hit path
    ->Threads(16)
    ->UseRealTime();

static void
BM_CacheDemotionChurn(benchmark::State &state)
{
    // A key population 8x the hot tier cycled round-robin: every
    // admission demotes a bundle into the compressed secondary tier,
    // and every re-access recovers it by decode + re-promote instead
    // of a recompute. After the first revolution computes stop — the
    // steady state this measures is the codec round trip itself. The
    // counters archive per-tier occupancy and the compression ratio
    // into BENCH_micro_perf.json for the CI perf-smoke artifact.
    retrieval::RetrievalCache::Options copts;
    copts.capacity = 8;
    copts.secondary_capacity_bytes = 4u << 20;
    retrieval::RetrievalCache cache(copts);
    std::uint64_t computes = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        const std::string key = "churn-" + std::to_string(i++ % 64);
        auto bundle = cache.getOrCompute(key, [&] {
            ++computes;
            auto bundle =
                std::make_shared<retrieval::ContextBundle>();
            bundle->retriever = "bench";
            bundle->trace_key = key;
            bundle->metadata = std::string(512, 'm');
            bundle->result_text = key;
            return bundle;
        });
        benchmark::DoNotOptimize(bundle);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    const auto tiers = cache.tiered();
    const auto counters = cache.counters();
    state.counters["computes"] = static_cast<double>(computes);
    state.counters["recovered_frac"] =
        counters.hits ? static_cast<double>(tiers.secondary.hits) /
                            static_cast<double>(counters.hits)
                      : 0.0;
    state.counters["hot_entries"] =
        static_cast<double>(tiers.hot.entries);
    state.counters["secondary_entries"] =
        static_cast<double>(tiers.secondary.entries);
    state.counters["secondary_hits"] =
        static_cast<double>(tiers.secondary.hits);
    state.counters["secondary_bytes"] =
        static_cast<double>(tiers.secondary.bytes);
    state.counters["compression_ratio"] =
        tiers.secondary.compressionRatio();
    state.counters["promotions"] =
        static_cast<double>(tiers.promotions);
}
BENCHMARK(BM_CacheDemotionChurn)->Unit(benchmark::kMicrosecond);

static void
BM_AskTracedOverhead(benchmark::State &state)
{
    // The tracing cost discipline's perf gate, on the hottest path
    // the subsystem touches (a warm cached ask): arg 0 runs the plain
    // untraced RequestContext (the disarmed cost the <3% CI assertion
    // tracks — every potential span is one null-pointer test), arg 1
    // traces every 64th request (the serve layer's sampling shape),
    // arg 2 traces every request. The full arm archives its last span
    // tree as TRACE_sample.json, the chrome-format CI artifact.
    const int mode = static_cast<int>(state.range(0));
    auto engine = core::CacheMind::Builder(microDb())
                      .build()
                      .expect("traced-overhead bench engine");
    const std::string question =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    benchmark::DoNotOptimize(
        engine.ask(question)); // warm the retrieval cache
    std::shared_ptr<obs::RequestTrace> last;
    std::uint64_t seq = 0;
    std::uint64_t traced = 0;
    for (auto _ : state) {
        core::RequestContext ctx(question);
        if (mode == 2 || (mode == 1 && seq % 64 == 0)) {
            ctx.traced("bench-traced-" + std::to_string(seq));
            ++traced;
        }
        ++seq;
        benchmark::DoNotOptimize(engine.ask(ctx));
        if (ctx.trace)
            last = ctx.trace;
    }
    state.counters["traced"] = static_cast<double>(traced);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    if (mode == 2 && last) {
        const std::string json = obs::toChromeJson(*last);
        if (std::FILE *f = std::fopen("TRACE_sample.json", "w")) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
        }
    }
}
BENCHMARK(BM_AskTracedOverhead)
    ->Arg(0)  // tracing disarmed (the <3% overhead gate)
    ->Arg(1)  // sampled: every 64th request traced
    ->Arg(2)  // every request traced (writes TRACE_sample.json)
    ->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    // Default to the machine-readable perf trajectory (consumed by
    // the CI perf-smoke step) unless the caller chose an output.
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        // Exact flag only: "--benchmark_out_format" must not match.
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_perf.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int argn = static_cast<int>(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
