/**
 * @file
 * Tests for CacheMindBench: suite composition (Table 1), gold-answer
 * verification against the database, graders, and the evaluation
 * harness's aggregation.
 */

#include <gtest/gtest.h>

#include "benchsuite/generator.hh"
#include "benchsuite/harness.hh"
#include "db/builder.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;
using namespace cachemind::benchsuite;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        // Full default-size build: the generator needs enough PC
        // diversity to assemble all 100 unique questions.
        return db::buildDatabase();
    }();
    return database;
}

const std::vector<Question> &
sharedSuite()
{
    static const std::vector<Question> suite = [] {
        return BenchGenerator(sharedDb()).generate();
    }();
    return suite;
}

} // namespace

TEST(CompositionTest, Table1Counts)
{
    std::map<Category, std::size_t> counts;
    for (const auto &q : sharedSuite())
        ++counts[q.category];
    EXPECT_EQ(counts[Category::HitMiss], 30u);
    EXPECT_EQ(counts[Category::MissRate], 10u);
    EXPECT_EQ(counts[Category::PolicyComparison], 15u);
    EXPECT_EQ(counts[Category::Count], 5u);
    EXPECT_EQ(counts[Category::Arithmetic], 10u);
    EXPECT_EQ(counts[Category::TrickQuestion], 5u);
    EXPECT_EQ(counts[Category::MicroarchConcepts], 5u);
    EXPECT_EQ(counts[Category::CodeGeneration], 5u);
    EXPECT_EQ(counts[Category::ReplacementPolicyAnalysis], 5u);
    EXPECT_EQ(counts[Category::WorkloadAnalysis], 5u);
    EXPECT_EQ(counts[Category::SemanticAnalysis], 5u);
    EXPECT_EQ(sharedSuite().size(), 100u);
}

TEST(CompositionTest, QuestionsAreUniqueAndIdsSequential)
{
    std::set<std::string> texts;
    for (std::size_t i = 0; i < sharedSuite().size(); ++i) {
        EXPECT_EQ(sharedSuite()[i].id, i);
        EXPECT_TRUE(texts.insert(sharedSuite()[i].text).second)
            << "duplicate question: " << sharedSuite()[i].text;
    }
}

TEST(CompositionTest, GenerationIsDeterministic)
{
    const auto again = BenchGenerator(sharedDb()).generate();
    ASSERT_EQ(again.size(), sharedSuite().size());
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_EQ(again[i].text, sharedSuite()[i].text);
}

TEST(GoldVerificationTest, HitMissGoldsMatchTheTable)
{
    for (const auto &q : sharedSuite()) {
        if (q.category != Category::HitMiss)
            continue;
        const auto *entry = sharedDb().find(q.trace_key);
        ASSERT_NE(entry, nullptr);
        // Re-derive the gold from the raw table.
        query::NlQueryParser parser(sharedDb().workloads(),
                                    sharedDb().policies());
        const auto parsed = parser.parse(q.text);
        ASSERT_TRUE(parsed.pc && parsed.address);
        const auto rows =
            entry->table.filter(&*parsed.pc, &*parsed.address, 1);
        ASSERT_FALSE(rows.empty()) << q.text;
        EXPECT_EQ(!entry->table.isMissAt(rows[0]), *q.gold.is_hit);
    }
}

TEST(GoldVerificationTest, TrickPremisesAreActuallyInvalid)
{
    query::NlQueryParser parser(sharedDb().workloads(),
                                sharedDb().policies());
    for (const auto &q : sharedSuite()) {
        if (q.category != Category::TrickQuestion)
            continue;
        const auto parsed = parser.parse(q.text);
        const auto *entry = sharedDb().find(q.trace_key);
        ASSERT_NE(entry, nullptr);
        ASSERT_TRUE(parsed.pc && parsed.address);
        EXPECT_TRUE(entry->table
                        .filter(&*parsed.pc, &*parsed.address, 1)
                        .empty())
            << "trick premise is actually satisfiable: " << q.text;
    }
}

TEST(GoldVerificationTest, CountGoldsMatchStats)
{
    query::NlQueryParser parser(sharedDb().workloads(),
                                sharedDb().policies());
    for (const auto &q : sharedSuite()) {
        if (q.category != Category::Count)
            continue;
        const auto parsed = parser.parse(q.text);
        const auto *expert = sharedDb().statsFor(q.trace_key);
        ASSERT_TRUE(parsed.pc);
        const auto stats = expert->pcStats(*parsed.pc);
        ASSERT_TRUE(stats.has_value());
        EXPECT_DOUBLE_EQ(*q.gold.number,
                         static_cast<double>(stats->accesses));
    }
}

TEST(GraderTest, ExactHitMiss)
{
    Question q;
    q.category = Category::HitMiss;
    q.gold.is_hit = true;

    llm::Answer right;
    right.says_hit = true;
    EXPECT_TRUE(gradeExact(q, right).correct);

    llm::Answer wrong;
    wrong.says_hit = false;
    EXPECT_FALSE(gradeExact(q, wrong).correct);

    llm::Answer none;
    EXPECT_FALSE(gradeExact(q, none).correct);

    llm::Answer rejected;
    rejected.rejected_premise = true;
    EXPECT_FALSE(gradeExact(q, rejected).correct);
}

TEST(GraderTest, NumericTolerances)
{
    Question q;
    q.category = Category::MissRate;
    q.gold.number = 0.5;
    q.gold.abs_tolerance = 0.005;

    llm::Answer close;
    close.number = 0.503;
    EXPECT_TRUE(gradeExact(q, close).correct);

    llm::Answer far;
    far.number = 0.52;
    EXPECT_FALSE(gradeExact(q, far).correct);

    Question rel;
    rel.category = Category::Arithmetic;
    rel.gold.number = 10000.0;
    rel.gold.rel_tolerance = 0.02;
    llm::Answer near;
    near.number = 10150.0;
    EXPECT_TRUE(gradeExact(rel, near).correct);
    llm::Answer off;
    off.number = 10500.0;
    EXPECT_FALSE(gradeExact(rel, off).correct);
}

TEST(GraderTest, TrickRequiresRejection)
{
    Question q;
    q.category = Category::TrickQuestion;
    q.gold.is_trick = true;

    llm::Answer rejected;
    rejected.rejected_premise = true;
    EXPECT_TRUE(gradeExact(q, rejected).correct);

    llm::Answer guessed;
    guessed.says_hit = false;
    EXPECT_FALSE(gradeExact(q, guessed).correct);
}

TEST(GraderTest, PolicyChoiceIsCaseInsensitive)
{
    Question q;
    q.category = Category::PolicyComparison;
    q.gold.policy = "belady";
    llm::Answer a;
    a.chosen_policy = "Belady";
    EXPECT_TRUE(gradeExact(q, a).correct);
}

TEST(GraderTest, RubricComponents)
{
    Question q;
    q.category = Category::ReplacementPolicyAnalysis;
    q.gold.key_terms = {"future", "recency"};
    q.gold.evidence_terms = {"0x4037aa"};

    llm::Answer full;
    full.text =
        "PC 0x4037aa has a 99% miss rate. Belady sees the future "
        "reuse order, while recency-based eviction cannot. A reuse "
        "predictor closes the gap.";
    full.evidence = {"0x4037aa"};
    const auto g = gradeRubric(q, full);
    EXPECT_DOUBLE_EQ(g.max, 5.0);
    EXPECT_GE(g.score, 4.0);

    llm::Answer vague;
    vague.text = "It is faster because of cache effects.";
    EXPECT_LE(gradeRubric(q, vague).score, 1.0);

    llm::Answer disengaged;
    disengaged.engaged = false;
    EXPECT_DOUBLE_EQ(gradeRubric(q, disengaged).score, 0.0);
}

TEST(GraderTest, CopiedExampleVoidsEvidence)
{
    Question q;
    q.category = Category::SemanticAnalysis;
    q.gold.key_terms = {"chase"};
    q.gold.evidence_terms = {"0x400512"};
    llm::Answer copied;
    copied.text = "The access in chase() at 0x400512 repeats. It "
                  "reuses the same line every time through the loop.";
    copied.copied_example = true;
    const auto g = gradeRubric(q, copied);
    // Correctness + clarity may score, but the evidence point cannot.
    EXPECT_LE(g.score, 4.0);
}

TEST(HarnessTest, AggregationsAreConsistent)
{
    const EvalHarness harness(sharedSuite());
    retrieval::SieveRetriever sieve(sharedDb());
    const llm::GeneratorLlm gen(llm::BackendKind::Gpt4o);
    const auto res = harness.evaluate(sieve, gen);

    ASSERT_EQ(res.records.size(), 100u);
    double cat_earned = 0.0, cat_max = 0.0;
    for (const auto &[cat, score] : res.by_category) {
        cat_earned += score.earned;
        cat_max += score.max;
    }
    double rec_earned = 0.0, rec_max = 0.0;
    for (const auto &rec : res.records) {
        rec_earned += rec.grade.score;
        rec_max += rec.grade.max;
    }
    EXPECT_DOUBLE_EQ(cat_earned, rec_earned);
    EXPECT_DOUBLE_EQ(cat_max, rec_max);
    EXPECT_GE(res.tgPct(), 0.0);
    EXPECT_LE(res.tgPct(), 100.0);
    EXPECT_GE(res.weightedTotalPct(), 0.0);

    const auto hist = res.araScoreHistogram();
    std::size_t hist_total = 0;
    for (const auto n : hist)
        hist_total += n;
    EXPECT_EQ(hist_total, 25u);
}

TEST(HarnessTest, CountFailsUnderSieveSucceedsUnderRanger)
{
    const EvalHarness harness(sharedSuite());
    const llm::GeneratorLlm gen(llm::BackendKind::Gpt4o);

    retrieval::SieveRetriever sieve(sharedDb());
    const auto res_sieve = harness.evaluate(sieve, gen);
    EXPECT_DOUBLE_EQ(
        res_sieve.by_category.at(Category::Count).pct(), 0.0);

    retrieval::RangerRetriever ranger(sharedDb());
    const auto res_ranger = harness.evaluate(ranger, gen);
    EXPECT_DOUBLE_EQ(
        res_ranger.by_category.at(Category::Count).pct(), 100.0);
}

TEST(HarnessTest, EvaluationIsDeterministic)
{
    const EvalHarness harness(sharedSuite());
    const llm::GeneratorLlm gen(llm::BackendKind::Gpt4oMini);
    retrieval::SieveRetriever s1(sharedDb());
    retrieval::SieveRetriever s2(sharedDb());
    const auto a = harness.evaluate(s1, gen);
    const auto b = harness.evaluate(s2, gen);
    EXPECT_DOUBLE_EQ(a.weightedTotalPct(), b.weightedTotalPct());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        EXPECT_EQ(a.records[i].grade.score, b.records[i].grade.score);
}

TEST(CategoryTest, TierMembership)
{
    EXPECT_TRUE(isTraceGrounded(Category::HitMiss));
    EXPECT_TRUE(isTraceGrounded(Category::TrickQuestion));
    EXPECT_FALSE(isTraceGrounded(Category::MicroarchConcepts));
    EXPECT_FALSE(isTraceGrounded(Category::SemanticAnalysis));
    EXPECT_EQ(allCategories().size(), 11u);
}
