/**
 * @file
 * Robustness tests: the named-failpoint registry, deadline-driven
 * graceful degradation through the engine, the hardened failure paths
 * (corrupt secondary-tier entries, failed index builds), and the
 * serve pipeline under injected chaos — typed terminal frames, no
 * crashes, no hangs, and fault-free answers byte-identical to a clean
 * run.
 *
 * Failpoints are process-global, so every test arms through a guard
 * that disarms everything on entry and exit — a failing test cannot
 * leak a fault schedule into its neighbours.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.hh"
#include "base/failpoint.hh"
#include "base/random.hh"
#include "base/str.hh"
#include "core/cachemind.hh"
#include "core/stream.hh"
#include "db/builder.hh"
#include "obs/trace.hh"
#include "retrieval/cache.hh"
#include "retrieval/context.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace cachemind;
using namespace cachemind::core;
using namespace cachemind::retrieval;
using namespace cachemind::serve;

namespace {

/** Disarm every failpoint on entry and exit (registry is global). */
struct FailpointGuard
{
    FailpointGuard() { fail::disarmAll(); }
    ~FailpointGuard() { fail::disarmAll(); }
};

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 30000;
        return db::buildDatabase(options);
    }();
    return database;
}

std::vector<std::string>
suiteQuestions()
{
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    return {
        "What is the miss rate for PC " + str::hex(pc) +
            " in the astar workload with LRU?",
        "Which policy has the lowest miss rate in the astar workload?",
        "How many times did PC " + str::hex(pc) +
            " appear in the astar workload under LRU?",
    };
}

/** A payload-free bundle tagged so tests can tell bundles apart. */
RetrievalCache::BundlePtr
taggedBundle(const std::string &tag)
{
    auto bundle = std::make_shared<ContextBundle>();
    bundle->result_text = tag;
    return bundle;
}

/** Frames collected for one ask request. */
struct AskResult
{
    std::vector<std::string> kinds;
    std::string answer;
    std::string terminal;
    bool degraded = false;
};

/**
 * Drive one ask over an open connection. Returns once a terminal
 * frame arrives (done / error / overloaded / deadline_exceeded) or
 * the connection dies — `terminal` stays empty in the latter case.
 */
AskResult
askOver(LineClient &client, const std::string &id,
        const std::string &question, double deadline_ms = 0.0)
{
    Request req;
    req.op = Request::Op::Ask;
    req.id = id;
    req.question = question;
    req.deadline_ms = deadline_ms;
    AskResult out;
    if (!client.sendLine(renderRequest(req)))
        return out;
    while (auto line = client.recvLine()) {
        const auto frame = parseJsonObject(*line);
        if (!frame.has_value())
            return out;
        const auto kind = frame->at("frame");
        out.kinds.push_back(kind);
        if (kind == "done") {
            out.answer = frame->at("answer");
            out.degraded = frame->count("degraded") != 0;
        }
        if (kind == "done" || kind == "error" ||
            kind == "overloaded" || kind == "deadline_exceeded") {
            out.terminal = kind;
            return out;
        }
    }
    return out;
}

bool
expectHello(LineClient &client)
{
    const auto line = client.recvLine();
    if (!line)
        return false;
    const auto frame = parseJsonObject(*line);
    return frame.has_value() && frame->at("frame") == "hello";
}

/** Arm a failpoint spec through the protocol verb; "" disarms. */
bool
armOver(LineClient &client, const std::string &spec)
{
    Request req;
    req.op = Request::Op::Failpoints;
    req.id = "fp";
    req.failpoint_spec = spec;
    if (!client.sendLine(renderRequest(req)))
        return false;
    const auto line = client.recvLine();
    if (!line)
        return false;
    const auto frame = parseJsonObject(*line);
    return frame.has_value() && frame->at("frame") == "failpoints";
}

/** Fetch the stats frame over an open connection. */
std::optional<std::map<std::string, std::string>>
statsOver(LineClient &client)
{
    Request req;
    req.op = Request::Op::Stats;
    req.id = "st";
    if (!client.sendLine(renderRequest(req)))
        return std::nullopt;
    const auto line = client.recvLine();
    if (!line)
        return std::nullopt;
    return parseJsonObject(*line);
}

} // namespace

// ------------------------------------------------- failpoint registry

TEST(FailpointTest, SpecParsingArmsAndDisarms)
{
    FailpointGuard guard;
    EXPECT_FALSE(fail::anyArmed());

    std::string error;
    EXPECT_TRUE(fail::armSpec(
        "a.site=delay:5, b.site=error@0.5, c.site=drop#3", &error))
        << error;
    EXPECT_EQ(fail::armedCount(), 3u);

    fail::disarm("b.site");
    EXPECT_EQ(fail::armedCount(), 2u);

    // "off" (and the empty spec) disarm everything.
    EXPECT_TRUE(fail::armSpec("off", &error)) << error;
    EXPECT_FALSE(fail::anyArmed());

    // Malformed entries are rejected with a reason.
    EXPECT_FALSE(fail::armSpec("no-equals-sign", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fail::armSpec("x=unknown-action", &error));
    EXPECT_FALSE(fail::armSpec("x=error@1.5", &error));
}

TEST(FailpointTest, ErrorActionThrowsAndHonoursMaxHits)
{
    FailpointGuard guard;
    ASSERT_TRUE(fail::armSpec("chaos.err=error#2"));

    EXPECT_THROW(fail::maybeThrow("chaos.err"), fail::InjectedFault);
    EXPECT_THROW(fail::maybeThrow("chaos.err"), fail::InjectedFault);
    // max_hits reached: the site auto-disarmed.
    EXPECT_NO_THROW(fail::maybeThrow("chaos.err"));
    EXPECT_FALSE(fail::anyArmed());

    const auto by_site = fail::injectedBySite();
    ASSERT_EQ(by_site.count("chaos.err"), 1u);
    EXPECT_EQ(by_site.at("chaos.err"), 2u);
}

TEST(FailpointTest, UnarmedSitesAreUntouched)
{
    FailpointGuard guard;
    ASSERT_TRUE(fail::armSpec("some.site=error"));
    // A different site never fires.
    EXPECT_NO_THROW(fail::maybeThrow("other.site"));
    std::string bytes = "payload";
    fail::maybeCorrupt("other.site", bytes);
    EXPECT_EQ(bytes, "payload");
    EXPECT_FALSE(fail::maybeDrop("other.site"));
}

TEST(FailpointTest, CorruptActionTruncatesBytes)
{
    FailpointGuard guard;
    ASSERT_TRUE(fail::armSpec("chaos.corrupt=corrupt:2"));
    std::string bytes(64, 'x');
    fail::maybeCorrupt("chaos.corrupt", bytes);
    EXPECT_EQ(bytes.size(), 32u); // truncated to half
}

TEST(FailpointTest, ProbabilityDrawsAreDeterministic)
{
    FailpointGuard guard;
    const std::string site = "chaos.prob";
    ASSERT_TRUE(fail::armSpec(site + "=drop@0.5"));
    // The registry draws keyedUniform(hashCombine(fnv1a(site), hit))
    // per evaluation: replay the same sequence and predict each hit.
    int fired = 0, expected = 0;
    for (std::uint64_t hit = 0; hit < 200; ++hit) {
        if (keyedUniform(hashCombine(fnv1a(site), hit)) < 0.5)
            ++expected;
        if (fail::maybeDrop(site))
            ++fired;
    }
    EXPECT_EQ(fired, expected);
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 200);
}

// ------------------------------------------------- engine degradation

TEST(ChaosTest, EngineDeadlineDegradesAnswerAndSkipsCache)
{
    FailpointGuard guard;
    auto engine = CacheMind::Builder(sharedDb())
                      .build()
                      .expect("engine");
    const auto q = suiteQuestions()[0];

    ASSERT_TRUE(fail::armSpec("retrieve.section=delay:60"));
    AskOptions opts;
    opts.deadline_ms = 20.0;
    const auto degraded = engine.ask(q, opts).expect("degraded ask");
    EXPECT_TRUE(degraded.bundle.degraded);
    EXPECT_FALSE(degraded.text.empty());
    EXPECT_GE(engine.stats().degraded_answers, 1u);
    EXPECT_GE(fail::injectedTotal(), 1u);

    // A degraded bundle must never have entered the retrieval cache:
    // re-asking without a deadline recomputes a complete bundle.
    fail::disarmAll();
    const auto clean = engine.ask(q).expect("clean ask");
    EXPECT_FALSE(clean.bundle.degraded);

    // And the clean answer matches a never-faulted engine's.
    auto fresh = CacheMind::Builder(sharedDb())
                     .build()
                     .expect("fresh engine");
    EXPECT_EQ(clean.text, fresh.ask(q).expect("reference").text);
}

TEST(ChaosTest, DeadlineDegradationAcrossAllRetrievers)
{
    FailpointGuard guard;
    const auto q = suiteQuestions()[1];
    for (const char *retriever : {"sieve", "ranger", "llamaindex"}) {
        SCOPED_TRACE(retriever);
        auto engine = CacheMind::Builder(sharedDb())
                          .withRetriever(retriever)
                          .build()
                          .expect("engine");
        ASSERT_TRUE(fail::armSpec("retrieve.section=delay:60"));
        AskOptions opts;
        opts.deadline_ms = 20.0;
        const auto r = engine.ask(q, opts).expect("degraded ask");
        // Partial evidence, but still an answer — degradation is
        // graceful, not an error.
        EXPECT_TRUE(r.bundle.degraded);
        EXPECT_FALSE(r.text.empty());
        fail::disarmAll();
    }
}

// ------------------------------------------------ hardened failure paths

TEST(ChaosTest, CorruptSecondaryEntryCountsMissAndRecomputes)
{
    FailpointGuard guard;
    // Hot tier of 1 over a roomy secondary: computing "b" demotes
    // "a" into the secondary tier in encoded form.
    RetrievalCache::Options options;
    options.capacity = 1;
    options.secondary_capacity_bytes = 1u << 20;
    RetrievalCache cache(options);
    std::map<std::string, int> computes;
    const auto get = [&](const std::string &key) {
        return cache.getOrCompute(key, [&] {
            ++computes[key];
            return taggedBundle(key);
        });
    };
    get("a");
    get("b");
    ASSERT_EQ(cache.tiered().secondary.entries, 1u);

    // Corrupt the stored bytes on the next secondary lookup: decode
    // fails, the entry counts as a miss and is dropped, and the
    // orchestrator recomputes instead of surfacing broken evidence.
    ASSERT_TRUE(fail::armSpec("cache.secondary.decode=corrupt"));
    const auto recovered = get("a");
    EXPECT_EQ(recovered->result_text, "a");
    EXPECT_EQ(computes.at("a"), 2);
    const auto tiers = cache.tiered();
    EXPECT_EQ(tiers.secondary.decode_failures, 1u);

    // Disarmed, the recomputed entry round-trips cleanly again.
    fail::disarmAll();
    get("b"); // demoted by the "a" recompute; decodes fine
    EXPECT_EQ(computes.at("b"), 1);
    EXPECT_EQ(cache.tiered().secondary.decode_failures, 1u);
}

TEST(ChaosTest, FailedIndexBuildFallsBackToReferenceScan)
{
    FailpointGuard guard;
    // A private database: its lazy indexes must not have been built
    // by other tests when the failpoint fires.
    db::BuildOptions options;
    options.workloads = {trace::WorkloadKind::Astar};
    options.policies = {policy::PolicyKind::Lru};
    options.accesses_override = 20000;
    const auto database = db::buildDatabase(options);
    const auto *entry = database.find("astar_evictions_lru");
    ASSERT_NE(entry, nullptr);
    const db::TraceTable &table = entry->table;

    ASSERT_TRUE(fail::armSpec("db.index_build=error"));
    EXPECT_EQ(table.indexOrFallback(), nullptr);
    EXPECT_TRUE(table.indexBuildFailed());

    // Failure is sticky even after disarming: the table degrades to
    // the scan path consistently instead of flapping.
    fail::disarmAll();
    EXPECT_EQ(table.indexOrFallback(), nullptr);

    // Every read path answers byte-identically from the scan.
    EXPECT_EQ(table.uniquePcs(), table.uniquePcsScan());
    EXPECT_EQ(table.uniqueSets(), table.uniqueSetsScan());
    const std::uint64_t pc = table.pcAt(0);
    EXPECT_EQ(table.filter(&pc, nullptr),
              table.filterScan(&pc, nullptr));

    // And a whole engine over the degraded database still answers —
    // byte-identical to an engine whose index build succeeded.
    const auto clean_db = db::buildDatabase(options);
    auto degraded_engine =
        CacheMind::Builder(database).build().expect("degraded engine");
    auto clean_engine =
        CacheMind::Builder(clean_db).build().expect("clean engine");
    const std::uint64_t clean_pc =
        clean_db.find("astar_evictions_lru")->table.pcAt(0);
    const std::string q = "How many times did PC " + str::hex(clean_pc) +
                          " appear in the astar workload under LRU?";
    EXPECT_EQ(degraded_engine.ask(q).expect("degraded").text,
              clean_engine.ask(q).expect("clean").text);
}

// ----------------------------------------------------- serve pipeline

TEST(ChaosTest, ServeDeadlineExceededFrameWhenPipelineWedges)
{
    FailpointGuard guard;
    ServeOptions opts;
    opts.debug_failpoints = true;
    opts.deadline_slack_ms = 100.0;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    // Wedge retrieval far past deadline + slack: every section emit
    // sleeps 500 ms against a 40 ms deadline and 100 ms slack.
    ASSERT_TRUE(armOver(client, "retrieve.section=delay:500"));
    const auto wedged =
        askOver(client, "1", suiteQuestions()[0], /*deadline_ms=*/40.0);
    EXPECT_EQ(wedged.terminal, "deadline_exceeded");

    // Disarm over the verb; the same connection serves a clean ask.
    ASSERT_TRUE(armOver(client, "off"));
    const auto clean = askOver(client, "2", suiteQuestions()[0]);
    EXPECT_EQ(clean.terminal, "done");
    EXPECT_FALSE(clean.answer.empty());

    const auto stats = statsOver(client);
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE(str::parseU64(stats->at("deadline_exceeded")).value(), 1u);
    EXPECT_GE(str::parseU64(stats->at("faults_injected")).value(), 1u);
    server.stop();
}

TEST(ChaosTest, ServeDeadlineDegradedAnswerWithinSlack)
{
    FailpointGuard guard;
    ServeOptions opts;
    opts.debug_failpoints = true;
    // Generous slack: the engine degrades at the deadline (partial
    // evidence) and finishes generation well within the slack, so the
    // client gets a degraded done frame, not a hard cut.
    opts.deadline_slack_ms = 4000.0;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    ASSERT_TRUE(armOver(client, "retrieve.section=delay:60"));
    const auto r =
        askOver(client, "1", suiteQuestions()[0], /*deadline_ms=*/20.0);
    EXPECT_EQ(r.terminal, "done");
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.answer.empty());
    server.stop();
}

TEST(ChaosTest, ServeLeaseTimeoutEmitsOverloadedFrame)
{
    FailpointGuard guard;
    ServeOptions opts;
    opts.debug_failpoints = true;
    opts.max_engines_per_key = 1;
    opts.lease_timeout_ms = 150.0;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient armer;
    ASSERT_TRUE(armer.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(armer));
    // Slow retrieval holds the single engine's lease long enough for
    // the second ask's bounded lease wait to expire.
    ASSERT_TRUE(armOver(armer, "retrieve.section=delay:400"));

    std::atomic<bool> holder_done{false};
    std::thread holder([&] {
        LineClient slow;
        if (slow.connect("127.0.0.1", server.port()) &&
            expectHello(slow))
            askOver(slow, "slow", suiteQuestions()[0]);
        holder_done.store(true);
    });
    // Let the holder win the lease race, then queue behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    LineClient queued;
    ASSERT_TRUE(queued.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(queued));
    const auto shed = askOver(queued, "shed", suiteQuestions()[0]);
    EXPECT_EQ(shed.terminal, "overloaded");
    holder.join();
    EXPECT_TRUE(holder_done.load());

    ASSERT_TRUE(armOver(armer, "off"));
    const auto stats = statsOver(armer);
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE(str::parseU64(stats->at("lease_timeouts")).value(), 1u);
    server.stop();
}

TEST(ChaosTest, FailpointsVerbIsForbiddenByDefault)
{
    FailpointGuard guard;
    ServeOptions opts; // debug_failpoints defaults to false
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));
    Request req;
    req.op = Request::Op::Failpoints;
    req.id = "fp";
    req.failpoint_spec = "serve.lease=delay:10";
    ASSERT_TRUE(client.sendLine(renderRequest(req)));
    const auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    const auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "error");
    EXPECT_EQ(frame->at("code"), "forbidden");
    EXPECT_FALSE(fail::anyArmed());
    server.stop();
}

TEST(ChaosTest, RandomizedFaultScheduleKeepsFramesTyped)
{
    FailpointGuard guard;
    ServeOptions opts;
    opts.debug_failpoints = true;
    opts.deadline_slack_ms = 2000.0;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());
    const auto questions = suiteQuestions();

    // Clean reference answers before any chaos.
    std::vector<std::string> reference;
    {
        LineClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        ASSERT_TRUE(expectHello(client));
        for (std::size_t i = 0; i < questions.size(); ++i) {
            const auto r = askOver(client, std::to_string(i),
                                   questions[i]);
            ASSERT_EQ(r.terminal, "done");
            reference.push_back(r.answer);
        }
    }

    // Randomized fault rounds: drops on session I/O, delays in
    // retrieval and leasing. Every completed ask must end in a typed
    // terminal frame; asks whose connection was dropped see EOF and
    // that is the allowed non-typed outcome.
    const char *schedules[] = {
        "serve.write=drop@0.15,retrieve.section=delay:15@0.3",
        "serve.read=drop@0.2,serve.lease=delay:30,"
        "retrieve.section=delay:10@0.5",
    };
    for (const char *schedule : schedules) {
        SCOPED_TRACE(schedule);
        ASSERT_TRUE(fail::armSpec(schedule));
        constexpr int kThreads = 4;
        constexpr int kAsksPerThread = 4;
        std::atomic<int> typed{0}, dropped{0};
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                RetryPolicy policy;
                policy.jitter_seed = static_cast<std::uint64_t>(t);
                for (int i = 0; i < kAsksPerThread; ++i) {
                    LineClient client;
                    if (!client.connectRetry("127.0.0.1",
                                             server.port(), policy))
                        continue;
                    if (!expectHello(client)) {
                        dropped.fetch_add(1);
                        continue;
                    }
                    const double deadline =
                        (i % 3 == 0) ? 0.0 : (i % 3 == 1) ? 40.0
                                                          : 400.0;
                    const auto r = askOver(
                        client, std::to_string(t * 100 + i),
                        questions[static_cast<std::size_t>(i) %
                                  questions.size()],
                        deadline);
                    if (r.terminal.empty())
                        dropped.fetch_add(1);
                    else
                        typed.fetch_add(1);
                }
            });
        }
        for (auto &w : workers)
            w.join();
        // Chaos may drop connections, but every surviving ask ended
        // in a typed terminal frame — never a hang or a torn frame.
        EXPECT_EQ(typed.load() + dropped.load(),
                  kThreads * kAsksPerThread);
        fail::disarmAll();
    }
    EXPECT_GE(fail::injectedTotal(), 1u);

    // Faults off: the same questions answer byte-identically to the
    // pre-chaos reference, and the server is fully responsive.
    {
        LineClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        ASSERT_TRUE(expectHello(client));
        for (std::size_t i = 0; i < questions.size(); ++i) {
            const auto r = askOver(client, "post-" + std::to_string(i),
                                   questions[i]);
            ASSERT_EQ(r.terminal, "done");
            EXPECT_FALSE(r.degraded);
            EXPECT_EQ(r.answer, reference[i]) << "question " << i;
        }
        const auto stats = statsOver(client);
        ASSERT_TRUE(stats.has_value());
        EXPECT_GE(str::parseU64(stats->at("faults_injected")).value(),
                  1u);
    }
    server.stop();
}

// ------------------------------------- pipeline-interior failpoints

TEST(ChaosTest, WorkerPoolTaskFaultSurfacesAsTypedStreamFailure)
{
    // core.worker_pool.task fires as the first statement of the
    // streaming job, inside its try block: the fault must surface as
    // the stream's rethrown failure — exactly what a blocking ask()
    // would have thrown — never a worker-thread terminate.
    FailpointGuard guard;
    auto engine =
        CacheMind::Builder(sharedDb()).build().expect("engine");
    const auto q = suiteQuestions()[0];

    ASSERT_TRUE(fail::armSpec("core.worker_pool.task=error#1"));
    auto stream = engine.askStream(q).expect("stream");
    EXPECT_THROW(stream.wait(), fail::InjectedFault);

    // The budget (#1) is spent and the engine (and its persistent
    // worker) keeps serving.
    auto clean = engine.askStream(q).expect("clean stream");
    auto fresh =
        CacheMind::Builder(sharedDb()).build().expect("fresh");
    EXPECT_EQ(clean.wait().text, fresh.ask(q).expect("reference").text);
}

TEST(ChaosTest, StreamPushFaultSurfacesAsTypedStreamFailure)
{
    // core.stream.push fires at StreamChannel::push before anything
    // is enqueued: the stream fails typed with no torn delta
    // sequence (the consumer sees the failure, not a partial event).
    FailpointGuard guard;
    auto engine =
        CacheMind::Builder(sharedDb()).build().expect("engine");
    const auto q = suiteQuestions()[0];

    ASSERT_TRUE(fail::armSpec("core.stream.push=error#1"));
    auto stream = engine.askStream(q).expect("stream");
    EXPECT_THROW(
        {
            while (stream.next()) {
            }
        },
        fail::InjectedFault);

    fail::disarmAll();
    auto again = engine.askStream(q).expect("again");
    EXPECT_FALSE(again.wait().text.empty());
}

TEST(ChaosTest, ServeReportsPipelineFaultsAsErrorFrames)
{
    // Both interior failpoints, exercised through the server: the
    // client gets a typed error frame and the connection (and the
    // engine lease) survives for the next request.
    FailpointGuard guard;
    ServeOptions opts;
    opts.debug_failpoints = true;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    for (const char *spec : {"core.worker_pool.task=error#1",
                             "core.stream.push=error#1"}) {
        SCOPED_TRACE(spec);
        ASSERT_TRUE(armOver(client, spec));
        const auto faulted = askOver(client, "f", suiteQuestions()[0]);
        EXPECT_EQ(faulted.terminal, "error");
        const auto clean = askOver(client, "c", suiteQuestions()[0]);
        EXPECT_EQ(clean.terminal, "done");
        EXPECT_FALSE(clean.answer.empty());
    }
    server.stop();
}

// ------------------------------------------------- trace attribution

TEST(ChaosTest, DegradedAndDeadlineTracesNameTheFailingStage)
{
    // The acceptance bar for trace-guided debugging: every degraded
    // or deadline_exceeded trace must say WHICH stage the deadline
    // landed in, so a "bad" trace pulled off the store is actionable.
    FailpointGuard guard;
    obs::TraceStore::instance().clear();
    ServeOptions opts;
    opts.debug_failpoints = true;
    opts.deadline_slack_ms = 4000.0;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    // Degraded within slack: the engine truncates retrieval at the
    // deadline and answers from partial evidence.
    ASSERT_TRUE(armOver(client, "retrieve.section=delay:60"));
    Request req;
    req.op = Request::Op::Ask;
    req.id = "1";
    req.question = suiteQuestions()[0];
    req.request_id = "req-degraded";
    req.deadline_ms = 20.0;
    ASSERT_TRUE(client.sendLine(renderRequest(req)));
    for (;;) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value());
        const auto frame = parseJsonObject(*line);
        ASSERT_TRUE(frame.has_value());
        const auto kind = frame->at("frame");
        if (kind == "done" || kind == "error" ||
            kind == "deadline_exceeded")
            break;
    }
    ASSERT_TRUE(armOver(client, "off"));

    const auto degraded =
        obs::TraceStore::instance().byRequestId("req-degraded");
    ASSERT_NE(degraded, nullptr);
    EXPECT_EQ(degraded->outcome(), "degraded");
    bool named_stage = false;
    for (const auto &span : degraded->spans()) {
        for (const auto &note : span.notes)
            if (note.key == "deadline_expired_in")
                named_stage = note.value == "retrieve";
    }
    EXPECT_TRUE(named_stage);

    // Hard cut past deadline + slack: the serve layer's trace names
    // the stage the pipeline was wedged in when the cut fired.
    server.stop();
    opts.deadline_slack_ms = 100.0;
    Server strict(sharedDb(), opts);
    ASSERT_TRUE(strict.start());
    LineClient cut;
    ASSERT_TRUE(cut.connect("127.0.0.1", strict.port()));
    ASSERT_TRUE(expectHello(cut));
    ASSERT_TRUE(armOver(cut, "retrieve.section=delay:500"));
    req.id = "2";
    req.request_id = "req-cut";
    req.deadline_ms = 40.0;
    ASSERT_TRUE(cut.sendLine(renderRequest(req)));
    std::string terminal;
    while (terminal.empty()) {
        const auto line = cut.recvLine();
        ASSERT_TRUE(line.has_value());
        const auto frame = parseJsonObject(*line);
        ASSERT_TRUE(frame.has_value());
        const auto kind = frame->at("frame");
        if (kind == "done" || kind == "error" ||
            kind == "deadline_exceeded")
            terminal = kind;
    }
    EXPECT_EQ(terminal, "deadline_exceeded");

    const auto wedged =
        obs::TraceStore::instance().byRequestId("req-cut");
    ASSERT_NE(wedged, nullptr);
    EXPECT_EQ(wedged->outcome(), "deadline_exceeded");
    std::string stage;
    for (const auto &span : wedged->spans()) {
        if (span.name != "serve.ask")
            continue;
        for (const auto &note : span.notes)
            if (note.key == "deadline_exceeded_in")
                stage = note.value;
    }
    EXPECT_FALSE(stage.empty());
    // The wedge is in retrieval (sections sleep 500 ms each), so the
    // cut must attribute it there, not shrug.
    EXPECT_EQ(stage, "retrieve");

    // And the trace verb's "bad" filter surfaces both traces.
    Request fetch;
    fetch.op = Request::Op::Trace;
    fetch.id = "3";
    fetch.trace_last = 8;
    fetch.trace_filter = "bad";
    ASSERT_TRUE(cut.sendLine(renderRequest(fetch)));
    const auto line = cut.recvLine();
    ASSERT_TRUE(line.has_value());
    const auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "trace");
    EXPECT_GE(str::parseU64(frame->at("found")).value(), 2u);
    EXPECT_NE(frame->at("traces").find("req-degraded"),
              std::string::npos);
    EXPECT_NE(frame->at("traces").find("req-cut"), std::string::npos);
    strict.stop();
}
