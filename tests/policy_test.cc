/**
 * @file
 * Unit tests for the replacement policies against a small cache.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "policy/basic_policies.hh"
#include "policy/mlp.hh"
#include "policy/mockingjay.hh"
#include "policy/parrot.hh"
#include "policy/rrip_policies.hh"
#include "sim/cache.hh"
#include "sim/llc_replay.hh"

using namespace cachemind;
using namespace cachemind::policy;
using namespace cachemind::sim;

namespace {

/** Drive a tiny cache with a line sequence; returns hit flags. */
std::vector<bool>
driveLines(Cache &cache, const std::vector<std::uint64_t> &lines,
           const std::vector<std::uint64_t> &next_uses = {})
{
    std::vector<bool> hits;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        AccessInfo info;
        info.pc = 0x400000 + lines[i] * 4;
        info.address = lines[i] * 64;
        info.line = lines[i];
        info.access_index = i;
        if (i < next_uses.size())
            info.next_use = next_uses[i];
        hits.push_back(cache.access(info).hit);
    }
    return hits;
}

CacheConfig
tinyConfig(std::uint32_t sets = 1, std::uint32_t ways = 2)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sets = sets;
    cfg.ways = ways;
    cfg.latency = 1;
    return cfg;
}

} // namespace

TEST(LruPolicyTest, EvictsLeastRecentlyUsed)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    // Lines 1,2 fill; touching 1 makes 2 the LRU victim for 3.
    const auto hits = driveLines(cache, {1, 2, 1, 3, 1, 2});
    const std::vector<bool> expect = {false, false, true,
                                      false, true, false};
    EXPECT_EQ(hits, expect);
}

TEST(LruPolicyTest, ScoreGrowsWithAge)
{
    Cache cache(tinyConfig(1, 4), std::make_unique<LruPolicy>());
    driveLines(cache, {1, 2, 3, 4});
    const auto scores = cache.setScores(0);
    // Way 0 holds the oldest line -> largest evictability score.
    EXPECT_GT(scores[0], scores[3]);
}

TEST(FifoPolicyTest, IgnoresHits)
{
    Cache cache(tinyConfig(), std::make_unique<FifoPolicy>());
    // FIFO: touching 1 does NOT save it; 1 was inserted first.
    const auto hits = driveLines(cache, {1, 2, 1, 3, 1});
    const std::vector<bool> expect = {false, false, true, false, false};
    EXPECT_EQ(hits, expect);
}

TEST(RandomPolicyTest, AlwaysPicksValidWay)
{
    Cache cache(tinyConfig(4, 2), std::make_unique<RandomPolicy>());
    std::vector<std::uint64_t> lines;
    for (std::uint64_t i = 0; i < 400; ++i)
        lines.push_back(i * 4); // all map to set 0
    driveLines(cache, lines);
    EXPECT_EQ(cache.stats().accesses, 400u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(BeladyPolicyTest, EvictsFarthestNextUse)
{
    Cache cache(tinyConfig(), std::make_unique<BeladyPolicy>(false));
    // Access pattern: 1 (next use 4), 2 (next use far), 3 (never) ...
    // With 2 ways, inserting 3 must evict 2 (next use 100) vs 1 (4).
    std::vector<std::uint64_t> lines = {1, 2, 3, 1};
    std::vector<std::uint64_t> next = {4, 100, kNoNextUse, kNoNextUse};
    const auto hits = driveLines(cache, lines, next);
    EXPECT_FALSE(hits[2]);
    EXPECT_TRUE(hits[3]); // line 1 survived because 2 was farther
}

TEST(BeladyPolicyTest, BypassesDeadOnArrival)
{
    Cache cache(tinyConfig(), std::make_unique<BeladyPolicy>(true));
    // Fill with lines re-used soon; a never-re-used line must bypass.
    std::vector<std::uint64_t> lines = {1, 2, 9, 1, 2};
    std::vector<std::uint64_t> next = {3, 4, kNoNextUse, 10, 11};
    const auto hits = driveLines(cache, lines, next);
    EXPECT_EQ(cache.stats().bypasses, 1u);
    EXPECT_TRUE(hits[3]);
    EXPECT_TRUE(hits[4]);
}

TEST(BeladyPolicyTest, OptimalBeatsLruOnAdversarialPattern)
{
    // Cyclic pattern over ways+1 lines is LRU's worst case.
    std::vector<std::uint64_t> lines;
    for (int rep = 0; rep < 40; ++rep)
        for (std::uint64_t l = 0; l < 3; ++l)
            lines.push_back(l);

    // Compute next uses.
    std::vector<std::uint64_t> next(lines.size(), kNoNextUse);
    std::map<std::uint64_t, std::size_t> seen;
    for (std::size_t i = lines.size(); i-- > 0;) {
        if (seen.count(lines[i]))
            next[i] = seen[lines[i]];
        seen[lines[i]] = i;
    }

    Cache lru(tinyConfig(), std::make_unique<LruPolicy>());
    Cache opt(tinyConfig(), std::make_unique<BeladyPolicy>(true));
    driveLines(lru, lines, next);
    driveLines(opt, lines, next);
    EXPECT_EQ(lru.stats().hits, 0u); // classic LRU thrash
    EXPECT_GT(opt.stats().hits, lines.size() / 2);
}

TEST(SrripPolicyTest, HitPromotesToNearRrpv)
{
    Cache cache(tinyConfig(1, 2), std::make_unique<SrripPolicy>());
    driveLines(cache, {1, 2, 1});
    const auto scores = cache.setScores(0);
    EXPECT_EQ(scores[0], 0u); // line 1 promoted on hit
    EXPECT_GT(scores[1], 0u);
}

TEST(SrripPolicyTest, ScanResistance)
{
    // A reused pair plus a one-shot scan: SRRIP keeps the pair longer
    // than LRU does.
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < 30; ++i) {
        lines.push_back(1);
        lines.push_back(2);
        lines.push_back(100 + i); // scan line, never reused
    }
    Cache srrip(tinyConfig(1, 4), std::make_unique<SrripPolicy>());
    Cache lru(tinyConfig(1, 4), std::make_unique<LruPolicy>());
    driveLines(srrip, lines);
    driveLines(lru, lines);
    EXPECT_GE(srrip.stats().hits, lru.stats().hits);
}

TEST(DrripPolicyTest, RunsAndDuels)
{
    Cache cache(CacheConfig{"d", 64, 4, 64, 1, 8},
                std::make_unique<DrripPolicy>());
    std::vector<std::uint64_t> lines;
    cachemind::Rng rng(3);
    for (int i = 0; i < 5000; ++i)
        lines.push_back(rng.nextBelow(512));
    driveLines(cache, lines);
    EXPECT_EQ(cache.stats().accesses, 5000u);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(DipPolicyTest, BipInsertionLimitsScanDamage)
{
    // Working set of 4 lines in a 4-way set + long scan. DIP should
    // retain more of the working set than plain LRU.
    std::vector<std::uint64_t> lines;
    for (int rep = 0; rep < 200; ++rep) {
        for (std::uint64_t l = 0; l < 3; ++l)
            lines.push_back(l);
        lines.push_back(1000 + rep); // scan
    }
    Cache dip(tinyConfig(1, 4), std::make_unique<DipPolicy>());
    Cache lru(tinyConfig(1, 4), std::make_unique<LruPolicy>());
    driveLines(dip, lines);
    driveLines(lru, lines);
    EXPECT_GE(dip.stats().hits, lru.stats().hits);
}

TEST(ShipPolicyTest, LearnsDeadSignatures)
{
    Cache cache(tinyConfig(1, 4), std::make_unique<ShipPolicy>());
    // Scan PC inserts lines that never hit; reused PC inserts lines
    // that hit. After warmup the reused lines should survive scans.
    std::uint64_t idx = 0;
    auto access = [&](std::uint64_t pc, std::uint64_t line) {
        AccessInfo info;
        info.pc = pc;
        info.line = line;
        info.address = line * 64;
        info.access_index = idx++;
        return cache.access(info).hit;
    };
    int reuse_hits = 0;
    for (int rep = 0; rep < 300; ++rep) {
        reuse_hits += access(0xAAA, 1);
        reuse_hits += access(0xAAA, 2);
        access(0xBBB, 5000 + rep); // scan, never reused
    }
    // LRU-equivalent would still hit most of the time in 4 ways, but
    // SHiP must not be *worse* than half after learning.
    EXPECT_GT(reuse_hits, 300);
}

TEST(ParrotModelTest, PredictsFromTraining)
{
    ParrotTrainer trainer;
    for (std::uint64_t i = 0; i < 100; ++i)
        trainer.observe(0x1111, i, i + 16); // constant rd 16
    for (std::uint64_t i = 0; i < 100; ++i)
        trainer.observe(0x2222, i, kNoNextUse); // never reused
    const ParrotModel model = trainer.finish();
    EXPECT_NEAR(model.predict(0x1111), 17.0, 2.0);
    EXPECT_GT(model.predict(0x2222), 1e5);
    EXPECT_DOUBLE_EQ(model.predict(0x9999), model.default_rd);
}

TEST(ParrotPolicyTest, EvictsPredictedDeadLines)
{
    ParrotTrainer trainer;
    for (std::uint64_t i = 0; i < 64; ++i)
        trainer.observe(0xA, i, i + 4); // hot PC
    for (std::uint64_t i = 0; i < 64; ++i)
        trainer.observe(0xD, i, kNoNextUse); // dead PC
    auto policy = std::make_unique<ParrotPolicy>(trainer.finish());
    Cache cache(tinyConfig(1, 2), std::move(policy));

    std::uint64_t idx = 0;
    auto access = [&](std::uint64_t pc, std::uint64_t line) {
        AccessInfo info;
        info.pc = pc;
        info.line = line;
        info.address = line * 64;
        info.access_index = idx++;
        return cache.access(info).hit;
    };
    access(0xA, 1);
    access(0xA, 2);
    // Dead-PC line should bypass (both residents predicted sooner).
    access(0xD, 3);
    EXPECT_EQ(cache.stats().bypasses, 1u);
    EXPECT_TRUE(access(0xA, 1));
    EXPECT_TRUE(access(0xA, 2));
}

TEST(MlpPolicyTest, TinyMlpLearnsSeparableRule)
{
    TinyMlp net(7);
    // Rule: feature 0 decides the label.
    std::array<float, kMlpInputs> pos{};
    std::array<float, kMlpInputs> neg{};
    pos[0] = 1.0f;
    neg[0] = -1.0f;
    for (int i = 0; i < 400; ++i) {
        net.train(pos, 1.0f);
        net.train(neg, 0.0f);
    }
    EXPECT_GT(net.forward(pos), 0.8);
    EXPECT_LT(net.forward(neg), 0.2);
}

TEST(MlpPolicyTest, RunsOnRandomStream)
{
    Cache cache(CacheConfig{"m", 16, 4, 64, 1, 8},
                std::make_unique<MlpPolicy>());
    std::vector<std::uint64_t> lines;
    cachemind::Rng rng(5);
    for (int i = 0; i < 4000; ++i)
        lines.push_back(rng.nextBelow(256));
    driveLines(cache, lines);
    EXPECT_EQ(cache.stats().accesses, 4000u);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(MockingjayTest, RdpTdConvergence)
{
    MockingjayConfig cfg;
    ReuseDistancePredictor rdp(cfg);
    EXPECT_EQ(rdp.predict(0x1), cfg.default_rd);
    for (int i = 0; i < 100; ++i)
        rdp.train(0x1, 64);
    EXPECT_NEAR(rdp.predict(0x1), 64, 8);
}

TEST(MockingjayTest, TrainingFilterBlocksOtherPcs)
{
    MockingjayConfig cfg;
    cfg.sample_every = 1;
    MockingjayPolicy pol(cfg);
    pol.setTrainingFilter({0xAAAA});
    pol.configure(4, 2);

    AccessInfo info;
    info.pc = 0xBBBB;
    info.line = 8; // set 0
    for (int i = 0; i < 50; ++i) {
        info.access_index = static_cast<std::uint64_t>(i);
        pol.onInsert(0, 0, info);
    }
    // Only the filtered PC may enter the RDP; 0xBBBB must not.
    EXPECT_EQ(pol.rdp().size(), 0u);
}

TEST(MockingjayTest, EndToEndBeatsRandomOnRegularReuse)
{
    // Periodic reuse pattern: Mockingjay's RDP should learn it.
    std::vector<std::uint64_t> lines;
    for (int rep = 0; rep < 400; ++rep) {
        for (std::uint64_t l = 0; l < 6; ++l)
            lines.push_back(l * 16); // 6 lines, same set, period 6
        lines.push_back(10000 + rep * 16); // scan line
    }
    MockingjayConfig cfg;
    cfg.sample_every = 1;
    Cache mj(tinyConfig(1, 8),
             std::make_unique<MockingjayPolicy>(cfg));
    Cache rnd(tinyConfig(1, 8), std::make_unique<RandomPolicy>());
    driveLines(mj, lines);
    driveLines(rnd, lines);
    EXPECT_GT(mj.stats().hits, rnd.stats().hits);
}

TEST(PolicyFactoryTest, NamesRoundTrip)
{
    for (PolicyKind kind : allPolicies()) {
        PolicyKind parsed;
        ASSERT_TRUE(policyKindFromName(policyName(kind), parsed));
        EXPECT_EQ(parsed, kind);
        auto pol = makePolicy(kind);
        ASSERT_NE(pol, nullptr);
        EXPECT_STREQ(pol->name(), policyName(kind));
        EXPECT_FALSE(policyDescription(kind).empty());
    }
}

TEST(PolicyFactoryTest, AcceptsAliases)
{
    PolicyKind kind;
    EXPECT_TRUE(policyKindFromName("OPT", kind));
    EXPECT_EQ(kind, PolicyKind::Belady);
    EXPECT_TRUE(policyKindFromName("Optimal", kind));
    EXPECT_EQ(kind, PolicyKind::Belady);
    EXPECT_FALSE(policyKindFromName("no-such-policy", kind));
}
