/**
 * @file
 * Tests for the LLM layer: backend profiles, prompts, conversation
 * memory, the knowledge base, and the grounded generator's behaviour
 * contracts (parameterized across all five backends).
 */

#include <gtest/gtest.h>

#include "base/str.hh"
#include "db/builder.hh"
#include "llm/generator.hh"
#include "llm/knowledge.hh"
#include "llm/memory.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;
using namespace cachemind::llm;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Lbm,
                             trace::WorkloadKind::Mcf};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

/** A hit/miss question with a known gold answer. */
struct GoldCase
{
    std::string question;
    bool is_miss;
};

GoldCase
goldHitMiss()
{
    const auto *entry = sharedDb().find("lbm_evictions_lru");
    const std::size_t i = 10;
    return GoldCase{
        "Does the memory access with PC " +
            str::hex(entry->table.pcAt(i)) + " and address " +
            str::hex(entry->table.addressAt(i)) +
            " result in a cache hit or cache miss for the lbm "
            "workload and LRU replacement policy?",
        entry->table.isMissAt(i)};
}

} // namespace

TEST(BackendTest, CatalogueIsComplete)
{
    EXPECT_EQ(allBackends().size(), 5u);
    for (const auto kind : allBackends()) {
        const auto &profile = profileFor(kind);
        EXPECT_FALSE(profile.name.empty());
        EXPECT_GT(profile.lookup, 0.0);
        EXPECT_LE(profile.lookup, 1.0);
        EXPECT_GE(profile.coverage, 0.0);
        EXPECT_LE(profile.coverage, 1.0);
        EXPECT_STREQ(backendName(kind), profile.name.c_str());
    }
}

TEST(BackendTest, ProfileOrderingMatchesPaperNarrative)
{
    const auto &gpt4o = profileFor(BackendKind::Gpt4o);
    const auto &gpt35 = profileFor(BackendKind::Gpt35Turbo);
    const auto &o3 = profileFor(BackendKind::O3);
    const auto &ft = profileFor(BackendKind::FinetunedGpt4oMini);
    // GPT-4o is the epistemically robust model.
    EXPECT_GT(gpt4o.skepticism, gpt35.skepticism);
    EXPECT_GT(gpt4o.skepticism, ft.skepticism);
    // o3 is the only backend with an engagement (coverage) gap.
    EXPECT_LT(o3.coverage, 1.0);
    EXPECT_DOUBLE_EQ(gpt4o.coverage, 1.0);
    // Fine-tuning raised context overreliance vs the base mini model.
    EXPECT_GT(ft.context_overreliance,
              profileFor(BackendKind::Gpt4oMini).context_overreliance);
}

TEST(PromptTest, RenderIncludesShotsAndQuestion)
{
    Prompt prompt;
    prompt.system = defaultSystemPrompt();
    prompt.shots = canonicalShots(ShotMode::FewShot);
    prompt.context = "CTX";
    prompt.question = "Q?";
    const auto text = prompt.render();
    EXPECT_NE(text.find("SYSTEM:"), std::string::npos);
    EXPECT_NE(text.find("EXAMPLE 1:"), std::string::npos);
    EXPECT_NE(text.find("EXAMPLE 3:"), std::string::npos);
    EXPECT_NE(text.find("Q?"), std::string::npos);
    EXPECT_TRUE(prompt.hasTrickShot());
}

TEST(PromptTest, ShotModesProduceExpectedCounts)
{
    EXPECT_EQ(canonicalShots(ShotMode::ZeroShot).size(), 0u);
    EXPECT_EQ(canonicalShots(ShotMode::OneShot).size(), 1u);
    EXPECT_EQ(canonicalShots(ShotMode::FewShot).size(), 3u);
}

TEST(MemoryTest, SlidingBufferEvictsIntoSummary)
{
    MemoryConfig cfg;
    cfg.buffer_turns = 2;
    ConversationMemory memory(cfg);
    memory.addTurn("q1", "a1");
    memory.addTurn("q2", "a2");
    memory.addTurn("q3", "a3");
    EXPECT_EQ(memory.recentTurns().size(), 2u);
    EXPECT_EQ(memory.recentTurns().front().user, "q2");
    EXPECT_NE(memory.summary().find("q1"), std::string::npos);
    EXPECT_EQ(memory.totalTurns(), 3u);
}

TEST(MemoryTest, VectorRecallFindsRelevantFacts)
{
    ConversationMemory memory;
    memory.noteFact("PC 0x4037aa has a 99% miss rate in mcf");
    memory.noteFact("the lbm grid is swept twice per iteration");
    memory.noteFact("astar hot sets are 332 and 1424");
    const auto recalled = memory.recall("miss rate of PC 0x4037aa");
    ASSERT_FALSE(recalled.empty());
    EXPECT_NE(recalled[0].find("0x4037aa"), std::string::npos);
}

TEST(MemoryTest, RenderContextListsSections)
{
    ConversationMemory memory;
    memory.addTurn("what is the miss rate", "42 percent");
    const auto text = memory.renderContext("miss rate");
    EXPECT_NE(text.find("[Recent turns]"), std::string::npos);
    EXPECT_NE(text.find("[Recalled facts]"), std::string::npos);
}

TEST(KnowledgeTest, TopicsResolveFromTriggers)
{
    const auto *topic =
        topicFor("How does increasing cache size affect miss rate?");
    ASSERT_NE(topic, nullptr);
    EXPECT_EQ(topic->id, "cache-size-scaling");
    EXPECT_GE(topic->points.size(), 4u);
    EXPECT_EQ(topicFor("what is your favourite colour"), nullptr);
}

// ---------------------- generator contracts (parameterized backends)

class GeneratorParamTest : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(GeneratorParamTest, AnswersAreDeterministic)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(GetParam());
    const auto gold = goldHitMiss();
    const auto bundle = sieve.retrieve(gold.question);
    const auto a = gen.answer(bundle);
    const auto b = gen.answer(bundle);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.says_hit, b.says_hit);
    EXPECT_EQ(a.engaged, b.engaged);
}

TEST_P(GeneratorParamTest, GroundedHitMissUsesTheRow)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(GetParam());
    const auto gold = goldHitMiss();
    const auto bundle = sieve.retrieve(gold.question);
    const auto answer = gen.answer(bundle);
    ASSERT_TRUE(answer.says_hit.has_value());
    // The verdict may be a profile-gated misread, but the answer must
    // cite the retrieved tuple, proving it consulted the row.
    ASSERT_GE(answer.evidence.size(), 1u);
    EXPECT_NE(answer.text.find("Cache"), std::string::npos);
}

TEST_P(GeneratorParamTest, ExactCountsAreAlwaysReported)
{
    retrieval::RangerRetriever ranger(sharedDb());
    const GeneratorLlm gen(GetParam());
    const auto *expert = sharedDb().statsFor("mcf_evictions_lru");
    const auto stats = expert->pcStats(0x4037aa);
    const auto bundle = ranger.retrieve(
        "How many times did PC 0x4037aa appear in the mcf workload "
        "under LRU?");
    const auto answer = gen.answer(bundle);
    ASSERT_TRUE(answer.number.has_value());
    EXPECT_DOUBLE_EQ(*answer.number,
                     static_cast<double>(stats->accesses));
}

TEST_P(GeneratorParamTest, WindowCountsUndercount)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(GetParam());
    const auto *expert = sharedDb().statsFor("mcf_evictions_lru");
    const auto stats = expert->pcStats(0x4037aa);
    const auto bundle = sieve.retrieve(
        "How many times did PC 0x4037aa appear in the mcf workload "
        "under LRU?");
    const auto answer = gen.answer(bundle);
    ASSERT_TRUE(answer.number.has_value());
    // The §6.1 counting failure: the window count is far below truth.
    EXPECT_LT(*answer.number,
              static_cast<double>(stats->accesses) / 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, GeneratorParamTest,
    ::testing::ValuesIn(allBackends()),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        std::string name = backendName(info.param);
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(GeneratorTest, Gpt4oRejectsTrickPremise)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(BackendKind::Gpt4o);
    // lbm PC asked about mcf: invalid premise.
    const auto *entry = sharedDb().find("lbm_evictions_lru");
    std::uint64_t lbm_only = 0;
    for (const auto pc : entry->table.uniquePcs()) {
        if (!sharedDb().find("mcf_evictions_lru")->table.containsPc(pc)) {
            lbm_only = pc;
            break;
        }
    }
    ASSERT_NE(lbm_only, 0u);
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(lbm_only) +
        " and address 0x1b73be82e3f result in a cache hit or cache "
        "miss for the mcf workload and LRU replacement policy?");
    ASSERT_TRUE(bundle.premise_violation);
    const auto answer = gen.answer(bundle);
    EXPECT_TRUE(answer.rejected_premise);
    EXPECT_NE(answer.text.find("TRICK"), std::string::npos);
}

TEST(GeneratorTest, Gpt35AnswersTrickWithoutRejecting)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(BackendKind::Gpt35Turbo);
    const auto *entry = sharedDb().find("lbm_evictions_lru");
    std::uint64_t lbm_only = 0;
    for (const auto pc : entry->table.uniquePcs()) {
        if (!sharedDb().find("mcf_evictions_lru")->table.containsPc(pc)) {
            lbm_only = pc;
            break;
        }
    }
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(lbm_only) +
        " and address 0x1b73be82e3f result in a cache hit or cache "
        "miss for the mcf workload and LRU replacement policy?");
    const auto answer = gen.answer(bundle);
    // skepticism = 0: GPT-3.5 never rejects; it hallucinates.
    EXPECT_FALSE(answer.rejected_premise);
}

TEST(GeneratorTest, ConceptAnswerDrawsFromKnowledgeBase)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(BackendKind::Gpt4o);
    const auto bundle = sieve.retrieve(
        "How does increasing cache size affect miss rate? Compare "
        "increasing the number of sets vs the number of ways.");
    const auto answer = gen.answer(bundle);
    ASSERT_TRUE(answer.engaged);
    EXPECT_GE(answer.evidence.size(), 2u);
    EXPECT_NE(answer.text.find("conflict"), std::string::npos);
}

TEST(GeneratorTest, CodeGenEmitsPython)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(BackendKind::Gpt4o);
    const auto bundle = sieve.retrieve(
        "Write code to compute the number of cache hits for PC "
        "0x4037aa and address 0x1b73be82e3f in the mcf workload under "
        "LRU.");
    const auto answer = gen.answer(bundle);
    EXPECT_NE(answer.text.find("```python"), std::string::npos);
    EXPECT_NE(answer.text.find("loaded_data"), std::string::npos);
    EXPECT_NE(answer.text.find("0x4037aa"), std::string::npos);
}

TEST(GeneratorTest, FewShotCopyingRequiresLowQualityContext)
{
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm gen(BackendKind::Gpt35Turbo); // overreliant
    GenerationOptions opts;
    opts.shot_mode = ShotMode::OneShot;
    // High-quality context: no copying even for overreliant models.
    const auto gold = goldHitMiss();
    const auto good_bundle = sieve.retrieve(gold.question);
    const auto answer = gen.answer(good_bundle, opts);
    EXPECT_FALSE(answer.copied_example);
}

TEST(GeneratorTest, DisengagedAnswerIsMarked)
{
    // Force disengagement: a profile with zero coverage.
    retrieval::SieveRetriever sieve(sharedDb());
    const GeneratorLlm o3(BackendKind::O3);
    // Scan reasoning questions until one hits the coverage gap; with
    // coverage = 0.6 over many question keys this must happen.
    bool saw_disengaged = false;
    for (int i = 0; i < 40 && !saw_disengaged; ++i) {
        const auto bundle = sieve.retrieve(
            "Why does Belady outperform LRU on PC 0x4037aa in the mcf "
            "workload? (variant " + std::to_string(i) + ")");
        const auto answer = o3.answer(bundle);
        if (!answer.engaged) {
            saw_disengaged = true;
            EXPECT_FALSE(answer.text.empty());
        }
    }
    EXPECT_TRUE(saw_disengaged);
}
