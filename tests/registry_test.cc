/**
 * @file
 * Tests for the v2 component registries: built-in self-registration,
 * plugging in custom retrievers/backends by name, duplicate-name
 * rejection, and typed Builder errors for unknown names.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "llm/registry.hh"
#include "retrieval/registry.hh"

using namespace cachemind;
using namespace cachemind::core;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru};
        options.accesses_override = 30000;
        return db::buildDatabase(options);
    }();
    return database;
}

bool
contains(const std::vector<std::string> &names, const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Trivial custom retriever: echoes the query as its result text. */
class EchoRetriever : public retrieval::Retriever
{
  public:
    const char *name() const override { return "echo-test"; }

    retrieval::ContextBundle
    retrieve(const std::string &query) override
    {
        retrieval::ContextBundle bundle;
        bundle.retriever = name();
        bundle.result_text = "echo: " + query;
        return bundle;
    }
};

/** Register the custom components exactly once per process. */
void
registerCustomComponents()
{
    static const bool done = [] {
        retrieval::RetrieverRegistry::instance().add(
            "echo-test", [](const db::ShardSet &) {
                return std::make_unique<EchoRetriever>();
            });
        llm::CapabilityProfile perfect;
        perfect.name = "perfect-llm";
        perfect.lookup = perfect.rate_calc = perfect.comparison = 1.0;
        perfect.arithmetic = perfect.skepticism = 1.0;
        perfect.concept_knowledge = perfect.codegen = 1.0;
        perfect.causal = perfect.synthesis = perfect.semantic = 1.0;
        perfect.coverage = 1.0;
        perfect.context_overreliance = 0.0;
        llm::BackendRegistry::instance().add("perfect-llm", [perfect] {
            return std::make_unique<llm::GeneratorLlm>("perfect-llm",
                                                       perfect);
        });
        return true;
    }();
    (void)done;
}

} // namespace

TEST(RetrieverRegistryTest, BuiltinsSelfRegister)
{
    auto &registry = retrieval::RetrieverRegistry::instance();
    EXPECT_TRUE(registry.has("sieve"));
    EXPECT_TRUE(registry.has("ranger"));
    EXPECT_TRUE(registry.has("llamaindex"));
    const auto names = registry.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_TRUE(contains(names, "sieve"));
}

TEST(RetrieverRegistryTest, LookupIsCaseInsensitive)
{
    auto &registry = retrieval::RetrieverRegistry::instance();
    EXPECT_TRUE(registry.has(" Sieve "));
    auto retriever = registry.create("RANGER", sharedDb());
    ASSERT_NE(retriever, nullptr);
    EXPECT_STREQ(retriever->name(), "ranger");
}

TEST(RetrieverRegistryTest, DuplicateNameRejected)
{
    auto &registry = retrieval::RetrieverRegistry::instance();
    const bool added = registry.add(
        "sieve", [](const db::ShardSet &) {
            return std::make_unique<EchoRetriever>();
        });
    EXPECT_FALSE(added);
    // The original factory is untouched.
    auto retriever = registry.create("sieve", sharedDb());
    ASSERT_NE(retriever, nullptr);
    EXPECT_STREQ(retriever->name(), "sieve");
}

TEST(RetrieverRegistryTest, CustomRetrieverPlugsIntoEngine)
{
    registerCustomComponents();
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("echo-test")
                      .build()
                      .expect("echo engine");
    EXPECT_STREQ(engine.retriever().name(), "echo-test");
    auto response = engine.ask("Any question at all?").expect("ask");
    EXPECT_EQ(response.bundle.retriever, "echo-test");
    EXPECT_NE(response.bundle.result_text.find("echo: Any question"),
              std::string::npos);
}

TEST(RetrieverRegistryTest, CreateAcceptsShardSubsetView)
{
    auto &registry = retrieval::RetrieverRegistry::instance();
    // Factories take a shard view, so a retriever can be scoped to a
    // subset (here one workload's shards) instead of a whole database.
    const db::ShardSet subset =
        sharedDb().shards().forWorkload("astar");
    ASSERT_FALSE(subset.empty());
    auto retriever = registry.create("sieve", subset);
    ASSERT_NE(retriever, nullptr);
    const auto bundle = retriever->retrieve(
        "What is the miss rate in the astar workload under LRU?");
    EXPECT_EQ(bundle.trace_key, "astar_evictions_lru");
}

TEST(BackendRegistryTest, BuiltinsSelfRegister)
{
    auto &registry = llm::BackendRegistry::instance();
    for (const auto kind : llm::allBackends())
        EXPECT_TRUE(registry.has(llm::backendKey(kind)))
            << llm::backendKey(kind);
}

TEST(BackendRegistryTest, DuplicateNameRejected)
{
    auto &registry = llm::BackendRegistry::instance();
    const bool added = registry.add("gpt-4o", [] {
        return std::make_unique<llm::GeneratorLlm>(
            llm::BackendKind::Gpt35Turbo);
    });
    EXPECT_FALSE(added);
    auto generator = registry.create("gpt-4o");
    ASSERT_NE(generator, nullptr);
    EXPECT_EQ(generator->name(), "gpt-4o");
}

TEST(BackendRegistryTest, CustomBackendPlugsIntoEngine)
{
    registerCustomComponents();
    auto engine = CacheMind::Builder(sharedDb())
                      .withBackend("perfect-llm")
                      .build()
                      .expect("perfect-llm engine");
    EXPECT_EQ(engine.generator().name(), "perfect-llm");
    EXPECT_EQ(engine.generator().profile().lookup, 1.0);
    const auto *entry = sharedDb().find("astar_evictions_lru");
    auto response = engine.ask(
        "What is the miss rate for PC " +
        str::hex(entry->table.pcAt(0)) +
        " in the astar workload with LRU?");
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().answer.number.has_value());
}

TEST(BuilderTest, UnknownRetrieverIsTypedError)
{
    auto result = CacheMind::Builder(sharedDb())
                      .withRetriever("no-such-retriever")
                      .build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::UnknownRetriever);
    // The message names the registered alternatives.
    EXPECT_NE(result.error().message.find("sieve"), std::string::npos);
    EXPECT_NE(errorMessage(result.error()).find("unknown-retriever"),
              std::string::npos);
}

TEST(BuilderTest, UnknownBackendIsTypedError)
{
    auto result = CacheMind::Builder(sharedDb())
                      .withBackend("no-such-backend")
                      .build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::UnknownBackend);
    EXPECT_NE(result.error().message.find("gpt-4o"), std::string::npos);
}

TEST(BuilderTest, ZeroBatchWorkersIsTypedError)
{
    auto result = CacheMind::Builder(sharedDb())
                      .withBatchWorkers(0)
                      .build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::InvalidOptions);
}
