/**
 * @file
 * Unit tests for src/base: strings, deterministic RNG, statistics,
 * deadlines.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "base/deadline.hh"
#include "base/random.hh"
#include "base/stats_util.hh"
#include "base/str.hh"

namespace cm = cachemind;
namespace str = cachemind::str;
namespace stats = cachemind::stats;

TEST(StrTest, ToLowerAndTrim)
{
    EXPECT_EQ(str::toLower("LRU Policy"), "lru policy");
    EXPECT_EQ(str::trim("  x y  "), "x y");
    EXPECT_EQ(str::trim("\t\n"), "");
}

TEST(StrTest, SplitDropsEmptyByDefault)
{
    const auto parts = str::split("a,,b,c,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    EXPECT_EQ(str::split("a,,b", ',', true).size(), 3u);
}

TEST(StrTest, SplitWhitespace)
{
    const auto parts = str::splitWhitespace("  foo\tbar \nbaz ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "bar");
}

TEST(StrTest, PrefixSuffixContains)
{
    EXPECT_TRUE(str::startsWith("0x401e31", "0x"));
    EXPECT_FALSE(str::startsWith("x", "0x"));
    EXPECT_TRUE(str::endsWith("trace.bin", ".bin"));
    EXPECT_TRUE(str::containsNoCase("the PARROT policy", "parrot"));
    EXPECT_FALSE(str::containsNoCase("lru", "belady"));
}

TEST(StrTest, HexParsing)
{
    EXPECT_EQ(str::parseHex("0x401e31").value(), 0x401e31u);
    EXPECT_EQ(str::parseHex("401E31").value(), 0x401e31u);
    EXPECT_FALSE(str::parseHex("0xzz").has_value());
    EXPECT_FALSE(str::parseHex("").has_value());
    EXPECT_EQ(str::hex(0x35e798a637fULL), "0x35e798a637f");
}

TEST(StrTest, NumberParsing)
{
    EXPECT_EQ(str::parseU64("12345").value(), 12345u);
    EXPECT_FALSE(str::parseU64("12a").has_value());
    EXPECT_DOUBLE_EQ(str::parseDouble("94.91%").value(), 94.91);
    EXPECT_DOUBLE_EQ(str::parseDouble(" 3.5 ").value(), 3.5);
    EXPECT_FALSE(str::parseDouble("abc").has_value());
}

TEST(StrTest, ExtractHexTokens)
{
    const auto toks = str::extractHexTokens(
        "Does PC 0x401dc9 and address 0x47ea85d37f hit?");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0], 0x401dc9u);
    EXPECT_EQ(toks[1], 0x47ea85d37fULL);
}

TEST(StrTest, ExtractIntTokensSkipsHexBodies)
{
    const auto toks =
        str::extractIntTokens("top 5 PCs near 0x40ff plus 12 more");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0], 5u);
    EXPECT_EQ(toks[1], 12u);
}

TEST(StrTest, PercentFormatting)
{
    EXPECT_EQ(str::percent(0.9491), "94.91%");
    EXPECT_EQ(str::fixed(2.04567, 2), "2.05");
}

TEST(StrTest, EditDistance)
{
    EXPECT_EQ(str::editDistance("lru", "lru"), 0u);
    EXPECT_EQ(str::editDistance("belady", "beladys"), 1u);
    EXPECT_EQ(str::editDistance("parrot", "carrot"), 1u);
    EXPECT_EQ(str::editDistance("", "abc"), 3u);
}

TEST(StrTest, ReplaceAllAndJoin)
{
    EXPECT_EQ(str::replaceAll("a%%b%%c", "%%", "%"), "a%b%c");
    EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(RandomTest, DeterministicStreams)
{
    cm::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    cm::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(RandomTest, NextBelowInRange)
{
    cm::Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RandomTest, NextRangeInclusive)
{
    cm::Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, BernoulliExtremes)
{
    cm::Rng rng(9);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
}

TEST(RandomTest, BernoulliApproximation)
{
    cm::Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, KeyedDrawsAreStable)
{
    EXPECT_EQ(cm::keyedUniform(123), cm::keyedUniform(123));
    EXPECT_EQ(cm::keyedBernoulli(55, 0.5), cm::keyedBernoulli(55, 0.5));
    EXPECT_EQ(cm::keyedPick(99, 10), cm::keyedPick(99, 10));
    EXPECT_LT(cm::keyedPick(99, 10), 10u);
}

TEST(RandomTest, GaussianMoments)
{
    cm::Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.nextGaussian(5.0, 2.0));
    EXPECT_NEAR(stats::mean(xs), 5.0, 0.1);
    EXPECT_NEAR(stats::stdev(xs), 2.0, 0.1);
}

TEST(RandomTest, Fnv1aDistinguishes)
{
    EXPECT_NE(cm::fnv1a("lru"), cm::fnv1a("lrv"));
    EXPECT_EQ(cm::fnv1a("belady"), cm::fnv1a("belady"));
}

TEST(StatsTest, MeanVarianceStdev)
{
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stats::variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stats::stdev(xs), 2.0);
}

TEST(StatsTest, EmptyInputsAreZero)
{
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stats::variance({}), 0.0);
    EXPECT_DOUBLE_EQ(stats::median({}), 0.0);
}

TEST(StatsTest, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(stats::median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(stats::median({4, 1, 2, 3}), 2.5);
}

TEST(StatsTest, Percentile)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(i);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 100.0);
    EXPECT_NEAR(stats::percentile(xs, 50), 50.5, 1e-9);
}

TEST(StatsTest, PearsonCorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(stats::pearson(xs, zs), -1.0, 1e-12);
    const std::vector<double> cs = {3, 3, 3, 3, 3};
    EXPECT_DOUBLE_EQ(stats::pearson(xs, cs), 0.0);
}

TEST(StatsTest, RunningStatsMatchesBatch)
{
    stats::RunningStats rs;
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    for (double x : xs)
        rs.push(x);
    EXPECT_DOUBLE_EQ(rs.mean(), stats::mean(xs));
    EXPECT_NEAR(rs.variance(), stats::variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_EQ(rs.count(), xs.size());
}

TEST(StatsTest, HistogramBinning)
{
    stats::Histogram h(0.0, 10.0, 5);
    h.push(-5);  // clamps to bin 0
    h.push(0);
    h.push(9.99);
    h.push(10);
    h.push(49);
    h.push(1000); // clamps to last bin
    EXPECT_EQ(h.binCount(0), 3u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 10.0);
}

TEST(StatsTest, SummaryBundle)
{
    const auto s = stats::summarize({1, 2, 3});
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 3.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

// ------------------------------------------------------------ deadlines

TEST(DeadlineTest, DefaultIsInfinite)
{
    const cm::Deadline d;
    EXPECT_FALSE(d.finite());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(d.remainingMs(),
              std::numeric_limits<double>::infinity());
    EXPECT_FALSE(cm::Deadline::never().finite());
    // A zero or negative budget also means "no budget".
    EXPECT_FALSE(cm::Deadline::afterMs(0.0).finite());
    EXPECT_FALSE(cm::Deadline::afterMs(-10.0).finite());
}

TEST(DeadlineTest, FiniteBudgetRunsOut)
{
    const auto d = cm::Deadline::afterMs(20.0);
    EXPECT_TRUE(d.finite());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMs(), 0.0);
    EXPECT_LE(d.remainingMs(), 20.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remainingMs(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetStaysUnexpired)
{
    const auto d = cm::Deadline::afterMs(60000.0);
    EXPECT_TRUE(d.finite());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMs(), 1000.0);
    EXPECT_GT(d.timePoint(), cm::Deadline::Clock::now());
}
