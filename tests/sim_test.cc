/**
 * @file
 * Tests for the cache, hierarchy, oracle passes, and annotated replay.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policy/basic_policies.hh"
#include "sim/core_model.hh"
#include "sim/hierarchy.hh"
#include "sim/llc_replay.hh"
#include "trace/workload.hh"

using namespace cachemind;
using namespace cachemind::sim;
using namespace cachemind::policy;

namespace {

AccessInfo
mkAccess(std::uint64_t line, std::uint64_t idx, std::uint64_t pc = 0x400)
{
    AccessInfo info;
    info.pc = pc;
    info.line = line;
    info.address = line * 64;
    info.access_index = idx;
    return info;
}

} // namespace

TEST(CacheTest, HitAfterFill)
{
    Cache c(CacheConfig{"c", 4, 2, 64, 1, 4},
            std::make_unique<LruPolicy>());
    EXPECT_FALSE(c.access(mkAccess(5, 0)).hit);
    EXPECT_TRUE(c.access(mkAccess(5, 1)).hit);
    EXPECT_TRUE(c.probe(5));
    EXPECT_FALSE(c.probe(9));
}

TEST(CacheTest, EvictionReportsVictim)
{
    Cache c(CacheConfig{"c", 1, 1, 64, 1, 4},
            std::make_unique<LruPolicy>());
    c.access(mkAccess(1, 0, 0xAA));
    const auto res = c.access(mkAccess(2, 1, 0xBB));
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.evicted_line, 1u);
    EXPECT_EQ(res.evicted_pc, 0xAAu);
    EXPECT_EQ(res.evicted_last_index, 0u);
}

TEST(CacheTest, DirtyEvictionSignalsWriteback)
{
    Cache c(CacheConfig{"c", 1, 1, 64, 1, 4},
            std::make_unique<LruPolicy>());
    auto store = mkAccess(1, 0);
    store.type = trace::AccessType::Store;
    c.access(store);
    const auto res = c.access(mkAccess(2, 1));
    EXPECT_TRUE(res.evicted_dirty);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, ExternalBypassFilter)
{
    Cache c(CacheConfig{"c", 1, 2, 64, 1, 4},
            std::make_unique<LruPolicy>());
    c.setBypassFilter([](std::uint64_t pc) { return pc == 0xDEAD; });
    c.access(mkAccess(1, 0, 0xDEAD));
    EXPECT_EQ(c.stats().bypasses, 1u);
    EXPECT_FALSE(c.probe(1));
    c.access(mkAccess(2, 1, 0xBEEF));
    EXPECT_TRUE(c.probe(2));
}

TEST(CacheTest, InvalidateAndMarkDirty)
{
    Cache c(CacheConfig{"c", 2, 2, 64, 1, 4},
            std::make_unique<LruPolicy>());
    c.access(mkAccess(4, 0));
    c.markDirty(4);
    EXPECT_TRUE(c.invalidate(4));
    EXPECT_FALSE(c.probe(4));
    EXPECT_FALSE(c.invalidate(4));
}

TEST(CacheTest, SetMappingModuloSets)
{
    Cache c(CacheConfig{"c", 8, 1, 64, 1, 4},
            std::make_unique<LruPolicy>());
    EXPECT_EQ(c.setOf(0), 0u);
    EXPECT_EQ(c.setOf(9), 1u);
    EXPECT_EQ(c.setOf(16), 0u);
}

TEST(HierarchyTest, Table2Defaults)
{
    const auto cfg = defaultHierarchyConfig();
    EXPECT_EQ(cfg.l1d.capacityBytes(), 32u * 1024);
    EXPECT_EQ(cfg.l2.capacityBytes(), 512u * 1024);
    EXPECT_EQ(cfg.llc.capacityBytes(), 2u * 1024 * 1024);
    EXPECT_EQ(cfg.llc.sets, 2048u);
    EXPECT_EQ(cfg.llc.ways, 16u);
    const auto desc = describeConfig(cfg);
    EXPECT_NE(desc.find("2048 sets"), std::string::npos);
    EXPECT_NE(desc.find("LLC"), std::string::npos);
}

TEST(HierarchyTest, L1FiltersRepeatedAccesses)
{
    Hierarchy h(defaultHierarchyConfig(),
                std::make_unique<LruPolicy>());
    int llc_seen = 0;
    h.setLlcObserver([&](std::uint64_t, std::uint64_t,
                         trace::AccessType) { ++llc_seen; });
    for (int i = 0; i < 100; ++i)
        h.access(0x400, 0x1000, trace::AccessType::Load);
    EXPECT_EQ(llc_seen, 1); // only the cold miss escapes L1/L2
    EXPECT_EQ(h.l1d().stats().hits, 99u);
}

TEST(HierarchyTest, LatencyAccumulatesThroughLevels)
{
    Hierarchy h(defaultHierarchyConfig(),
                std::make_unique<LruPolicy>());
    const auto miss = h.access(0x400, 0x2000, trace::AccessType::Load);
    EXPECT_EQ(miss.level, ServiceLevel::Dram);
    EXPECT_EQ(miss.latency, 4u + 12 + 26 + 160);
    const auto hit = h.access(0x400, 0x2000, trace::AccessType::Load);
    EXPECT_EQ(hit.level, ServiceLevel::L1);
    EXPECT_EQ(hit.latency, 4u);
}

TEST(OracleTest, NextPrevUse)
{
    std::vector<LlcAccess> s;
    const std::uint64_t lines[] = {1, 2, 1, 3, 2, 1};
    for (std::uint64_t i = 0; i < 6; ++i)
        s.push_back(LlcAccess{0x4, lines[i] * 64, lines[i],
                              trace::AccessType::Load});
    const auto o = computeOracle(s);
    EXPECT_EQ(o.next_use[0], 2u);
    EXPECT_EQ(o.next_use[1], 4u);
    EXPECT_EQ(o.next_use[2], 5u);
    EXPECT_EQ(o.next_use[3], kNoNextUse);
    EXPECT_EQ(o.prev_use[0], kNoPrevUse);
    EXPECT_EQ(o.prev_use[2], 0u);
    EXPECT_EQ(o.prev_use[4], 1u);
    EXPECT_EQ(o.prev_use[5], 2u);
}

TEST(OracleTest, StackDistanceCountsDistinctLines)
{
    std::vector<LlcAccess> s;
    const std::uint64_t lines[] = {1, 2, 3, 1, 2, 2};
    for (std::uint64_t i = 0; i < 6; ++i)
        s.push_back(LlcAccess{0x4, lines[i] * 64, lines[i],
                              trace::AccessType::Load});
    const auto o = computeOracle(s);
    // 1 at idx 3: lines {2,3} between -> distance 2.
    EXPECT_EQ(o.stack_distance[3], 2u);
    // 2 at idx 4: lines {3,1} between -> 2.
    EXPECT_EQ(o.stack_distance[4], 2u);
    // 2 at idx 5: nothing between -> 0.
    EXPECT_EQ(o.stack_distance[5], 0u);
    EXPECT_EQ(o.stack_distance[0], kNoPrevUse);
}

TEST(ReplayTest, AnnotationsMatchOracle)
{
    std::vector<LlcAccess> s;
    const std::uint64_t lines[] = {1, 2, 3, 1, 2, 3, 1};
    for (std::uint64_t i = 0; i < 7; ++i)
        s.push_back(LlcAccess{0x400 + lines[i], lines[i] * 64,
                              lines[i], trace::AccessType::Load});
    const auto oracle = computeOracle(s);

    LlcReplayer rep(CacheConfig{"llc", 1, 2, 64, 1, 4},
                    std::make_unique<LruPolicy>());
    std::vector<ReplayEvent> events;
    rep.replay(s, &oracle,
               [&events](const ReplayEvent &ev) { events.push_back(ev); });

    ASSERT_EQ(events.size(), 7u);
    EXPECT_EQ(events[0].miss_type, MissType::Compulsory);
    EXPECT_FALSE(events[0].hit);
    EXPECT_EQ(events[0].reuse_distance, 3u);
    EXPECT_EQ(events[0].recency, kNoPrevUse);
    // Access 3 (line 1 again): with 2 ways LRU, line 1 was evicted
    // by line 3 at access 2 -> miss with recency 3.
    EXPECT_FALSE(events[3].hit);
    EXPECT_EQ(events[3].recency, 3u);
    // Victim of event 2 is line 1 (LRU), which is needed at index 3:
    EXPECT_TRUE(events[2].has_victim);
    EXPECT_EQ(events[2].evicted_line, 1u);
    EXPECT_EQ(events[2].evicted_reuse_distance, 1u);
    EXPECT_TRUE(events[2].wrong_eviction); // 3 reused at 5, 1 at 3
}

TEST(ReplayTest, SnapshotCapturesResidentLines)
{
    std::vector<LlcAccess> s;
    const std::uint64_t lines[] = {1, 2, 3};
    for (std::uint64_t i = 0; i < 3; ++i)
        s.push_back(LlcAccess{0x100 + lines[i], lines[i] * 64,
                              lines[i], trace::AccessType::Load});
    const auto oracle = computeOracle(s);
    LlcReplayer rep(CacheConfig{"llc", 1, 4, 64, 1, 4},
                    std::make_unique<LruPolicy>());
    std::vector<ReplayEvent> events;
    rep.replay(s, &oracle,
               [&events](const ReplayEvent &ev) { events.push_back(ev); });
    EXPECT_TRUE(events[0].snapshot.empty());
    ASSERT_EQ(events[2].snapshot.size(), 2u);
    EXPECT_EQ(events[2].snapshot[0].line, 1u);
    EXPECT_EQ(events[2].snapshot[0].pc, 0x101u);
    EXPECT_EQ(events[2].scores.size(), 4u);
}

TEST(ReplayTest, BeladyNeverBelowLruHitRate)
{
    // Belady must dominate LRU on any stream (with bypass allowed).
    auto model = trace::makeWorkload(trace::WorkloadKind::Astar, 99);
    const auto t = model->generate(40000);
    const auto stream = captureLlcStream(t);
    ASSERT_GT(stream.size(), 1000u);
    const auto oracle = computeOracle(stream);

    CacheConfig llc{"llc", 256, 16, 64, 26, 64};
    LlcReplayer lru(llc, std::make_unique<LruPolicy>());
    LlcReplayer opt(llc, std::make_unique<BeladyPolicy>());
    const auto s_lru = lru.replay(stream, &oracle, nullptr);
    const auto s_opt = opt.replay(stream, &oracle, nullptr);
    EXPECT_GE(s_opt.hitRate(), s_lru.hitRate());
}

TEST(ReplayTest, MissClassification)
{
    // Cache: 4 sets x 2 ways = 8 lines total.
    const CacheConfig llc{"llc", 4, 2, 64, 1, 4};

    std::vector<LlcAccess> s;
    auto push = [&s](std::uint64_t line) {
        s.push_back(
            LlcAccess{0x4, line * 64, line, trace::AccessType::Load});
    };
    // Round 1: 16 distinct lines (compulsory), then revisit line 0:
    // stack distance 15 >= 8 -> capacity miss.
    for (std::uint64_t l = 0; l < 16; ++l)
        push(l);
    push(0);
    // Conflict: three lines in set 1 (1, 5, 9) cycled with nothing
    // else between -> stack distance 2 < 8, still misses in 2 ways.
    push(1);
    push(5);
    push(9);
    push(1);

    const auto oracle = computeOracle(s);
    LlcReplayer rep(llc, std::make_unique<LruPolicy>());
    std::vector<ReplayEvent> events;
    rep.replay(s, &oracle,
               [&events](const ReplayEvent &ev) { events.push_back(ev); });

    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(events[i].miss_type, MissType::Compulsory);
    ASSERT_EQ(events.size(), 21u);
    EXPECT_EQ(events[16].miss_type, MissType::Capacity);
    EXPECT_EQ(events[20].miss_type, MissType::Conflict);
}

TEST(CoreModelTest, IpcFallsWithMissRate)
{
    // A tight reuse loop has near-ideal IPC; a streaming loop does not.
    trace::Trace hot("hot");
    trace::Trace cold("cold");
    for (std::uint64_t i = 0; i < 20000; ++i) {
        hot.push(i * 4, 0x400, 0x1000 + (i % 4) * 64);
        cold.push(i * 4, 0x400, 0x100000 + i * 64);
    }
    hot.setInstructions(20000 * 4);
    cold.setInstructions(20000 * 4);

    const auto s_hot = runTrace(hot, defaultHierarchyConfig(),
                                std::make_unique<LruPolicy>());
    const auto s_cold = runTrace(cold, defaultHierarchyConfig(),
                                 std::make_unique<LruPolicy>());
    EXPECT_GT(s_hot.ipc, 2.0);
    EXPECT_LT(s_cold.ipc, 0.5);
    EXPECT_GT(s_hot.ipc, s_cold.ipc * 4);
}

TEST(CoreModelTest, PrefetchWarmsWithoutStall)
{
    trace::Trace with_pf("pf");
    trace::Trace without_pf("nopf");
    // Each address is prefetched well before its demand load.
    std::uint64_t id = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        with_pf.push(id++, 0x500, 0x200000 + (i + 8) * 64,
                     trace::AccessType::Prefetch);
        with_pf.push(id++, 0x400, 0x200000 + i * 64);
        without_pf.push(id++, 0x400, 0x200000 + i * 64);
    }
    with_pf.setInstructions(id);
    without_pf.setInstructions(id);
    const auto s_pf = runTrace(with_pf, defaultHierarchyConfig(),
                               std::make_unique<LruPolicy>());
    const auto s_np = runTrace(without_pf, defaultHierarchyConfig(),
                               std::make_unique<LruPolicy>());
    EXPECT_GT(s_pf.ipc, s_np.ipc);
}

TEST(ParrotBuilderTest, TrainsOnStream)
{
    auto model = trace::makeWorkload(trace::WorkloadKind::Lbm, 7);
    const auto t = model->generate(20000);
    const auto stream = captureLlcStream(t);
    const auto oracle = computeOracle(stream);
    const auto parrot = ParrotModelBuilder::train(stream, oracle);
    EXPECT_TRUE(parrot.trained());
    EXPECT_GT(parrot.table.size(), 3u);
}
