/**
 * @file
 * Randomized property tests for the chunked postings containers and
 * the adaptive intersection kernels (src/db/postings_ops).
 *
 * The contract under test is byte-identity: whatever mix of container
 * kinds (sorted uint16 array vs bitmap) and kernels (galloping, linear
 * SIMD/scalar merge, word-AND, bit probe) the selector picks, the
 * output must equal std::set_intersection over the raw row-id lists,
 * in ascending order, truncated to `limit`. The same binary runs in
 * the SIMD build, the -DCACHEMIND_DISABLE_SIMD=ON build, and under
 * TSan/ASan/UBSan, so the scalar fallback is pinned to the exact same
 * answers as the vector paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "db/postings_ops.hh"

namespace db = cachemind::db;

namespace {

/**
 * Draw a sorted, duplicate-free row-id list: each row in [0, universe)
 * is present independently with probability `density`.
 */
std::vector<std::uint32_t>
randomList(std::mt19937 &rng, std::uint32_t universe, double density)
{
    std::bernoulli_distribution keep(density);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t r = 0; r < universe; ++r)
        if (keep(rng))
            rows.push_back(r);
    return rows;
}

/** A store holding the list as key 0. */
db::PostingsStore
storeOf(const std::vector<std::uint32_t> &rows)
{
    db::PostingsStore s;
    s.appendKey(rows.data(), rows.size());
    s.shrink();
    return s;
}

std::vector<std::uint32_t>
referenceIntersect(const std::vector<std::uint32_t> &a,
                   const std::vector<std::uint32_t> &b)
{
    std::vector<std::uint32_t> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

std::uint64_t
countersTotal(const db::PostingsOpsCounters &c)
{
    return c.galloping.load() + c.merge_simd.load() +
           c.merge_scalar.load() + c.bitmap_words.load() +
           c.bitmap_probe.load();
}

} // namespace

TEST(PostingsStoreTest, RoundTripAcrossContainerKinds)
{
    std::mt19937 rng(0xC0FFEEu);
    // Universe spans >4 chunks; densities straddle the array/bitmap
    // crossover (4096 rows per 64K chunk ~ density 0.0625).
    const std::uint32_t universe = 5u * db::kPostingsChunkSize / 2;
    for (double density : {0.0005, 0.01, 0.1, 0.3}) {
        const auto rows = randomList(rng, universe, density);
        const auto store = storeOf(rows);
        const db::PostingsList list = store.list(0);
        EXPECT_EQ(list.size(), rows.size());

        std::vector<std::uint32_t> decoded;
        db::decodeList(list, decoded);
        EXPECT_EQ(decoded, rows) << "density " << density;

        // limit truncates to an exact prefix.
        for (std::size_t limit : {std::size_t{1}, std::size_t{7},
                                  rows.size() / 2}) {
            if (limit == 0)
                continue;
            db::decodeList(list, decoded, limit);
            const std::size_t want = std::min(limit, rows.size());
            ASSERT_EQ(decoded.size(), want);
            EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                                   rows.begin()));
        }

        if (density >= 0.1) {
            EXPECT_GT(store.bitmapChunks(), 0u) << "density " << density;
        }
        if (density <= 0.01) {
            EXPECT_GT(store.arrayChunks(), 0u) << "density " << density;
        }
    }
}

TEST(PostingsStoreTest, EmptyAndOutOfRangeKeys)
{
    db::PostingsStore store;
    store.appendKey(nullptr, 0);
    const std::uint32_t one = 42;
    store.appendKey(&one, 1);
    store.shrink();

    EXPECT_EQ(store.keys(), 2u);
    EXPECT_TRUE(store.list(0).empty());
    EXPECT_EQ(store.list(1).size(), 1u);
    EXPECT_TRUE(store.list(2).empty());
    EXPECT_TRUE(store.list(999).empty());

    std::vector<std::uint32_t> out;
    db::decodeList(store.list(1), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42u);
}

TEST(PostingsOpsTest, IntersectionMatchesReferenceAcrossDensities)
{
    std::mt19937 rng(0xFACADEu);
    const std::uint32_t universe = 3u * db::kPostingsChunkSize;
    const double densities[] = {0.0005, 0.01, 0.1, 0.3};
    for (double da : densities) {
        for (double db_ : densities) {
            const auto a = randomList(rng, universe, da);
            const auto b = randomList(rng, universe, db_);
            const auto want = referenceIntersect(a, b);
            const auto sa = storeOf(a);
            const auto sb = storeOf(b);

            std::vector<std::uint32_t> got;
            db::intersectLists(sa.list(0), sb.list(0), 0, got);
            EXPECT_EQ(got, want) << "densities " << da << "x" << db_;

            // Symmetry: intersection is order-independent.
            std::vector<std::uint32_t> swapped;
            db::intersectLists(sb.list(0), sa.list(0), 0, swapped);
            EXPECT_EQ(swapped, want);

            // limit yields an exact prefix of the full answer.
            for (std::size_t limit :
                 {std::size_t{1}, std::size_t{3}, want.size()}) {
                if (limit == 0)
                    continue;
                db::intersectLists(sa.list(0), sb.list(0), limit, got);
                const std::size_t take = std::min(limit, want.size());
                ASSERT_EQ(got.size(), take);
                EXPECT_TRUE(std::equal(got.begin(), got.end(),
                                       want.begin()));
            }
        }
    }
}

TEST(PostingsOpsTest, ForcedKernelsAreByteIdentical)
{
    std::mt19937 rng(0xBEEFu);
    const std::uint32_t universe = 2u * db::kPostingsChunkSize;
    // Sparse lists only: forced kernels apply to array x array pairs.
    struct Case {
        double da, db;
    } cases[] = {{0.001, 0.001}, {0.03, 0.03}, {0.0002, 0.05}};
    for (const auto &c : cases) {
        const auto a = randomList(rng, universe, c.da);
        const auto b = randomList(rng, universe, c.db);
        const auto want = referenceIntersect(a, b);
        const auto sa = storeOf(a);
        const auto sb = storeOf(b);

        for (auto force : {db::IntersectKernel::Auto,
                           db::IntersectKernel::Galloping,
                           db::IntersectKernel::Merge}) {
            std::vector<std::uint32_t> got;
            db::intersectLists(sa.list(0), sb.list(0), 0, got, nullptr,
                               force);
            EXPECT_EQ(got, want)
                << "force " << static_cast<int>(force) << " densities "
                << c.da << "x" << c.db;
        }
    }
}

TEST(PostingsOpsTest, MergeKernelHandlesZeroValuedLanes)
{
    // Regression guard for the SSE4.2 merge: _mm_cmpistrm would treat
    // 0x0000 lanes as string terminators; the kernel must use explicit
    // lengths (_mm_cmpestrm) so row id 0 and in-chunk offset 0 match
    // like any other value. Comparable lengths >= 16 per side force
    // the linear merge even under Auto.
    std::vector<std::uint32_t> a, b;
    for (std::uint32_t i = 0; i < 40; ++i) {
        a.push_back(i * 2);       // includes 0
        b.push_back(i * 3);       // includes 0
    }
    const auto want = referenceIntersect(a, b);
    ASSERT_FALSE(want.empty());
    ASSERT_EQ(want.front(), 0u);

    const auto sa = storeOf(a);
    const auto sb = storeOf(b);
    std::vector<std::uint32_t> got;
    db::intersectLists(sa.list(0), sb.list(0), 0, got, nullptr,
                       db::IntersectKernel::Merge);
    EXPECT_EQ(got, want);
}

TEST(PostingsOpsTest, DisjointAndEmptyLists)
{
    std::vector<std::uint32_t> a{1, 5, 9}, b{2, 6, 10}, empty;
    const auto sa = storeOf(a);
    const auto sb = storeOf(b);
    const auto se = storeOf(empty);

    std::vector<std::uint32_t> out{7};  // pre-filled: must be cleared
    db::intersectLists(sa.list(0), sb.list(0), 0, out);
    EXPECT_TRUE(out.empty());
    db::intersectLists(sa.list(0), se.list(0), 0, out);
    EXPECT_TRUE(out.empty());
    db::intersectLists(se.list(0), se.list(0), 0, out);
    EXPECT_TRUE(out.empty());

    // Non-overlapping chunk ranges short-circuit to empty too.
    std::vector<std::uint32_t> far{db::kPostingsChunkSize * 3 + 1};
    const auto sf = storeOf(far);
    db::intersectLists(sa.list(0), sf.list(0), 0, out);
    EXPECT_TRUE(out.empty());
}

TEST(PostingsOpsTest, CountersRecordKernelSelection)
{
    std::mt19937 rng(0x5EEDu);
    const std::uint32_t universe = db::kPostingsChunkSize;

    // Skewed array pair -> galloping.
    {
        const auto a = randomList(rng, universe, 0.0003);
        const auto b = randomList(rng, universe, 0.05);
        ASSERT_GE(b.size(), a.size() * db::kGallopSkewRatio);
        const auto sa = storeOf(a);
        const auto sb = storeOf(b);
        db::PostingsOpsCounters c;
        std::vector<std::uint32_t> out;
        db::intersectLists(sa.list(0), sb.list(0), 0, out, &c);
        EXPECT_GT(c.galloping.load(), 0u);
        EXPECT_GT(c.scalar_ops.load(), 0u);
    }

    // Comparable array pair -> linear merge (SIMD when available).
    {
        const auto a = randomList(rng, universe, 0.02);
        const auto b = randomList(rng, universe, 0.02);
        const auto sa = storeOf(a);
        const auto sb = storeOf(b);
        db::PostingsOpsCounters c;
        std::vector<std::uint32_t> out;
        db::intersectLists(sa.list(0), sb.list(0), 0, out, &c);
        if (db::simdCompiled()) {
            EXPECT_GT(c.merge_simd.load(), 0u);
            EXPECT_GT(c.simd_ops.load(), 0u);
        } else {
            EXPECT_GT(c.merge_scalar.load(), 0u);
            EXPECT_GT(c.scalar_ops.load(), 0u);
        }
    }

    // Dense pair -> bitmap word-AND; dense x sparse -> bit probes.
    {
        const auto a = randomList(rng, universe, 0.2);
        const auto b = randomList(rng, universe, 0.2);
        const auto s = randomList(rng, universe, 0.001);
        const auto sa = storeOf(a);
        const auto sb = storeOf(b);
        const auto ss = storeOf(s);
        db::PostingsOpsCounters c;
        std::vector<std::uint32_t> out;
        db::intersectLists(sa.list(0), sb.list(0), 0, out, &c);
        EXPECT_GT(c.bitmap_words.load(), 0u);
        db::intersectLists(sa.list(0), ss.list(0), 0, out, &c);
        EXPECT_GT(c.bitmap_probe.load(), 0u);
        EXPECT_GT(countersTotal(c), 0u);
    }
}
