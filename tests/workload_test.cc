/**
 * @file
 * Property tests over the workload models (parameterized across every
 * workload): determinism, PC/symbol coverage, and the per-workload
 * memory phenomenology the paper's analyses depend on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "policy/basic_policies.hh"
#include "sim/llc_replay.hh"
#include "trace/workload.hh"
#include "trace/workload_models.hh"

using namespace cachemind;
using trace::WorkloadKind;

class WorkloadParamTest
    : public ::testing::TestWithParam<trace::WorkloadKind>
{
};

TEST_P(WorkloadParamTest, GenerationIsDeterministic)
{
    auto a = trace::makeWorkload(GetParam());
    auto b = trace::makeWorkload(GetParam());
    const auto ta = a->generate(5000);
    const auto tb = b->generate(5000);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].pc, tb[i].pc);
        EXPECT_EQ(ta[i].address, tb[i].address);
        EXPECT_EQ(ta[i].instr_id, tb[i].instr_id);
    }
}

TEST_P(WorkloadParamTest, DifferentSeedsChangeTheTrace)
{
    auto a = trace::makeWorkload(GetParam(), 1);
    auto b = trace::makeWorkload(GetParam(), 2);
    const auto ta = a->generate(3000);
    const auto tb = b->generate(3000);
    std::size_t same = 0;
    const std::size_t n = std::min(ta.size(), tb.size());
    for (std::size_t i = 0; i < n; ++i)
        same += ta[i].address == tb[i].address;
    EXPECT_LT(same, n); // at least some accesses must differ
}

TEST_P(WorkloadParamTest, RespectsRequestedLength)
{
    auto model = trace::makeWorkload(GetParam());
    const auto t = model->generate(20000);
    EXPECT_LE(t.size(), 20000u);
    EXPECT_GE(t.size(), 19000u); // within the builder's slack
}

TEST_P(WorkloadParamTest, InstructionIdsAreMonotone)
{
    auto model = trace::makeWorkload(GetParam());
    const auto t = model->generate(5000);
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GT(t[i].instr_id, t[i - 1].instr_id);
    EXPECT_GE(t.instructions(), t.size());
}

TEST_P(WorkloadParamTest, EveryPcHasASymbol)
{
    auto model = trace::makeWorkload(GetParam());
    const auto t = model->generate(8000);
    std::set<std::uint64_t> pcs;
    for (const auto &r : t)
        pcs.insert(r.pc);
    EXPECT_GE(pcs.size(), 4u);
    for (const auto pc : pcs) {
        EXPECT_NE(model->symbols().functionName(pc), "unknown")
            << "pc " << std::hex << pc;
    }
}

TEST_P(WorkloadParamTest, InfoIsComplete)
{
    auto model = trace::makeWorkload(GetParam());
    EXPECT_FALSE(model->info().name.empty());
    EXPECT_GT(model->info().description.size(), 60u);
    EXPECT_GT(model->info().default_accesses, 10000u);
    EXPECT_EQ(model->info().name, trace::workloadName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::ValuesIn(trace::allWorkloads()),
    [](const ::testing::TestParamInfo<trace::WorkloadKind> &info) {
        return trace::workloadName(info.param);
    });

TEST(WorkloadRegistryTest, NamesRoundTrip)
{
    for (const auto kind : trace::allWorkloads()) {
        trace::WorkloadKind parsed;
        ASSERT_TRUE(trace::workloadKindFromName(
            trace::workloadName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    trace::WorkloadKind parsed;
    EXPECT_FALSE(trace::workloadKindFromName("gcc", parsed));
    EXPECT_TRUE(trace::workloadKindFromName("  MCF  ", parsed));
    EXPECT_EQ(parsed, WorkloadKind::Mcf);
}

TEST(WorkloadPhenomenologyTest, McfIsMissDominated)
{
    const auto t = trace::makeWorkload(WorkloadKind::Mcf)->generate(
        60000);
    const auto stream = sim::captureLlcStream(t);
    sim::LlcReplayer rep(sim::defaultHierarchyConfig().llc,
                         std::make_unique<policy::LruPolicy>());
    const auto stats = rep.replay(stream, nullptr, nullptr);
    EXPECT_GT(stats.missRate(), 0.75);
}

TEST(WorkloadPhenomenologyTest, McfBasketPcHasHighHitRateAtLlc)
{
    // PC 0x4037ba (the candidate basket) is the paper's example of a
    // PC with notably *good* cache behaviour in mcf.
    const auto t = trace::makeWorkload(WorkloadKind::Mcf)->generate(
        120000);
    const auto stream = sim::captureLlcStream(t);
    std::uint64_t basket = 0, scan = 0;
    for (const auto &a : stream) {
        basket += a.pc == 0x4037ba;
        scan += a.pc == 0x4037aa;
    }
    // The scan PC floods the LLC; the basket PC is mostly filtered by
    // L1/L2 (strong locality) so it reaches the LLC far less often.
    EXPECT_GT(scan, basket * 2);
}

TEST(WorkloadPhenomenologyTest, MicrobenchHasOneDominantMissPc)
{
    const auto t =
        trace::makeWorkload(WorkloadKind::Microbench)->generate(80000);
    const auto stream = sim::captureLlcStream(t);
    std::map<std::uint64_t, std::uint64_t> counts;
    for (const auto &a : stream)
        ++counts[a.pc];
    std::uint64_t chase = counts[0x400512];
    std::uint64_t total = 0;
    for (const auto &[pc, n] : counts)
        total += n;
    EXPECT_GT(chase, total / 2); // the chase PC dominates LLC traffic
}

TEST(WorkloadPhenomenologyTest, MicrobenchPrefetchVariantAddsPrefetches)
{
    auto plain = trace::makeMicrobenchModel(7);
    auto fixed = trace::makeMicrobenchModel(7, 16);
    const auto tp = plain->generate(20000);
    const auto tf = fixed->generate(20000);
    std::size_t plain_pf = 0, fixed_pf = 0;
    for (const auto &r : tp)
        plain_pf += r.type == trace::AccessType::Prefetch;
    for (const auto &r : tf)
        fixed_pf += r.type == trace::AccessType::Prefetch;
    EXPECT_EQ(plain_pf, 0u);
    EXPECT_GT(fixed_pf, 1000u);
}

TEST(WorkloadPhenomenologyTest, MilcSweepPcIsStableGatherIsNot)
{
    // Full default length: the sweep period must repeat a few times
    // before per-PC reuse distances are observable at the LLC.
    const auto t = trace::makeWorkload(WorkloadKind::Milc)->generate();
    const auto stream = sim::captureLlcStream(t);
    const auto oracle = sim::computeOracle(stream);

    auto reuse_cov = [&](std::uint64_t pc) {
        double sum = 0.0, sum2 = 0.0;
        std::size_t n = 0;
        for (std::size_t i = 0; i < stream.size(); ++i) {
            if (stream[i].pc != pc ||
                oracle.next_use[i] == policy::kNoNextUse) {
                continue;
            }
            const double rd =
                static_cast<double>(oracle.next_use[i] - i);
            sum += rd;
            sum2 += rd * rd;
            ++n;
        }
        if (n < 10 || sum <= 0.0)
            return 1e9;
        const double mean = sum / n;
        const double var = sum2 / n - mean * mean;
        return std::sqrt(std::max(0.0, var)) / mean;
    };
    // The regular sweep PC must be markedly more predictable than
    // the random gather PC.
    EXPECT_LT(reuse_cov(0x413930), reuse_cov(0x413948));
}

TEST(SymbolTableTest, AssemblyIsDeterministicAndAnchored)
{
    auto model = trace::makeWorkload(WorkloadKind::Mcf);
    const auto &symbols = model->symbols();
    const auto a = symbols.assemblyAround(0x4037aa);
    const auto b = symbols.assemblyAround(0x4037aa);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("primal_bea_mpp"), std::string::npos);
    EXPECT_NE(a.find("=>"), std::string::npos);
    EXPECT_NE(a.find("4037aa"), std::string::npos);
}

TEST(SymbolTableTest, LookupBoundaries)
{
    trace::SymbolTable table;
    table.addFunction({"f", 0x100, 0x200, "src"});
    EXPECT_EQ(table.functionName(0x100), "f");
    EXPECT_EQ(table.functionName(0x1ff), "f");
    EXPECT_EQ(table.functionName(0x200), "unknown");
    EXPECT_EQ(table.functionName(0xff), "unknown");
    EXPECT_EQ(table.sourceFor(0x150), "src");
    EXPECT_TRUE(table.sourceFor(0x50).empty());
}
