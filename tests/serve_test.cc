/**
 * @file
 * Tests for the serving front-end: the line protocol (parse/render
 * round trips, malformed input), and the TCP server — N concurrent
 * clients receiving answers byte-identical to blocking ask() across
 * all three retrievers with the shared retrieval cache on, admission
 * control rejecting past capacity with a typed overloaded frame, a
 * deliberately slow consumer exercising channel backpressure without
 * stalling other sessions, and a mid-stream disconnect cancelling the
 * in-flight retrieval (TSan-covered). Also pins the engine-level
 * serving satellites: the persistent askStream worker pool and the
 * cooperative cancellation token.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/stopwatch.hh"
#include "base/str.hh"
#include "core/cachemind.hh"
#include "core/stream.hh"
#include "core/worker_pool.hh"
#include "db/builder.hh"
#include "obs/trace.hh"
#include "retrieval/context.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace cachemind;
using namespace cachemind::core;
using namespace cachemind::serve;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 30000;
        return db::buildDatabase(options);
    }();
    return database;
}

std::vector<std::string>
suiteQuestions()
{
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    return {
        "What is the miss rate for PC " + str::hex(pc) +
            " in the astar workload with LRU?",
        "Which policy has the lowest miss rate in the astar workload?",
        "How many times did PC " + str::hex(pc) +
            " appear in the astar workload under LRU?",
        "Why does Belady outperform LRU in the astar workload?",
    };
}

/** Frames collected for one ask request. */
struct AskResult
{
    std::vector<std::string> kinds;
    std::string deltas;
    std::string answer;
    bool done = false;
};

/** Drive one ask over an open connection and collect its frames. */
AskResult
askOver(LineClient &client, const std::string &id,
        const std::string &question, const std::string &retriever)
{
    Request req;
    req.op = Request::Op::Ask;
    req.id = id;
    req.question = question;
    req.retriever = retriever;
    AskResult out;
    if (!client.sendLine(renderRequest(req)))
        return out;
    while (auto line = client.recvLine()) {
        const auto frame = parseJsonObject(*line);
        if (!frame.has_value())
            return out; // malformed frame: fail the assertions below
        const auto kind = frame->at("frame");
        out.kinds.push_back(kind);
        if (kind == "delta")
            out.deltas += frame->at("text");
        if (kind == "done") {
            out.answer = frame->at("answer");
            out.done = true;
            return out;
        }
        if (kind == "error" || kind == "overloaded")
            return out;
    }
    return out;
}

/** Read frames until (and including) the hello banner. */
bool
expectHello(LineClient &client)
{
    const auto line = client.recvLine();
    if (!line)
        return false;
    const auto frame = parseJsonObject(*line);
    return frame.has_value() && frame->at("frame") == "hello";
}

} // namespace

// --------------------------------------------------------------- protocol

TEST(ProtocolTest, RequestRoundTripsThroughRenderAndParse)
{
    Request req;
    req.op = Request::Op::Ask;
    req.id = "42";
    req.question = "Why \"quoted\"\nand newlined?";
    req.retriever = "ranger";
    req.backend = "o3";
    req.params["fidelity"] = "0.6";
    const auto parsed = parseRequest(renderRequest(req));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, Request::Op::Ask);
    EXPECT_EQ(parsed->id, "42");
    EXPECT_EQ(parsed->question, req.question);
    EXPECT_EQ(parsed->retriever, "ranger");
    EXPECT_EQ(parsed->backend, "o3");
    ASSERT_EQ(parsed->params.size(), 1u);
    EXPECT_EQ(parsed->params.at("fidelity"), "0.6");
}

TEST(ProtocolTest, MalformedLinesAreRejectedWithAReason)
{
    for (const char *bad :
         {"", "not json", "{\"op\":\"ask\"", "{\"op\":\"launch\"}",
          "{\"op\":\"ask\"}", "{\"op\":\"ask\",\"question\":\"x\"} ho",
          "[1,2]", "{\"op\":\"ask\",\"q\":{\"deep\":{\"er\":1}}}"}) {
        std::string why;
        EXPECT_FALSE(parseRequest(bad, &why).has_value()) << bad;
        EXPECT_FALSE(why.empty()) << bad;
    }
}

TEST(ProtocolTest, DeadlineFieldRoundTripsAndRejectsGarbage)
{
    Request req;
    req.op = Request::Op::Ask;
    req.id = "9";
    req.question = "how slow?";
    req.deadline_ms = 250.0;
    const auto parsed = parseRequest(renderRequest(req));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->deadline_ms, 250.0);

    // Absent field = 0 (server default applies).
    const auto bare =
        parseRequest("{\"op\":\"ask\",\"question\":\"q\"}");
    ASSERT_TRUE(bare.has_value());
    EXPECT_DOUBLE_EQ(bare->deadline_ms, 0.0);

    // Non-numeric and negative deadlines are rejected, not ignored.
    for (const char *bad :
         {"{\"op\":\"ask\",\"question\":\"q\",\"deadline_ms\":\"soon\"}",
          "{\"op\":\"ask\",\"question\":\"q\",\"deadline_ms\":-5}"}) {
        std::string why;
        EXPECT_FALSE(parseRequest(bad, &why).has_value()) << bad;
        EXPECT_NE(why.find("deadline_ms"), std::string::npos) << why;
    }
}

TEST(ProtocolTest, FailpointsRequestRoundTrips)
{
    Request req;
    req.op = Request::Op::Failpoints;
    req.id = "fp";
    req.failpoint_spec = "serve.read=drop@0.05,db.index_build=error#1";
    const auto parsed = parseRequest(renderRequest(req));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, Request::Op::Failpoints);
    EXPECT_EQ(parsed->failpoint_spec, req.failpoint_spec);
}

TEST(ProtocolTest, RobustnessFramesParseBack)
{
    const auto cut = parseJsonObject(deadlineExceededFrame("3", 150.0));
    ASSERT_TRUE(cut.has_value());
    EXPECT_EQ(cut->at("frame"), "deadline_exceeded");
    EXPECT_EQ(cut->at("id"), "3");
    EXPECT_EQ(cut->at("deadline_ms"), "150");

    const auto armed = parseJsonObject(failpointsFrame("4", 2));
    ASSERT_TRUE(armed.has_value());
    EXPECT_EQ(armed->at("frame"), "failpoints");
    EXPECT_EQ(armed->at("armed"), "2");
}

TEST(ProtocolTest, EventFramesParseBackWithEscapedPayloads)
{
    StreamEvent event;
    event.kind = StreamEvent::Kind::EvidenceChunk;
    event.label = "slice";
    event.text = "line one\nline \"two\"\ttabbed\\end";
    const auto frame = parseJsonObject(eventFrame("7", event));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "evidence");
    EXPECT_EQ(frame->at("id"), "7");
    EXPECT_EQ(frame->at("label"), "slice");
    EXPECT_EQ(frame->at("text"), event.text);
}

// ------------------------------------------------------------ worker pool

TEST(WorkerPoolTest, RunsEveryJobIncludingQueuedAtDestruction)
{
    std::atomic<int> ran{0};
    {
        WorkerPool pool(2);
        EXPECT_EQ(pool.threadsStarted(), 0u); // lazy: no work yet
        for (int i = 0; i < 64; ++i)
            pool.submit([&] { ++ran; });
        EXPECT_LE(pool.threadsStarted(), 2u);
    } // destructor drains the queue
    EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPoolTest, ReusesAParkedThreadAcrossSequentialJobs)
{
    WorkerPool pool(4);
    for (int i = 0; i < 16; ++i) {
        std::atomic<bool> done{false};
        pool.submit([&] { done.store(true); });
        while (!done.load())
            std::this_thread::yield();
    }
    // Sequential jobs never overlap, so the lazy pool should have
    // parked and reused one thread instead of growing toward its cap.
    EXPECT_EQ(pool.threadsStarted(), 1u);
}

TEST(AskStreamTest, SequentialStreamsReuseThePersistentWorker)
{
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("sieve")
                      .build()
                      .expect("engine");
    const auto questions = suiteQuestions();
    for (int round = 0; round < 3; ++round) {
        auto stream =
            engine.askStream(questions[0]).expect("stream");
        const Response r = stream.wait();
        EXPECT_FALSE(r.text.empty());
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.stream.streams, 3u);
    // Warm-up ran exactly once and is reported separately from the
    // per-stream time-to-first-event percentiles.
    EXPECT_EQ(stats.stream.warmups, 1u);
    EXPECT_GE(stats.stream.warmup_ms_total, 0.0);
}

// -------------------------------------------------------- cancellation

namespace {

/** Sink whose cancellation token trips after N emitted sections. */
class TrippingSink final : public retrieval::EvidenceSink
{
  public:
    explicit TrippingSink(int allowed) : allowed_(allowed) {}

    void
    emit(const std::string &, const std::string &) override
    {
        ++emitted_;
    }

    bool
    cancelled() const override
    {
        return emitted_ >= allowed_;
    }

    int emitted() const { return emitted_; }

  private:
    int allowed_;
    int emitted_ = 0;
};

} // namespace

TEST(CancellationTest, RetrieversAbandonWorkWhenTheTokenTrips)
{
    // All three retrievers must poll the token between sections and
    // unwind with StreamCancelled instead of finishing the bundle.
    const auto questions = suiteQuestions();
    for (const char *name : {"sieve", "ranger", "llamaindex"}) {
        auto engine = CacheMind::Builder(sharedDb())
                          .withRetriever(name)
                          .build()
                          .expect(name);
        const auto parsed = engine.parser().parse(questions[0]);
        TrippingSink sink(1);
        EXPECT_THROW(engine.retriever().retrieveParsed(parsed, sink),
                     retrieval::StreamCancelled)
            << name;
        EXPECT_GE(sink.emitted(), 1) << name;
    }
}

TEST(CancellationTest, CancelledStreamIsCountedAndEngineStaysUsable)
{
    // A paced stream cancelled after its first delta must be recorded
    // as cancelled (no latency sample) and leave the engine healthy.
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("sieve")
                      .withStreamBuffer(1)
                      .withTokensPerSecond(50.0)
                      .build()
                      .expect("engine");
    const auto questions = suiteQuestions();
    {
        auto stream = engine.askStream(questions[3]).expect("stream");
        while (auto event = stream.next()) {
            if (event->kind == StreamEvent::Kind::AnswerDelta)
                break;
        }
        stream.cancel();
    }
    // cancel() waited for the pipeline job to retire, so the counter
    // is already final.
    const auto stats = engine.stats();
    EXPECT_EQ(stats.stream.cancelled, 1u);
    EXPECT_EQ(stats.questions, 0u); // no latency sample recorded
    auto result = engine.ask(questions[0]);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().text.empty());
}

// ------------------------------------------------------------- pacing

TEST(PacingTest, TokensPerSecondPacesDeltasWithoutChangingBytes)
{
    const auto questions = suiteQuestions();
    auto unpaced = CacheMind::Builder(sharedDb())
                       .withRetriever("sieve")
                       .build()
                       .expect("unpaced");
    auto paced = CacheMind::Builder(sharedDb())
                     .withRetriever("sieve")
                     .withTokensPerSecond(2000.0)
                     .build()
                     .expect("paced");
    const std::string expected =
        unpaced.ask(questions[3]).expect("ask").text;

    auto stream = paced.askStream(questions[3]).expect("stream");
    std::string deltas;
    std::size_t delta_events = 0;
    Stopwatch timer;
    std::optional<Response> done;
    while (auto event = stream.next()) {
        if (event->kind == StreamEvent::Kind::AnswerDelta) {
            deltas += event->text;
            ++delta_events;
        }
        if (event->kind == StreamEvent::Kind::Done)
            done = *event->response;
    }
    ASSERT_TRUE(done.has_value());
    // Byte identity: pacing changes timing only.
    EXPECT_EQ(done->text, expected);
    EXPECT_EQ(deltas, expected);
    if (delta_events > 1) {
        // Lower bound on the pacing sleeps: every delta after the
        // first waits >= 1 token / 2000 tps = 0.5ms.
        const double floor_ms =
            0.5 * static_cast<double>(delta_events - 1);
        EXPECT_GE(timer.milliseconds(), floor_ms);
    }
}

// ------------------------------------------------------------- serving

TEST(ServerTest, PingStatsAndMalformedLines)
{
    ServeOptions opts;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    ASSERT_TRUE(client.sendLine("{\"op\":\"ping\",\"id\":\"p1\"}"));
    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "pong");
    EXPECT_EQ(frame->at("id"), "p1");

    ASSERT_TRUE(client.sendLine("this is not json"));
    line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "error");

    ASSERT_TRUE(client.sendLine("{\"op\":\"stats\",\"id\":\"s1\"}"));
    line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "stats");
    EXPECT_EQ(frame->at("accepted"), "1");
    EXPECT_EQ(frame->at("malformed"), "1");

    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.malformed, 1u);
    server.stop();
}

TEST(ServerTest, ConcurrentClientsMatchBlockingAskAllRetrievers)
{
    // The acceptance bar: 32 concurrent clients, three retrievers,
    // shared retrieval cache on — every streamed answer (and the
    // concatenation of its deltas) byte-identical to blocking ask().
    constexpr std::size_t kClients = 32;
    const char *retrievers[] = {"sieve", "ranger", "llamaindex"};
    const auto questions = suiteQuestions();

    // Blocking references, one engine per retriever.
    std::map<std::string, std::vector<std::string>> expected;
    for (const char *name : retrievers) {
        auto engine = CacheMind::Builder(sharedDb())
                          .withRetriever(name)
                          .build()
                          .expect(name);
        for (const auto &q : questions)
            expected[name].push_back(engine.ask(q).expect("ask").text);
    }

    ServeOptions opts;
    opts.max_sessions = kClients;
    opts.max_engines_per_key = 2;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const std::string retriever = retrievers[c % 3];
            LineClient client;
            if (!client.connect("127.0.0.1", server.port()) ||
                !expectHello(client)) {
                ++failures;
                return;
            }
            for (std::size_t q = 0; q < questions.size(); ++q) {
                const std::size_t qi = (c + q) % questions.size();
                const auto got =
                    askOver(client, std::to_string(c) + "-" +
                                        std::to_string(q),
                            questions[qi], retriever);
                if (!got.done) {
                    ++failures;
                    return;
                }
                if (got.answer != expected[retriever][qi] ||
                    got.deltas != expected[retriever][qi])
                    ++mismatches;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);

    // A session records completion after writing the done frame, so
    // clients can observe their answers slightly before the counter
    // settles — poll the snapshot.
    ServeStats stats = server.stats();
    for (int i = 0;
         i < 500 && stats.completed < kClients * questions.size();
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        stats = server.stats();
    }
    EXPECT_EQ(stats.accepted, kClients);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, kClients * questions.size());
    // All three retrievers really served, with TTFE/TTLB recorded.
    for (const char *name : retrievers) {
        ASSERT_TRUE(stats.by_retriever.count(name)) << name;
        EXPECT_GT(stats.by_retriever.at(name).asks, 0u) << name;
        EXPECT_GE(stats.by_retriever.at(name).ttlb_p50_ms,
                  stats.by_retriever.at(name).ttfe_p50_ms)
            << name;
    }
    // The shared cache coalesced repeated questions across sessions.
    EXPECT_GT(stats.engine.cache.hits, 0u);
    server.stop();
}

TEST(ServerTest, LeaseReleasesWakeWaitersOnTheReleasedKey)
{
    // Regression: with one condvar shared across pool keys and
    // notify_one, a release on key A could wake a waiter queued on
    // key B, which re-checks its own predicate and sleeps again —
    // the waiter on key A then hangs forever beside a parked idle
    // engine. Per-key condvars must keep every session completing
    // with more waiters than engines on each of two distinct keys.
    ServeOptions opts;
    opts.max_engines_per_key = 1;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());
    const auto questions = suiteQuestions();

    constexpr int kClientsPerKey = 4;
    const char *retrievers[] = {"sieve", "ranger"};
    std::atomic<int> done_count{0};
    std::vector<std::thread> clients;
    for (const char *name : retrievers) {
        for (int c = 0; c < kClientsPerKey; ++c) {
            clients.emplace_back([&, name, c] {
                LineClient client;
                if (!client.connect("127.0.0.1", server.port()) ||
                    !expectHello(client))
                    return;
                for (int q = 0; q < 2; ++q) {
                    const auto got = askOver(
                        client,
                        std::string(name) + "-" + std::to_string(c) +
                            "-" + std::to_string(q),
                        questions[(c + q) % questions.size()], name);
                    if (!got.done)
                        return;
                }
                ++done_count;
            });
        }
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(done_count.load(), 2 * kClientsPerKey);
    server.stop();
}

TEST(ServerTest, OversizedRequestLineGetsErrorFrameAndClose)
{
    // A client that streams bytes past the request-line cap (newline
    // or not) must get a typed bad-request frame and a closed
    // connection, not an unboundedly growing session buffer.
    ServeOptions opts;
    opts.max_request_bytes = 4096;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));
    ASSERT_TRUE(client.sendLine(std::string(64 * 1024, 'a')));

    const auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    const auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "error");
    EXPECT_EQ(frame->at("code"), "bad-request");
    EXPECT_FALSE(client.recvLine().has_value()); // server closed it

    EXPECT_GE(server.stats().malformed, 1u);

    // The slot freed by the closed session is reusable.
    LineClient again;
    ASSERT_TRUE(again.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(again));
    const auto got = askOver(again, "ok", suiteQuestions()[0], "sieve");
    EXPECT_TRUE(got.done);
    server.stop();
}

TEST(ServerTest, AdmissionControlRejectsWithTypedOverloadedFrame)
{
    ServeOptions opts;
    opts.max_sessions = 2;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient a, b;
    ASSERT_TRUE(a.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(a)); // hello => the session is admitted
    ASSERT_TRUE(b.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(b));

    LineClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(c));
    auto line = c.recvLine();
    ASSERT_TRUE(line.has_value());
    const auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "overloaded");
    EXPECT_EQ(frame->at("limit"), "2");
    EXPECT_FALSE(c.recvLine().has_value()); // server closed it

    // An admitted session still serves normally while the server is
    // at its limit.
    const auto got =
        askOver(a, "1", suiteQuestions()[0], "sieve");
    EXPECT_TRUE(got.done);

    // Capacity frees once a session disconnects.
    b.close();
    const auto stats_after = [&] {
        for (int i = 0; i < 200; ++i) {
            LineClient d;
            if (d.connect("127.0.0.1", server.port()) &&
                expectHello(d)) {
                Request ping;
                ping.op = Request::Op::Ping;
                ping.id = "again";
                if (d.sendLine(renderRequest(ping))) {
                    const auto pong = d.recvLine();
                    if (pong) {
                        const auto f = parseJsonObject(*pong);
                        if (f && f->at("frame") == "pong")
                            return true;
                    }
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    }();
    EXPECT_TRUE(stats_after);

    EXPECT_GE(server.stats().rejected, 1u);
    server.stop();
}

TEST(ServerTest, SlowConsumerDoesNotStallOtherSessions)
{
    // The slow session's paced, tiny-buffered stream must stall only
    // its own pipeline worker: a concurrent fast session (separate
    // engine lease) completes while the slow one is still dribbling.
    ServeOptions opts;
    opts.stream_buffer = 1;
    opts.tokens_per_second = 150.0; // slow decode => long stream
    opts.session_send_buffer = 1024;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());
    const auto questions = suiteQuestions();

    LineClient slow;
    ASSERT_TRUE(slow.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(slow));
    Request req;
    req.op = Request::Op::Ask;
    req.id = "slow";
    req.question = questions[3];
    req.retriever = "sieve";
    ASSERT_TRUE(slow.sendLine(renderRequest(req)));
    // Do not read the slow stream yet: its channel and socket buffer
    // fill, and its pipeline worker parks on backpressure.

    std::atomic<bool> fast_done{false};
    std::thread fast([&] {
        LineClient client;
        if (!client.connect("127.0.0.1", server.port()) ||
            !expectHello(client))
            return;
        const auto got = askOver(client, "fast", questions[0], "sieve");
        fast_done.store(got.done);
    });
    fast.join();
    EXPECT_TRUE(fast_done.load());

    // The slow stream still delivers everything, in order, complete.
    AskResult slow_result;
    while (auto line = slow.recvLine()) {
        const auto frame = parseJsonObject(*line);
        ASSERT_TRUE(frame.has_value());
        if (frame->at("frame") == "delta")
            slow_result.deltas += frame->at("text");
        if (frame->at("frame") == "done") {
            slow_result.answer = frame->at("answer");
            slow_result.done = true;
            break;
        }
    }
    EXPECT_TRUE(slow_result.done);
    EXPECT_EQ(slow_result.deltas, slow_result.answer);
    server.stop();
}

TEST(ServerTest, MidStreamDisconnectCancelsRetrievalWork)
{
    ServeOptions opts;
    opts.stream_buffer = 1;
    opts.tokens_per_second = 100.0; // keep the stream alive for long
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());
    const auto questions = suiteQuestions();

    {
        LineClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        ASSERT_TRUE(expectHello(client));
        Request req;
        req.op = Request::Op::Ask;
        req.id = "gone";
        req.question = questions[3];
        req.retriever = "sieve";
        ASSERT_TRUE(client.sendLine(renderRequest(req)));
        // Read to the first answer delta, then vanish mid-stream.
        while (auto line = client.recvLine()) {
            const auto frame = parseJsonObject(*line);
            ASSERT_TRUE(frame.has_value());
            if (frame->at("frame") == "delta")
                break;
        }
        client.close();
    }

    // The dead client surfaces on the session's next write; the
    // session cancels the stream and the engine records it.
    bool cancelled = false;
    for (int i = 0; i < 500 && !cancelled; ++i) {
        const auto stats = server.stats();
        cancelled = stats.cancelled >= 1 &&
                    stats.engine.stream.cancelled >= 1;
        if (!cancelled)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(cancelled);

    // The server (and the now-released engine lease) stays healthy.
    LineClient again;
    ASSERT_TRUE(again.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(again));
    const auto got = askOver(again, "after", questions[0], "sieve");
    EXPECT_TRUE(got.done);
    server.stop();
}

// ------------------------------------------------- protocol v1.1

TEST(ProtocolTest, RequestIdAndTraceRequestsRoundTrip)
{
    // The hello banner advertises the request_id-capable protocol.
    EXPECT_NE(helloFrame().find("\"proto\":\"1.1\""),
              std::string::npos);

    Request ask;
    ask.op = Request::Op::Ask;
    ask.id = "7";
    ask.question = "why?";
    ask.request_id = "req \"42\"";
    auto parsed = parseRequest(renderRequest(ask));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, Request::Op::Ask);
    EXPECT_EQ(parsed->request_id, "req \"42\"");

    Request by_id;
    by_id.op = Request::Op::Trace;
    by_id.id = "8";
    by_id.request_id = "req-42";
    parsed = parseRequest(renderRequest(by_id));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, Request::Op::Trace);
    EXPECT_EQ(parsed->request_id, "req-42");

    Request recent;
    recent.op = Request::Op::Trace;
    recent.id = "9";
    recent.trace_last = 4;
    recent.trace_filter = "bad";
    parsed = parseRequest(renderRequest(recent));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->trace_last, 4u);
    EXPECT_EQ(parsed->trace_filter, "bad");

    // Garbage "last" values are rejected, not ignored.
    std::string why;
    EXPECT_FALSE(
        parseRequest("{\"op\":\"trace\",\"last\":\"many\"}", &why)
            .has_value());
    EXPECT_NE(why.find("last"), std::string::npos);
}

TEST(ProtocolTest, FramesEchoRequestIdOnlyWhenPresent)
{
    // v1.0 callers (empty request_id) get the historical wire format.
    EXPECT_EQ(errorFrame("1", "c", "m").find("request_id"),
              std::string::npos);
    core::StreamEvent delta;
    delta.kind = core::StreamEvent::Kind::AnswerDelta;
    delta.text = "x";
    EXPECT_EQ(eventFrame("1", delta).find("request_id"),
              std::string::npos);

    // v1.1 callers see it on every per-request frame.
    for (const std::string &frame :
         {eventFrame("1", delta, "req-1"),
          errorFrame("1", "c", "m", "req-1"),
          overloadedFrame("1", 4, "req-1"),
          deadlineExceededFrame("1", 50.0, "req-1")}) {
        const auto fields = parseJsonObject(frame);
        ASSERT_TRUE(fields.has_value()) << frame;
        EXPECT_EQ(fields->at("request_id"), "req-1") << frame;
    }

    const auto trace = parseJsonObject(traceFrame("2", 3, "a\nb"));
    ASSERT_TRUE(trace.has_value());
    EXPECT_EQ(trace->at("frame"), "trace");
    EXPECT_EQ(trace->at("found"), "3");
    EXPECT_EQ(trace->at("traces"), "a\nb");
}

TEST(ServerTest, RequestIdEchoedAndTraceVerbReturnsSpanTree)
{
    obs::TraceStore::instance().clear();
    ServeOptions opts;
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));

    // An ask carrying a request_id: every frame echoes it, and the
    // request is traced server-side.
    Request req;
    req.op = Request::Op::Ask;
    req.id = "1";
    req.question = suiteQuestions()[0];
    req.request_id = "req-e2e";
    ASSERT_TRUE(client.sendLine(renderRequest(req)));
    bool done = false;
    std::size_t frames = 0;
    while (!done) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value());
        const auto frame = parseJsonObject(*line);
        ASSERT_TRUE(frame.has_value());
        ASSERT_EQ(frame->count("request_id"), 1u) << *line;
        EXPECT_EQ(frame->at("request_id"), "req-e2e");
        ++frames;
        done = frame->at("frame") == "done";
    }
    EXPECT_GE(frames, 3u); // parsed, planned, ..., done

    // The trace verb keyed by the same id returns the span tree:
    // serve-side spans wrapping the engine's pipeline stages.
    Request fetch;
    fetch.op = Request::Op::Trace;
    fetch.id = "2";
    fetch.request_id = "req-e2e";
    ASSERT_TRUE(client.sendLine(renderRequest(fetch)));
    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    auto frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("frame"), "trace");
    EXPECT_EQ(frame->at("found"), "1");
    const std::string text = frame->at("traces");
    EXPECT_NE(text.find("[req-e2e outcome=done]"), std::string::npos);
    for (const char *span : {"serve.ask", "lease", "write", "ask",
                             "parse", "plan", "retrieve", "section:",
                             "generate"})
        EXPECT_NE(text.find(span), std::string::npos) << span;

    // An id the store has never seen: found=0, empty text.
    fetch.id = "3";
    fetch.request_id = "no-such-request";
    ASSERT_TRUE(client.sendLine(renderRequest(fetch)));
    line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    frame = parseJsonObject(*line);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->at("found"), "0");

    // Untraced asks (no request_id, sampling off) echo nothing and
    // record nothing.
    const auto before = obs::TraceStore::instance().recorded();
    const auto got = askOver(client, "4", suiteQuestions()[1], "");
    EXPECT_TRUE(got.done);
    EXPECT_EQ(obs::TraceStore::instance().recorded(), before);
    server.stop();
}

TEST(ServerTest, TraceSamplingTracesUnlabelledAsks)
{
    obs::TraceStore::instance().clear();
    ServeOptions opts;
    opts.trace_sample_every = 2; // asks 0, 2, 4, ... are traced
    Server server(sharedDb(), opts);
    ASSERT_TRUE(server.start());

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(expectHello(client));
    for (int i = 0; i < 4; ++i) {
        const auto got =
            askOver(client, std::to_string(i), suiteQuestions()[0], "");
        ASSERT_TRUE(got.done);
    }

    // Asks 0 and 2 were sampled under synthesized ids.
    const auto recent = obs::TraceStore::instance().recent(8);
    ASSERT_EQ(recent.size(), 2u);
    EXPECT_EQ(recent[0]->requestId(), "sampled-2");
    EXPECT_EQ(recent[1]->requestId(), "sampled-0");
    EXPECT_EQ(recent[0]->outcome(), "done");
    server.stop();
}
