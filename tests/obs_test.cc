/**
 * @file
 * Tests for the observability subsystem (obs/): RequestTrace span
 * trees, the TraceStore ring buffer, the Chrome/text exporters, and
 * the engine's per-request tracing — span-tree completeness, shape
 * stability across exec_threads, byte-identical answers traced vs
 * untraced, and the EngineStats.trace aggregates.
 */

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cachemind.hh"
#include "db/builder.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"

using namespace cachemind;
using namespace cachemind::core;
using namespace cachemind::obs;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

CacheMind
defaultEngine()
{
    return CacheMind::Builder(sharedDb()).build().expect("engine");
}

std::string
hotQuestion()
{
    return "Which policy has the lowest miss rate in the astar "
           "workload?";
}

/** First span with this name, or nullptr. */
const TraceSpan *
findSpan(const std::vector<TraceSpan> &spans, const std::string &name)
{
    for (const TraceSpan &span : spans) {
        if (span.name == name)
            return &span;
    }
    return nullptr;
}

/** Value of a span's annotation, or "". */
std::string
noteValue(const TraceSpan &span, const std::string &key)
{
    for (const Annotation &note : span.notes) {
        if (note.key == key)
            return note.value;
    }
    return "";
}

} // namespace

// ------------------------------------------------------ RequestTrace

TEST(TraceTest, SpanLifecycleAndAnnotations)
{
    RequestTrace trace("req-1");
    EXPECT_EQ(trace.requestId(), "req-1");
    EXPECT_EQ(trace.outcome(), "");

    const auto root = trace.beginSpan(0, "ask");
    const auto child = trace.beginSpan(root, "retrieve");
    trace.annotate(child, "cache", "hot_hit");
    trace.endSpan(child);
    trace.endSpan(root);
    trace.setOutcome("done");

    const auto spans = trace.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].id, root);
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[0].name, "ask");
    EXPECT_NE(spans[0].end_ns, 0u);
    EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
    EXPECT_EQ(spans[1].parent, root);
    ASSERT_EQ(spans[1].notes.size(), 1u);
    EXPECT_EQ(spans[1].notes[0].key, "cache");
    EXPECT_EQ(spans[1].notes[0].value, "hot_hit");
    EXPECT_EQ(trace.spanName(root), "ask");
    EXPECT_EQ(trace.spanName(0), "");
    EXPECT_EQ(trace.outcome(), "done");
}

TEST(TraceTest, AddSpanRecordsCompleteSpan)
{
    RequestTrace trace("req-add");
    const auto id = trace.addSpan(0, "section:overview", 100, 250);
    ASSERT_NE(id, 0u);
    const auto spans = trace.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].start_ns, 100u);
    EXPECT_EQ(spans[0].end_ns, 250u);
}

TEST(TraceTest, SpanCapCountsDropped)
{
    RequestTrace trace("req-full");
    for (std::size_t i = 0; i < RequestTrace::kMaxSpans + 10; ++i)
        trace.beginSpan(0, "s");
    EXPECT_EQ(trace.spans().size(), RequestTrace::kMaxSpans);
    EXPECT_EQ(trace.dropped(), 10u);
    // Ids past the cap are 0 and every operation on them is a no-op.
    EXPECT_EQ(trace.beginSpan(0, "late"), 0u);
    trace.endSpan(0);
    trace.annotate(0, "k", "v");
}

TEST(TraceTest, UntracedContextIsInertAndCheap)
{
    const TraceContext tc;
    EXPECT_FALSE(tc);
    EXPECT_EQ(tc.begin("ask"), 0u);
    tc.end(0);
    tc.annotate(0, "k", "v");
    tc.note("k", "v");
    SpanScope scope(tc, "ask");
    EXPECT_EQ(scope.id(), 0u);
    scope.annotate("k", "v");
    scope.end();
}

TEST(TraceTest, ConcurrentSpanHammer)
{
    // 8 threads begin/end/annotate against one trace; the TSan CI job
    // runs this to prove the serve-session/pipeline-worker sharing is
    // race-free. Bookkeeping must balance: every begin either landed
    // as a span or was counted dropped.
    RequestTrace trace("req-hammer");
    constexpr int kThreads = 8;
    constexpr int kOps = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&trace, t] {
            for (int i = 0; i < kOps; ++i) {
                const auto id = trace.beginSpan(
                    0, "t" + std::to_string(t));
                trace.annotate(id, "i", std::to_string(i));
                trace.spanName(id);
                trace.endSpan(id);
                (void)trace.spans();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(trace.spans().size() + trace.dropped(),
              static_cast<std::size_t>(kThreads) * kOps);
}

// -------------------------------------------------------- TraceStore

namespace {

std::shared_ptr<const RequestTrace>
finishedTrace(const std::string &id, const std::string &outcome)
{
    auto trace = std::make_shared<RequestTrace>(id);
    const auto root = trace->beginSpan(0, "serve.ask");
    trace->endSpan(root);
    trace->setOutcome(outcome);
    return trace;
}

} // namespace

TEST(TraceStoreTest, RecordByIdRecentFilterAndCapacity)
{
    TraceStore &store = TraceStore::instance();
    store.clear();
    store.setCapacity(4);

    store.record(finishedTrace("a", "done"));
    store.record(finishedTrace("b", "degraded"));
    store.record(finishedTrace("c", "deadline_exceeded"));
    store.record(finishedTrace("d", "error"));
    store.record(finishedTrace("e", "done"));

    // Capacity 4: "a" was trimmed.
    EXPECT_EQ(store.byRequestId("a"), nullptr);
    ASSERT_NE(store.byRequestId("b"), nullptr);
    EXPECT_EQ(store.byRequestId("b")->outcome(), "degraded");

    // recent() is newest-first.
    const auto all = store.recent(10);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0]->requestId(), "e");
    EXPECT_EQ(all[3]->requestId(), "b");

    // "bad" matches degraded, deadline_exceeded, and error.
    const auto bad = store.recent(10, "bad");
    ASSERT_EQ(bad.size(), 3u);
    EXPECT_EQ(bad[0]->requestId(), "d");
    EXPECT_EQ(bad[2]->requestId(), "b");

    // Exact outcome filter.
    const auto done = store.recent(10, "done");
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->requestId(), "e");

    EXPECT_GE(store.recorded(), 5u);
    store.clear();
    EXPECT_TRUE(store.recent(10).empty());
    store.setCapacity(64);
}

TEST(TraceStoreTest, ConcurrentRecordAndRead)
{
    TraceStore &store = TraceStore::instance();
    store.clear();
    store.setCapacity(32);
    constexpr int kThreads = 8;
    constexpr int kOps = 100;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (int i = 0; i < kOps; ++i) {
                store.record(finishedTrace(
                    "t" + std::to_string(t) + "-" + std::to_string(i),
                    i % 3 == 0 ? "degraded" : "done"));
                (void)store.recent(8, "bad");
                (void)store.byRequestId("t0-0");
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_GE(store.recorded(),
              static_cast<std::uint64_t>(kThreads) * kOps);
    EXPECT_LE(store.recent(64).size(), 32u);
    store.clear();
    store.setCapacity(64);
}

// ----------------------------------------------------------- export

TEST(TraceExportTest, ChromeJsonSchema)
{
    RequestTrace trace("req-json \"quoted\"");
    const auto root = trace.beginSpan(0, "ask");
    const auto child = trace.beginSpan(root, "retrieve");
    trace.annotate(child, "cache", "hot_hit");
    trace.endSpan(child);
    trace.endSpan(root);
    trace.setOutcome("done");

    const std::string json = toChromeJson(trace);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ask\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"retrieve\""), std::string::npos);
    EXPECT_NE(json.find("\"cache\":\"hot_hit\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"done\""), std::string::npos);
    // The request id is escaped, never embedded raw.
    EXPECT_NE(json.find("req-json \\\"quoted\\\""), std::string::npos);
}

TEST(TraceExportTest, TextTreeShapeAndTiming)
{
    RequestTrace trace("req-text");
    const auto root = trace.beginSpan(0, "ask");
    const auto child = trace.beginSpan(root, "retrieve");
    trace.annotate(child, "cache", "miss");
    trace.endSpan(child);
    trace.endSpan(root);
    trace.setOutcome("done");

    const std::string timed = toText(trace);
    EXPECT_NE(timed.find("[req-text outcome=done]"), std::string::npos);
    EXPECT_NE(timed.find("ask ("), std::string::npos);
    EXPECT_NE(timed.find("  retrieve ("), std::string::npos);
    EXPECT_NE(timed.find("cache=miss"), std::string::npos);

    const std::string shape = toText(trace, false);
    EXPECT_NE(shape.find("ask\n"), std::string::npos);
    EXPECT_NE(shape.find("  retrieve cache=miss"), std::string::npos);
    EXPECT_EQ(shape.find("ms)"), std::string::npos);
}

TEST(TraceExportTest, ExportToDirWritesChromeJson)
{
    const std::string dir = "obs_export_test_dir";
    ::mkdir(dir.c_str(), 0755);

    RequestTrace trace("req/42:slash");
    const auto root = trace.beginSpan(0, "ask");
    trace.endSpan(root);
    trace.setOutcome("done");

    std::string path, error;
    ASSERT_TRUE(exportToDir(trace, dir, &path, &error)) << error;
    // The request id is sanitized into the file name.
    EXPECT_EQ(path.find('/'), dir.size());
    EXPECT_EQ(path.rfind(".json"), path.size() - 5);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[512] = {};
    const auto n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    ASSERT_GT(n, 0u);
    EXPECT_NE(std::string(buf).find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
    ::rmdir(dir.c_str());
}

TEST(TraceExportTest, TraceStoreExportsWhenDirSet)
{
    const std::string dir = "obs_store_export_dir";
    ::mkdir(dir.c_str(), 0755);
    TraceStore &store = TraceStore::instance();
    store.clear();
    const auto before = store.exported();
    store.setExportDir(dir);
    store.record(finishedTrace("exported-req", "done"));
    store.setExportDir("");
    EXPECT_EQ(store.exported(), before + 1);
    // Disabled again: recording is ring-only.
    store.record(finishedTrace("not-exported", "done"));
    EXPECT_EQ(store.exported(), before + 1);

    // Clean up whatever file the store wrote.
    const auto recent = store.recent(2);
    store.clear();
    ::system(("rm -rf " + dir).c_str());
}

// ------------------------------------------------- engine integration

TEST(EngineTraceTest, TracedAskProducesCompleteSpanTree)
{
    auto engine = defaultEngine();
    RequestContext ctx(hotQuestion());
    ctx.withRequestId("req-tree").traced();
    ASSERT_TRUE(engine.ask(ctx).ok());

    const auto spans = ctx.trace->spans();
    const TraceSpan *ask = findSpan(spans, "ask");
    const TraceSpan *parse = findSpan(spans, "parse");
    const TraceSpan *plan = findSpan(spans, "plan");
    const TraceSpan *retrieve = findSpan(spans, "retrieve");
    const TraceSpan *generate = findSpan(spans, "generate");
    ASSERT_NE(ask, nullptr);
    ASSERT_NE(parse, nullptr);
    ASSERT_NE(plan, nullptr);
    ASSERT_NE(retrieve, nullptr);
    ASSERT_NE(generate, nullptr);

    // Stage spans nest under the root ask span, closed in order.
    EXPECT_EQ(parse->parent, ask->id);
    EXPECT_EQ(plan->parent, ask->id);
    EXPECT_EQ(retrieve->parent, ask->id);
    EXPECT_EQ(generate->parent, ask->id);
    for (const TraceSpan *span : {ask, parse, plan, retrieve, generate})
        EXPECT_NE(span->end_ns, 0u) << span->name;

    // The retrieve span names its cache-tier outcome and holds at
    // least one section child span.
    EXPECT_EQ(noteValue(*retrieve, "cache"), "miss");
    std::size_t sections = 0;
    for (const TraceSpan &span : spans) {
        if (span.parent == retrieve->id &&
            span.name.rfind("section:", 0) == 0)
            ++sections;
    }
    EXPECT_GE(sections, 1u);
    EXPECT_EQ(ctx.trace->outcome(), "done");

    // Same question again: a lock-free hot hit, named as such.
    RequestContext again(hotQuestion());
    again.withRequestId("req-tree-2").traced();
    ASSERT_TRUE(engine.ask(again).ok());
    const auto spans2 = again.trace->spans();
    const TraceSpan *retrieve2 = findSpan(spans2, "retrieve");
    ASSERT_NE(retrieve2, nullptr);
    EXPECT_EQ(noteValue(*retrieve2, "cache"), "hot_hit");
    const TraceSpan *hit = findSpan(spans2, "section:hot_hit");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->parent, retrieve2->id);
}

TEST(EngineTraceTest, AnswersByteIdenticalTracedVsUntraced)
{
    // Tracing must never change a byte of output: compare a plain
    // engine against one answering the same questions fully traced,
    // across both the blocking and streaming entry points.
    auto plain = defaultEngine();
    auto traced = defaultEngine();
    const std::vector<std::string> questions = {
        hotQuestion(),
        "Why does Belady outperform LRU in the astar workload?",
        "What is a compulsory miss?",
    };
    for (const auto &question : questions) {
        const auto expect = plain.ask(question).expect("plain ask");
        RequestContext ctx(question);
        ctx.traced();
        const auto got = traced.ask(ctx).expect("traced ask");
        EXPECT_EQ(got.text, expect.text);
        EXPECT_EQ(got.bundle.trace_key, expect.bundle.trace_key);
        EXPECT_EQ(got.bundle.total_matches, expect.bundle.total_matches);

        RequestContext sctx(question);
        sctx.traced();
        auto stream = traced.askStream(sctx).expect("traced stream");
        EXPECT_EQ(stream.wait().text, expect.text);
    }
}

TEST(EngineTraceTest, SpanTreeShapeStableAcrossExecThreads)
{
    // Ranger may execute shard-parallel; scheduling must change
    // neither the answer bytes (retrieval_test proves that) nor the
    // trace's *shape* — span names, nesting, annotations — because
    // evidence is emitted in plan order regardless of exec_threads.
    const auto traceFor = [&](const char *threads) {
        auto engine = CacheMind::Builder(sharedDb())
                          .withRetriever("ranger")
                          .withRetrieverParam("exec_threads", threads)
                          .build()
                          .expect("ranger engine");
        RequestContext ctx(hotQuestion());
        ctx.withRequestId("req-shape").traced();
        EXPECT_TRUE(engine.ask(ctx).ok());
        return toText(*ctx.trace, /*include_timing=*/false);
    };
    const std::string serial = traceFor("1");
    const std::string parallel = traceFor("4");
    EXPECT_EQ(serial, parallel);
    // And the tree actually covers the pipeline (no vacuous match).
    EXPECT_NE(serial.find("parse"), std::string::npos);
    EXPECT_NE(serial.find("retrieve"), std::string::npos);
    EXPECT_NE(serial.find("section:"), std::string::npos);
    EXPECT_NE(serial.find("generate"), std::string::npos);
}

TEST(EngineTraceTest, StreamEventsCarryStageSpans)
{
    auto engine = defaultEngine();
    RequestContext ctx(hotQuestion());
    ctx.withRequestId("req-stream").traced();
    auto stream = engine.askStream(ctx).expect("stream");

    bool saw_section = false;
    while (auto event = stream.next()) {
        ASSERT_NE(event->span, 0u)
            << "traced stream event without a span";
        const std::string name = ctx.trace->spanName(event->span);
        switch (event->kind) {
          case StreamEvent::Kind::Parsed:
            EXPECT_EQ(name, "parse");
            break;
          case StreamEvent::Kind::Planned:
            EXPECT_EQ(name, "plan");
            break;
          case StreamEvent::Kind::EvidenceChunk:
            EXPECT_EQ(name.rfind("section:", 0), 0u) << name;
            saw_section = true;
            break;
          case StreamEvent::Kind::AnswerDelta:
            EXPECT_EQ(name, "generate");
            break;
          case StreamEvent::Kind::Done:
            EXPECT_EQ(name, "ask");
            break;
        }
    }
    EXPECT_TRUE(saw_section);

    // Untraced streams carry span id 0 on every event.
    auto bare = engine.askStream(hotQuestion()).expect("bare stream");
    while (auto event = bare.next())
        EXPECT_EQ(event->span, 0u);
}

TEST(EngineTraceTest, StatsAggregateTracedRequests)
{
    auto engine = defaultEngine();
    for (int i = 0; i < 3; ++i) {
        RequestContext ctx(hotQuestion());
        ctx.traced();
        ASSERT_TRUE(engine.ask(ctx).ok());
    }
    // Untraced asks contribute nothing to the trace aggregates.
    ASSERT_TRUE(engine.ask(hotQuestion()).ok());

    const auto stats = engine.stats();
    EXPECT_EQ(stats.trace.traced, 3u);
    EXPECT_EQ(stats.trace.slowest_parse + stats.trace.slowest_plan +
                  stats.trace.slowest_retrieve +
                  stats.trace.slowest_generate,
              3u);
    EXPECT_GE(stats.trace.retrieve_p90_ms, 0.0);
    EXPECT_GE(stats.trace.generate_p50_ms, 0.0);
}

TEST(EngineTraceTest, RequestContextTracedDefaultsId)
{
    RequestContext ctx("what is a miss?");
    ctx.traced();
    ASSERT_NE(ctx.trace, nullptr);
    EXPECT_EQ(ctx.trace->requestId(), "what is a miss?");

    RequestContext with_id("what is a miss?");
    with_id.withRequestId("req-9").traced();
    EXPECT_EQ(with_id.trace->requestId(), "req-9");
}
