/**
 * @file
 * Tests for the text layer: tokenizer, hashed embedder, vector index,
 * and the fuzzy name matcher that backs Sieve's stage-1 filtering.
 */

#include <gtest/gtest.h>

#include "text/embedding.hh"

using namespace cachemind;
using namespace cachemind::text;

TEST(TokenizerTest, SplitsWordsAndKeepsHexTokens)
{
    const auto toks =
        tokenize("Does PC 0x401dc9 hit under LRU on lbm?");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0], "does");
    EXPECT_EQ(toks[2], "0x401dc9");
    EXPECT_EQ(toks.back(), "lbm");
}

TEST(TokenizerTest, UnderscoresStayInsideTokens)
{
    const auto toks = tokenize("loaded_data[lbm_evictions_lru]");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0], "loaded_data");
    EXPECT_EQ(toks[1], "lbm_evictions_lru");
}

TEST(EmbedderTest, VectorsAreNormalised)
{
    const HashEmbedder embedder(64);
    const auto v = embedder.embed("cache replacement policy");
    double norm = 0.0;
    for (const float x : v)
        norm += static_cast<double>(x) * x;
    EXPECT_NEAR(norm, 1.0, 1e-6);
    EXPECT_EQ(v.size(), 64u);
}

TEST(EmbedderTest, IdenticalTextsHaveSimilarityOne)
{
    const HashEmbedder embedder(128);
    EXPECT_NEAR(embedder.similarity("miss rate for PC",
                                    "miss rate for PC"),
                1.0, 1e-9);
}

TEST(EmbedderTest, RelatedTextsScoreHigherThanUnrelated)
{
    const HashEmbedder embedder(128);
    const double related = embedder.similarity(
        "cache miss rate under LRU", "the LRU cache miss rate");
    const double unrelated = embedder.similarity(
        "cache miss rate under LRU", "quarterly revenue projections");
    EXPECT_GT(related, unrelated);
}

TEST(EmbedderTest, NumericRowsAreNearlyIndistinguishable)
{
    // The paper's core observation about embedding-based RAG on
    // traces: rows differing only in hex digits embed almost
    // identically.
    const HashEmbedder embedder(128);
    const std::string row_a =
        "program_counter=0x409538, memory_address=0x2bfd401b693, "
        "evict=Cache Miss";
    const std::string row_b =
        "program_counter=0x4090c3, memory_address=0x2bfd401caf2, "
        "evict=Cache Miss";
    EXPECT_GT(embedder.similarity(row_a, row_b), 0.5);
}

TEST(EmbedderTest, EmptyTextEmbedsToZeroVector)
{
    const HashEmbedder embedder(64);
    const auto v = embedder.embed("");
    for (const float x : v)
        EXPECT_EQ(x, 0.0f);
    EXPECT_DOUBLE_EQ(cosine(v, v), 0.0);
}

TEST(VectorIndexTest, TopKReturnsBestMatchFirst)
{
    const HashEmbedder embedder(128);
    VectorIndex index(embedder);
    index.add("the lbm workload streams two large grids", "lbm");
    index.add("the mcf workload chases pointers through arcs", "mcf");
    index.add("totally unrelated cooking recipe for soup", "soup");

    const auto hits = index.topK("pointer chasing in mcf", 2);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(index.tag(hits[0].doc), "mcf");
    EXPECT_GE(hits[0].score, hits[1].score);
}

TEST(VectorIndexTest, KLargerThanIndexIsClamped)
{
    const HashEmbedder embedder(64);
    VectorIndex index(embedder);
    index.add("only one document");
    const auto hits = index.topK("one", 10);
    EXPECT_EQ(hits.size(), 1u);
}

TEST(NameMatcherTest, ExactTokenWins)
{
    const HashEmbedder embedder(128);
    const auto ranked = rankNames(
        "what is the miss rate on lbm under parrot",
        {"astar", "lbm", "mcf"}, embedder);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].name, "lbm");
    EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(NameMatcherTest, FuzzyMatchCatchesNearMisses)
{
    const HashEmbedder embedder(128);
    const auto ranked = rankNames("compare beladys decisions",
                                  {"belady", "lru", "parrot"},
                                  embedder);
    EXPECT_EQ(ranked[0].name, "belady");
}

TEST(NameMatcherTest, NoMentionScoresLow)
{
    const HashEmbedder embedder(128);
    const auto ranked = rankNames("how big is the cache",
                                  {"astar", "lbm", "mcf"}, embedder);
    for (const auto &m : ranked)
        EXPECT_LT(m.score, 0.9);
}

TEST(CosineTest, OrthogonalAndParallel)
{
    const std::vector<float> a = {1, 0, 0, 0};
    const std::vector<float> b = {0, 1, 0, 0};
    const std::vector<float> c = {2, 0, 0, 0};
    EXPECT_DOUBLE_EQ(cosine(a, b), 0.0);
    EXPECT_NEAR(cosine(a, c), 1.0, 1e-9);
    EXPECT_NEAR(cosine(b, b), 1.0, 1e-9);
}
