/**
 * @file
 * Tests for the actionable-insight analyzers and their downstream
 * interventions (§6.3): bypass candidates, PC stability, set hotness,
 * and dominant-miss-PC discovery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "db/builder.hh"
#include "insights/insights.hh"
#include "policy/basic_policies.hh"
#include "policy/mockingjay.hh"
#include "sim/core_model.hh"
#include "trace/workload_models.hh"

using namespace cachemind;
using namespace cachemind::insights;

namespace {

const db::TraceDatabase &
mcfDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Mcf};
        options.policies = {policy::PolicyKind::Belady,
                            policy::PolicyKind::Lru};
        options.accesses_override = 80000;
        return db::buildDatabase(options);
    }();
    return database;
}

const db::TraceDatabase &
microDb()
{
    static const db::TraceDatabase database = db::buildSingleDatabase(
        trace::WorkloadKind::Microbench, policy::PolicyKind::Lru,
        60000);
    return database;
}

} // namespace

TEST(BypassAdvisorTest, FindsTheArcScanPc)
{
    const auto candidates =
        recommendBypassPcs(mcfDb(), "mcf", "belady", 10);
    ASSERT_FALSE(candidates.empty());
    bool found_scan = false;
    for (const auto &c : candidates) {
        EXPECT_LE(c.hit_rate, 0.12);
        EXPECT_GE(c.accesses, 100u);
        found_scan |= c.pc == 0x4037aa;
    }
    EXPECT_TRUE(found_scan) << "the pricing-scan PC must be a bypass "
                               "candidate";
}

TEST(BypassAdvisorTest, ExcludesHighHitPcs)
{
    const auto *expert = mcfDb().statsFor("mcf_evictions_belady");
    const auto candidates =
        recommendBypassPcs(mcfDb(), "mcf", "belady", 32);
    for (const auto &c : candidates) {
        const auto stats = expert->pcStats(c.pc);
        ASSERT_TRUE(stats.has_value());
        EXPECT_LT(stats->hitRate(), 0.5);
    }
}

TEST(BypassAdvisorTest, UnknownWorkloadYieldsEmpty)
{
    EXPECT_TRUE(recommendBypassPcs(mcfDb(), "gcc", "lru", 5).empty());
}

TEST(BypassInterventionTest, ImprovesHitRateAndIpc)
{
    const auto candidates =
        recommendBypassPcs(mcfDb(), "mcf", "belady", 10);
    std::unordered_set<std::uint64_t> pcs;
    for (const auto &c : candidates)
        pcs.insert(c.pc);

    const auto cfg = sim::defaultHierarchyConfig();
    const auto t =
        trace::makeWorkload(trace::WorkloadKind::Mcf)->generate(80000);
    const auto base = sim::runTrace(
        t, cfg, policy::makePolicy(policy::PolicyKind::Lru));

    sim::Hierarchy hier(cfg, policy::makePolicy(policy::PolicyKind::Lru));
    hier.llc().setBypassFilter(
        [&pcs](std::uint64_t pc) { return pcs.count(pc) > 0; });
    const auto with_bypass = sim::runTrace(t, hier);

    EXPECT_GT(with_bypass.llc.hitRate(), base.llc.hitRate());
    EXPECT_GE(with_bypass.ipc, base.ipc);
}

TEST(StabilityTest, BucketsAreOrderedByCov)
{
    const auto buckets = classifyPcStability(mcfDb(), "mcf", "lru");
    for (const auto &p : buckets.low_variance)
        EXPECT_LT(p.cov, 0.35);
    for (const auto &p : buckets.medium_variance) {
        EXPECT_GE(p.cov, 0.35);
        EXPECT_LT(p.cov, 0.55);
    }
    for (const auto &p : buckets.high_variance)
        EXPECT_GE(p.cov, 0.55);
}

TEST(StabilityTest, StableSetExcludesHighVariance)
{
    const auto buckets = classifyPcStability(mcfDb(), "mcf", "lru");
    const auto stable = buckets.stablePcSet();
    for (const auto &p : buckets.high_variance)
        EXPECT_EQ(stable.count(p.pc), 0u);
    for (const auto &p : buckets.low_variance)
        EXPECT_EQ(stable.count(p.pc), 1u);
    for (const auto &p : buckets.medium_variance)
        EXPECT_EQ(stable.count(p.pc), 1u);
}

TEST(SetHotnessTest, HotBeatsColdByConstruction)
{
    const auto report = analyzeSetHotness(mcfDb(), "mcf", "lru", 5);
    ASSERT_EQ(report.hot.size(), 5u);
    ASSERT_EQ(report.cold.size(), 5u);
    EXPECT_GE(report.hot.back().hitRate(),
              report.cold.back().hitRate());
    // Buckets must not overlap.
    EXPECT_EQ(hotSetOverlap(report.hot, report.cold), 0u);
}

TEST(SetHotnessTest, OverlapCountsSharedSets)
{
    std::vector<db::SetStats> a(3), b(3);
    a[0].set = 1;
    a[1].set = 2;
    a[2].set = 3;
    b[0].set = 3;
    b[1].set = 4;
    b[2].set = 1;
    EXPECT_EQ(hotSetOverlap(a, b), 2u);
    EXPECT_EQ(hotSetOverlap(a, {}), 0u);
}

TEST(PrefetchAdvisorTest, FindsTheChasePc)
{
    const auto target =
        findDominantMissPc(microDb(), "microbench", "lru");
    EXPECT_EQ(target.pc, 0x400512u);
    EXPECT_EQ(target.function_name, "chase");
    EXPECT_GT(target.miss_share, 0.5);
    EXPECT_GT(target.miss_rate, 0.5);
}

TEST(PrefetchInterventionTest, SoftwarePrefetchLiftsIpc)
{
    const auto cfg = sim::defaultHierarchyConfig();
    const auto base_trace =
        trace::makeMicrobenchModel(77)->generate(60000);
    const auto fixed_trace =
        trace::makeMicrobenchModel(77, 24)->generate(60000);
    const auto base = sim::runTrace(
        base_trace, cfg, policy::makePolicy(policy::PolicyKind::Lru));
    const auto fixed = sim::runTrace(
        fixed_trace, cfg, policy::makePolicy(policy::PolicyKind::Lru));
    EXPECT_GT(fixed.ipc, base.ipc * 1.2);
}

TEST(MockingjayInterventionTest, StableTrainingDoesNotHurtMilc)
{
    const auto database = db::buildSingleDatabase(
        trace::WorkloadKind::Milc, policy::PolicyKind::Lru, 80000);
    const auto buckets =
        classifyPcStability(database, "milc", "lru");
    ASSERT_FALSE(buckets.stablePcSet().empty());

    const auto cfg = sim::defaultHierarchyConfig();
    const auto t =
        trace::makeWorkload(trace::WorkloadKind::Milc)->generate(80000);
    const auto base = sim::runTrace(
        t, cfg, std::make_unique<policy::MockingjayPolicy>());
    auto filtered = std::make_unique<policy::MockingjayPolicy>();
    filtered->setTrainingFilter(buckets.stablePcSet());
    const auto stable = sim::runTrace(t, cfg, std::move(filtered));
    EXPECT_GE(stable.ipc, base.ipc * 0.995);
}
