/**
 * @file
 * Tests for the trace database: table storage round-trip, statistics
 * expert, metadata strings, end-to-end building, shard views, the
 * thread safety of the lazy expert and postings-index caches, the
 * index-vs-reference-scan equivalence of filters and listings, and
 * the byte-identical equivalence of the parallel build to the
 * sequential one.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <thread>

#include "db/builder.hh"
#include "db/database.hh"
#include "db/index.hh"
#include "db/shard.hh"
#include "db/stats_expert.hh"
#include "db/table.hh"

using namespace cachemind;
using namespace cachemind::db;

namespace {

/** Small hand-built table: 2 PCs, mixed hits/misses. */
TraceTable
makeTinyTable()
{
    TraceTable t;
    t.setLineBytes(64);
    std::vector<PcAddr> history;
    for (std::uint64_t i = 0; i < 10; ++i) {
        sim::ReplayEvent ev;
        ev.index = i;
        ev.pc = (i % 2) ? 0xB00 : 0xA00;
        ev.address = 0x1000 + (i % 3) * 64;
        ev.line = ev.address / 64;
        ev.set = static_cast<std::uint32_t>(ev.line % 4);
        ev.hit = i >= 3;             // first three accesses miss
        ev.miss_type = ev.hit ? sim::MissType::None
                              : sim::MissType::Compulsory;
        ev.reuse_distance = (i < 9) ? 3 : policy::kNoNextUse;
        ev.recency = (i >= 3) ? 3 : sim::kNoPrevUse;
        if (i == 5) {
            ev.has_victim = true;
            ev.evicted_line = 0x7777;
            ev.evicted_pc = 0xA00;
            ev.evicted_reuse_distance = 2;
            ev.wrong_eviction = true;
        }
        ev.snapshot = {sim::SnapshotEntry{0xA00, ev.line}};
        ev.scores = {1, 2, 3, 4};
        t.append(ev, history);
        history.push_back(PcAddr{ev.pc, ev.address});
        if (history.size() > 4)
            history.erase(history.begin());
    }
    return t;
}

} // namespace

TEST(TraceTableTest, ColumnarRoundTrip)
{
    const auto t = makeTinyTable();
    ASSERT_EQ(t.size(), 10u);
    EXPECT_EQ(t.pcAt(0), 0xA00u);
    EXPECT_EQ(t.pcAt(1), 0xB00u);
    EXPECT_TRUE(t.isMissAt(0));
    EXPECT_FALSE(t.isMissAt(5));
    EXPECT_EQ(t.missTypeAt(0), sim::MissType::Compulsory);
    EXPECT_EQ(t.reuseDistanceAt(0), 3);
    EXPECT_EQ(t.reuseDistanceAt(9), kNoValue);
    EXPECT_EQ(t.recencyAt(0), kNoValue);
    EXPECT_EQ(t.recencyAt(4), 3);
}

TEST(TraceTableTest, VictimColumns)
{
    const auto t = makeTinyTable();
    EXPECT_TRUE(t.hasVictimAt(5));
    EXPECT_FALSE(t.hasVictimAt(4));
    EXPECT_EQ(t.evictedAddressAt(5), 0x7777u * 64);
    EXPECT_EQ(t.evictedAddressAt(4), 0u);
    EXPECT_EQ(t.evictedPcAt(5), 0xA00u);
    EXPECT_TRUE(t.wrongEvictionAt(5));
    EXPECT_EQ(t.evictedReuseDistanceAt(5), 2);
}

TEST(TraceTableTest, MembershipChecks)
{
    const auto t = makeTinyTable();
    EXPECT_TRUE(t.containsPc(0xA00));
    EXPECT_TRUE(t.containsPc(0xB00));
    EXPECT_FALSE(t.containsPc(0xC00));
    EXPECT_TRUE(t.containsAddress(0x1000));
    EXPECT_FALSE(t.containsAddress(0x9999));
}

TEST(TraceTableTest, FilterByPcAndAddress)
{
    const auto t = makeTinyTable();
    const std::uint64_t pc = 0xA00;
    const auto rows = t.filter(&pc, nullptr);
    EXPECT_EQ(rows.size(), 5u);
    const std::uint64_t addr = 0x1000;
    const auto rows2 = t.filter(&pc, &addr);
    for (const auto i : rows2) {
        EXPECT_EQ(t.pcAt(i), pc);
        EXPECT_EQ(t.addressAt(i), addr);
    }
    const std::uint64_t missing = 0xdead;
    EXPECT_TRUE(t.filter(&missing, nullptr).empty());
    EXPECT_EQ(t.filter(&pc, nullptr, 2).size(), 2u);
}

TEST(TraceTableTest, RowMaterialisation)
{
    const auto t = makeTinyTable();
    const auto row5 = t.row(5);
    EXPECT_EQ(row5.index, 5u);
    EXPECT_EQ(row5.program_counter, 0xB00u);
    EXPECT_FALSE(row5.is_miss);
    EXPECT_TRUE(row5.has_victim);
    ASSERT_EQ(row5.current_cache_lines.size(), 1u);
    EXPECT_EQ(row5.current_cache_lines[0].pc, 0xA00u);
    EXPECT_EQ(row5.cache_line_eviction_scores.size(), 4u);
    ASSERT_EQ(row5.recent_access_history.size(), 4u);
    // Most recent history entry is access 4.
    EXPECT_EQ(row5.recent_access_history.back().pc, 0xA00u);
}

TEST(TraceTableTest, RecencyText)
{
    const auto t = makeTinyTable();
    EXPECT_EQ(t.recencyTextAt(0), "first access");
    EXPECT_EQ(t.recencyTextAt(4), "very recent");
}

TEST(TraceTableTest, UniquePcsSorted)
{
    const auto t = makeTinyTable();
    const auto pcs = t.uniquePcs();
    ASSERT_EQ(pcs.size(), 2u);
    EXPECT_EQ(pcs[0], 0xA00u);
    EXPECT_EQ(pcs[1], 0xB00u);
}

TEST(StatsExpertTest, PcAggregates)
{
    const auto t = makeTinyTable();
    const StatsExpert expert(t);
    const auto a = expert.pcStats(0xA00);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->accesses, 5u);
    EXPECT_EQ(a->misses, 2u); // accesses 0 and 2 miss
    EXPECT_NEAR(a->missRate(), 0.4, 1e-12);
    EXPECT_FALSE(expert.pcStats(0xDEAD).has_value());
}

TEST(StatsExpertTest, SummaryTotals)
{
    const auto t = makeTinyTable();
    const StatsExpert expert(t);
    const auto &s = expert.summary();
    EXPECT_EQ(s.accesses, 10u);
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.wrong_evictions, 1u);
    EXPECT_EQ(s.unique_pcs, 2u);
    EXPECT_NEAR(s.missRate(), 0.3, 1e-12);
}

TEST(StatsExpertTest, MetadataStringContainsHeadlines)
{
    const auto t = makeTinyTable();
    const StatsExpert expert(t);
    const auto meta = buildMetadataString(expert);
    EXPECT_NE(meta.find("10 total accesses"), std::string::npos);
    EXPECT_NE(meta.find("3 total misses"), std::string::npos);
    EXPECT_NE(meta.find("30.00% miss rate"), std::string::npos);
    EXPECT_NE(meta.find("wrong evictions"), std::string::npos);
    EXPECT_NE(meta.find("correlation"), std::string::npos);
}

TEST(DatabaseTest, KeyFormat)
{
    EXPECT_EQ(TraceDatabase::keyFor("lbm", "lru"), "lbm_evictions_lru");
}

TEST(DatabaseTest, EndToEndSingleBuild)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Microbench,
                                        policy::PolicyKind::Lru, 40000);
    ASSERT_EQ(db.size(), 1u);
    const auto *entry = db.find("microbench", "lru");
    ASSERT_NE(entry, nullptr);
    EXPECT_GT(entry->table.size(), 1000u);
    EXPECT_NE(entry->metadata.find("total accesses"),
              std::string::npos);
    EXPECT_NE(entry->description.find("LRU"), std::string::npos);
    // The dominant chase PC must be present with assembly context.
    EXPECT_TRUE(entry->table.containsPc(0x400512));
    const auto rows = [&] {
        const std::uint64_t pc = 0x400512;
        return entry->table.filter(&pc, nullptr, 1);
    }();
    ASSERT_FALSE(rows.empty());
    const auto row = entry->table.row(rows[0]);
    EXPECT_EQ(row.function_name, "chase");
    EXPECT_NE(row.assembly_code.find("chase"), std::string::npos);
}

TEST(DatabaseTest, StatsForIsCachedAndCorrect)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Microbench,
                                        policy::PolicyKind::Lru, 30000);
    const auto *expert =
        db.statsFor(TraceDatabase::keyFor("microbench", "lru"));
    ASSERT_NE(expert, nullptr);
    EXPECT_EQ(expert,
              db.statsFor(TraceDatabase::keyFor("microbench", "lru")));
    EXPECT_GT(expert->summary().accesses, 0u);
    EXPECT_EQ(db.statsFor("nonexistent_key"), nullptr);
}

TEST(DatabaseTest, WorkloadAndPolicyEnumeration)
{
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);
    EXPECT_EQ(db.size(), 2u);
    const auto ws = db.workloads();
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws[0], "microbench");
    const auto ps = db.policies();
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_EQ(ps[0], "belady");
    EXPECT_EQ(ps[1], "lru");
}

TEST(DatabaseTest, BeladyEntryHasNoWrongEvictions)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Microbench,
                                        policy::PolicyKind::Belady,
                                        30000);
    const auto *expert =
        db.statsFor(TraceDatabase::keyFor("microbench", "belady"));
    ASSERT_NE(expert, nullptr);
    EXPECT_EQ(expert->summary().wrong_evictions, 0u);
}

TEST(StatsExpertTest, HotColdSetsOnRealTrace)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Astar,
                                        policy::PolicyKind::Lru, 60000);
    const auto *expert =
        db.statsFor(TraceDatabase::keyFor("astar", "lru"));
    ASSERT_NE(expert, nullptr);
    const auto hot = expert->hottestSets(5);
    const auto cold = expert->coldestSets(5);
    ASSERT_EQ(hot.size(), 5u);
    ASSERT_EQ(cold.size(), 5u);
    EXPECT_GT(hot.front().hitRate(), cold.front().hitRate());
}

TEST(StatsExpertTest, TopPcsOrdering)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Mcf,
                                        policy::PolicyKind::Lru, 60000);
    const auto *expert =
        db.statsFor(TraceDatabase::keyFor("mcf", "lru"));
    const auto top = expert->topPcs(3, StatsExpert::PcOrder::MissCount);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_GE(top[0].misses, top[1].misses);
    EXPECT_GE(top[1].misses, top[2].misses);
}

namespace {

/**
 * Deterministic digest of every columnar field plus a sample of fully
 * materialised rows (string columns included) — byte-identical tables
 * produce byte-identical digests.
 */
std::string
tableFingerprint(const TraceTable &t)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < t.size(); ++i) {
        os << t.pcAt(i) << ',' << t.addressAt(i) << ',' << t.setAt(i)
           << ',' << t.isMissAt(i) << t.bypassedAt(i)
           << t.hasVictimAt(i) << t.wrongEvictionAt(i) << ','
           << static_cast<int>(t.missTypeAt(i)) << ','
           << t.reuseDistanceAt(i) << ',' << t.recencyAt(i) << ','
           << t.evictedReuseDistanceAt(i) << ','
           << t.evictedAddressAt(i) << ',' << t.evictedPcAt(i) << '\n';
        if (i % 97 == 0) {
            const auto row = t.row(i);
            os << row.function_name << '|' << row.recency_text << '|'
               << row.recent_access_history.size() << '|'
               << row.current_cache_lines.size() << '|'
               << row.cache_line_eviction_scores.size() << '\n';
        }
    }
    return os.str();
}

} // namespace

TEST(DatabaseTest, StatsForIsThreadSafeOnOverlappingKeys)
{
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);
    const auto keys = db.keys();
    ASSERT_EQ(keys.size(), 2u);

    // Hammer the lazy expert cache from 8 threads on overlapping (and
    // identical) keys. Pre-fix, the unsynchronized emplace into the
    // expert map raced the moment two threads touched sibling keys;
    // now the per-shard once_flag makes every observation identical.
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 200;
    std::vector<std::vector<const StatsExpert *>> seen(kThreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (std::size_t iter = 0; iter < kIters; ++iter) {
                for (const auto &key : keys)
                    seen[t].push_back(db.statsFor(key));
            }
        });
    }
    for (auto &t : pool)
        t.join();

    for (std::size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(seen[t].size(), kIters * keys.size());
        for (std::size_t i = 0; i < seen[t].size(); ++i) {
            ASSERT_NE(seen[t][i], nullptr);
            EXPECT_EQ(seen[t][i], db.statsFor(keys[i % keys.size()]));
        }
    }
}

TEST(DatabaseTest, EnumerationsAreSortedAndDeduplicated)
{
    BuildOptions opts;
    // Insertion order deliberately not alphabetical.
    opts.workloads = {trace::WorkloadKind::Microbench,
                      trace::WorkloadKind::Astar};
    opts.policies = {policy::PolicyKind::Lru, policy::PolicyKind::Belady,
                     policy::PolicyKind::Mlp};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);
    ASSERT_EQ(db.size(), 6u);

    // Each workload appears in 3 entries and each policy in 2, but
    // the enumerations are deduplicated and sorted.
    const std::vector<std::string> want_ws{"astar", "microbench"};
    EXPECT_EQ(db.workloads(), want_ws);
    const std::vector<std::string> want_ps{"belady", "lru", "mlp"};
    EXPECT_EQ(db.policies(), want_ps);
    const auto shards = db.shards();
    EXPECT_EQ(shards.workloads(), want_ws);
    EXPECT_EQ(shards.policies(), want_ps);
}

TEST(ShardTest, ShardViewExposesEntryStatsAndSymbols)
{
    const auto db = buildSingleDatabase(trace::WorkloadKind::Microbench,
                                        policy::PolicyKind::Lru, 20000);
    const auto view = db.shard("microbench", "lru");
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.key(), "microbench_evictions_lru");
    EXPECT_EQ(&view.entry(), db.find("microbench", "lru"));
    EXPECT_EQ(&view.table(), &db.find("microbench", "lru")->table);
    EXPECT_EQ(view.stats(), db.statsFor("microbench_evictions_lru"));
    EXPECT_EQ(view.symbols(), db.symbolsFor("microbench"));

    const auto missing = db.shard("no_such_key");
    EXPECT_FALSE(missing.valid());
    EXPECT_EQ(missing.stats(), nullptr);
    EXPECT_EQ(missing.symbols(), nullptr);
}

TEST(ShardTest, ShardSetSubsetsByWorkload)
{
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench,
                      trace::WorkloadKind::Astar};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);

    const ShardSet all = db.shards();
    EXPECT_EQ(all.size(), 4u);
    EXPECT_EQ(all.keys(), db.keys());
    EXPECT_EQ(all.statsFor("astar_evictions_lru"),
              db.statsFor("astar_evictions_lru"));

    const ShardSet micro = all.forWorkload("microbench");
    EXPECT_EQ(micro.size(), 2u);
    EXPECT_EQ(micro.workloads(),
              std::vector<std::string>{"microbench"});
    const std::vector<std::string> want_ps{"belady", "lru"};
    EXPECT_EQ(micro.policies(), want_ps);
    EXPECT_NE(micro.find("microbench", "lru"), nullptr);
    EXPECT_EQ(micro.find("astar", "lru"), nullptr);
    EXPECT_FALSE(micro.shard("astar_evictions_lru").valid());

    EXPECT_TRUE(all.forWorkload("no_such_workload").empty());
}

// ----------------------------------------------- postings index

TEST(TraceIndexTest, FilterMatchesReferenceScanOnRandomQueries)
{
    // Property test: indexed filter() must be byte-identical to the
    // reference scan over randomized (pc, address, limit) queries,
    // including keys absent from the table.
    const auto db = buildSingleDatabase(trace::WorkloadKind::Mcf,
                                        policy::PolicyKind::Lru, 50000);
    const auto *entry = db.find("mcf", "lru");
    const TraceTable &t = entry->table;
    const auto pcs = t.uniquePcsScan();
    ASSERT_FALSE(pcs.empty());

    std::mt19937_64 rng(0xfeedULL);
    for (int iter = 0; iter < 400; ++iter) {
        const bool with_pc = rng() % 4 != 0;
        const bool with_addr = rng() % 2 == 0;
        if (!with_pc && !with_addr)
            continue;
        // 1 in 5 keys is absent from the table on purpose.
        std::uint64_t pc = rng() % 5 == 0
                               ? 0xdead0000 + (rng() % 64)
                               : pcs[rng() % pcs.size()];
        std::uint64_t addr = rng() % 5 == 0
                                 ? 0x1234000 + (rng() % 64)
                                 : t.addressAt(rng() % t.size());
        const std::size_t limits[] = {0, 1, 7, 64};
        const std::size_t limit = limits[rng() % 4];

        const auto indexed = t.filter(with_pc ? &pc : nullptr,
                                      with_addr ? &addr : nullptr,
                                      limit);
        const auto scanned = t.filterScan(with_pc ? &pc : nullptr,
                                          with_addr ? &addr : nullptr,
                                          limit);
        ASSERT_EQ(indexed, scanned)
            << "iter=" << iter << " pc=" << with_pc << ":" << pc
            << " addr=" << with_addr << ":" << addr
            << " limit=" << limit;
    }
}

TEST(TraceIndexTest, PerKeyCountsMatchStatsExpert)
{
    const auto t = makeTinyTable();
    const TraceIndex &idx = t.index();
    const StatsExpert expert(t);

    EXPECT_EQ(idx.rows(), t.size());
    EXPECT_EQ(idx.totals().accesses, expert.summary().accesses);
    EXPECT_EQ(idx.totals().misses, expert.summary().misses);
    EXPECT_EQ(idx.totals().evictions, expert.summary().evictions);

    for (const auto pc : t.uniquePcsScan()) {
        const auto id = t.pcIdOf(pc);
        ASSERT_TRUE(id.has_value());
        const IndexKeyCounts *c = idx.pcCounts(*id);
        ASSERT_NE(c, nullptr);
        const auto ps = expert.pcStats(pc);
        ASSERT_TRUE(ps.has_value());
        EXPECT_EQ(c->accesses, ps->accesses) << pc;
        EXPECT_EQ(c->misses, ps->misses) << pc;
        EXPECT_EQ(c->hits(), ps->hits) << pc;
        // Postings lengths agree with the counters.
        EXPECT_EQ(idx.pcPostings(*id).size(), c->accesses) << pc;
    }
    for (const auto &ss : expert.allSetStats()) {
        const IndexKeyCounts *c = idx.setCounts(ss.set);
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->accesses, ss.accesses);
        EXPECT_EQ(c->hits(), ss.hits);
        EXPECT_EQ(idx.setPostings(ss.set).size(), c->accesses);
    }
    EXPECT_EQ(idx.setCounts(0xffff), nullptr);
    EXPECT_TRUE(idx.setPostings(0xffff).empty());
}

TEST(TraceIndexTest, UniqueListingsAreCachedAndMatchScan)
{
    const auto t = makeTinyTable();
    EXPECT_EQ(t.uniquePcs(), t.uniquePcsScan());
    EXPECT_EQ(t.uniqueSets(), t.uniqueSetsScan());
    // Cached: repeated calls return the same build-time vector.
    EXPECT_EQ(&t.uniquePcs(), &t.uniquePcs());
    EXPECT_EQ(&t.uniqueSets(), &t.uniqueSets());
}

TEST(TraceIndexTest, KernelIntersectionAgainstNaive)
{
    // The skewed-pair case the galloping kernel is built for, run
    // through the chunked containers and the adaptive selector.
    std::mt19937_64 rng(0x5eedULL);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::uint32_t> a, b;
        const std::size_t na = 1 + rng() % 8;
        const std::size_t nb = 1 + rng() % 512;
        for (std::size_t i = 0; i < na; ++i)
            a.push_back(rng() % 600);
        for (std::size_t i = 0; i < nb; ++i)
            b.push_back(rng() % 600);
        for (auto *v : {&a, &b}) {
            std::sort(v->begin(), v->end());
            v->erase(std::unique(v->begin(), v->end()), v->end());
        }
        std::vector<std::uint32_t> naive;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(naive));
        PostingsStore sa, sb;
        sa.appendKey(a.data(), a.size());
        sb.appendKey(b.data(), b.size());
        std::vector<std::uint32_t> out;
        intersectLists(sa.list(0), sb.list(0), 0, out);
        EXPECT_EQ(out, naive) << iter;
        // Limit early-exit keeps the prefix.
        if (naive.size() > 1) {
            naive.resize(1);
            intersectLists(sa.list(0), sb.list(0), 1, out);
            EXPECT_EQ(out, naive) << iter;
        }
    }
}

TEST(TraceIndexTest, LazyBuildIsThreadSafeAndStable)
{
    // TSan-covered hammer: concurrent readers racing to trigger the
    // lazy per-shard index build must all observe one index (same
    // pattern — and same CI job — as the statsFor expert hammer).
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);
    const ShardSet shards = db.shards();
    const auto keys = shards.keys();

    // Before anyone touches it, no shard reports a built index.
    EXPECT_EQ(shards.indexTotals().shards_indexed, 0u);

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 100;
    std::vector<std::vector<const TraceIndex *>> seen(kThreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (std::size_t iter = 0; iter < kIters; ++iter) {
                for (const auto &key : keys) {
                    const auto view = shards.shard(key);
                    seen[t].push_back(view.index());
                    // Exercise reads through the fresh index too.
                    const auto &table = view.table();
                    const std::uint64_t pc = table.pcAt(iter % 7);
                    const auto rows = table.filter(&pc, nullptr, 3);
                    if (!rows.empty())
                        seen[t].back()->noteLookup(rows.size());
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();

    for (std::size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(seen[t].size(), kIters * keys.size());
        for (std::size_t i = 0; i < seen[t].size(); ++i) {
            ASSERT_NE(seen[t][i], nullptr);
            EXPECT_EQ(seen[t][i],
                      shards.indexFor(keys[i % keys.size()]));
        }
    }

    const auto totals = shards.indexTotals();
    EXPECT_EQ(totals.shards_indexed, keys.size());
    EXPECT_GT(totals.lookups, 0u);
    EXPECT_GT(totals.rows_skipped, 0u);
}

TEST(BuilderTest, ParallelBuildIsByteIdenticalAcrossThreadCounts)
{
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench,
                      trace::WorkloadKind::Astar};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady,
                     policy::PolicyKind::Parrot};
    opts.accesses_override = 20000;

    opts.build_threads = 1;
    const auto reference = buildDatabase(opts);
    const auto ref_keys = reference.keys();
    ASSERT_EQ(ref_keys.size(), 6u);

    for (const std::size_t threads : {2u, 8u}) {
        opts.build_threads = threads;
        const auto parallel = buildDatabase(opts);
        ASSERT_EQ(parallel.keys(), ref_keys)
            << "threads=" << threads;
        for (const auto &key : ref_keys) {
            const auto *a = reference.find(key);
            const auto *b = parallel.find(key);
            ASSERT_NE(b, nullptr) << key;
            EXPECT_EQ(a->workload, b->workload) << key;
            EXPECT_EQ(a->policy, b->policy) << key;
            EXPECT_EQ(a->metadata, b->metadata) << key;
            EXPECT_EQ(a->description, b->description) << key;
            ASSERT_EQ(a->table.size(), b->table.size()) << key;
            EXPECT_EQ(tableFingerprint(a->table),
                      tableFingerprint(b->table))
                << key << " threads=" << threads;
        }
    }
}

TEST(ShardTest, WarmIndexesMatchesLazyBuildAndIsIdempotent)
{
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;

    // Two byte-identical databases: one warmed up front, one indexed
    // lazily by queries. Warm-up must change when indexes are built,
    // never what they contain.
    const auto warm_db = buildDatabase(opts);
    const auto lazy_db = buildDatabase(opts);
    const ShardSet warm = warm_db.shards();
    const ShardSet lazy = lazy_db.shards();
    const auto keys = warm.keys();

    EXPECT_EQ(warm.indexTotals().shards_indexed, 0u);
    EXPECT_EQ(warm.warmIndexes(4), keys.size());
    EXPECT_EQ(warm.indexTotals().shards_indexed, keys.size());
    // Idempotent: a second pass finds nothing to build.
    EXPECT_EQ(warm.warmIndexes(4), 0u);

    for (const auto &key : keys) {
        const auto *wt = &warm.find(key)->table;
        const auto *lt = &lazy.find(key)->table;
        for (std::size_t k = 0; k < 5; ++k) {
            const std::uint64_t pc = wt->pcAt(k * 97 % wt->size());
            // The lazy side builds its index on first filter; both
            // sides must return identical row sets.
            EXPECT_EQ(wt->filter(&pc, nullptr, 16),
                      lt->filter(&pc, nullptr, 16))
                << key;
        }
        EXPECT_EQ(wt->uniquePcs(), lt->uniquePcs()) << key;
        EXPECT_EQ(wt->uniqueSets(), lt->uniqueSets()) << key;
    }
    EXPECT_EQ(lazy.indexTotals().shards_indexed, keys.size());
}

TEST(ShardTest, WarmIndexesWhileQueryingIsThreadSafe)
{
    // TSan-covered hammer: a parallel warm-up pass racing readers
    // that themselves trigger lazy builds. Every build still runs
    // under its shard's once_flag, so all observers agree on one
    // index per shard.
    BuildOptions opts;
    opts.workloads = {trace::WorkloadKind::Microbench};
    opts.policies = {policy::PolicyKind::Lru,
                     policy::PolicyKind::Belady};
    opts.accesses_override = 20000;
    const auto db = buildDatabase(opts);
    const ShardSet shards = db.shards();
    const auto keys = shards.keys();

    constexpr std::size_t kReaders = 4;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kReaders; ++t) {
        pool.emplace_back([&, t] {
            for (std::size_t iter = 0; iter < 50; ++iter) {
                for (const auto &key : keys) {
                    const auto &table = shards.find(key)->table;
                    const std::uint64_t pc =
                        table.pcAt((t * 31 + iter) % table.size());
                    const auto rows = table.filter(&pc, nullptr, 4);
                    EXPECT_FALSE(rows.empty());
                }
            }
        });
    }
    // Warm from the main thread while the readers hammer.
    shards.warmIndexes(4);
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(shards.indexTotals().shards_indexed, keys.size());
    for (const auto &key : keys)
        EXPECT_NE(shards.indexFor(key), nullptr) << key;
}
