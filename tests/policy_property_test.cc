/**
 * @file
 * Property-based invariants that every replacement policy must
 * satisfy, driven over randomized access streams and parameterized
 * across the whole policy zoo (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "base/random.hh"
#include "policy/basic_policies.hh"
#include "policy/parrot.hh"
#include "policy/replacement.hh"
#include "sim/cache.hh"
#include "sim/llc_replay.hh"
#include "trace/workload.hh"

using namespace cachemind;
using namespace cachemind::policy;
using namespace cachemind::sim;

namespace {

/** Random line stream with a tunable locality mix. */
std::vector<LlcAccess>
randomStream(std::uint64_t seed, std::size_t n, std::uint64_t lines)
{
    Rng rng(seed);
    std::vector<LlcAccess> out;
    out.reserve(n);
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t line;
        if (rng.nextBool(0.5)) {
            line = hot % 64; // hot working set
            ++hot;
        } else {
            line = 64 + rng.nextBelow(lines);
        }
        out.push_back(LlcAccess{0x400000 + (line % 37) * 4, line * 64,
                                line, trace::AccessType::Load});
    }
    return out;
}

} // namespace

class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyPropertyTest, InvariantHitAfterFillWithoutEviction)
{
    // With more ways than distinct lines, everything eventually hits.
    auto pol = makePolicy(GetParam());
    Cache under_test(CacheConfig{"p", 2, 8, 64, 1, 4}, std::move(pol));
    for (std::uint64_t rep = 0; rep < 4; ++rep) {
        for (std::uint64_t line = 0; line < 8; ++line) {
            AccessInfo info;
            info.pc = 0x400;
            info.line = line;
            info.address = line * 64;
            info.access_index = rep * 8 + line;
            info.next_use = info.access_index + 8;
            under_test.access(info);
        }
    }
    // 8 lines over 2 sets x 8 ways: after the cold pass all hit
    // (policies may bypass, so allow bypasses but no thrash).
    const auto &stats = under_test.stats();
    EXPECT_GE(stats.hits + stats.bypasses, 8u * 3 - 8);
}

TEST_P(PolicyPropertyTest, VictimAlwaysInRangeOnRandomStream)
{
    // The Cache asserts victim-way range internally; surviving a
    // large random stream without tripping CM_ASSERT is the check.
    auto pol = makePolicy(GetParam());
    Cache cache(CacheConfig{"p", 16, 4, 64, 1, 4}, std::move(pol));
    const auto stream = randomStream(42, 20000, 4096);
    const auto oracle = computeOracle(stream);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        AccessInfo info;
        info.pc = stream[i].pc;
        info.address = stream[i].address;
        info.line = stream[i].line;
        info.access_index = i;
        info.next_use = oracle.next_use[i];
        cache.access(info);
    }
    EXPECT_EQ(cache.stats().accesses, stream.size());
    EXPECT_EQ(cache.stats().hits + cache.stats().misses,
              stream.size());
}

TEST_P(PolicyPropertyTest, StatsAreInternallyConsistent)
{
    auto pol = makePolicy(GetParam());
    Cache cache(CacheConfig{"p", 8, 2, 64, 1, 4}, std::move(pol));
    const auto stream = randomStream(7, 8000, 512);
    const auto oracle = computeOracle(stream);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        AccessInfo info;
        info.pc = stream[i].pc;
        info.line = stream[i].line;
        info.address = stream[i].address;
        info.access_index = i;
        info.next_use = oracle.next_use[i];
        cache.access(info);
    }
    const auto &s = cache.stats();
    // Evictions + bypasses never exceed misses; fills = misses -
    // bypasses; evictions <= fills.
    EXPECT_LE(s.bypasses, s.misses);
    EXPECT_LE(s.evictions, s.misses - s.bypasses);
    EXPECT_NEAR(s.missRate() + s.hitRate(), 1.0, 1e-12);
}

TEST_P(PolicyPropertyTest, DeterministicAcrossRuns)
{
    auto run = [this] {
        auto pol = makePolicy(GetParam());
        Cache cache(CacheConfig{"p", 16, 4, 64, 1, 4}, std::move(pol));
        const auto stream = randomStream(99, 10000, 2048);
        const auto oracle = computeOracle(stream);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            AccessInfo info;
            info.pc = stream[i].pc;
            info.line = stream[i].line;
            info.address = stream[i].address;
            info.access_index = i;
            info.next_use = oracle.next_use[i];
            cache.access(info);
        }
        return cache.stats().hits;
    };
    EXPECT_EQ(run(), run());
}

TEST_P(PolicyPropertyTest, NeverWorseThanRandomByALot)
{
    // Sanity floor: on a half-hot stream every policy — including an
    // untrained PARROT and the online learners mid-convergence —
    // should stay within a constant factor of the random baseline.
    auto replay = [](std::unique_ptr<ReplacementPolicy> pol) {
        LlcReplayer rep(CacheConfig{"p", 16, 8, 64, 1, 4},
                        std::move(pol));
        const auto stream = randomStream(5, 30000, 8192);
        const auto oracle = computeOracle(stream);
        return rep.replay(stream, &oracle, nullptr).hitRate();
    };
    const double baseline = replay(std::make_unique<RandomPolicy>());
    const double candidate = replay(makePolicy(GetParam()));
    EXPECT_GT(candidate, baseline * 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPropertyTest,
    ::testing::ValuesIn(allPolicies()),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return std::string(policyName(info.param));
    });

TEST(BeladyOptimalityTest, DominatesEveryOnlinePolicyOnEveryWorkload)
{
    // The defining property of the oracle, checked end to end.
    for (const auto wk : trace::allWorkloads()) {
        const auto t = trace::makeWorkload(wk)->generate(40000);
        const auto stream = captureLlcStream(t);
        const auto oracle = computeOracle(stream);
        const CacheConfig llc{"llc", 256, 16, 64, 26, 64};

        LlcReplayer opt(llc, std::make_unique<BeladyPolicy>());
        const double opt_rate =
            opt.replay(stream, &oracle, nullptr).hitRate();

        for (const auto pk :
             {PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ship,
              PolicyKind::Mlp, PolicyKind::Random}) {
            LlcReplayer online(llc, makePolicy(pk));
            const double rate =
                online.replay(stream, &oracle, nullptr).hitRate();
            EXPECT_GE(opt_rate + 1e-9, rate)
                << trace::workloadName(wk) << " vs "
                << policyName(pk);
        }
    }
}
