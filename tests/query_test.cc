/**
 * @file
 * Tests for the query layer: natural-language parsing (intent +
 * symbolic slots) and the retrieval DSL interpreter, including the
 * exact semantics Ranger's execution runtime depends on.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "db/builder.hh"
#include "query/dsl.hh"
#include "query/parser.hh"

using namespace cachemind;
using namespace cachemind::query;

namespace {

NlQueryParser
makeParser()
{
    return NlQueryParser({"astar", "lbm", "mcf", "milc", "microbench"},
                         {"belady", "lru", "mlp", "parrot"});
}

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Microbench};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 40000;
        return db::buildDatabase(options);
    }();
    return database;
}

} // namespace

TEST(ParserTest, HitMissQueryExtractsEverything)
{
    const auto parser = makeParser();
    const auto q = parser.parse(
        "Does the memory access with PC 0x401e31 and address "
        "0x35e798a637f result in a cache hit or cache miss for the "
        "lbm workload under PARROT?");
    EXPECT_EQ(q.intent, QueryIntent::HitMiss);
    ASSERT_TRUE(q.pc.has_value());
    EXPECT_EQ(*q.pc, 0x401e31u);
    ASSERT_TRUE(q.address.has_value());
    EXPECT_EQ(*q.address, 0x35e798a637fULL);
    ASSERT_TRUE(q.hasWorkload());
    EXPECT_EQ(q.workload(), "lbm");
    ASSERT_TRUE(q.hasPolicy());
    EXPECT_EQ(q.policy(), "parrot");
}

TEST(ParserTest, MissRateQuery)
{
    const auto parser = makeParser();
    const auto q = parser.parse(
        "What is the miss rate for PC 0x4037ba in mcf with PARROT?");
    EXPECT_EQ(q.intent, QueryIntent::MissRate);
    EXPECT_EQ(*q.pc, 0x4037bau);
    EXPECT_EQ(q.workload(), "mcf");
}

TEST(ParserTest, PolicyComparisonNeedsWorkload)
{
    const auto parser = makeParser();
    const auto q = parser.parse(
        "Which policy has the lowest miss rate for PC 0x409270 in "
        "astar?");
    EXPECT_EQ(q.intent, QueryIntent::PolicyComparison);
    const auto concept_q = parser.parse(
        "Which choice gives a lower miss rate, more sets or more "
        "ways, for a fixed cache size?");
    EXPECT_EQ(concept_q.intent, QueryIntent::Concept);
}

TEST(ParserTest, CountQuery)
{
    const auto parser = makeParser();
    const auto q = parser.parse(
        "How many times did PC 0x405832 appear in astar under LRU?");
    EXPECT_EQ(q.intent, QueryIntent::Count);
    EXPECT_EQ(*q.pc, 0x405832u);
}

TEST(ParserTest, ArithmeticSlots)
{
    const auto parser = makeParser();
    const auto q = parser.parse(
        "What is the average evicted reuse distance of PC 0x40170a "
        "for the lbm workload with MLP?");
    EXPECT_EQ(q.intent, QueryIntent::Arithmetic);
    EXPECT_EQ(q.agg, AggKind::Mean);
    EXPECT_EQ(q.field, FieldKind::EvictedReuseDistance);

    const auto q2 = parser.parse(
        "What is the standard deviation of the reuse distance of PC "
        "0x413930 in the milc workload under LRU?");
    EXPECT_EQ(q2.agg, AggKind::Std);
    EXPECT_EQ(q2.field, FieldKind::ReuseDistance);
}

TEST(ParserTest, ExplainAndCodeGen)
{
    const auto parser = makeParser();
    EXPECT_EQ(parser
                  .parse("Why does Belady outperform LRU on PC "
                         "0x409270 in astar?")
                  .intent,
              QueryIntent::Explain);
    EXPECT_EQ(parser
                  .parse("Write code to compute hits for PC 0x4037ba "
                         "in mcf under LRU.")
                  .intent,
              QueryIntent::CodeGen);
}

TEST(ParserTest, ListingsAndSets)
{
    const auto parser = makeParser();
    EXPECT_EQ(parser.parse("List all unique PCs in the mcf workload "
                           "under LRU.")
                  .intent,
              QueryIntent::ListPcs);
    EXPECT_EQ(parser
                  .parse("For astar and Belady, could you list the "
                         "unique cache sets in ascending order?")
                  .intent,
              QueryIntent::ListSets);
    const auto hot = parser.parse(
        "Identify 5 hot and 5 cold sets by hit rate for astar under "
        "LRU.");
    EXPECT_EQ(hot.intent, QueryIntent::SetStats);
    EXPECT_EQ(hot.top_n, 5u);
}

TEST(ParserTest, ConceptQuestions)
{
    const auto parser = makeParser();
    EXPECT_EQ(parser
                  .parse("How does increasing cache size affect miss "
                         "rate? Compare sets vs ways.")
                  .intent,
              QueryIntent::Concept);
    EXPECT_EQ(parser
                  .parse("Decompose a memory address into offset, "
                         "index and tag bits for 64-byte lines.")
                  .intent,
              QueryIntent::Concept);
}

TEST(ParserTest, PcVsAddressDisambiguation)
{
    const auto parser = makeParser();
    // Small hex value = PC; large = data address, regardless of order.
    const auto q =
        parser.parse("check 0x2bfd401c63f against 0x409270 in astar");
    ASSERT_TRUE(q.pc.has_value());
    EXPECT_EQ(*q.pc, 0x409270u);
    ASSERT_TRUE(q.address.has_value());
    EXPECT_EQ(*q.address, 0x2bfd401c63fULL);
}

// ------------------------------------------------------ interpreter

TEST(DslTest, MissRateMatchesStatsExpert)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    const auto *expert = database.statsFor("microbench_evictions_lru");
    const auto stats = expert->pcStats(0x400512);
    ASSERT_TRUE(stats.has_value());

    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.pc = 0x400512;
    prog.op = DslOp::MissRate;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    ASSERT_TRUE(res.number.has_value());
    EXPECT_NEAR(*res.number, stats->missRate(), 1e-12);
}

TEST(DslTest, CountMatchesAccesses)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    const auto *expert = database.statsFor("microbench_evictions_lru");
    const auto stats = expert->pcStats(0x400512);

    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.pc = 0x400512;
    prog.op = DslOp::CountRows;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    EXPECT_DOUBLE_EQ(*res.number,
                     static_cast<double>(stats->accesses));
}

TEST(DslTest, HitCountPlusMissesEqualsAccesses)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.pc = 0x400512;

    prog.op = DslOp::HitCount;
    const auto hits = interp.run(prog);
    prog.op = DslOp::CountRows;
    const auto total = interp.run(prog);
    prog.op = DslOp::MissRate;
    const auto rate = interp.run(prog);
    ASSERT_TRUE(hits.ok && total.ok && rate.ok);
    EXPECT_NEAR(*hits.number,
                *total.number * (1.0 - *rate.number), 1e-6);
}

TEST(DslTest, AggregatesRespectSentinels)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.op = DslOp::MinField;
    prog.field = DslField::ReuseDistance;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    EXPECT_GE(*res.number, 0.0); // kNoValue rows are excluded
}

TEST(DslTest, SelectRowsHonoursLimitAndReportsMatched)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.pc = 0x400512;
    prog.op = DslOp::SelectRows;
    prog.limit = 5;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.rows.size(), 5u);
    EXPECT_GT(res.matched, 5u);
    for (const auto &row : res.rows)
        EXPECT_EQ(row.program_counter, 0x400512u);
}

TEST(DslTest, UnknownTraceFails)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "gcc_evictions_lru";
    prog.op = DslOp::CountRows;
    const auto res = interp.run(prog);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("gcc_evictions_lru"), std::string::npos);
}

TEST(DslTest, MetadataOpReturnsSummary)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.op = DslOp::Metadata;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    EXPECT_NE(res.text.find("total accesses"), std::string::npos);
}

TEST(DslTest, UniqueListingsSorted)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.op = DslOp::UniquePcs;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    ASSERT_GT(res.values.size(), 2u);
    for (std::size_t i = 1; i < res.values.size(); ++i)
        EXPECT_LT(res.values[i - 1], res.values[i]);
}

TEST(DslTest, RenderedPythonMentionsFiltersAndTable)
{
    DslProgram prog;
    prog.trace_key = "lbm_evictions_lru";
    prog.pc = 0x401e31;
    prog.address = 0x35e798a637f;
    prog.op = DslOp::MissRate;
    const auto code = renderProgramAsPython(prog);
    EXPECT_NE(code.find("lbm_evictions_lru"), std::string::npos);
    EXPECT_NE(code.find("0x401e31"), std::string::npos);
    EXPECT_NE(code.find("0x35e798a637f"), std::string::npos);
    EXPECT_NE(code.find("miss rate"), std::string::npos);
    EXPECT_NE(code.find("result ="), std::string::npos);
}

// -------------------------------------- index-vs-scan equivalence

namespace {

/** Deterministic digest of one materialised row, every field. */
std::string
rowSignature(const db::AccessRow &r)
{
    std::ostringstream os;
    os << r.index << '|' << r.program_counter << '|'
       << r.memory_address << '|' << r.cache_set_id << '|' << r.is_miss
       << r.bypassed << r.has_victim << r.wrong_eviction << '|'
       << static_cast<int>(r.miss_type) << '|' << r.evicted_address
       << '|' << r.accessed_reuse_distance << '|' << r.accessed_recency
       << '|' << r.evicted_reuse_distance << '|' << r.recency_text
       << '|' << r.function_name << '|'
       << r.current_cache_lines.size() << '|'
       << r.cache_line_eviction_scores.size() << '|'
       << r.recent_access_history.size();
    return os.str();
}

/** Assert two DslResults are byte-identical, field by field. */
void
expectSameResult(const DslResult &a, const DslResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.ok, b.ok) << what;
    EXPECT_EQ(a.error, b.error) << what;
    EXPECT_EQ(a.matched, b.matched) << what;
    ASSERT_EQ(a.number.has_value(), b.number.has_value()) << what;
    if (a.number) {
        // Bit-exact: the indexed path must visit the same samples in
        // the same order, so even floating aggregates are identical.
        EXPECT_EQ(*a.number, *b.number) << what;
    }
    EXPECT_EQ(a.values, b.values) << what;
    EXPECT_EQ(a.text, b.text) << what;
    ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(rowSignature(a.rows[i]), rowSignature(b.rows[i]))
            << what << " row " << i;
    }
}

} // namespace

TEST(DslIndexEquivalenceTest, RandomizedProgramsMatchReferenceScan)
{
    // Property test: the indexed interpreter must produce
    // byte-identical results to the reference O(n) scan over
    // randomized programs — every op, random pc/address/set filters
    // (present and absent), random fields and limits.
    const auto &database = sharedDb();
    const Interpreter indexed(database, ExecMode::Indexed);
    const Interpreter scan(database, ExecMode::ReferenceScan);
    ASSERT_EQ(indexed.mode(), ExecMode::Indexed);
    ASSERT_EQ(scan.mode(), ExecMode::ReferenceScan);

    const std::string key = "microbench_evictions_lru";
    const auto *entry = database.find(key);
    ASSERT_NE(entry, nullptr);
    const db::TraceTable &table = entry->table;
    const auto pcs = table.uniquePcsScan();
    const auto sets = table.uniqueSetsScan();
    ASSERT_FALSE(pcs.empty());
    ASSERT_FALSE(sets.empty());

    const DslOp ops[] = {DslOp::SelectRows, DslOp::CountRows,
                         DslOp::MissRate,   DslOp::HitCount,
                         DslOp::MeanField,  DslOp::SumField,
                         DslOp::MinField,   DslOp::MaxField,
                         DslOp::StdField,   DslOp::UniquePcs,
                         DslOp::UniqueSets};
    const DslField fields[] = {DslField::ReuseDistance,
                               DslField::EvictedReuseDistance,
                               DslField::Recency};
    const std::size_t limits[] = {0, 1, 5, 16};

    std::mt19937_64 rng(0xca6eULL);
    for (int iter = 0; iter < 400; ++iter) {
        DslProgram prog;
        prog.trace_key = key;
        prog.op = ops[rng() % (sizeof(ops) / sizeof(ops[0]))];
        prog.field = fields[rng() % 3];
        prog.limit = limits[rng() % 4];
        if (rng() % 2 == 0) {
            prog.pc = rng() % 5 == 0 ? 0xdead0000 + (rng() % 16)
                                     : pcs[rng() % pcs.size()];
        }
        if (rng() % 3 == 0) {
            prog.address = rng() % 5 == 0
                               ? 0x1230000 + (rng() % 16)
                               : table.addressAt(rng() % table.size());
        }
        if (rng() % 3 == 0) {
            prog.set_id = rng() % 5 == 0
                              ? 0xfff0u + (rng() % 8)
                              : sets[rng() % sets.size()];
        }
        const auto a = indexed.run(prog);
        const auto b = scan.run(prog);
        std::ostringstream what;
        what << "iter=" << iter << " op=" << dslOpName(prog.op);
        if (prog.pc)
            what << " pc=" << *prog.pc;
        if (prog.address)
            what << " addr=" << *prog.address;
        if (prog.set_id)
            what << " set=" << *prog.set_id;
        what << " limit=" << prog.limit;
        expectSameResult(a, b, what.str());
    }
}

TEST(DslIndexEquivalenceTest, UnfilteredAggregatesMatchWithoutRowVector)
{
    // The unfiltered paths (previously an n-element row-index vector
    // per call) must agree with the scan on whole-table answers.
    const auto &database = sharedDb();
    const Interpreter indexed(database, ExecMode::Indexed);
    const Interpreter scan(database, ExecMode::ReferenceScan);
    for (const auto op :
         {DslOp::CountRows, DslOp::HitCount, DslOp::MissRate,
          DslOp::MeanField, DslOp::StdField, DslOp::SelectRows}) {
        DslProgram prog;
        prog.trace_key = "microbench_evictions_lru";
        prog.op = op;
        prog.limit = 4;
        expectSameResult(indexed.run(prog), scan.run(prog),
                         dslOpName(op));
    }
}

TEST(DslTest, PerSetStatsForOneSet)
{
    const auto &database = sharedDb();
    const Interpreter interp(database);
    const auto *expert = database.statsFor("microbench_evictions_lru");
    const auto sets = expert->allSetStats();
    ASSERT_FALSE(sets.empty());

    DslProgram prog;
    prog.trace_key = "microbench_evictions_lru";
    prog.op = DslOp::PerSetStats;
    prog.set_id = sets.front().set;
    const auto res = interp.run(prog);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.set_stats.size(), 1u);
    EXPECT_EQ(res.set_stats[0].accesses, sets.front().accesses);
}
