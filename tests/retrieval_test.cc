/**
 * @file
 * Tests for the retrievers: Sieve's symbolic filtering, premise
 * checks, and evidence windows; Ranger's planning, execution, and
 * exact counting; the LlamaIndex baseline's characteristic failure;
 * cross-retriever properties (parameterized); and the tiered
 * cross-question RetrievalCache (clock second-chance semantics, exact
 * capacity, secondary-tier demotion/promotion, codec round trips,
 * single-flight under a multi-thread hammer, cache-key discipline).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <thread>

#include "base/random.hh"
#include "base/str.hh"
#include "db/builder.hh"
#include "query/parser.hh"
#include "retrieval/bundle_codec.hh"
#include "retrieval/cache.hh"
#include "retrieval/clock_cache.hh"
#include "retrieval/llamaindex.hh"
#include "retrieval/ranger.hh"
#include "retrieval/secondary_tier.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;
using namespace cachemind::retrieval;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Mcf,
                             trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

/** First (pc, address, hit) triple of a trace for exact queries. */
struct KnownAccess
{
    std::uint64_t pc;
    std::uint64_t address;
    bool is_miss;
};

KnownAccess
knownAccess(const std::string &key, std::size_t row = 0)
{
    const auto *entry = sharedDb().find(key);
    return KnownAccess{entry->table.pcAt(row),
                       entry->table.addressAt(row),
                       entry->table.isMissAt(row)};
}

} // namespace

TEST(SieveTest, ExactTupleRetrievesMatchingRows)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    EXPECT_EQ(bundle.trace_key, "mcf_evictions_lru");
    ASSERT_FALSE(bundle.rows.empty());
    EXPECT_EQ(bundle.rows[0].program_counter, known.pc);
    EXPECT_EQ(bundle.rows[0].memory_address, known.address);
    EXPECT_EQ(bundle.rows[0].is_miss, known.is_miss);
    EXPECT_FALSE(bundle.premise_violation);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, EvidenceWindowIsBounded)
{
    SieveConfig cfg;
    cfg.evidence_window = 3;
    SieveRetriever sieve(sharedDb(), cfg);
    // The arc-scan PC has tens of thousands of rows.
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    EXPECT_LE(bundle.rows.size(), 3u);
    EXPECT_FALSE(bundle.total_is_exact); // Sieve cannot count
}

TEST(SieveTest, CrossWorkloadPremiseViolationDetected)
{
    SieveRetriever sieve(sharedDb());
    // astar's queue PC does not exist in mcf.
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
    EXPECT_NE(bundle.premise_note.find("0x409538"), std::string::npos);
    EXPECT_NE(bundle.premise_note.find("astar"), std::string::npos);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, UnresolvedWorkloadYieldsLowQuality)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x400512 in the gzip workload "
        "under LRU?");
    EXPECT_TRUE(bundle.trace_key.empty());
    EXPECT_EQ(assessQuality(bundle), ContextQuality::Low);
}

TEST(SieveTest, PolicyComparisonGathersAllPolicies)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    ASSERT_EQ(bundle.policy_numbers.size(), 2u); // lru + belady
    EXPECT_NE(bundle.policy_numbers[0].policy,
              bundle.policy_numbers[1].policy);
}

TEST(SieveTest, ExplainBundleIsRich)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    EXPECT_FALSE(bundle.metadata.empty());
    EXPECT_FALSE(bundle.workload_description.empty());
    EXPECT_FALSE(bundle.assembly.empty());
    EXPECT_TRUE(bundle.pc_stats.has_value());
    EXPECT_GE(bundle.policy_numbers.size(), 2u);
}

TEST(SieveTest, SetStatsQueriesReturnHotAndCold)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Identify 5 hot and 5 cold sets by hit rate for the astar "
        "workload under LRU.");
    EXPECT_EQ(bundle.set_stats.size(), 10u);
}

TEST(RangerTest, GeneratesCodeAndComputesExactCount)
{
    RangerRetriever ranger(sharedDb());
    const auto *expert = sharedDb().statsFor("mcf_evictions_lru");
    const auto stats = expert->pcStats(0x4037aa);
    ASSERT_TRUE(stats.has_value());

    const auto bundle = ranger.retrieve(
        "How many times did PC 0x4037aa appear in the mcf workload "
        "under LRU?");
    EXPECT_TRUE(bundle.total_is_exact);
    EXPECT_EQ(bundle.total_matches, stats->accesses);
    EXPECT_NE(bundle.generated_code.find("mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(bundle.generated_code.find("0x4037aa"),
              std::string::npos);
}

TEST(RangerTest, ArithmeticUsesExecutedProgram)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(bundle.computed.has_value());
    EXPECT_GT(*bundle.computed, 0.0);
}

TEST(RangerTest, PremiseDetectionOnEmptyExactMatch)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
}

TEST(RangerTest, LowFidelityCorruptsPrograms)
{
    RangerConfig cfg;
    cfg.codegen_fidelity = 0.0; // always mis-generate
    RangerRetriever ranger(sharedDb(), cfg);
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    // The corrupted program still runs but computes something else;
    // compare against the faithful value.
    RangerRetriever faithful(sharedDb());
    const auto good = faithful.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(good.computed.has_value());
    if (bundle.computed.has_value())
        EXPECT_NE(*bundle.computed, *good.computed);
}

TEST(RangerTest, ExplainBundleIsNarrow)
{
    RangerRetriever ranger(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = ranger.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    // The §6.2 crossover mechanism: no descriptive context.
    EXPECT_TRUE(bundle.workload_description.empty());
    EXPECT_TRUE(bundle.assembly.empty());
    EXPECT_FALSE(bundle.pc_stats.has_value());
}

TEST(LlamaIndexTest, RetrievesPlausibleButImpreciseChunks)
{
    LlamaIndexConfig cfg;
    cfg.row_stride = 64; // keep the test fast
    LlamaIndexRetriever llama(sharedDb(), cfg);
    EXPECT_GT(llama.indexedChunks(), 100u);

    const auto known = knownAccess("mcf_evictions_lru", 5);
    const auto bundle = llama.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    // Dense retrieval returns *some* chunks but no structured rows.
    EXPECT_FALSE(bundle.result_text.empty());
    EXPECT_TRUE(bundle.rows.empty());
    EXPECT_FALSE(bundle.total_is_exact);
}

// ------------------------- cross-retriever parameterized properties

class RetrieverParamTest : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Retriever>
    make() const
    {
        const std::string which = GetParam();
        if (which == "sieve")
            return std::make_unique<SieveRetriever>(sharedDb());
        if (which == "ranger")
            return std::make_unique<RangerRetriever>(sharedDb());
        LlamaIndexConfig cfg;
        cfg.row_stride = 128;
        return std::make_unique<LlamaIndexRetriever>(sharedDb(), cfg);
    }
};

TEST_P(RetrieverParamTest, RetrievalIsDeterministic)
{
    auto r1 = make();
    auto r2 = make();
    const std::string q =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    const auto a = r1->retrieve(q);
    const auto b = r2->retrieve(q);
    EXPECT_EQ(a.trace_key, b.trace_key);
    EXPECT_EQ(a.rows.size(), b.rows.size());
    EXPECT_EQ(a.result_text, b.result_text);
    EXPECT_EQ(a.computed.has_value(), b.computed.has_value());
}

TEST_P(RetrieverParamTest, RendersNonEmptyContext)
{
    auto retriever = make();
    const auto bundle = retriever->retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    EXPECT_FALSE(bundle.render().empty());
    EXPECT_EQ(bundle.retriever, std::string(GetParam()));
    EXPECT_GE(bundle.retrieval_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRetrievers, RetrieverParamTest,
                         ::testing::Values("sieve", "ranger",
                                           "llamaindex"));

TEST(ContextBundleTest, RenderContainsKeySections)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    const auto text = bundle.render();
    EXPECT_NE(text.find("[Trace] mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(text.find("[Trace slice]"), std::string::npos);
    EXPECT_NE(text.find(str::hex(known.pc)), std::string::npos);
}

TEST(ContextQualityTest, NamesAreStable)
{
    EXPECT_STREQ(contextQualityName(ContextQuality::Low), "Low");
    EXPECT_STREQ(contextQualityName(ContextQuality::Medium), "Medium");
    EXPECT_STREQ(contextQualityName(ContextQuality::High), "High");
}

// ------------------------------------ staged-pipeline entry points

namespace {

query::NlQueryParser
sharedParser()
{
    return query::NlQueryParser(sharedDb().workloads(),
                                sharedDb().policies());
}

/** A payload-free bundle tagged so tests can tell bundles apart. */
RetrievalCache::BundlePtr
taggedBundle(const std::string &tag)
{
    auto bundle = std::make_shared<ContextBundle>();
    bundle->result_text = tag;
    return bundle;
}

} // namespace

TEST_P(RetrieverParamTest, RetrieveParsedMatchesStringShim)
{
    // The string overload is now a parsing shim: retrieveParsed on
    // the engine-level parse must assemble the identical bundle.
    const auto parser = sharedParser();
    const std::vector<std::string> questions = {
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "Why does Belady outperform LRU in the mcf workload?",
    };
    for (const auto &q : questions) {
        auto via_string = make();
        auto via_parsed = make();
        const auto a = via_string->retrieve(q);
        const auto b = via_parsed->retrieveParsed(parser.parse(q));
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.trace_key, b.trace_key) << q;
        EXPECT_EQ(a.parsed.raw, b.parsed.raw) << q;
    }
}

TEST(CacheKeyTest, SieveSharesAcrossPhrasingsOfTheSameSlots)
{
    SieveRetriever sieve(sharedDb());
    const auto parser = sharedParser();
    const auto a = parser.parse(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    const auto b = parser.parse(
        "For the mcf workload under LRU, what miss rate does PC "
        "0x4037aa have?");
    ASSERT_EQ(a.slotKey(), b.slotKey());
    EXPECT_EQ(sieve.cacheKey(a), sieve.cacheKey(b));
    EXPECT_FALSE(sieve.cacheKey(a).empty());

    // Different slots must never alias.
    const auto c = parser.parse(
        "What is the miss rate for PC 0x4037ab in the mcf workload "
        "with LRU?");
    EXPECT_NE(sieve.cacheKey(a), sieve.cacheKey(c));
}

TEST(CacheKeyTest, ConfigChangesTheFingerprint)
{
    SieveRetriever stock(sharedDb());
    SieveConfig tuned_cfg;
    tuned_cfg.evidence_window = 3;
    SieveRetriever tuned(sharedDb(), tuned_cfg);
    // A differently tuned retriever assembles different evidence for
    // the same slots; the fingerprints must keep them apart.
    EXPECT_NE(stock.cacheFingerprint(), tuned.cacheFingerprint());

    RangerRetriever faithful(sharedDb());
    RangerConfig low_cfg;
    low_cfg.codegen_fidelity = 0.5;
    RangerRetriever low(sharedDb(), low_cfg);
    EXPECT_NE(faithful.cacheFingerprint(), low.cacheFingerprint());
}

TEST(CacheKeyTest, RawDependentRetrieversKeyOnRawText)
{
    const auto parser = sharedParser();
    const auto a = parser.parse(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    const auto b = parser.parse(
        "For the mcf workload under LRU, what miss rate does PC "
        "0x4037aa have?");
    ASSERT_EQ(a.slotKey(), b.slotKey());

    // Dense retrieval embeds the raw text: paraphrases never share.
    LlamaIndexConfig llama_cfg;
    llama_cfg.row_stride = 128;
    LlamaIndexRetriever llama(sharedDb(), llama_cfg);
    EXPECT_NE(llama.cacheKey(a), llama.cacheKey(b));

    // Ranger below full fidelity keys its mis-generation draws on the
    // raw text, so slot-equal paraphrases must not share either.
    RangerConfig low_cfg;
    low_cfg.codegen_fidelity = 0.5;
    RangerRetriever low(sharedDb(), low_cfg);
    EXPECT_NE(low.cacheKey(a), low.cacheKey(b));
    RangerRetriever faithful(sharedDb());
    EXPECT_EQ(faithful.cacheKey(a), faithful.cacheKey(b));
}

// --------------------------------------------- RetrievalCache unit

TEST(RetrievalCacheTest, HitReturnsTheSharedBundle)
{
    RetrievalCache cache(/*capacity=*/8, /*lock_shards=*/1);
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return taggedBundle("v");
    };
    const auto first = cache.getOrCompute("k", compute);
    RetrievalCache::Outcome outcome;
    const auto second = cache.getOrCompute("k", compute, &outcome);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get()); // the same immutable bundle
    EXPECT_TRUE(outcome.hit);
    const auto counters = cache.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.evictions, 0u);
}

TEST(RetrievalCacheTest, ClockSecondChanceKeepsReHitKeyResident)
{
    // CLOCK semantics at the tier level: a hit sets the clock bit,
    // fresh inserts start with it clear, so the sweep always evicts a
    // key that was never re-hit before one that was — whatever the
    // hash-determined slot order.
    ClockCacheTier tier(/*capacity=*/2);
    EXPECT_EQ(tier.insert("a", taggedBundle("a")).size(), 0u);
    for (int i = 0; i < 16; ++i) {
        // Re-hit "a" before every insert: its clock bit is set when
        // the capacity sweep runs, the newcomer's is not.
        const auto hit = tier.lookup("a");
        ASSERT_TRUE(hit);
        EXPECT_EQ(hit->result_text, "a");
        const auto displaced =
            tier.insert("k" + std::to_string(i),
                        taggedBundle("k" + std::to_string(i)));
        for (const auto &d : displaced)
            EXPECT_NE(d.key, "a");
        EXPECT_LE(tier.entries(), 2u);
    }
    EXPECT_TRUE(tier.lookup("a"));
    const auto stats = tier.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.insertions, 17u);
    EXPECT_EQ(stats.evictions, 15u);
}

TEST(RetrievalCacheTest, ExactCapacityIsNeverExceeded)
{
    // The sharded LRU this replaced rounded per-shard budgets up, so
    // effective capacity could exceed the configured value by up to
    // lock_shards - 1. The clock tier's budget is exact: occupancy
    // never passes `capacity`, shards or no shards.
    constexpr std::size_t kCapacity = 5;
    RetrievalCache cache(kCapacity, /*lock_shards=*/8);
    for (int i = 0; i < 50; ++i) {
        const std::string key = "key-" + std::to_string(i);
        cache.getOrCompute(key, [&] { return taggedBundle(key); });
        EXPECT_LE(cache.size(), kCapacity) << "after insert " << i;
    }
    EXPECT_EQ(cache.size(), kCapacity);
    EXPECT_EQ(cache.counters().evictions, 50u - kCapacity);
    EXPECT_EQ(cache.tiered().hot.entries, kCapacity);
}

TEST(RetrievalCacheTest, SecondaryTierRecoversHotEvictions)
{
    // Hot tier of 2 over a roomy secondary: bundles demoted out of
    // the hot tier land in the secondary in codec form, so re-getting
    // every key decodes + re-promotes instead of recomputing — zero
    // recomputes across the whole second pass.
    RetrievalCache::Options options;
    options.capacity = 2;
    options.secondary_capacity_bytes = 1u << 20;
    RetrievalCache cache(options);
    std::map<std::string, int> computes;
    const auto get = [&](const std::string &key) {
        return cache.getOrCompute(key, [&] {
            ++computes[key];
            return taggedBundle(key);
        });
    };
    constexpr int kKeys = 10;
    for (int i = 0; i < kKeys; ++i)
        get("key-" + std::to_string(i));
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < kKeys; ++i) {
            const std::string key = "key-" + std::to_string(i);
            const auto bundle = get(key);
            ASSERT_TRUE(bundle);
            EXPECT_EQ(bundle->result_text, key);
            EXPECT_EQ(computes[key], 1) << key;
        }
    }
    const auto tiers = cache.tiered();
    EXPECT_TRUE(tiers.secondary_enabled);
    EXPECT_LE(tiers.hot.entries, 2u);
    EXPECT_GE(tiers.secondary.hits, static_cast<std::uint64_t>(kKeys));
    EXPECT_EQ(tiers.promotions, tiers.secondary.hits);
    EXPECT_GE(tiers.demotions, tiers.secondary.hits);
    // Nothing ever left the cache: the secondary absorbed every
    // demotion, so cache-level evictions stayed at zero.
    EXPECT_EQ(cache.counters().evictions, 0u);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

TEST(RetrievalCacheTest, SecondaryTierByteBudgetIsExact)
{
    // The secondary tier budgets encoded bytes exactly: occupancy
    // never exceeds the budget, oversized entries are rejected.
    SecondaryTier tier(/*capacity_bytes=*/4096);
    auto big = std::make_shared<ContextBundle>();
    big->result_text.assign(8192, 'x');
    const auto rejected = tier.insert("big", big);
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].key, "big");
    EXPECT_EQ(tier.stats().rejected, 1u);

    for (int i = 0; i < 64; ++i) {
        auto bundle = std::make_shared<ContextBundle>();
        bundle->result_text.assign(200, static_cast<char>('a' + i % 26));
        tier.insert("k" + std::to_string(i), bundle);
        EXPECT_LE(tier.bytes(), 4096u);
    }
    EXPECT_GT(tier.stats().evictions, 0u);
}

TEST(RetrievalCacheTest, CapacityZeroDisablesCaching)
{
    RetrievalCache cache(/*capacity=*/0);
    EXPECT_FALSE(cache.enabled());
    int computes = 0;
    for (int i = 0; i < 3; ++i) {
        RetrievalCache::Outcome outcome;
        cache.getOrCompute(
            "k",
            [&] {
                ++computes;
                return taggedBundle("v");
            },
            &outcome);
        EXPECT_FALSE(outcome.hit);
    }
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(RetrievalCacheTest, HotKeyHammerIsSingleFlight)
{
    // 8 threads hammer one hot slot key. The bundle must be computed
    // exactly once — concurrent misses coalesce onto the in-flight
    // computation — and every thread must see the same bundle. Run
    // under TSan in CI to keep shared-cache races from regressing.
    RetrievalCache cache(/*capacity=*/64);
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::atomic<int> computes{0};
    std::atomic<int> mismatches{0};
    const auto compute = [&] {
        computes.fetch_add(1);
        // Widen the in-flight window so late arrivals actually wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return taggedBundle("hot");
    };

    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                const auto bundle =
                    cache.getOrCompute("hot-slot", compute);
                if (!bundle || bundle->result_text != "hot")
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(mismatches.load(), 0);
    const auto counters = cache.counters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.hits,
              static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TEST(RetrievalCacheTest, DistinctKeysUnderConcurrency)
{
    // Multi-key hammer across lock shards: every key computes exactly
    // once and keeps its own bundle.
    RetrievalCache cache(/*capacity=*/256, /*lock_shards=*/8);
    constexpr int kThreads = 8;
    constexpr int kKeys = 32;
    std::atomic<int> computes{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kKeys; ++i) {
                const std::string key = "key-" + std::to_string(i);
                const auto bundle = cache.getOrCompute(key, [&, key] {
                    computes.fetch_add(1);
                    return taggedBundle(key);
                });
                if (!bundle || bundle->result_text != key)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(computes.load(), kKeys);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

TEST(RetrievalCacheTest, TieredChurnHammerStaysByteIdentical)
{
    // 8 threads over 32 keys against a 4-entry hot tier and a
    // secondary small enough to lose entries: constant demotion /
    // promotion / eviction churn. The byte-identity contract must
    // hold through all of it — every lookup returns the key's own
    // bundle, bit for bit, no matter which tier served it. Runs under
    // TSan and ASan in CI.
    RetrievalCache::Options options;
    options.capacity = 4;
    options.secondary_capacity_bytes = 8u << 10;
    RetrievalCache cache(options);
    constexpr int kThreads = 8;
    constexpr int kOps = 400;
    constexpr int kKeys = 32;
    const auto bundleFor = [](const std::string &key) {
        auto bundle = std::make_shared<ContextBundle>();
        bundle->result_text = key;
        // Bulk so a handful of bundles overflows the secondary.
        bundle->function_code.assign(1024, 'x');
        return std::shared_ptr<const ContextBundle>(std::move(bundle));
    };
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(0xC0FFEEull + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kOps; ++i) {
                const std::string key =
                    "key-" + std::to_string(rng.nextBelow(kKeys));
                std::shared_ptr<const ContextBundle> bundle;
                if (rng.nextBool(0.7)) {
                    bundle = cache.getOrCompute(
                        key, [&] { return bundleFor(key); });
                } else {
                    // The streaming protocol: peek, retrieve on our
                    // own on a miss, publish.
                    bundle = cache.peek(key);
                    if (!bundle) {
                        bundle = bundleFor(key);
                        cache.publish(key, bundle);
                    }
                }
                if (!bundle || bundle->result_text != key ||
                    bundle->function_code !=
                        std::string(1024, 'x'))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    const auto tiers = cache.tiered();
    EXPECT_LE(tiers.hot.entries, 4u);
    EXPECT_LE(tiers.secondary.bytes, 8u << 10);
    // The workload must actually have churned through the seam.
    EXPECT_GT(tiers.demotions, 0u);
    EXPECT_GT(tiers.promotions, 0u);
    EXPECT_GT(cache.counters().evictions, 0u);
}

// ------------------------------------------------- bundle codec

namespace {

std::string
randomCodecString(Rng &rng, std::size_t max_len)
{
    std::string s;
    const std::size_t len = rng.nextBelow(max_len + 1);
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>(rng.nextBelow(256)));
    return s;
}

double
randomCodecDouble(Rng &rng)
{
    switch (rng.nextBelow(6)) {
    case 0:
        return std::nan("");
    case 1:
        return std::numeric_limits<double>::infinity();
    case 2:
        return -std::numeric_limits<double>::infinity();
    case 3:
        return -0.0;
    case 4:
        return 0.0;
    default:
        return (rng.nextDouble() - 0.5) * 1e12;
    }
}

db::PcStats
randomPcStats(Rng &rng)
{
    db::PcStats s;
    s.pc = rng.next();
    s.accesses = rng.next();
    s.hits = rng.next();
    s.misses = rng.next();
    s.evictions_caused = rng.next();
    s.wrong_evictions = rng.next();
    s.never_reused = rng.next();
    s.mean_reuse_distance = randomCodecDouble(rng);
    s.reuse_distance_stdev = randomCodecDouble(rng);
    s.mean_evicted_reuse_distance = randomCodecDouble(rng);
    s.mean_recency = randomCodecDouble(rng);
    return s;
}

db::AccessRow
randomRow(Rng &rng, const std::vector<std::string> &shared_strings)
{
    db::AccessRow r;
    r.index = rng.next();
    r.program_counter = rng.next();
    r.memory_address = rng.next();
    r.cache_set_id = static_cast<std::uint32_t>(rng.next());
    r.is_miss = rng.nextBool(0.5);
    r.bypassed = rng.nextBool(0.2);
    r.miss_type = static_cast<sim::MissType>(rng.nextBelow(4));
    r.has_victim = rng.nextBool(0.5);
    r.evicted_address = rng.next();
    r.accessed_reuse_distance = rng.nextRange(-1, 1 << 20);
    r.accessed_recency = rng.nextRange(-1, 1 << 20);
    r.evicted_reuse_distance = rng.nextRange(-1, 1 << 20);
    r.wrong_eviction = rng.nextBool(0.3);
    // Rows of a slice repeat source strings constantly — draw from a
    // shared pool so the string table's dedupe is exercised.
    const auto pick = [&]() -> const std::string & {
        return shared_strings[rng.nextBelow(shared_strings.size())];
    };
    r.recency_text = pick();
    r.function_name = pick();
    r.function_code = pick();
    r.assembly_code = pick();
    const std::size_t lines = rng.nextBelow(5);
    for (std::size_t i = 0; i < lines; ++i)
        r.current_cache_lines.push_back(
            db::PcAddr{rng.next(), rng.next()});
    const std::size_t scores = rng.nextBelow(5);
    for (std::size_t i = 0; i < scores; ++i)
        r.cache_line_eviction_scores.push_back(rng.next());
    const std::size_t hist = rng.nextBelow(5);
    for (std::size_t i = 0; i < hist; ++i)
        r.recent_access_history.push_back(
            db::PcAddr{rng.next(), rng.next()});
    return r;
}

ContextBundle
randomBundle(Rng &rng)
{
    std::vector<std::string> shared_strings;
    for (int i = 0; i < 6; ++i)
        shared_strings.push_back(randomCodecString(rng, 64));

    ContextBundle b;
    b.retriever = randomCodecString(rng, 16);
    b.parsed.intent =
        static_cast<query::QueryIntent>(rng.nextBelow(14));
    if (rng.nextBool(0.5))
        b.parsed.pc = rng.next();
    if (rng.nextBool(0.5))
        b.parsed.address = rng.next();
    if (rng.nextBool(0.5))
        b.parsed.set_id = static_cast<std::uint32_t>(rng.next());
    for (std::size_t i = rng.nextBelow(3); i > 0; --i)
        b.parsed.workloads.push_back(randomCodecString(rng, 12));
    for (std::size_t i = rng.nextBelow(3); i > 0; --i)
        b.parsed.policies.push_back(randomCodecString(rng, 12));
    b.parsed.agg = static_cast<query::AggKind>(rng.nextBelow(6));
    b.parsed.field = static_cast<query::FieldKind>(rng.nextBelow(6));
    b.parsed.top_n = static_cast<std::size_t>(rng.nextBelow(100));
    b.parsed.raw = randomCodecString(rng, 120);
    b.trace_key = randomCodecString(rng, 32);
    for (std::size_t i = rng.nextBelow(8); i > 0; --i)
        b.rows.push_back(randomRow(rng, shared_strings));
    b.total_matches = static_cast<std::size_t>(rng.next());
    b.total_is_exact = rng.nextBool(0.5);
    if (rng.nextBool(0.5))
        b.pc_stats = randomPcStats(rng);
    for (std::size_t i = rng.nextBelow(4); i > 0; --i)
        b.pc_stats_list.push_back(randomPcStats(rng));
    for (std::size_t i = rng.nextBelow(4); i > 0; --i) {
        db::SetStats s;
        s.set = static_cast<std::uint32_t>(rng.next());
        s.accesses = rng.next();
        s.hits = rng.next();
        b.set_stats.push_back(s);
    }
    for (std::size_t i = rng.nextBelow(4); i > 0; --i) {
        PolicyNumber p;
        p.policy = randomCodecString(rng, 12);
        p.value = randomCodecDouble(rng);
        p.samples = rng.next();
        b.policy_numbers.push_back(p);
    }
    b.policy_numbers_label = randomCodecString(rng, 24);
    b.metadata = randomCodecString(rng, 200);
    b.workload_description = randomCodecString(rng, 200);
    b.policy_description = randomCodecString(rng, 200);
    b.function_name = randomCodecString(rng, 32);
    b.function_code = randomCodecString(rng, 200);
    b.assembly = randomCodecString(rng, 200);
    for (std::size_t i = rng.nextBelow(10); i > 0; --i)
        b.values.push_back(rng.next());
    b.values_complete = rng.nextBool(0.5);
    if (rng.nextBool(0.5))
        b.computed = randomCodecDouble(rng);
    b.generated_code = randomCodecString(rng, 200);
    b.result_text = randomCodecString(rng, 200);
    b.premise_violation = rng.nextBool(0.2);
    b.premise_note = randomCodecString(rng, 64);
    b.retrieval_ms = randomCodecDouble(rng);
    return b;
}

/** Bit-exact double compare (NaN-safe). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

} // namespace

TEST(BundleCodecTest, RoundTripIsByteExactOverRandomBundles)
{
    // Property test: decode(encode(b)) reproduces every field of b,
    // including NaN/infinity payload bits and render() output, and
    // re-encoding the decoded bundle reproduces the exact bytes —
    // which pins every field jointly, in order.
    Rng rng(0xB17E5ull);
    for (int iter = 0; iter < 40; ++iter) {
        const ContextBundle original = randomBundle(rng);
        const std::string encoded = encodeBundle(original);
        const auto decoded = decodeBundle(encoded);
        ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
        EXPECT_EQ(encodeBundle(*decoded), encoded) << "iter " << iter;

        // Spot checks on top of the re-encode identity.
        EXPECT_EQ(decoded->retriever, original.retriever);
        EXPECT_EQ(decoded->parsed.raw, original.parsed.raw);
        EXPECT_EQ(decoded->parsed.slotKey(),
                  original.parsed.slotKey());
        EXPECT_EQ(decoded->trace_key, original.trace_key);
        ASSERT_EQ(decoded->rows.size(), original.rows.size());
        for (std::size_t i = 0; i < original.rows.size(); ++i) {
            EXPECT_EQ(decoded->rows[i].assembly_code,
                      original.rows[i].assembly_code);
            EXPECT_EQ(decoded->rows[i].recent_access_history,
                      original.rows[i].recent_access_history);
        }
        EXPECT_EQ(decoded->pc_stats.has_value(),
                  original.pc_stats.has_value());
        if (original.pc_stats)
            EXPECT_TRUE(
                sameBits(decoded->pc_stats->mean_reuse_distance,
                         original.pc_stats->mean_reuse_distance));
        EXPECT_EQ(decoded->values, original.values);
        EXPECT_EQ(decoded->computed.has_value(),
                  original.computed.has_value());
        if (original.computed)
            EXPECT_TRUE(sameBits(*decoded->computed,
                                 *original.computed));
        EXPECT_TRUE(
            sameBits(decoded->retrieval_ms, original.retrieval_ms));
        EXPECT_EQ(decoded->render(), original.render());
    }
}

TEST(BundleCodecTest, CompressesRepeatedStrings)
{
    // The string table is the compression: a slice whose rows repeat
    // their source strings must encode far smaller than the decoded
    // footprint.
    ContextBundle b;
    b.retriever = "sieve";
    db::AccessRow row;
    row.function_name = "spec_qbmv_mult";
    row.function_code = std::string(512, 'c');
    row.assembly_code = std::string(512, 'a');
    row.recency_text = "first access to this address";
    for (int i = 0; i < 64; ++i) {
        row.index = static_cast<std::uint64_t>(i);
        b.rows.push_back(row);
    }
    const std::string encoded = encodeBundle(b);
    EXPECT_LT(encoded.size() * 10, approxBundleBytes(b));
    const auto decoded = decodeBundle(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->render(), b.render());
}

TEST(BundleCodecTest, MalformedInputDecodesToNullopt)
{
    Rng rng(0xDEADull);
    const ContextBundle original = randomBundle(rng);
    const std::string encoded = encodeBundle(original);
    // Every strict prefix is truncated mid-field somewhere: reads are
    // sequential and consume the whole buffer, so all must fail
    // cleanly (treated as a cache miss), never crash.
    for (std::size_t len = 0; len < encoded.size(); ++len)
        EXPECT_FALSE(decodeBundle(encoded.substr(0, len)).has_value())
            << "prefix " << len;
    // Wrong magic / version.
    std::string bad = encoded;
    bad[0] = 'X';
    EXPECT_FALSE(decodeBundle(bad).has_value());
    bad = encoded;
    bad[2] = static_cast<char>(0x7F);
    EXPECT_FALSE(decodeBundle(bad).has_value());
}

// ------------------------------------ indexed vs scan execution

TEST(IndexedRetrievalTest, SieveBundlesByteIdenticalToScanPath)
{
    // The postings index is a pure execution strategy: bundles must
    // be byte-identical to the pre-index scan path for every intent
    // that touches filters or listings.
    SieveConfig scan_cfg;
    scan_cfg.use_index = false;
    SieveRetriever indexed(sharedDb());
    SieveRetriever scanner(sharedDb(), scan_cfg);
    const auto known = knownAccess("mcf_evictions_lru");
    const std::vector<std::string> questions = {
        "What is the miss rate for PC " + str::hex(known.pc) +
            " in the mcf workload with LRU?",
        "Does the memory access with PC " + str::hex(known.pc) +
            " and address " + str::hex(known.address) +
            " result in a cache hit or cache miss for the mcf "
            "workload under LRU?",
        "How many times did PC " + str::hex(known.pc) +
            " appear in the mcf workload under LRU?",
        "List all unique PCs in the mcf workload under LRU.",
        "For mcf and LRU, could you list the unique cache sets in "
        "ascending order?",
        "What is the miss rate for PC 0xdeadbeef in the mcf workload "
        "with LRU?", // premise violation path
        "Why does Belady outperform LRU in the mcf workload?",
    };
    for (const auto &q : questions) {
        const auto a = indexed.retrieve(q);
        const auto b = scanner.retrieve(q);
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.premise_note, b.premise_note) << q;
        EXPECT_EQ(a.values, b.values) << q;
        EXPECT_EQ(a.total_matches, b.total_matches) << q;
    }
    // The execution knob is config like any other: fingerprinted.
    EXPECT_NE(indexed.cacheFingerprint(), scanner.cacheFingerprint());
}

TEST(IndexedRetrievalTest, RangerBundlesByteIdenticalToScanPath)
{
    RangerConfig scan_cfg;
    scan_cfg.use_index = false;
    RangerRetriever indexed(sharedDb());
    RangerRetriever scanner(sharedDb(), scan_cfg);
    const auto known = knownAccess("mcf_evictions_lru");
    const std::vector<std::string> questions = {
        "What is the miss rate for PC " + str::hex(known.pc) +
            " in the mcf workload with LRU?",
        "How many times did PC " + str::hex(known.pc) +
            " appear in the mcf workload under LRU?",
        "What is the average reuse distance of PC " +
            str::hex(known.pc) + " for the mcf workload with LRU?",
        "What is the standard deviation of the reuse distance of PC " +
            str::hex(known.pc) + " in the mcf workload under LRU?",
        "Does the memory access with PC " + str::hex(known.pc) +
            " and address " + str::hex(known.address) +
            " result in a cache hit or cache miss for the mcf "
            "workload under LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "List all unique PCs in the mcf workload under LRU.",
    };
    for (const auto &q : questions) {
        const auto a = indexed.retrieve(q);
        const auto b = scanner.retrieve(q);
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.generated_code, b.generated_code) << q;
        EXPECT_EQ(a.result_text, b.result_text) << q;
        ASSERT_EQ(a.computed.has_value(), b.computed.has_value()) << q;
        if (a.computed) {
            EXPECT_EQ(*a.computed, *b.computed) << q; // bit-exact
        }
    }
    EXPECT_NE(indexed.cacheFingerprint(), scanner.cacheFingerprint());
}

TEST(IndexedRetrievalTest, RangerParallelPlansByteIdenticalToSequential)
{
    // Multi-program plans may execute shard-parallel; exec_threads is
    // a pure scheduling knob, so bundles — and the streamed program
    // chunks, which land in plan order — must be byte-identical to
    // sequential execution and to the reference scan at any worker
    // count.
    RangerConfig par_cfg;
    par_cfg.exec_threads = 4;
    RangerConfig seq_cfg;
    seq_cfg.exec_threads = 1;
    RangerConfig scan_cfg;
    scan_cfg.use_index = false;
    scan_cfg.exec_threads = 4;
    RangerRetriever parallel(sharedDb(), par_cfg);
    RangerRetriever sequential(sharedDb(), seq_cfg);
    RangerRetriever scanner(sharedDb(), scan_cfg);

    /** Records every emitted (label, text) chunk in arrival order. */
    struct CollectSink : EvidenceSink {
        std::vector<std::pair<std::string, std::string>> chunks;
        void emit(const std::string &label,
                  const std::string &text) override
        {
            chunks.emplace_back(label, text);
        }
    };

    const auto parser = sharedParser();
    const auto known = knownAccess("mcf_evictions_lru");
    const std::vector<std::string> questions = {
        // The policy comparison is the multi-program plan (one
        // program per policy) that actually fans out.
        "Which policy has the lowest miss rate in the mcf workload?",
        "Which policy has the highest miss rate in the mcf workload?",
        "What is the miss rate for PC " + str::hex(known.pc) +
            " in the mcf workload with LRU?",
        "List all unique PCs in the mcf workload under LRU.",
    };
    for (const auto &q : questions) {
        const auto parsed = parser.parse(q);
        CollectSink par_sink, seq_sink;
        const auto a = parallel.retrieveParsed(parsed, par_sink);
        const auto b = sequential.retrieveParsed(parsed, seq_sink);
        const auto c = scanner.retrieveParsed(parsed);
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.render(), c.render()) << q;
        EXPECT_EQ(a.generated_code, b.generated_code) << q;
        EXPECT_EQ(a.result_text, b.result_text) << q;
        ASSERT_EQ(a.computed.has_value(), b.computed.has_value()) << q;
        if (a.computed) {
            EXPECT_EQ(*a.computed, *b.computed) << q; // bit-exact
            ASSERT_TRUE(c.computed.has_value()) << q;
            EXPECT_EQ(*a.computed, *c.computed) << q;
        }
        EXPECT_EQ(par_sink.chunks, seq_sink.chunks) << q;
    }
    // Scheduling never changes a byte, so exec_threads deliberately
    // stays out of the cache fingerprint: both variants share cached
    // bundles.
    EXPECT_EQ(parallel.cacheFingerprint(), sequential.cacheFingerprint());
}
