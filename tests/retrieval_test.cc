/**
 * @file
 * Tests for the retrievers: Sieve's symbolic filtering, premise
 * checks, and evidence windows; Ranger's planning, execution, and
 * exact counting; the LlamaIndex baseline's characteristic failure;
 * and cross-retriever properties (parameterized).
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/str.hh"
#include "db/builder.hh"
#include "retrieval/llamaindex.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;
using namespace cachemind::retrieval;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Mcf,
                             trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

/** First (pc, address, hit) triple of a trace for exact queries. */
struct KnownAccess
{
    std::uint64_t pc;
    std::uint64_t address;
    bool is_miss;
};

KnownAccess
knownAccess(const std::string &key, std::size_t row = 0)
{
    const auto *entry = sharedDb().find(key);
    return KnownAccess{entry->table.pcAt(row),
                       entry->table.addressAt(row),
                       entry->table.isMissAt(row)};
}

} // namespace

TEST(SieveTest, ExactTupleRetrievesMatchingRows)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    EXPECT_EQ(bundle.trace_key, "mcf_evictions_lru");
    ASSERT_FALSE(bundle.rows.empty());
    EXPECT_EQ(bundle.rows[0].program_counter, known.pc);
    EXPECT_EQ(bundle.rows[0].memory_address, known.address);
    EXPECT_EQ(bundle.rows[0].is_miss, known.is_miss);
    EXPECT_FALSE(bundle.premise_violation);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, EvidenceWindowIsBounded)
{
    SieveConfig cfg;
    cfg.evidence_window = 3;
    SieveRetriever sieve(sharedDb(), cfg);
    // The arc-scan PC has tens of thousands of rows.
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    EXPECT_LE(bundle.rows.size(), 3u);
    EXPECT_FALSE(bundle.total_is_exact); // Sieve cannot count
}

TEST(SieveTest, CrossWorkloadPremiseViolationDetected)
{
    SieveRetriever sieve(sharedDb());
    // astar's queue PC does not exist in mcf.
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
    EXPECT_NE(bundle.premise_note.find("0x409538"), std::string::npos);
    EXPECT_NE(bundle.premise_note.find("astar"), std::string::npos);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, UnresolvedWorkloadYieldsLowQuality)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x400512 in the gzip workload "
        "under LRU?");
    EXPECT_TRUE(bundle.trace_key.empty());
    EXPECT_EQ(assessQuality(bundle), ContextQuality::Low);
}

TEST(SieveTest, PolicyComparisonGathersAllPolicies)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    ASSERT_EQ(bundle.policy_numbers.size(), 2u); // lru + belady
    EXPECT_NE(bundle.policy_numbers[0].policy,
              bundle.policy_numbers[1].policy);
}

TEST(SieveTest, ExplainBundleIsRich)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    EXPECT_FALSE(bundle.metadata.empty());
    EXPECT_FALSE(bundle.workload_description.empty());
    EXPECT_FALSE(bundle.assembly.empty());
    EXPECT_TRUE(bundle.pc_stats.has_value());
    EXPECT_GE(bundle.policy_numbers.size(), 2u);
}

TEST(SieveTest, SetStatsQueriesReturnHotAndCold)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Identify 5 hot and 5 cold sets by hit rate for the astar "
        "workload under LRU.");
    EXPECT_EQ(bundle.set_stats.size(), 10u);
}

TEST(RangerTest, GeneratesCodeAndComputesExactCount)
{
    RangerRetriever ranger(sharedDb());
    const auto *expert = sharedDb().statsFor("mcf_evictions_lru");
    const auto stats = expert->pcStats(0x4037aa);
    ASSERT_TRUE(stats.has_value());

    const auto bundle = ranger.retrieve(
        "How many times did PC 0x4037aa appear in the mcf workload "
        "under LRU?");
    EXPECT_TRUE(bundle.total_is_exact);
    EXPECT_EQ(bundle.total_matches, stats->accesses);
    EXPECT_NE(bundle.generated_code.find("mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(bundle.generated_code.find("0x4037aa"),
              std::string::npos);
}

TEST(RangerTest, ArithmeticUsesExecutedProgram)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(bundle.computed.has_value());
    EXPECT_GT(*bundle.computed, 0.0);
}

TEST(RangerTest, PremiseDetectionOnEmptyExactMatch)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
}

TEST(RangerTest, LowFidelityCorruptsPrograms)
{
    RangerConfig cfg;
    cfg.codegen_fidelity = 0.0; // always mis-generate
    RangerRetriever ranger(sharedDb(), cfg);
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    // The corrupted program still runs but computes something else;
    // compare against the faithful value.
    RangerRetriever faithful(sharedDb());
    const auto good = faithful.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(good.computed.has_value());
    if (bundle.computed.has_value())
        EXPECT_NE(*bundle.computed, *good.computed);
}

TEST(RangerTest, ExplainBundleIsNarrow)
{
    RangerRetriever ranger(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = ranger.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    // The §6.2 crossover mechanism: no descriptive context.
    EXPECT_TRUE(bundle.workload_description.empty());
    EXPECT_TRUE(bundle.assembly.empty());
    EXPECT_FALSE(bundle.pc_stats.has_value());
}

TEST(LlamaIndexTest, RetrievesPlausibleButImpreciseChunks)
{
    LlamaIndexConfig cfg;
    cfg.row_stride = 64; // keep the test fast
    LlamaIndexRetriever llama(sharedDb(), cfg);
    EXPECT_GT(llama.indexedChunks(), 100u);

    const auto known = knownAccess("mcf_evictions_lru", 5);
    const auto bundle = llama.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    // Dense retrieval returns *some* chunks but no structured rows.
    EXPECT_FALSE(bundle.result_text.empty());
    EXPECT_TRUE(bundle.rows.empty());
    EXPECT_FALSE(bundle.total_is_exact);
}

// ------------------------- cross-retriever parameterized properties

class RetrieverParamTest : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Retriever>
    make() const
    {
        const std::string which = GetParam();
        if (which == "sieve")
            return std::make_unique<SieveRetriever>(sharedDb());
        if (which == "ranger")
            return std::make_unique<RangerRetriever>(sharedDb());
        LlamaIndexConfig cfg;
        cfg.row_stride = 128;
        return std::make_unique<LlamaIndexRetriever>(sharedDb(), cfg);
    }
};

TEST_P(RetrieverParamTest, RetrievalIsDeterministic)
{
    auto r1 = make();
    auto r2 = make();
    const std::string q =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    const auto a = r1->retrieve(q);
    const auto b = r2->retrieve(q);
    EXPECT_EQ(a.trace_key, b.trace_key);
    EXPECT_EQ(a.rows.size(), b.rows.size());
    EXPECT_EQ(a.result_text, b.result_text);
    EXPECT_EQ(a.computed.has_value(), b.computed.has_value());
}

TEST_P(RetrieverParamTest, RendersNonEmptyContext)
{
    auto retriever = make();
    const auto bundle = retriever->retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    EXPECT_FALSE(bundle.render().empty());
    EXPECT_EQ(bundle.retriever, std::string(GetParam()));
    EXPECT_GE(bundle.retrieval_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRetrievers, RetrieverParamTest,
                         ::testing::Values("sieve", "ranger",
                                           "llamaindex"));

TEST(ContextBundleTest, RenderContainsKeySections)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    const auto text = bundle.render();
    EXPECT_NE(text.find("[Trace] mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(text.find("[Trace slice]"), std::string::npos);
    EXPECT_NE(text.find(str::hex(known.pc)), std::string::npos);
}

TEST(ContextQualityTest, NamesAreStable)
{
    EXPECT_STREQ(contextQualityName(ContextQuality::Low), "Low");
    EXPECT_STREQ(contextQualityName(ContextQuality::Medium), "Medium");
    EXPECT_STREQ(contextQualityName(ContextQuality::High), "High");
}
