/**
 * @file
 * Tests for the retrievers: Sieve's symbolic filtering, premise
 * checks, and evidence windows; Ranger's planning, execution, and
 * exact counting; the LlamaIndex baseline's characteristic failure;
 * cross-retriever properties (parameterized); and the shared
 * cross-question RetrievalCache (LRU order, single-flight under a
 * multi-thread hammer, cache-key discipline).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "base/str.hh"
#include "db/builder.hh"
#include "query/parser.hh"
#include "retrieval/cache.hh"
#include "retrieval/llamaindex.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

using namespace cachemind;
using namespace cachemind::retrieval;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Mcf,
                             trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

/** First (pc, address, hit) triple of a trace for exact queries. */
struct KnownAccess
{
    std::uint64_t pc;
    std::uint64_t address;
    bool is_miss;
};

KnownAccess
knownAccess(const std::string &key, std::size_t row = 0)
{
    const auto *entry = sharedDb().find(key);
    return KnownAccess{entry->table.pcAt(row),
                       entry->table.addressAt(row),
                       entry->table.isMissAt(row)};
}

} // namespace

TEST(SieveTest, ExactTupleRetrievesMatchingRows)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    EXPECT_EQ(bundle.trace_key, "mcf_evictions_lru");
    ASSERT_FALSE(bundle.rows.empty());
    EXPECT_EQ(bundle.rows[0].program_counter, known.pc);
    EXPECT_EQ(bundle.rows[0].memory_address, known.address);
    EXPECT_EQ(bundle.rows[0].is_miss, known.is_miss);
    EXPECT_FALSE(bundle.premise_violation);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, EvidenceWindowIsBounded)
{
    SieveConfig cfg;
    cfg.evidence_window = 3;
    SieveRetriever sieve(sharedDb(), cfg);
    // The arc-scan PC has tens of thousands of rows.
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    EXPECT_LE(bundle.rows.size(), 3u);
    EXPECT_FALSE(bundle.total_is_exact); // Sieve cannot count
}

TEST(SieveTest, CrossWorkloadPremiseViolationDetected)
{
    SieveRetriever sieve(sharedDb());
    // astar's queue PC does not exist in mcf.
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
    EXPECT_NE(bundle.premise_note.find("0x409538"), std::string::npos);
    EXPECT_NE(bundle.premise_note.find("astar"), std::string::npos);
    EXPECT_EQ(assessQuality(bundle), ContextQuality::High);
}

TEST(SieveTest, UnresolvedWorkloadYieldsLowQuality)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "What is the miss rate for PC 0x400512 in the gzip workload "
        "under LRU?");
    EXPECT_TRUE(bundle.trace_key.empty());
    EXPECT_EQ(assessQuality(bundle), ContextQuality::Low);
}

TEST(SieveTest, PolicyComparisonGathersAllPolicies)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    ASSERT_EQ(bundle.policy_numbers.size(), 2u); // lru + belady
    EXPECT_NE(bundle.policy_numbers[0].policy,
              bundle.policy_numbers[1].policy);
}

TEST(SieveTest, ExplainBundleIsRich)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    EXPECT_FALSE(bundle.metadata.empty());
    EXPECT_FALSE(bundle.workload_description.empty());
    EXPECT_FALSE(bundle.assembly.empty());
    EXPECT_TRUE(bundle.pc_stats.has_value());
    EXPECT_GE(bundle.policy_numbers.size(), 2u);
}

TEST(SieveTest, SetStatsQueriesReturnHotAndCold)
{
    SieveRetriever sieve(sharedDb());
    const auto bundle = sieve.retrieve(
        "Identify 5 hot and 5 cold sets by hit rate for the astar "
        "workload under LRU.");
    EXPECT_EQ(bundle.set_stats.size(), 10u);
}

TEST(RangerTest, GeneratesCodeAndComputesExactCount)
{
    RangerRetriever ranger(sharedDb());
    const auto *expert = sharedDb().statsFor("mcf_evictions_lru");
    const auto stats = expert->pcStats(0x4037aa);
    ASSERT_TRUE(stats.has_value());

    const auto bundle = ranger.retrieve(
        "How many times did PC 0x4037aa appear in the mcf workload "
        "under LRU?");
    EXPECT_TRUE(bundle.total_is_exact);
    EXPECT_EQ(bundle.total_matches, stats->accesses);
    EXPECT_NE(bundle.generated_code.find("mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(bundle.generated_code.find("0x4037aa"),
              std::string::npos);
}

TEST(RangerTest, ArithmeticUsesExecutedProgram)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(bundle.computed.has_value());
    EXPECT_GT(*bundle.computed, 0.0);
}

TEST(RangerTest, PremiseDetectionOnEmptyExactMatch)
{
    RangerRetriever ranger(sharedDb());
    const auto bundle = ranger.retrieve(
        "Does the memory access with PC 0x409538 and address "
        "0x1b73be82e3f result in a cache hit or cache miss for the "
        "mcf workload and LRU replacement policy?");
    EXPECT_TRUE(bundle.premise_violation);
}

TEST(RangerTest, LowFidelityCorruptsPrograms)
{
    RangerConfig cfg;
    cfg.codegen_fidelity = 0.0; // always mis-generate
    RangerRetriever ranger(sharedDb(), cfg);
    const auto bundle = ranger.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    // The corrupted program still runs but computes something else;
    // compare against the faithful value.
    RangerRetriever faithful(sharedDb());
    const auto good = faithful.retrieve(
        "What is the average evicted reuse distance of PC 0x4037aa "
        "for the mcf workload with LRU?");
    ASSERT_TRUE(good.computed.has_value());
    if (bundle.computed.has_value())
        EXPECT_NE(*bundle.computed, *good.computed);
}

TEST(RangerTest, ExplainBundleIsNarrow)
{
    RangerRetriever ranger(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = ranger.retrieve(
        "Why does Belady outperform LRU on PC " + str::hex(known.pc) +
        " in the mcf workload?");
    // The §6.2 crossover mechanism: no descriptive context.
    EXPECT_TRUE(bundle.workload_description.empty());
    EXPECT_TRUE(bundle.assembly.empty());
    EXPECT_FALSE(bundle.pc_stats.has_value());
}

TEST(LlamaIndexTest, RetrievesPlausibleButImpreciseChunks)
{
    LlamaIndexConfig cfg;
    cfg.row_stride = 64; // keep the test fast
    LlamaIndexRetriever llama(sharedDb(), cfg);
    EXPECT_GT(llama.indexedChunks(), 100u);

    const auto known = knownAccess("mcf_evictions_lru", 5);
    const auto bundle = llama.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    // Dense retrieval returns *some* chunks but no structured rows.
    EXPECT_FALSE(bundle.result_text.empty());
    EXPECT_TRUE(bundle.rows.empty());
    EXPECT_FALSE(bundle.total_is_exact);
}

// ------------------------- cross-retriever parameterized properties

class RetrieverParamTest : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Retriever>
    make() const
    {
        const std::string which = GetParam();
        if (which == "sieve")
            return std::make_unique<SieveRetriever>(sharedDb());
        if (which == "ranger")
            return std::make_unique<RangerRetriever>(sharedDb());
        LlamaIndexConfig cfg;
        cfg.row_stride = 128;
        return std::make_unique<LlamaIndexRetriever>(sharedDb(), cfg);
    }
};

TEST_P(RetrieverParamTest, RetrievalIsDeterministic)
{
    auto r1 = make();
    auto r2 = make();
    const std::string q =
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?";
    const auto a = r1->retrieve(q);
    const auto b = r2->retrieve(q);
    EXPECT_EQ(a.trace_key, b.trace_key);
    EXPECT_EQ(a.rows.size(), b.rows.size());
    EXPECT_EQ(a.result_text, b.result_text);
    EXPECT_EQ(a.computed.has_value(), b.computed.has_value());
}

TEST_P(RetrieverParamTest, RendersNonEmptyContext)
{
    auto retriever = make();
    const auto bundle = retriever->retrieve(
        "Which policy has the lowest miss rate in the mcf workload?");
    EXPECT_FALSE(bundle.render().empty());
    EXPECT_EQ(bundle.retriever, std::string(GetParam()));
    EXPECT_GE(bundle.retrieval_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRetrievers, RetrieverParamTest,
                         ::testing::Values("sieve", "ranger",
                                           "llamaindex"));

TEST(ContextBundleTest, RenderContainsKeySections)
{
    SieveRetriever sieve(sharedDb());
    const auto known = knownAccess("mcf_evictions_lru");
    const auto bundle = sieve.retrieve(
        "Does the memory access with PC " + str::hex(known.pc) +
        " and address " + str::hex(known.address) +
        " result in a cache hit or cache miss for the mcf workload "
        "and LRU replacement policy?");
    const auto text = bundle.render();
    EXPECT_NE(text.find("[Trace] mcf_evictions_lru"),
              std::string::npos);
    EXPECT_NE(text.find("[Trace slice]"), std::string::npos);
    EXPECT_NE(text.find(str::hex(known.pc)), std::string::npos);
}

TEST(ContextQualityTest, NamesAreStable)
{
    EXPECT_STREQ(contextQualityName(ContextQuality::Low), "Low");
    EXPECT_STREQ(contextQualityName(ContextQuality::Medium), "Medium");
    EXPECT_STREQ(contextQualityName(ContextQuality::High), "High");
}

// ------------------------------------ staged-pipeline entry points

namespace {

query::NlQueryParser
sharedParser()
{
    return query::NlQueryParser(sharedDb().workloads(),
                                sharedDb().policies());
}

/** A payload-free bundle tagged so tests can tell bundles apart. */
RetrievalCache::BundlePtr
taggedBundle(const std::string &tag)
{
    auto bundle = std::make_shared<ContextBundle>();
    bundle->result_text = tag;
    return bundle;
}

} // namespace

TEST_P(RetrieverParamTest, RetrieveParsedMatchesStringShim)
{
    // The string overload is now a parsing shim: retrieveParsed on
    // the engine-level parse must assemble the identical bundle.
    const auto parser = sharedParser();
    const std::vector<std::string> questions = {
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "Why does Belady outperform LRU in the mcf workload?",
    };
    for (const auto &q : questions) {
        auto via_string = make();
        auto via_parsed = make();
        const auto a = via_string->retrieve(q);
        const auto b = via_parsed->retrieveParsed(parser.parse(q));
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.trace_key, b.trace_key) << q;
        EXPECT_EQ(a.parsed.raw, b.parsed.raw) << q;
    }
}

TEST(CacheKeyTest, SieveSharesAcrossPhrasingsOfTheSameSlots)
{
    SieveRetriever sieve(sharedDb());
    const auto parser = sharedParser();
    const auto a = parser.parse(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    const auto b = parser.parse(
        "For the mcf workload under LRU, what miss rate does PC "
        "0x4037aa have?");
    ASSERT_EQ(a.slotKey(), b.slotKey());
    EXPECT_EQ(sieve.cacheKey(a), sieve.cacheKey(b));
    EXPECT_FALSE(sieve.cacheKey(a).empty());

    // Different slots must never alias.
    const auto c = parser.parse(
        "What is the miss rate for PC 0x4037ab in the mcf workload "
        "with LRU?");
    EXPECT_NE(sieve.cacheKey(a), sieve.cacheKey(c));
}

TEST(CacheKeyTest, ConfigChangesTheFingerprint)
{
    SieveRetriever stock(sharedDb());
    SieveConfig tuned_cfg;
    tuned_cfg.evidence_window = 3;
    SieveRetriever tuned(sharedDb(), tuned_cfg);
    // A differently tuned retriever assembles different evidence for
    // the same slots; the fingerprints must keep them apart.
    EXPECT_NE(stock.cacheFingerprint(), tuned.cacheFingerprint());

    RangerRetriever faithful(sharedDb());
    RangerConfig low_cfg;
    low_cfg.codegen_fidelity = 0.5;
    RangerRetriever low(sharedDb(), low_cfg);
    EXPECT_NE(faithful.cacheFingerprint(), low.cacheFingerprint());
}

TEST(CacheKeyTest, RawDependentRetrieversKeyOnRawText)
{
    const auto parser = sharedParser();
    const auto a = parser.parse(
        "What is the miss rate for PC 0x4037aa in the mcf workload "
        "with LRU?");
    const auto b = parser.parse(
        "For the mcf workload under LRU, what miss rate does PC "
        "0x4037aa have?");
    ASSERT_EQ(a.slotKey(), b.slotKey());

    // Dense retrieval embeds the raw text: paraphrases never share.
    LlamaIndexConfig llama_cfg;
    llama_cfg.row_stride = 128;
    LlamaIndexRetriever llama(sharedDb(), llama_cfg);
    EXPECT_NE(llama.cacheKey(a), llama.cacheKey(b));

    // Ranger below full fidelity keys its mis-generation draws on the
    // raw text, so slot-equal paraphrases must not share either.
    RangerConfig low_cfg;
    low_cfg.codegen_fidelity = 0.5;
    RangerRetriever low(sharedDb(), low_cfg);
    EXPECT_NE(low.cacheKey(a), low.cacheKey(b));
    RangerRetriever faithful(sharedDb());
    EXPECT_EQ(faithful.cacheKey(a), faithful.cacheKey(b));
}

// --------------------------------------------- RetrievalCache unit

TEST(RetrievalCacheTest, HitReturnsTheSharedBundle)
{
    RetrievalCache cache(/*capacity=*/8, /*lock_shards=*/1);
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return taggedBundle("v");
    };
    const auto first = cache.getOrCompute("k", compute);
    RetrievalCache::Outcome outcome;
    const auto second = cache.getOrCompute("k", compute, &outcome);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get()); // the same immutable bundle
    EXPECT_TRUE(outcome.hit);
    const auto counters = cache.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.evictions, 0u);
}

TEST(RetrievalCacheTest, LruEvictionOrder)
{
    // One lock shard = one global LRU order, so eviction order is
    // exactly observable.
    RetrievalCache cache(/*capacity=*/3, /*lock_shards=*/1);
    std::map<std::string, int> computes;
    const auto insert = [&](const std::string &key) {
        return cache.getOrCompute(key, [&] {
            ++computes[key];
            return taggedBundle(key);
        });
    };
    insert("a");
    insert("b");
    insert("c");
    EXPECT_EQ(cache.size(), 3u);

    insert("a"); // touch: a becomes most recent, b is now the LRU
    insert("d"); // evicts b
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.counters().evictions, 1u);

    insert("a"); // still resident
    insert("c"); // still resident
    insert("d"); // still resident
    EXPECT_EQ(computes["a"], 1);
    EXPECT_EQ(computes["c"], 1);
    EXPECT_EQ(computes["d"], 1);

    insert("b"); // was evicted: recomputes
    EXPECT_EQ(computes["b"], 2);
}

TEST(RetrievalCacheTest, CapacityZeroDisablesCaching)
{
    RetrievalCache cache(/*capacity=*/0);
    EXPECT_FALSE(cache.enabled());
    int computes = 0;
    for (int i = 0; i < 3; ++i) {
        RetrievalCache::Outcome outcome;
        cache.getOrCompute(
            "k",
            [&] {
                ++computes;
                return taggedBundle("v");
            },
            &outcome);
        EXPECT_FALSE(outcome.hit);
    }
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(RetrievalCacheTest, HotKeyHammerIsSingleFlight)
{
    // 8 threads hammer one hot slot key. The bundle must be computed
    // exactly once — concurrent misses coalesce onto the in-flight
    // computation — and every thread must see the same bundle. Run
    // under TSan in CI to keep shared-cache races from regressing.
    RetrievalCache cache(/*capacity=*/64);
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::atomic<int> computes{0};
    std::atomic<int> mismatches{0};
    const auto compute = [&] {
        computes.fetch_add(1);
        // Widen the in-flight window so late arrivals actually wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return taggedBundle("hot");
    };

    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                const auto bundle =
                    cache.getOrCompute("hot-slot", compute);
                if (!bundle || bundle->result_text != "hot")
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(mismatches.load(), 0);
    const auto counters = cache.counters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.hits,
              static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TEST(RetrievalCacheTest, DistinctKeysUnderConcurrency)
{
    // Multi-key hammer across lock shards: every key computes exactly
    // once and keeps its own bundle.
    RetrievalCache cache(/*capacity=*/256, /*lock_shards=*/8);
    constexpr int kThreads = 8;
    constexpr int kKeys = 32;
    std::atomic<int> computes{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kKeys; ++i) {
                const std::string key = "key-" + std::to_string(i);
                const auto bundle = cache.getOrCompute(key, [&, key] {
                    computes.fetch_add(1);
                    return taggedBundle(key);
                });
                if (!bundle || bundle->result_text != key)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(computes.load(), kKeys);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

// ------------------------------------ indexed vs scan execution

TEST(IndexedRetrievalTest, SieveBundlesByteIdenticalToScanPath)
{
    // The postings index is a pure execution strategy: bundles must
    // be byte-identical to the pre-index scan path for every intent
    // that touches filters or listings.
    SieveConfig scan_cfg;
    scan_cfg.use_index = false;
    SieveRetriever indexed(sharedDb());
    SieveRetriever scanner(sharedDb(), scan_cfg);
    const auto known = knownAccess("mcf_evictions_lru");
    const std::vector<std::string> questions = {
        "What is the miss rate for PC " + str::hex(known.pc) +
            " in the mcf workload with LRU?",
        "Does the memory access with PC " + str::hex(known.pc) +
            " and address " + str::hex(known.address) +
            " result in a cache hit or cache miss for the mcf "
            "workload under LRU?",
        "How many times did PC " + str::hex(known.pc) +
            " appear in the mcf workload under LRU?",
        "List all unique PCs in the mcf workload under LRU.",
        "For mcf and LRU, could you list the unique cache sets in "
        "ascending order?",
        "What is the miss rate for PC 0xdeadbeef in the mcf workload "
        "with LRU?", // premise violation path
        "Why does Belady outperform LRU in the mcf workload?",
    };
    for (const auto &q : questions) {
        const auto a = indexed.retrieve(q);
        const auto b = scanner.retrieve(q);
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.premise_note, b.premise_note) << q;
        EXPECT_EQ(a.values, b.values) << q;
        EXPECT_EQ(a.total_matches, b.total_matches) << q;
    }
    // The execution knob is config like any other: fingerprinted.
    EXPECT_NE(indexed.cacheFingerprint(), scanner.cacheFingerprint());
}

TEST(IndexedRetrievalTest, RangerBundlesByteIdenticalToScanPath)
{
    RangerConfig scan_cfg;
    scan_cfg.use_index = false;
    RangerRetriever indexed(sharedDb());
    RangerRetriever scanner(sharedDb(), scan_cfg);
    const auto known = knownAccess("mcf_evictions_lru");
    const std::vector<std::string> questions = {
        "What is the miss rate for PC " + str::hex(known.pc) +
            " in the mcf workload with LRU?",
        "How many times did PC " + str::hex(known.pc) +
            " appear in the mcf workload under LRU?",
        "What is the average reuse distance of PC " +
            str::hex(known.pc) + " for the mcf workload with LRU?",
        "What is the standard deviation of the reuse distance of PC " +
            str::hex(known.pc) + " in the mcf workload under LRU?",
        "Does the memory access with PC " + str::hex(known.pc) +
            " and address " + str::hex(known.address) +
            " result in a cache hit or cache miss for the mcf "
            "workload under LRU?",
        "Which policy has the lowest miss rate in the mcf workload?",
        "List all unique PCs in the mcf workload under LRU.",
    };
    for (const auto &q : questions) {
        const auto a = indexed.retrieve(q);
        const auto b = scanner.retrieve(q);
        EXPECT_EQ(a.render(), b.render()) << q;
        EXPECT_EQ(a.generated_code, b.generated_code) << q;
        EXPECT_EQ(a.result_text, b.result_text) << q;
        ASSERT_EQ(a.computed.has_value(), b.computed.has_value()) << q;
        if (a.computed) {
            EXPECT_EQ(*a.computed, *b.computed) << q; // bit-exact
        }
    }
    EXPECT_NE(indexed.cacheFingerprint(), scanner.cacheFingerprint());
}
