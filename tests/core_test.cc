/**
 * @file
 * Tests for the CacheMind facade and chat sessions: engine wiring,
 * grounded answers through the public API, and conversation memory.
 */

#include <gtest/gtest.h>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"

using namespace cachemind;
using namespace cachemind::core;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

} // namespace

TEST(EngineTest, DefaultConfigUsesSieveAndGpt4o)
{
    CacheMind engine(sharedDb());
    EXPECT_EQ(engine.config().retriever, RetrieverKind::Sieve);
    EXPECT_EQ(engine.config().backend, llm::BackendKind::Gpt4o);
    EXPECT_STREQ(engine.retriever().name(), "sieve");
}

TEST(EngineTest, AskReturnsGroundedResponse)
{
    CacheMind engine(sharedDb());
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    const auto response = engine.ask(
        "What is the miss rate for PC " + str::hex(pc) +
        " in the astar workload with LRU?");
    EXPECT_FALSE(response.text.empty());
    EXPECT_EQ(response.bundle.trace_key, "astar_evictions_lru");
    EXPECT_TRUE(response.answer.number.has_value());
}

TEST(EngineTest, RetrieverKindSelectsImplementation)
{
    CacheMind ranger_engine(sharedDb(),
                            CacheMindConfig{llm::BackendKind::Gpt4o,
                                            RetrieverKind::Ranger,
                                            llm::ShotMode::ZeroShot});
    EXPECT_STREQ(ranger_engine.retriever().name(), "ranger");
    const auto response = ranger_engine.ask(
        "How many times did PC 0x409270 appear in the astar workload "
        "under LRU?");
    EXPECT_TRUE(response.bundle.total_is_exact);
}

TEST(EngineTest, RetrieverKindNames)
{
    EXPECT_STREQ(retrieverKindName(RetrieverKind::Sieve), "sieve");
    EXPECT_STREQ(retrieverKindName(RetrieverKind::Ranger), "ranger");
    EXPECT_STREQ(retrieverKindName(RetrieverKind::LlamaIndex),
                 "llamaindex");
}

TEST(ChatSessionTest, TranscriptAccumulates)
{
    CacheMind engine(sharedDb());
    ChatSession chat(engine);
    chat.ask("Which policy has the lowest miss rate in the astar "
             "workload?");
    chat.ask("Identify 3 hot and 3 cold sets by hit rate for the "
             "astar workload under LRU.");
    const auto transcript = chat.transcript();
    EXPECT_NE(transcript.find("User: Which policy"), std::string::npos);
    EXPECT_NE(transcript.find("Assistant:"), std::string::npos);
    EXPECT_EQ(chat.memory().totalTurns(), 2u);
}

TEST(ChatSessionTest, MemoryRecallsEarlierAnswers)
{
    CacheMind engine(sharedDb());
    ChatSession chat(engine);
    chat.ask("Which policy has the lowest miss rate in the astar "
             "workload?");
    const auto recalled =
        chat.memory().recall("lowest miss rate policy astar");
    ASSERT_FALSE(recalled.empty());
    EXPECT_NE(recalled[0].find("miss rate"), std::string::npos);
}

TEST(ChatSessionTest, AnswersAreReproducibleAcrossSessions)
{
    CacheMind e1(sharedDb());
    CacheMind e2(sharedDb());
    ChatSession c1(e1);
    ChatSession c2(e2);
    const std::string q =
        "Which policy has the lowest miss rate in the astar workload?";
    EXPECT_EQ(c1.ask(q).text, c2.ask(q).text);
}
