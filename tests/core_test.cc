/**
 * @file
 * Tests for the CacheMind v2 facade and chat sessions: Builder
 * construction, typed errors, grounded answers through the public
 * API, batched concurrent ask, engine statistics, and conversation
 * memory (including memory-sharpened retrieval for follow-ups).
 */

#include <gtest/gtest.h>

#include "base/stats_util.hh"
#include "base/str.hh"
#include "core/cachemind.hh"
#include "db/builder.hh"
#include "retrieval/ranger.hh"

using namespace cachemind;
using namespace cachemind::core;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 50000;
        return db::buildDatabase(options);
    }();
    return database;
}

CacheMind
defaultEngine()
{
    return CacheMind::Builder(sharedDb()).build().expect("engine");
}

/** A spread of intents exercising retrieval, stats, and reasoning. */
std::vector<std::string>
suiteQuestions()
{
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    return {
        "What is the miss rate for PC " + str::hex(pc) +
            " in the astar workload with LRU?",
        "Which policy has the lowest miss rate in the astar workload?",
        "List all unique PCs in the astar workload under LRU.",
        "Identify 3 hot and 3 cold sets by hit rate for the astar "
        "workload under LRU.",
        "How many times did PC " + str::hex(pc) +
            " appear in the astar workload under LRU?",
        "What is the mean reuse distance of PC " + str::hex(pc) +
            " in the astar workload under LRU?",
        "Why does Belady outperform LRU in the astar workload?",
        "What is a compulsory miss?",
    };
}

} // namespace

TEST(EngineTest, BuilderDefaultsToSieveAndGpt4o)
{
    auto engine = defaultEngine();
    EXPECT_EQ(engine.options().retriever, "sieve");
    EXPECT_EQ(engine.options().backend, "gpt-4o");
    EXPECT_STREQ(engine.retriever().name(), "sieve");
    EXPECT_EQ(engine.generator().name(), "gpt-4o");
}

TEST(EngineTest, AskReturnsGroundedResponse)
{
    auto engine = defaultEngine();
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    auto result = engine.ask(
        "What is the miss rate for PC " + str::hex(pc) +
        " in the astar workload with LRU?");
    ASSERT_TRUE(result.ok());
    const auto &response = result.value();
    EXPECT_FALSE(response.text.empty());
    EXPECT_EQ(response.bundle.trace_key, "astar_evictions_lru");
    EXPECT_TRUE(response.answer.number.has_value());
}

TEST(EngineTest, BuilderSelectsRetrieverByName)
{
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("ranger")
                      .build()
                      .expect("ranger engine");
    EXPECT_STREQ(engine.retriever().name(), "ranger");
    auto result = engine.ask(
        "How many times did PC 0x409270 appear in the astar workload "
        "under LRU?");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().bundle.total_is_exact);
}

TEST(EngineTest, BuilderNormalizesComponentNames)
{
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("  SiEvE ")
                      .withBackend(" GPT-4O")
                      .build()
                      .expect("normalized engine");
    EXPECT_EQ(engine.options().retriever, "sieve");
    EXPECT_EQ(engine.options().backend, "gpt-4o");
}

TEST(EngineTest, AskRejectsEmptyQuestion)
{
    auto engine = defaultEngine();
    auto result = engine.ask("   ");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::EmptyQuestion);
    EXPECT_EQ(engine.stats().questions, 0u);
}

TEST(EngineTest, AskBatchMatchesSequentialAsk)
{
    const auto questions = suiteQuestions();

    auto sequential_engine = defaultEngine();
    std::vector<Response> expected;
    for (const auto &q : questions)
        expected.push_back(sequential_engine.ask(q).expect("ask"));

    auto batch_engine = CacheMind::Builder(sharedDb())
                            .withBatchWorkers(4)
                            .build()
                            .expect("batch engine");
    auto batch =
        batch_engine.askBatch(questions).expect("askBatch");
    ASSERT_EQ(batch.size(), expected.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].text, expected[i].text) << "question " << i;
        EXPECT_EQ(batch[i].answer.number, expected[i].answer.number);
        EXPECT_EQ(batch[i].answer.chosen_policy,
                  expected[i].answer.chosen_policy);
        EXPECT_EQ(batch[i].answer.listed_values,
                  expected[i].answer.listed_values);
        EXPECT_EQ(batch[i].bundle.trace_key,
                  expected[i].bundle.trace_key);
    }
}

TEST(EngineTest, AskBatchIsDeterministicAcrossRuns)
{
    const auto questions = suiteQuestions();
    auto engine = CacheMind::Builder(sharedDb())
                      .withBatchWorkers(4)
                      .build()
                      .expect("engine");
    const auto a = engine.askBatch(questions).expect("first batch");
    const auto b = engine.askBatch(questions).expect("second batch");
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].text, b[i].text) << "question " << i;
}

TEST(EngineTest, AskBatchPreservesOrder)
{
    const auto questions = suiteQuestions();
    auto engine = CacheMind::Builder(sharedDb())
                      .withBatchWorkers(4)
                      .build()
                      .expect("engine");
    const auto batch = engine.askBatch(questions).expect("batch");
    ASSERT_EQ(batch.size(), questions.size());
    // Each response's bundle carries the parsed query it answered;
    // slot i must answer question i.
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].bundle.parsed.raw, questions[i]);
}

TEST(EngineTest, AskBatchRejectsEmptyQuestion)
{
    auto engine = defaultEngine();
    auto result = engine.askBatch(
        std::vector<std::string>{"Which policy is best?", " "});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::EmptyQuestion);
    EXPECT_NE(result.error().message.find("#1"), std::string::npos);
    EXPECT_EQ(engine.stats().questions, 0u);
}

TEST(EngineTest, AskBatchByteIdenticalCacheOnVsOff)
{
    // Repeated-slot batch: the suite three times over, so the shared
    // cache serves most questions from memoized bundles. Answers must
    // be byte-identical to a cache-off engine, question by question.
    const auto base = suiteQuestions();
    std::vector<std::string> questions;
    for (int round = 0; round < 3; ++round)
        questions.insert(questions.end(), base.begin(), base.end());

    auto cache_off = CacheMind::Builder(sharedDb())
                         .withBatchWorkers(4)
                         .withRetrievalCacheCapacity(0)
                         .build()
                         .expect("cache-off engine");
    auto cache_on = CacheMind::Builder(sharedDb())
                        .withBatchWorkers(4)
                        .withRetrievalCacheCapacity(4096)
                        .build()
                        .expect("cache-on engine");
    EXPECT_EQ(cache_off.retrievalCache(), nullptr);
    ASSERT_NE(cache_on.retrievalCache(), nullptr);

    const auto off = cache_off.askBatch(questions).expect("off batch");
    const auto on = cache_on.askBatch(questions).expect("on batch");
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(on[i].text, off[i].text) << "question " << i;
        EXPECT_EQ(on[i].answer.number, off[i].answer.number);
        EXPECT_EQ(on[i].answer.chosen_policy,
                  off[i].answer.chosen_policy);
        EXPECT_EQ(on[i].answer.listed_values,
                  off[i].answer.listed_values);
        EXPECT_EQ(on[i].bundle.trace_key, off[i].bundle.trace_key);
        // The rendered evidence covers every bundle field the
        // generator can read: byte-identical context, not just
        // byte-identical answers.
        EXPECT_EQ(on[i].bundle.render(), off[i].bundle.render())
            << "question " << i;
    }

    // The repeated rounds must have hit: 8 distinct questions were
    // asked 24 times.
    const auto stats = cache_on.stats();
    EXPECT_GT(stats.cache.hits, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.5);
    EXPECT_EQ(stats.cache.hits + stats.cache.misses,
              static_cast<std::uint64_t>(questions.size()));
    // Cache-off engines record no cache traffic at all.
    EXPECT_EQ(cache_off.stats().cache.hits +
                  cache_off.stats().cache.misses,
              0u);
}

TEST(EngineTest, TieredCacheByteIdenticalAndRecoversDemotions)
{
    // The demotion-churn scenario at engine level: a hot tier far
    // smaller than the working set (capacity 4) over a roomy
    // compressed secondary tier, so nearly every bundle is demoted
    // into codec form and later recovered by decode + re-promote.
    // Across all three retrievers, blocking and streaming, answers
    // must stay byte-identical to a cache-off engine — tiering
    // changes when evidence is assembled, never what is answered —
    // and the secondary tier must recover the round-2 recomputes the
    // tiny hot tier would otherwise pay.
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const auto &pcs = entry->table.uniquePcsScan();
    std::vector<std::string> base;
    for (std::size_t k = 0; k < 8 && k < pcs.size(); ++k) {
        const std::string pc = str::hex(pcs[k]);
        const std::string where =
            " in the astar workload under LRU?";
        base.push_back("What is the miss rate for PC " + pc + where);
        base.push_back("How many times did PC " + pc + " appear" +
                       where);
        base.push_back("What is the mean reuse distance of PC " + pc +
                       where);
        base.push_back("What is the standard deviation of the reuse "
                       "distance of PC " + pc + where);
    }
    ASSERT_GE(base.size(), 16u) << "trace has too few distinct PCs";
    std::vector<std::string> questions;
    for (int round = 0; round < 2; ++round)
        questions.insert(questions.end(), base.begin(), base.end());
    const auto distinct = static_cast<std::uint64_t>(base.size());

    for (const char *retriever : {"sieve", "ranger", "llamaindex"}) {
        SCOPED_TRACE(retriever);
        auto off = CacheMind::Builder(sharedDb())
                       .withRetriever(retriever)
                       .withBatchWorkers(4)
                       .withRetrievalCacheCapacity(0)
                       .build()
                       .expect("cache-off engine");
        auto tiered = CacheMind::Builder(sharedDb())
                          .withRetriever(retriever)
                          .withBatchWorkers(4)
                          .withRetrievalCacheCapacity(4)
                          .withSecondaryCacheBytes(4u << 20)
                          .build()
                          .expect("tiered engine");

        const auto expect = off.askBatch(questions).expect("off");
        const auto got = tiered.askBatch(questions).expect("tiered");
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].text, expect[i].text) << "question " << i;
            // Byte-identical evidence, not just byte-identical
            // answers: render() covers every field the generator can
            // read, so it also proves the codec round trip through
            // the secondary tier was exact.
            EXPECT_EQ(got[i].bundle.render(),
                      expect[i].bundle.render())
                << "question " << i;
        }

        // Every distinct slot was computed exactly once: round 2 was
        // served entirely from the tiers, and everything the 4-entry
        // hot tier had demoted came back from the secondary tier
        // instead of being recomputed.
        auto cache = tiered.retrievalCache();
        ASSERT_NE(cache, nullptr);
        const auto counters = cache->counters();
        const auto tiers = cache->tiered();
        EXPECT_EQ(counters.misses, distinct);
        EXPECT_EQ(counters.evictions, 0u);
        ASSERT_TRUE(tiers.secondary_enabled);
        const std::uint64_t would_recompute =
            distinct - tiers.hot.capacity;
        EXPECT_GT(tiers.secondary.hits, would_recompute / 2)
            << "secondary tier recovered under half of the would-be "
               "recomputes";
        EXPECT_GT(tiers.demotions, 0u);
        EXPECT_EQ(tiers.promotions, tiers.secondary.hits);
        EXPECT_LT(tiers.secondary.compressionRatio(), 1.0);
        // And the per-tier counters surface through EngineStats.
        EXPECT_EQ(tiered.stats().cache_tiers.secondary.hits,
                  tiers.secondary.hits);

        // Streaming rides the same tiers through peek/publish; the
        // streamed answer must match the cache-off stream's.
        for (std::size_t i = 0; i < 4; ++i) {
            auto s_off = off.askStream(base[i]).expect("off stream");
            auto s_on =
                tiered.askStream(base[i]).expect("tiered stream");
            std::string text_off, text_on;
            while (auto event = s_off.next())
                if (event->kind == StreamEvent::Kind::Done)
                    text_off = event->response->text;
            while (auto event = s_on.next())
                if (event->kind == StreamEvent::Kind::Done)
                    text_on = event->response->text;
            EXPECT_FALSE(text_on.empty());
            EXPECT_EQ(text_on, text_off) << "stream " << i;
        }
    }
}

TEST(EngineTest, CacheStatsAreSplitByRetriever)
{
    auto engine = defaultEngine();
    const auto q = suiteQuestions()[0];
    engine.ask(q).expect("miss");
    engine.ask(q).expect("hit");
    const auto stats = engine.stats();
    ASSERT_EQ(stats.cache_by_retriever.count("sieve"), 1u);
    const auto &sieve = stats.cache_by_retriever.at("sieve");
    EXPECT_EQ(sieve.misses, 1u);
    EXPECT_EQ(sieve.hits, 1u);
    EXPECT_DOUBLE_EQ(sieve.hitRate(), 0.5);
    EXPECT_EQ(stats.cache.hits, sieve.hits);
}

TEST(EngineTest, SlotEqualPhrasingsShareOneRetrieval)
{
    // Two phrasings of the same slots assemble the evidence bundle
    // once, yet each answer is keyed by its own raw text.
    auto engine = defaultEngine();
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    const std::string a = "What is the miss rate for PC " +
                          str::hex(pc) +
                          " in the astar workload with LRU?";
    const std::string b = "For the astar workload under LRU, what "
                          "miss rate does PC " +
                          str::hex(pc) + " have?";
    const auto ra = engine.ask(a).expect("a");
    const auto rb = engine.ask(b).expect("b");
    const auto stats = engine.stats();
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, 1u);
    // Same evidence, each response's bundle carries its own raw text.
    EXPECT_EQ(ra.bundle.trace_key, rb.bundle.trace_key);
    EXPECT_EQ(ra.bundle.parsed.raw, a);
    EXPECT_EQ(rb.bundle.parsed.raw, b);
    // And each answer matches a fresh single-question engine's.
    auto fresh = defaultEngine();
    EXPECT_EQ(rb.text, fresh.ask(b).expect("fresh").text);
}

TEST(EngineTest, AskParsedMatchesAsk)
{
    const auto questions = suiteQuestions();
    auto via_ask = defaultEngine();
    auto via_parsed = defaultEngine();
    for (const auto &q : questions) {
        const auto a = via_ask.ask(q).expect("ask");
        const auto b = via_parsed.askParsed(via_parsed.parser().parse(q))
                           .expect("askParsed");
        EXPECT_EQ(a.text, b.text) << q;
        EXPECT_EQ(a.bundle.render(), b.bundle.render()) << q;
    }
}

TEST(EngineTest, AskParsedRejectsBlankRaw)
{
    auto engine = defaultEngine();
    auto result = engine.askParsed(engine.parser().parse("  "));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::EmptyQuestion);
}

TEST(EngineTest, SieveEvidenceWindowKnobPlumbsThroughBuilder)
{
    // ROADMAP "engine-level scenario configs": a Figure 5-style sweep
    // runs through the Builder instead of constructing SieveRetriever
    // directly.
    auto tight = CacheMind::Builder(sharedDb())
                     .withSieveEvidenceWindow(2)
                     .build()
                     .expect("tight engine");
    EXPECT_EQ(tight.options().retriever_params.at("evidence_window"),
              "2");
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    const std::string q = "What is the miss rate for PC " +
                          str::hex(pc) +
                          " in the astar workload with LRU?";
    const auto bounded = tight.ask(q).expect("bounded");
    EXPECT_LE(bounded.bundle.rows.size(), 2u);

    auto stock = defaultEngine();
    const auto full = stock.ask(q).expect("full");
    EXPECT_GT(full.bundle.rows.size(), 2u);
}

TEST(EngineTest, RangerFidelityKnobPlumbsThroughBuilder)
{
    // ROADMAP "engine-level scenario configs": the Builder knob must
    // configure exactly what direct construction configures.
    const std::string q =
        "What is the average reuse distance of PC 0x409270 for the "
        "astar workload with LRU?";
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("ranger")
                      .withRangerFidelity(0.0)
                      .build()
                      .expect("low-fidelity ranger engine");
    retrieval::RangerConfig cfg;
    cfg.codegen_fidelity = 0.0;
    retrieval::RangerRetriever direct(sharedDb(), cfg);

    const auto via_engine = engine.ask(q).expect("engine ask");
    const auto via_direct = direct.retrieve(q);
    EXPECT_EQ(via_engine.bundle.render(), via_direct.render());
    EXPECT_EQ(via_engine.bundle.generated_code,
              via_direct.generated_code);
    // And the knob separates the cache fingerprint from a stock
    // ranger, so tuned engines never alias cached bundles.
    retrieval::RangerRetriever stock(sharedDb());
    EXPECT_NE(engine.retriever().cacheFingerprint(),
              stock.cacheFingerprint());
}

TEST(EngineTest, BuildThreadsKnobPlumbsThroughBuilder)
{
    auto engine = CacheMind::Builder(sharedDb())
                      .withBatchWorkers(4)
                      .withBuildThreads(3)
                      .build()
                      .expect("engine");
    EXPECT_EQ(engine.options().build_threads, 3u);
    EXPECT_EQ(engine.shards().size(), sharedDb().size());

    // The worker retrievers constructed concurrently on the
    // build_threads pool must answer byte-identically to a
    // sequential ask() loop.
    const auto questions = suiteQuestions();
    const auto batch = engine.askBatch(questions).expect("batch");
    auto sequential_engine = defaultEngine();
    ASSERT_EQ(batch.size(), questions.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].text,
                  sequential_engine.ask(questions[i]).expect("ask").text)
            << "question " << i;
    }
}

TEST(EngineStatsTest, PercentileSortedEdgeCases)
{
    // The snapshot percentile path leans on these clamps: pin them.
    const std::vector<double> empty;
    EXPECT_EQ(stats::percentileSorted(empty, 50.0), 0.0);

    const std::vector<double> one{7.0};
    for (const double p : {-10.0, 0.0, 50.0, 100.0, 250.0})
        EXPECT_EQ(stats::percentileSorted(one, p), 7.0) << "p=" << p;

    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_EQ(stats::percentileSorted(xs, 0.0), 1.0);
    EXPECT_EQ(stats::percentileSorted(xs, -5.0), 1.0);
    EXPECT_EQ(stats::percentileSorted(xs, 100.0), 4.0);
    EXPECT_EQ(stats::percentileSorted(xs, 120.0), 4.0);
    EXPECT_NEAR(stats::percentileSorted(xs, 50.0), 2.5, 1e-12);
}

TEST(EngineTest, StatsCountQuestionsQualityAndLatency)
{
    const auto questions = suiteQuestions();
    auto engine = CacheMind::Builder(sharedDb())
                      .withBatchWorkers(4)
                      .build()
                      .expect("engine");
    engine.askBatch(questions).expect("batch");
    engine.ask(questions[0]).expect("ask");

    const auto stats = engine.stats();
    EXPECT_EQ(stats.questions, questions.size() + 1);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.quality_low + stats.quality_medium +
                  stats.quality_high,
              stats.questions);
    EXPECT_GT(stats.highQualityFraction(), 0.0);
    EXPECT_LE(stats.latency_p50_ms, stats.latency_p90_ms);
    EXPECT_LE(stats.latency_p90_ms, stats.latency_p99_ms);
    EXPECT_GT(stats.latency_mean_ms, 0.0);
}

TEST(ChatSessionTest, TranscriptAccumulates)
{
    auto engine = defaultEngine();
    ChatSession chat(engine);
    chat.ask("Which policy has the lowest miss rate in the astar "
             "workload?")
        .expect("turn 1");
    chat.ask("Identify 3 hot and 3 cold sets by hit rate for the "
             "astar workload under LRU.")
        .expect("turn 2");
    const auto transcript = chat.transcript();
    EXPECT_NE(transcript.find("User: Which policy"), std::string::npos);
    EXPECT_NE(transcript.find("Assistant:"), std::string::npos);
    EXPECT_EQ(chat.memory().totalTurns(), 2u);
}

TEST(ChatSessionTest, MemoryRecallsEarlierAnswers)
{
    auto engine = defaultEngine();
    ChatSession chat(engine);
    chat.ask("Which policy has the lowest miss rate in the astar "
             "workload?")
        .expect("turn");
    const auto recalled =
        chat.memory().recall("lowest miss rate policy astar");
    ASSERT_FALSE(recalled.empty());
    EXPECT_NE(recalled[0].find("miss rate"), std::string::npos);
}

TEST(ChatSessionTest, AnswersAreReproducibleAcrossSessions)
{
    auto e1 = defaultEngine();
    auto e2 = defaultEngine();
    ChatSession c1(e1);
    ChatSession c2(e2);
    const std::string q =
        "Which policy has the lowest miss rate in the astar workload?";
    EXPECT_EQ(c1.ask(q).expect("c1").text, c2.ask(q).expect("c2").text);
}

TEST(ChatSessionTest, RejectsBlankQuestionEvenWithMemory)
{
    auto engine = defaultEngine();
    ChatSession chat(engine);
    chat.ask("Which policy has the lowest miss rate in the astar "
             "workload?")
        .expect("turn 1");
    // Memory augmentation must not turn blank input into an
    // answerable fabricated query.
    auto blank = chat.ask("   ");
    ASSERT_FALSE(blank.ok());
    EXPECT_EQ(blank.error().code, EngineErrorCode::EmptyQuestion);
    EXPECT_EQ(chat.memory().totalTurns(), 1u);
}

TEST(ChatSessionTest, MemorySharpensUnderSpecifiedFollowUp)
{
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    const std::string follow_up =
        "What is the miss rate for PC " + str::hex(pc) + "?";

    // Without conversation state the follow-up names no workload, so
    // retrieval cannot resolve a trace.
    auto bare_engine = defaultEngine();
    auto bare = bare_engine.ask(follow_up).expect("bare ask");
    EXPECT_TRUE(bare.bundle.trace_key.empty());

    // With memory of an earlier astar/LRU turn, the recalled facts
    // fill the missing slots *before* retrieval.
    auto engine = defaultEngine();
    ChatSession chat(engine);
    chat.ask("What is the miss rate for PC " + str::hex(pc) +
             " in the astar workload with LRU?")
        .expect("turn 1");
    auto sharpened = chat.ask(follow_up).expect("turn 2");
    EXPECT_EQ(sharpened.bundle.trace_key, "astar_evictions_lru");
    EXPECT_TRUE(sharpened.answer.number.has_value());
}

// --------------------------- cross-engine shared retrieval cache

TEST(EngineTest, SharedRetrievalCacheIsReusedAcrossEngines)
{
    // The multi-backend sweep pattern: engines differing only in
    // backend share one externally owned bundle cache, so the second
    // engine's retrieval is served from the first engine's work.
    auto shared_cache =
        std::make_shared<retrieval::RetrievalCache>(256);
    const auto questions = suiteQuestions();

    auto first = CacheMind::Builder(sharedDb())
                     .withBackend("gpt-4o")
                     .withSharedRetrievalCache(shared_cache)
                     .build()
                     .expect("first engine");
    auto second = CacheMind::Builder(sharedDb())
                      .withBackend("o3")
                      .withSharedRetrievalCache(shared_cache)
                      .build()
                      .expect("second engine");
    EXPECT_EQ(first.retrievalCache(), shared_cache.get());
    EXPECT_EQ(second.retrievalCache(), shared_cache.get());

    // Reference: an isolated engine with the same backend as second.
    auto isolated = CacheMind::Builder(sharedDb())
                        .withBackend("o3")
                        .build()
                        .expect("isolated engine");

    for (const auto &q : questions)
        (void)first.ask(q).expect("first ask");
    const auto first_stats = first.stats();
    EXPECT_GT(first_stats.cache.misses, 0u);

    for (const auto &q : questions) {
        const auto shared_resp = second.ask(q).expect("second ask");
        const auto isolated_resp = isolated.ask(q).expect("isolated");
        // Shared bundles must never change a single answer byte.
        EXPECT_EQ(shared_resp.text, isolated_resp.text) << q;
        EXPECT_EQ(shared_resp.bundle.render(),
                  isolated_resp.bundle.render())
            << q;
    }
    // Identical retriever fingerprints: every question the second
    // engine asked was served from the first engine's entries.
    const auto second_stats = second.stats();
    EXPECT_EQ(second_stats.cache.misses, 0u);
    EXPECT_EQ(second_stats.cache.hits, questions.size());
}

TEST(EngineStatsTest, IndexTotalsSurfaceThroughEngineStats)
{
    auto engine = defaultEngine();
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    (void)engine
        .ask("What is the miss rate for PC " + str::hex(pc) +
             " in the astar workload with LRU?")
        .expect("ask");
    const auto stats = engine.stats();
    // Sieve's evidence slice went through the postings index: the
    // queried shard reports its build and the skipped scan work.
    EXPECT_GE(stats.index.shards_indexed, 1u);
    EXPECT_GT(stats.index.lookups, 0u);
    EXPECT_GT(stats.index.rows_skipped, 0u);
    EXPECT_GT(stats.index.build_ms_total, 0.0);
}
