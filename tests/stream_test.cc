/**
 * @file
 * Tests for the async streaming answer subsystem: the bounded MPSC
 * StreamChannel (ordering, backpressure, cancellation, and a
 * TSan-covered many-producer hammer), delta splitting, and the
 * askStream/askBatchStream pipeline — event ordering, byte-identity
 * of the terminal Done answer with blocking ask() across all three
 * retrievers with the retrieval cache on and off, evidence streaming
 * on cache hits, and the streaming statistics counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "base/str.hh"
#include "core/cachemind.hh"
#include "core/stream.hh"
#include "db/builder.hh"
#include "llm/generator.hh"
#include "retrieval/cache.hh"
#include "retrieval/registry.hh"

using namespace cachemind;
using namespace cachemind::core;

namespace {

const db::TraceDatabase &
sharedDb()
{
    static const db::TraceDatabase database = [] {
        db::BuildOptions options;
        options.workloads = {trace::WorkloadKind::Astar};
        options.policies = {policy::PolicyKind::Lru,
                            policy::PolicyKind::Belady};
        options.accesses_override = 30000;
        return db::buildDatabase(options);
    }();
    return database;
}

/** A spread of intents exercising retrieval, stats, and reasoning. */
std::vector<std::string>
suiteQuestions()
{
    const auto *entry = sharedDb().find("astar_evictions_lru");
    const std::uint64_t pc = entry->table.pcAt(0);
    return {
        "What is the miss rate for PC " + str::hex(pc) +
            " in the astar workload with LRU?",
        "Which policy has the lowest miss rate in the astar workload?",
        "How many times did PC " + str::hex(pc) +
            " appear in the astar workload under LRU?",
        "Why does Belady outperform LRU in the astar workload?",
    };
}

CacheMind
engineWith(const std::string &retriever, std::size_t cache_capacity)
{
    return CacheMind::Builder(sharedDb())
        .withRetriever(retriever)
        .withRetrievalCacheCapacity(cache_capacity)
        .build()
        .expect("stream test engine");
}

/** Drain a stream, returning every event in arrival order. */
std::vector<StreamEvent>
drain(AnswerStream &stream)
{
    std::vector<StreamEvent> events;
    while (auto event = stream.next())
        events.push_back(std::move(*event));
    return events;
}

} // namespace

// ---------------------------------------------------------------- channel

TEST(StreamChannelTest, DeliversEventsInOrder)
{
    StreamChannel channel(8);
    channel.setProducers(1);
    for (std::size_t i = 0; i < 5; ++i) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::AnswerDelta;
        event.text = std::to_string(i);
        ASSERT_TRUE(channel.push(std::move(event)));
    }
    channel.producerDone();
    for (std::size_t i = 0; i < 5; ++i) {
        auto event = channel.pop();
        ASSERT_TRUE(event.has_value());
        EXPECT_EQ(event->text, std::to_string(i));
    }
    EXPECT_FALSE(channel.pop().has_value());
    EXPECT_TRUE(channel.closed());
}

TEST(StreamChannelTest, BackpressureBoundsTheBufferAndLosesNothing)
{
    constexpr std::size_t kEvents = 500;
    StreamChannel channel(2);
    channel.setProducers(1);
    std::thread producer([&] {
        for (std::size_t i = 0; i < kEvents; ++i) {
            StreamEvent event;
            event.kind = StreamEvent::Kind::AnswerDelta;
            event.question = i;
            ASSERT_TRUE(channel.push(std::move(event)));
        }
        channel.producerDone();
    });
    std::size_t received = 0;
    while (auto event = channel.pop()) {
        EXPECT_EQ(event->question, received);
        ++received;
    }
    producer.join();
    EXPECT_EQ(received, kEvents);
    EXPECT_EQ(channel.pushed(), kEvents);
}

TEST(StreamChannelTest, ManyProducerHammer)
{
    // TSan-covered: N producers racing into a tiny buffer against one
    // consumer — the askBatchStream topology at its most contended.
    constexpr std::size_t kProducers = 8;
    constexpr std::size_t kPerProducer = 200;
    StreamChannel channel(4);
    channel.setProducers(kProducers);
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::size_t i = 0; i < kPerProducer; ++i) {
                StreamEvent event;
                event.kind = StreamEvent::Kind::EvidenceChunk;
                event.question = p;
                event.text = std::to_string(i);
                ASSERT_TRUE(channel.push(std::move(event)));
            }
            channel.producerDone();
        });
    }
    std::map<std::size_t, std::size_t> next_per_producer;
    std::size_t received = 0;
    while (auto event = channel.pop()) {
        // Per-producer FIFO: each producer's events arrive in the
        // order it pushed them, whatever the interleaving.
        EXPECT_EQ(std::stoul(event->text),
                  next_per_producer[event->question]++);
        ++received;
    }
    for (auto &t : producers)
        t.join();
    EXPECT_EQ(received, kProducers * kPerProducer);
    EXPECT_TRUE(channel.closed());
}

TEST(StreamChannelTest, TryPopNeverBlocks)
{
    StreamChannel channel(4);
    channel.setProducers(1);
    EXPECT_FALSE(channel.tryPop().has_value());
    StreamEvent event;
    event.kind = StreamEvent::Kind::Planned;
    event.cache_key = "k";
    ASSERT_TRUE(channel.push(std::move(event)));
    auto popped = channel.tryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->cache_key, "k");
    EXPECT_FALSE(channel.tryPop().has_value());
    channel.producerDone();
}

TEST(StreamChannelTest, ExplicitCloseDrainsThenRefusesPushes)
{
    StreamChannel channel(4);
    StreamEvent event;
    event.kind = StreamEvent::Kind::AnswerDelta;
    event.text = "buffered";
    ASSERT_TRUE(channel.push(std::move(event)));
    channel.close();
    EXPECT_TRUE(channel.closed());
    // Buffered events drain after close; new pushes are refused.
    EXPECT_FALSE(channel.push(StreamEvent{}));
    auto popped = channel.pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->text, "buffered");
    EXPECT_FALSE(channel.pop().has_value());
}

TEST(StreamChannelTest, KindNamesAreStable)
{
    EXPECT_STREQ(streamEventKindName(StreamEvent::Kind::Parsed),
                 "parsed");
    EXPECT_STREQ(streamEventKindName(StreamEvent::Kind::Planned),
                 "planned");
    EXPECT_STREQ(
        streamEventKindName(StreamEvent::Kind::EvidenceChunk),
        "evidence");
    EXPECT_STREQ(streamEventKindName(StreamEvent::Kind::AnswerDelta),
                 "delta");
    EXPECT_STREQ(streamEventKindName(StreamEvent::Kind::Done),
                 "done");
}

TEST(StreamChannelTest, CancelUnblocksAndDropsProducers)
{
    StreamChannel channel(1);
    channel.setProducers(1);
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::thread producer([&] {
        for (std::size_t i = 0; i < 50; ++i) {
            StreamEvent event;
            if (channel.push(std::move(event)))
                ++accepted;
            else
                ++rejected;
        }
        channel.producerDone();
    });
    // Consume one event, then walk away: the producer must not block
    // on the full buffer forever.
    ASSERT_TRUE(channel.pop().has_value());
    channel.cancel();
    producer.join();
    EXPECT_GT(rejected.load(), 0);
    EXPECT_FALSE(channel.pop().has_value());
}

TEST(StreamDeltaTest, SplitAnswerDeltasIsLossless)
{
    const std::vector<std::string> cases = {
        "",
        "short",
        "A sentence that is longer than one fragment target and "
        "therefore must be split into several streamed deltas, each "
        "breaking after whitespace so words stay intact.",
        std::string(500, 'x'), // no break points at all
        "prefix " + std::string(150, 'y') + " suffix",
        "trailing space ",
    };
    for (const auto &text : cases) {
        const auto deltas = llm::splitAnswerDeltas(text);
        std::string joined;
        for (const auto &delta : deltas) {
            EXPECT_FALSE(delta.empty());
            // Fragments never exceed twice the target size, even
            // with no whitespace break points at all.
            EXPECT_LE(delta.size(), 96u);
            joined += delta;
        }
        EXPECT_EQ(joined, text);
        if (text.empty()) {
            EXPECT_TRUE(deltas.empty());
        }
    }
}

TEST(StreamCacheTest, PeekAndPublishPopulateWithoutBlocking)
{
    // The streaming pipeline's cache protocol: peek never waits on an
    // in-flight computation, publish inserts a finished bundle, and a
    // later peek serves it.
    retrieval::RetrievalCache cache(4, 1);
    retrieval::RetrievalCache::Outcome outcome;
    EXPECT_EQ(cache.peek("k", &outcome), nullptr);
    EXPECT_FALSE(outcome.hit);

    auto bundle = std::make_shared<const retrieval::ContextBundle>();
    cache.publish("k", bundle, &outcome);
    EXPECT_EQ(outcome.evictions, 0u);
    EXPECT_EQ(cache.size(), 1u);

    auto hit = cache.peek("k", &outcome);
    EXPECT_EQ(hit, bundle);
    EXPECT_TRUE(outcome.hit);

    // Re-publishing an existing key is a no-op (first copy wins).
    cache.publish("k",
                  std::make_shared<const retrieval::ContextBundle>(),
                  &outcome);
    EXPECT_EQ(cache.peek("k", &outcome), bundle);

    // Publishing past capacity evicts via the hot tier's clock sweep
    // (with no secondary tier configured, displaced bundles are
    // dropped); the entry budget holds exactly.
    for (int i = 0; i < 8; ++i) {
        cache.publish("fill" + std::to_string(i),
                      std::make_shared<
                          const retrieval::ContextBundle>(),
                      &outcome);
    }
    EXPECT_LE(cache.size(), 4u);
    const auto counters = cache.counters();
    EXPECT_GT(counters.evictions, 0u);
}

// --------------------------------------------------------------- pipeline

TEST(AskStreamTest, EventsArriveInPipelineOrder)
{
    auto engine = engineWith("sieve", 1024);
    const auto questions = suiteQuestions();
    auto stream =
        engine.askStream(questions[0]).expect("stream");
    const auto events = drain(stream);

    ASSERT_GE(events.size(), 5u);
    EXPECT_EQ(events.front().kind, StreamEvent::Kind::Parsed);
    EXPECT_EQ(events.front().parsed.raw, questions[0]);
    EXPECT_EQ(events[1].kind, StreamEvent::Kind::Planned);
    EXPECT_FALSE(events[1].cache_key.empty());
    EXPECT_EQ(events.back().kind, StreamEvent::Kind::Done);
    ASSERT_NE(events.back().response, nullptr);

    // Phases are contiguous: evidence never arrives after the first
    // answer delta, and nothing follows Done.
    std::size_t first_delta = events.size();
    std::size_t last_chunk = 0;
    std::size_t chunks = 0;
    std::size_t deltas = 0;
    std::string joined_deltas;
    for (std::size_t i = 2; i + 1 < events.size(); ++i) {
        if (events[i].kind == StreamEvent::Kind::EvidenceChunk) {
            last_chunk = i;
            ++chunks;
        } else if (events[i].kind == StreamEvent::Kind::AnswerDelta) {
            first_delta = std::min(first_delta, i);
            ++deltas;
            joined_deltas += events[i].text;
        } else {
            FAIL() << "unexpected mid-stream event kind";
        }
    }
    EXPECT_GE(chunks, 1u);
    EXPECT_GE(deltas, 1u);
    EXPECT_LT(last_chunk, first_delta);
    // Streamed deltas reassemble into exactly the final answer text.
    EXPECT_EQ(joined_deltas, events.back().response->text);
}

TEST(AskStreamTest, DoneIsByteIdenticalToBlockingAsk)
{
    // The streaming pipeline must change *when* evidence and text
    // become visible, never *what* is answered: pinned across all
    // three retrievers, with the retrieval cache on and off.
    const auto questions = suiteQuestions();
    for (const std::string retriever :
         {"sieve", "ranger", "llamaindex"}) {
        for (const std::size_t capacity : {0, 1024}) {
            auto blocking = engineWith(retriever, capacity);
            auto streaming = engineWith(retriever, capacity);
            for (const auto &question : questions) {
                auto expected = blocking.ask(question);
                ASSERT_TRUE(expected.ok());
                auto stream = streaming.askStream(question)
                                  .expect("askStream");
                const Response got = stream.wait();
                const auto &want = expected.value();
                EXPECT_EQ(got.text, want.text)
                    << retriever << " cache=" << capacity << " "
                    << question;
                EXPECT_EQ(got.bundle.render(), want.bundle.render());
                EXPECT_EQ(got.answer.says_hit, want.answer.says_hit);
                EXPECT_EQ(got.answer.number, want.answer.number);
                EXPECT_EQ(got.answer.chosen_policy,
                          want.answer.chosen_policy);
                EXPECT_EQ(got.answer.listed_values,
                          want.answer.listed_values);
                EXPECT_EQ(got.answer.rejected_premise,
                          want.answer.rejected_premise);
            }
        }
    }
}

TEST(AskStreamTest, CacheHitStillStreamsEvidence)
{
    auto engine = engineWith("sieve", 1024);
    const auto questions = suiteQuestions();

    auto first = engine.askStream(questions[0]).expect("cold stream");
    const Response cold = first.wait();

    auto second = engine.askStream(questions[0]).expect("hot stream");
    std::size_t chunks = 0;
    bool saw_cached_label = false;
    Response hot;
    while (auto event = second.next()) {
        if (event->kind == StreamEvent::Kind::EvidenceChunk) {
            ++chunks;
            saw_cached_label |= event->label == "cached";
        }
        if (event->kind == StreamEvent::Kind::Done)
            hot = *event->response;
    }
    // The retriever never ran (shared-cache hit), yet evidence still
    // streamed — as the single pre-assembled bundle chunk.
    EXPECT_GE(chunks, 1u);
    EXPECT_TRUE(saw_cached_label);
    EXPECT_EQ(hot.text, cold.text);
    EXPECT_EQ(hot.bundle.render(), cold.bundle.render());
    const auto stats = engine.stats();
    EXPECT_GE(stats.cache.hits, 1u);
}

TEST(AskStreamTest, RejectsEmptyQuestion)
{
    auto engine = engineWith("sieve", 0);
    auto result = engine.askStream("   ");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::EmptyQuestion);
}

TEST(AskStreamTest, AbandoningAStreamMidFlightIsSafe)
{
    auto engine = engineWith("sieve", 0);
    const auto questions = suiteQuestions();
    {
        auto stream =
            engine.askStream(questions[0]).expect("abandoned");
        auto first = stream.next();
        ASSERT_TRUE(first.has_value());
        // Dropping the handle here cancels the channel and joins the
        // worker; a tiny buffer would otherwise leave it blocked.
    }
    // The engine remains fully usable afterwards.
    auto result = engine.ask(questions[0]);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().text.empty());
}

TEST(AskStreamTest, WaitAfterNextReturnsTheSameResponse)
{
    auto engine = engineWith("sieve", 0);
    const auto questions = suiteQuestions();
    auto stream = engine.askStream(questions[1]).expect("stream");
    auto first = stream.next();
    ASSERT_TRUE(first.has_value());
    const Response r1 = stream.wait();
    EXPECT_TRUE(stream.done());
    const Response r2 = stream.wait();
    EXPECT_EQ(r1.text, r2.text);
}

TEST(AskStreamTest, StreamBufferKnobIsValidated)
{
    auto result =
        CacheMind::Builder(sharedDb()).withStreamBuffer(0).build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::InvalidOptions);
}

TEST(AskStreamTest, WarmupPreBuildsEveryShardIndex)
{
    auto engine = engineWith("sieve", 0);
    engine.warmup();
    const auto stats = engine.stats();
    EXPECT_EQ(stats.index.shards_indexed,
              sharedDb().shards().size());
}

// ------------------------------------------------------------ batch stream

TEST(AskBatchStreamTest, ResponsesMatchAskBatchAndEventsComplete)
{
    const auto questions = suiteQuestions();
    auto reference = engineWith("sieve", 1024);
    auto streaming = engineWith("sieve", 1024);

    auto expected = reference.askBatch(questions);
    ASSERT_TRUE(expected.ok());

    struct PerQuestion
    {
        std::vector<StreamEvent::Kind> kinds;
        std::string deltas;
    };
    std::map<std::size_t, PerQuestion> seen;
    auto got = streaming.askBatchStream(
        questions, [&](const StreamEvent &event) {
            seen[event.question].kinds.push_back(event.kind);
            if (event.kind == StreamEvent::Kind::AnswerDelta)
                seen[event.question].deltas += event.text;
        });
    ASSERT_TRUE(got.ok());

    ASSERT_EQ(got.value().size(), expected.value().size());
    for (std::size_t i = 0; i < questions.size(); ++i) {
        EXPECT_EQ(got.value()[i].text, expected.value()[i].text) << i;
        EXPECT_EQ(got.value()[i].bundle.render(),
                  expected.value()[i].bundle.render());
    }

    ASSERT_EQ(seen.size(), questions.size());
    for (std::size_t i = 0; i < questions.size(); ++i) {
        const auto &kinds = seen[i].kinds;
        ASSERT_GE(kinds.size(), 5u) << "question " << i;
        EXPECT_EQ(kinds.front(), StreamEvent::Kind::Parsed);
        EXPECT_EQ(kinds[1], StreamEvent::Kind::Planned);
        EXPECT_EQ(kinds.back(), StreamEvent::Kind::Done);
        EXPECT_EQ(seen[i].deltas, got.value()[i].text);
    }
}

TEST(AskBatchStreamTest, RejectsEmptyQuestionBeforeStreaming)
{
    auto engine = engineWith("sieve", 0);
    std::size_t events = 0;
    auto result = engine.askBatchStream(
        {"valid question", "  "},
        [&](const StreamEvent &) { ++events; });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, EngineErrorCode::EmptyQuestion);
    EXPECT_EQ(events, 0u);
}

TEST(AskBatchStreamTest, ThrowingSinkCancelsAndPropagates)
{
    auto engine = engineWith("sieve", 0);
    const auto questions = suiteQuestions();
    EXPECT_THROW(
        engine.askBatchStream(questions,
                              [](const StreamEvent &) {
                                  throw std::runtime_error("sink");
                              }),
        std::runtime_error);
    // The engine (and its worker pool) survives for the next call.
    auto result = engine.askBatch(questions);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().size(), questions.size());
}

namespace {

/** A custom retriever whose retrieval always throws (error paths). */
class ThrowingRetriever final : public retrieval::Retriever
{
  public:
    const char *name() const override { return "thrower"; }

    retrieval::ContextBundle
    retrieve(const std::string &) override
    {
        throw std::runtime_error("retriever exploded");
    }
};

const bool thrower_registered =
    retrieval::RetrieverRegistry::instance().add(
        "stream-test-thrower", [](const db::ShardSet &) {
            return std::make_unique<ThrowingRetriever>();
        });

} // namespace

TEST(AskStreamTest, PipelineExceptionsPropagateLikeBlockingAsk)
{
    // A throwing custom retriever must surface its exception to the
    // caller on every entry point — never escape a worker thread
    // into std::terminate, never hang the consumer.
    ASSERT_TRUE(thrower_registered);
    auto engine = CacheMind::Builder(sharedDb())
                      .withRetriever("stream-test-thrower")
                      .build()
                      .expect("throwing engine");

    EXPECT_THROW(engine.ask("boom?"), std::runtime_error);
    EXPECT_THROW(engine.askBatch(std::vector<std::string>{"a?", "b?", "c?"}),
                 std::runtime_error);

    auto stream = engine.askStream("boom?").expect("stream");
    EXPECT_THROW(stream.wait(), std::runtime_error);

    EXPECT_THROW(engine.askBatchStream({"a?", "b?", "c?"},
                                       [](const StreamEvent &) {}),
                 std::runtime_error);
}

TEST(AskBatchStreamTest, StreamingStatsAreRecorded)
{
    auto engine = engineWith("sieve", 1024);
    const auto questions = suiteQuestions();
    std::uint64_t chunk_events = 0;
    std::uint64_t delta_events = 0;
    auto result = engine.askBatchStream(
        questions, [&](const StreamEvent &event) {
            if (event.kind == StreamEvent::Kind::EvidenceChunk)
                ++chunk_events;
            if (event.kind == StreamEvent::Kind::AnswerDelta)
                ++delta_events;
        });
    ASSERT_TRUE(result.ok());

    const auto stats = engine.stats();
    EXPECT_EQ(stats.stream.streams, questions.size());
    EXPECT_EQ(stats.stream.evidence_chunks, chunk_events);
    EXPECT_EQ(stats.stream.answer_deltas, delta_events);
    // Every stream emits Parsed + Planned + chunks + deltas + Done.
    EXPECT_EQ(stats.stream.events,
              chunk_events + delta_events + 3 * questions.size());
    EXPECT_GE(stats.stream.first_event_mean_ms, 0.0);
    EXPECT_GE(stats.stream.first_event_p90_ms,
              stats.stream.first_event_p50_ms);
    // Streamed questions also count as served questions.
    EXPECT_EQ(stats.questions, questions.size());
    EXPECT_EQ(stats.batches, 1u);
}
