/**
 * @file
 * Tests for the database artifact export (CSV dataframes + manifest).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/str.hh"
#include "db/builder.hh"
#include "db/export.hh"

using namespace cachemind;
using namespace cachemind::db;

namespace {

const TraceDatabase &
sharedDb()
{
    static const TraceDatabase database = buildSingleDatabase(
        trace::WorkloadKind::Microbench, policy::PolicyKind::Lru,
        30000);
    return database;
}

} // namespace

TEST(ExportTest, HeaderListsSchemaColumns)
{
    const auto header = csvHeader();
    EXPECT_NE(header.find("program_counter"), std::string::npos);
    EXPECT_NE(header.find("memory_address"), std::string::npos);
    EXPECT_NE(header.find("evict"), std::string::npos);
    EXPECT_NE(header.find("current_cache_lines"), std::string::npos);
    ExportOptions narrow;
    narrow.include_snapshots = false;
    EXPECT_EQ(csvHeader(narrow).find("current_cache_lines"),
              std::string::npos);
}

TEST(ExportTest, RowRendersValues)
{
    const auto *entry = sharedDb().find("microbench_evictions_lru");
    const auto line = csvRow(entry->table, 0);
    EXPECT_NE(line.find(str::hex(entry->table.pcAt(0))),
              std::string::npos);
    EXPECT_NE(line.find(str::hex(entry->table.addressAt(0))),
              std::string::npos);
    EXPECT_TRUE(line.find("Cache Miss") != std::string::npos ||
                line.find("Cache Hit") != std::string::npos);
}

TEST(ExportTest, ColumnCountMatchesHeader)
{
    const auto *entry = sharedDb().find("microbench_evictions_lru");
    ExportOptions narrow;
    narrow.include_snapshots = false;
    const auto header = csvHeader(narrow);
    const auto line = csvRow(entry->table, 3, narrow);
    const auto count_cols = [](const std::string &s) {
        std::size_t cols = 1;
        bool quoted = false;
        for (const char c : s) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++cols;
        }
        return cols;
    };
    EXPECT_EQ(count_cols(header), count_cols(line));
}

TEST(ExportTest, EntryCsvRespectsRowCap)
{
    const auto *entry = sharedDb().find("microbench_evictions_lru");
    std::ostringstream os;
    ExportOptions options;
    options.max_rows = 10;
    exportEntryCsv(*entry, os, options);
    std::size_t lines = 0;
    for (const char c : os.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 11u); // header + 10 rows
}

TEST(ExportTest, ManifestCoversEveryEntry)
{
    std::ostringstream os;
    exportManifest(sharedDb(), os);
    const auto text = os.str();
    EXPECT_NE(text.find("[microbench_evictions_lru]"),
              std::string::npos);
    EXPECT_NE(text.find("workload = microbench"), std::string::npos);
    EXPECT_NE(text.find("metadata ="), std::string::npos);
    EXPECT_NE(text.find("unique_pcs ="), std::string::npos);
}

TEST(ExportTest, QuotingHandlesCommasAndQuotes)
{
    // The metadata string contains commas; the manifest must quote it.
    std::ostringstream os;
    exportManifest(sharedDb(), os);
    const auto text = os.str();
    const auto pos = text.find("metadata = \"");
    EXPECT_NE(pos, std::string::npos);
}
