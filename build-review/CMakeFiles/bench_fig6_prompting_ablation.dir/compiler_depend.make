# Empty compiler generated dependencies file for bench_fig6_prompting_ablation.
# This may be replaced when dependencies are built.
