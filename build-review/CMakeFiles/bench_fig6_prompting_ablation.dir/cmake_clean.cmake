file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_prompting_ablation.dir/bench/bench_fig6_prompting_ablation.cc.o"
  "CMakeFiles/bench_fig6_prompting_ablation.dir/bench/bench_fig6_prompting_ablation.cc.o.d"
  "bench_fig6_prompting_ablation"
  "bench_fig6_prompting_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_prompting_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
