# Empty compiler generated dependencies file for registry_test.
# This may be replaced when dependencies are built.
