file(REMOVE_RECURSE
  "CMakeFiles/registry_test.dir/tests/registry_test.cc.o"
  "CMakeFiles/registry_test.dir/tests/registry_test.cc.o.d"
  "registry_test"
  "registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
