# Empty dependencies file for benchsuite_test.
# This may be replaced when dependencies are built.
