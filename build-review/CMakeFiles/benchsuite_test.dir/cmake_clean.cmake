file(REMOVE_RECURSE
  "CMakeFiles/benchsuite_test.dir/tests/benchsuite_test.cc.o"
  "CMakeFiles/benchsuite_test.dir/tests/benchsuite_test.cc.o.d"
  "benchsuite_test"
  "benchsuite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchsuite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
