file(REMOVE_RECURSE
  "CMakeFiles/base_test.dir/tests/base_test.cc.o"
  "CMakeFiles/base_test.dir/tests/base_test.cc.o.d"
  "base_test"
  "base_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
