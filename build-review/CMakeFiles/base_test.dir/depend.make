# Empty dependencies file for base_test.
# This may be replaced when dependencies are built.
