file(REMOVE_RECURSE
  "CMakeFiles/export_test.dir/tests/export_test.cc.o"
  "CMakeFiles/export_test.dir/tests/export_test.cc.o.d"
  "export_test"
  "export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
