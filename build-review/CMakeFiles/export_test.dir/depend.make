# Empty dependencies file for export_test.
# This may be replaced when dependencies are built.
