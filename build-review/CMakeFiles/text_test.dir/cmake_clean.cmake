file(REMOVE_RECURSE
  "CMakeFiles/text_test.dir/tests/text_test.cc.o"
  "CMakeFiles/text_test.dir/tests/text_test.cc.o.d"
  "text_test"
  "text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
