# Empty dependencies file for text_test.
# This may be replaced when dependencies are built.
