# Empty compiler generated dependencies file for policy_property_test.
# This may be replaced when dependencies are built.
