file(REMOVE_RECURSE
  "CMakeFiles/policy_property_test.dir/tests/policy_property_test.cc.o"
  "CMakeFiles/policy_property_test.dir/tests/policy_property_test.cc.o.d"
  "policy_property_test"
  "policy_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
