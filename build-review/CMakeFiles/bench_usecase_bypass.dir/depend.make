# Empty dependencies file for bench_usecase_bypass.
# This may be replaced when dependencies are built.
