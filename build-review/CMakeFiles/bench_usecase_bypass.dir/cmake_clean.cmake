file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_bypass.dir/bench/bench_usecase_bypass.cc.o"
  "CMakeFiles/bench_usecase_bypass.dir/bench/bench_usecase_bypass.cc.o.d"
  "bench_usecase_bypass"
  "bench_usecase_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
