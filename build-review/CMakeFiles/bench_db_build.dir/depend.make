# Empty dependencies file for bench_db_build.
# This may be replaced when dependencies are built.
