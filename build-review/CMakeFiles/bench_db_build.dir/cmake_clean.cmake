file(REMOVE_RECURSE
  "CMakeFiles/bench_db_build.dir/bench/bench_db_build.cc.o"
  "CMakeFiles/bench_db_build.dir/bench/bench_db_build.cc.o.d"
  "bench_db_build"
  "bench_db_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
