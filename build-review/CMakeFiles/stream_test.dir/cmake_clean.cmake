file(REMOVE_RECURSE
  "CMakeFiles/stream_test.dir/tests/stream_test.cc.o"
  "CMakeFiles/stream_test.dir/tests/stream_test.cc.o.d"
  "stream_test"
  "stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
