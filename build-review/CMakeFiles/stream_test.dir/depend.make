# Empty dependencies file for stream_test.
# This may be replaced when dependencies are built.
