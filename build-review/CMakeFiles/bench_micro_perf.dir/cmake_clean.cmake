file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_perf.dir/bench/bench_micro_perf.cc.o"
  "CMakeFiles/bench_micro_perf.dir/bench/bench_micro_perf.cc.o.d"
  "bench_micro_perf"
  "bench_micro_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
