# Empty compiler generated dependencies file for bench_micro_perf.
# This may be replaced when dependencies are built.
