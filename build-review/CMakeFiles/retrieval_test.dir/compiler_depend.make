# Empty compiler generated dependencies file for retrieval_test.
# This may be replaced when dependencies are built.
