file(REMOVE_RECURSE
  "CMakeFiles/retrieval_test.dir/tests/retrieval_test.cc.o"
  "CMakeFiles/retrieval_test.dir/tests/retrieval_test.cc.o.d"
  "retrieval_test"
  "retrieval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
