file(REMOVE_RECURSE
  "CMakeFiles/query_test.dir/tests/query_test.cc.o"
  "CMakeFiles/query_test.dir/tests/query_test.cc.o.d"
  "query_test"
  "query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
