# Empty dependencies file for query_test.
# This may be replaced when dependencies are built.
