file(REMOVE_RECURSE
  "CMakeFiles/bench_belady_vs_parrot.dir/bench/bench_belady_vs_parrot.cc.o"
  "CMakeFiles/bench_belady_vs_parrot.dir/bench/bench_belady_vs_parrot.cc.o.d"
  "bench_belady_vs_parrot"
  "bench_belady_vs_parrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_belady_vs_parrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
