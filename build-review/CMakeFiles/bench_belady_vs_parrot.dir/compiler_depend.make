# Empty compiler generated dependencies file for bench_belady_vs_parrot.
# This may be replaced when dependencies are built.
