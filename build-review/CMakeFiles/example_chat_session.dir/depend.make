# Empty dependencies file for example_chat_session.
# This may be replaced when dependencies are built.
