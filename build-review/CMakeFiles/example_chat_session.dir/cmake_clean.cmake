file(REMOVE_RECURSE
  "CMakeFiles/example_chat_session.dir/examples/chat_session.cpp.o"
  "CMakeFiles/example_chat_session.dir/examples/chat_session.cpp.o.d"
  "example_chat_session"
  "example_chat_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chat_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
