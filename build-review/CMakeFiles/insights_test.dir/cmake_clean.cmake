file(REMOVE_RECURSE
  "CMakeFiles/insights_test.dir/tests/insights_test.cc.o"
  "CMakeFiles/insights_test.dir/tests/insights_test.cc.o.d"
  "insights_test"
  "insights_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
