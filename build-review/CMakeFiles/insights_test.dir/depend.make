# Empty dependencies file for insights_test.
# This may be replaced when dependencies are built.
