file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_composition.dir/bench/bench_table1_composition.cc.o"
  "CMakeFiles/bench_table1_composition.dir/bench/bench_table1_composition.cc.o.d"
  "bench_table1_composition"
  "bench_table1_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
