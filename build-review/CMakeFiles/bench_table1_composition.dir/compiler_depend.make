# Empty compiler generated dependencies file for bench_table1_composition.
# This may be replaced when dependencies are built.
