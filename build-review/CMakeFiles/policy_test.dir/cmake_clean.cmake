file(REMOVE_RECURSE
  "CMakeFiles/policy_test.dir/tests/policy_test.cc.o"
  "CMakeFiles/policy_test.dir/tests/policy_test.cc.o.d"
  "policy_test"
  "policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
