# Empty dependencies file for example_bypass_optimization.
# This may be replaced when dependencies are built.
