file(REMOVE_RECURSE
  "CMakeFiles/example_bypass_optimization.dir/examples/bypass_optimization.cpp.o"
  "CMakeFiles/example_bypass_optimization.dir/examples/bypass_optimization.cpp.o.d"
  "example_bypass_optimization"
  "example_bypass_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bypass_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
