# Empty compiler generated dependencies file for bench_fig5_retrieval_quality.
# This may be replaced when dependencies are built.
