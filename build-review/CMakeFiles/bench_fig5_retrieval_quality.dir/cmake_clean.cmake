file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_retrieval_quality.dir/bench/bench_fig5_retrieval_quality.cc.o"
  "CMakeFiles/bench_fig5_retrieval_quality.dir/bench/bench_fig5_retrieval_quality.cc.o.d"
  "bench_fig5_retrieval_quality"
  "bench_fig5_retrieval_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_retrieval_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
