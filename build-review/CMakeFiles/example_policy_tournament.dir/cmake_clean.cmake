file(REMOVE_RECURSE
  "CMakeFiles/example_policy_tournament.dir/examples/policy_tournament.cpp.o"
  "CMakeFiles/example_policy_tournament.dir/examples/policy_tournament.cpp.o.d"
  "example_policy_tournament"
  "example_policy_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
