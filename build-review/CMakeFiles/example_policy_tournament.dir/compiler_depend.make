# Empty compiler generated dependencies file for example_policy_tournament.
# This may be replaced when dependencies are built.
