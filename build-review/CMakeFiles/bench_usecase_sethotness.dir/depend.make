# Empty dependencies file for bench_usecase_sethotness.
# This may be replaced when dependencies are built.
