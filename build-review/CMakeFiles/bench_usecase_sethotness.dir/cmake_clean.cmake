file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_sethotness.dir/bench/bench_usecase_sethotness.cc.o"
  "CMakeFiles/bench_usecase_sethotness.dir/bench/bench_usecase_sethotness.cc.o.d"
  "bench_usecase_sethotness"
  "bench_usecase_sethotness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_sethotness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
