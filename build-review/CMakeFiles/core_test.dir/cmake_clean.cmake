file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/tests/core_test.cc.o"
  "CMakeFiles/core_test.dir/tests/core_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
