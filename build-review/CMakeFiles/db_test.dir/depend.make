# Empty dependencies file for db_test.
# This may be replaced when dependencies are built.
