file(REMOVE_RECURSE
  "CMakeFiles/db_test.dir/tests/db_test.cc.o"
  "CMakeFiles/db_test.dir/tests/db_test.cc.o.d"
  "db_test"
  "db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
