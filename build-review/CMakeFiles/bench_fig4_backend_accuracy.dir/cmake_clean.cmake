file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_backend_accuracy.dir/bench/bench_fig4_backend_accuracy.cc.o"
  "CMakeFiles/bench_fig4_backend_accuracy.dir/bench/bench_fig4_backend_accuracy.cc.o.d"
  "bench_fig4_backend_accuracy"
  "bench_fig4_backend_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_backend_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
