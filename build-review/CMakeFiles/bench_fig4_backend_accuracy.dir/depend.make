# Empty dependencies file for bench_fig4_backend_accuracy.
# This may be replaced when dependencies are built.
