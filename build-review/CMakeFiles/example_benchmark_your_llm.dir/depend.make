# Empty dependencies file for example_benchmark_your_llm.
# This may be replaced when dependencies are built.
