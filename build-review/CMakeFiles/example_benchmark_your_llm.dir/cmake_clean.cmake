file(REMOVE_RECURSE
  "CMakeFiles/example_benchmark_your_llm.dir/examples/benchmark_your_llm.cpp.o"
  "CMakeFiles/example_benchmark_your_llm.dir/examples/benchmark_your_llm.cpp.o.d"
  "example_benchmark_your_llm"
  "example_benchmark_your_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_benchmark_your_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
