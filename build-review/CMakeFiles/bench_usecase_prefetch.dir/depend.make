# Empty dependencies file for bench_usecase_prefetch.
# This may be replaced when dependencies are built.
