file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_prefetch.dir/bench/bench_usecase_prefetch.cc.o"
  "CMakeFiles/bench_usecase_prefetch.dir/bench/bench_usecase_prefetch.cc.o.d"
  "bench_usecase_prefetch"
  "bench_usecase_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
