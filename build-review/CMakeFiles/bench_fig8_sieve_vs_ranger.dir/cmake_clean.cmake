file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sieve_vs_ranger.dir/bench/bench_fig8_sieve_vs_ranger.cc.o"
  "CMakeFiles/bench_fig8_sieve_vs_ranger.dir/bench/bench_fig8_sieve_vs_ranger.cc.o.d"
  "bench_fig8_sieve_vs_ranger"
  "bench_fig8_sieve_vs_ranger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sieve_vs_ranger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
