# Empty dependencies file for bench_fig8_sieve_vs_ranger.
# This may be replaced when dependencies are built.
