# Empty compiler generated dependencies file for llm_test.
# This may be replaced when dependencies are built.
