file(REMOVE_RECURSE
  "CMakeFiles/llm_test.dir/tests/llm_test.cc.o"
  "CMakeFiles/llm_test.dir/tests/llm_test.cc.o.d"
  "llm_test"
  "llm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
