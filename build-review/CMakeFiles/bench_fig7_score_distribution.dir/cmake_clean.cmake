file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_score_distribution.dir/bench/bench_fig7_score_distribution.cc.o"
  "CMakeFiles/bench_fig7_score_distribution.dir/bench/bench_fig7_score_distribution.cc.o.d"
  "bench_fig7_score_distribution"
  "bench_fig7_score_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_score_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
