# Empty dependencies file for bench_fig7_score_distribution.
# This may be replaced when dependencies are built.
