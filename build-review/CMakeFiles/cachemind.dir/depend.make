# Empty dependencies file for cachemind.
# This may be replaced when dependencies are built.
