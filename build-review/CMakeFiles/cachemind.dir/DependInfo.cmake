
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "CMakeFiles/cachemind.dir/src/base/logging.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "CMakeFiles/cachemind.dir/src/base/random.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/base/random.cc.o.d"
  "/root/repo/src/base/stats_util.cc" "CMakeFiles/cachemind.dir/src/base/stats_util.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/base/stats_util.cc.o.d"
  "/root/repo/src/base/str.cc" "CMakeFiles/cachemind.dir/src/base/str.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/base/str.cc.o.d"
  "/root/repo/src/benchsuite/generator.cc" "CMakeFiles/cachemind.dir/src/benchsuite/generator.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/benchsuite/generator.cc.o.d"
  "/root/repo/src/benchsuite/grader.cc" "CMakeFiles/cachemind.dir/src/benchsuite/grader.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/benchsuite/grader.cc.o.d"
  "/root/repo/src/benchsuite/harness.cc" "CMakeFiles/cachemind.dir/src/benchsuite/harness.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/benchsuite/harness.cc.o.d"
  "/root/repo/src/benchsuite/question.cc" "CMakeFiles/cachemind.dir/src/benchsuite/question.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/benchsuite/question.cc.o.d"
  "/root/repo/src/core/cachemind.cc" "CMakeFiles/cachemind.dir/src/core/cachemind.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/core/cachemind.cc.o.d"
  "/root/repo/src/core/engine_stats.cc" "CMakeFiles/cachemind.dir/src/core/engine_stats.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/core/engine_stats.cc.o.d"
  "/root/repo/src/core/stream.cc" "CMakeFiles/cachemind.dir/src/core/stream.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/core/stream.cc.o.d"
  "/root/repo/src/db/builder.cc" "CMakeFiles/cachemind.dir/src/db/builder.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/builder.cc.o.d"
  "/root/repo/src/db/database.cc" "CMakeFiles/cachemind.dir/src/db/database.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/database.cc.o.d"
  "/root/repo/src/db/export.cc" "CMakeFiles/cachemind.dir/src/db/export.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/export.cc.o.d"
  "/root/repo/src/db/index.cc" "CMakeFiles/cachemind.dir/src/db/index.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/index.cc.o.d"
  "/root/repo/src/db/shard.cc" "CMakeFiles/cachemind.dir/src/db/shard.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/shard.cc.o.d"
  "/root/repo/src/db/stats_expert.cc" "CMakeFiles/cachemind.dir/src/db/stats_expert.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/stats_expert.cc.o.d"
  "/root/repo/src/db/table.cc" "CMakeFiles/cachemind.dir/src/db/table.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/db/table.cc.o.d"
  "/root/repo/src/insights/insights.cc" "CMakeFiles/cachemind.dir/src/insights/insights.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/insights/insights.cc.o.d"
  "/root/repo/src/llm/backend.cc" "CMakeFiles/cachemind.dir/src/llm/backend.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/backend.cc.o.d"
  "/root/repo/src/llm/generator.cc" "CMakeFiles/cachemind.dir/src/llm/generator.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/generator.cc.o.d"
  "/root/repo/src/llm/knowledge.cc" "CMakeFiles/cachemind.dir/src/llm/knowledge.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/knowledge.cc.o.d"
  "/root/repo/src/llm/memory.cc" "CMakeFiles/cachemind.dir/src/llm/memory.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/memory.cc.o.d"
  "/root/repo/src/llm/prompt.cc" "CMakeFiles/cachemind.dir/src/llm/prompt.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/prompt.cc.o.d"
  "/root/repo/src/llm/registry.cc" "CMakeFiles/cachemind.dir/src/llm/registry.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/llm/registry.cc.o.d"
  "/root/repo/src/policy/basic_policies.cc" "CMakeFiles/cachemind.dir/src/policy/basic_policies.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/basic_policies.cc.o.d"
  "/root/repo/src/policy/mlp.cc" "CMakeFiles/cachemind.dir/src/policy/mlp.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/mlp.cc.o.d"
  "/root/repo/src/policy/mockingjay.cc" "CMakeFiles/cachemind.dir/src/policy/mockingjay.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/mockingjay.cc.o.d"
  "/root/repo/src/policy/parrot.cc" "CMakeFiles/cachemind.dir/src/policy/parrot.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/parrot.cc.o.d"
  "/root/repo/src/policy/policy_factory.cc" "CMakeFiles/cachemind.dir/src/policy/policy_factory.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/policy_factory.cc.o.d"
  "/root/repo/src/policy/rrip_policies.cc" "CMakeFiles/cachemind.dir/src/policy/rrip_policies.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/policy/rrip_policies.cc.o.d"
  "/root/repo/src/query/dsl.cc" "CMakeFiles/cachemind.dir/src/query/dsl.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/query/dsl.cc.o.d"
  "/root/repo/src/query/parsed_query.cc" "CMakeFiles/cachemind.dir/src/query/parsed_query.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/query/parsed_query.cc.o.d"
  "/root/repo/src/query/parser.cc" "CMakeFiles/cachemind.dir/src/query/parser.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/query/parser.cc.o.d"
  "/root/repo/src/retrieval/cache.cc" "CMakeFiles/cachemind.dir/src/retrieval/cache.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/cache.cc.o.d"
  "/root/repo/src/retrieval/context.cc" "CMakeFiles/cachemind.dir/src/retrieval/context.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/context.cc.o.d"
  "/root/repo/src/retrieval/llamaindex.cc" "CMakeFiles/cachemind.dir/src/retrieval/llamaindex.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/llamaindex.cc.o.d"
  "/root/repo/src/retrieval/ranger.cc" "CMakeFiles/cachemind.dir/src/retrieval/ranger.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/ranger.cc.o.d"
  "/root/repo/src/retrieval/registry.cc" "CMakeFiles/cachemind.dir/src/retrieval/registry.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/registry.cc.o.d"
  "/root/repo/src/retrieval/sieve.cc" "CMakeFiles/cachemind.dir/src/retrieval/sieve.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/retrieval/sieve.cc.o.d"
  "/root/repo/src/sim/cache.cc" "CMakeFiles/cachemind.dir/src/sim/cache.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/sim/cache.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "CMakeFiles/cachemind.dir/src/sim/core_model.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/sim/core_model.cc.o.d"
  "/root/repo/src/sim/hierarchy.cc" "CMakeFiles/cachemind.dir/src/sim/hierarchy.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/sim/hierarchy.cc.o.d"
  "/root/repo/src/sim/llc_replay.cc" "CMakeFiles/cachemind.dir/src/sim/llc_replay.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/sim/llc_replay.cc.o.d"
  "/root/repo/src/text/embedding.cc" "CMakeFiles/cachemind.dir/src/text/embedding.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/text/embedding.cc.o.d"
  "/root/repo/src/trace/record.cc" "CMakeFiles/cachemind.dir/src/trace/record.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/record.cc.o.d"
  "/root/repo/src/trace/symbols.cc" "CMakeFiles/cachemind.dir/src/trace/symbols.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/symbols.cc.o.d"
  "/root/repo/src/trace/workload.cc" "CMakeFiles/cachemind.dir/src/trace/workload.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workload.cc.o.d"
  "/root/repo/src/trace/workloads/astar.cc" "CMakeFiles/cachemind.dir/src/trace/workloads/astar.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workloads/astar.cc.o.d"
  "/root/repo/src/trace/workloads/lbm.cc" "CMakeFiles/cachemind.dir/src/trace/workloads/lbm.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workloads/lbm.cc.o.d"
  "/root/repo/src/trace/workloads/mcf.cc" "CMakeFiles/cachemind.dir/src/trace/workloads/mcf.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workloads/mcf.cc.o.d"
  "/root/repo/src/trace/workloads/microbench.cc" "CMakeFiles/cachemind.dir/src/trace/workloads/microbench.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workloads/microbench.cc.o.d"
  "/root/repo/src/trace/workloads/milc.cc" "CMakeFiles/cachemind.dir/src/trace/workloads/milc.cc.o" "gcc" "CMakeFiles/cachemind.dir/src/trace/workloads/milc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
