file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_retriever_comparison.dir/bench/bench_fig9_retriever_comparison.cc.o"
  "CMakeFiles/bench_fig9_retriever_comparison.dir/bench/bench_fig9_retriever_comparison.cc.o.d"
  "bench_fig9_retriever_comparison"
  "bench_fig9_retriever_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_retriever_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
