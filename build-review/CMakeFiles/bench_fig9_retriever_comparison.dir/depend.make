# Empty dependencies file for bench_fig9_retriever_comparison.
# This may be replaced when dependencies are built.
