# Empty compiler generated dependencies file for example_streaming_repl.
# This may be replaced when dependencies are built.
