file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_repl.dir/examples/streaming_repl.cpp.o"
  "CMakeFiles/example_streaming_repl.dir/examples/streaming_repl.cpp.o.d"
  "example_streaming_repl"
  "example_streaming_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
