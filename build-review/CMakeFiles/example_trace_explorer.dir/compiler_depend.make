# Empty compiler generated dependencies file for example_trace_explorer.
# This may be replaced when dependencies are built.
