file(REMOVE_RECURSE
  "CMakeFiles/example_trace_explorer.dir/examples/trace_explorer.cpp.o"
  "CMakeFiles/example_trace_explorer.dir/examples/trace_explorer.cpp.o.d"
  "example_trace_explorer"
  "example_trace_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
