file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/tests/workload_test.cc.o"
  "CMakeFiles/workload_test.dir/tests/workload_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
