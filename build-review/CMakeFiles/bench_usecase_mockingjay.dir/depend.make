# Empty dependencies file for bench_usecase_mockingjay.
# This may be replaced when dependencies are built.
