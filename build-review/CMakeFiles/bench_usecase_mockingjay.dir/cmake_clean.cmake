file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_mockingjay.dir/bench/bench_usecase_mockingjay.cc.o"
  "CMakeFiles/bench_usecase_mockingjay.dir/bench/bench_usecase_mockingjay.cc.o.d"
  "bench_usecase_mockingjay"
  "bench_usecase_mockingjay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_mockingjay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
