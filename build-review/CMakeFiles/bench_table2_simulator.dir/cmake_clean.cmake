file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_simulator.dir/bench/bench_table2_simulator.cc.o"
  "CMakeFiles/bench_table2_simulator.dir/bench/bench_table2_simulator.cc.o.d"
  "bench_table2_simulator"
  "bench_table2_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
