# Empty compiler generated dependencies file for bench_table2_simulator.
# This may be replaced when dependencies are built.
