#!/usr/bin/env python3
"""Tracing-overhead gate over the BM_AskTracedOverhead arms.

The observability subsystem's cost discipline is "disarmed tracing is
one pointer test / one relaxed atomic": this script holds it to that.
It reads one google-benchmark JSON (``--benchmark_out`` format)
containing the three BM_AskTracedOverhead arms —

    BM_AskTracedOverhead/0   tracing disarmed (plain RequestContext)
    BM_AskTracedOverhead/1   sampled: every 64th request traced
    BM_AskTracedOverhead/2   every request traced

— and fails when the sampled arm's CPU time exceeds the disarmed
arm's by more than the threshold (3% by default, the acceptance bound
from the PR that introduced tracing). Comparing two arms of the SAME
run cancels runner-generation skew, unlike the absolute-time baseline
gate next door (check_bench_regression.py). CPU time is used rather
than wall time: the arms run back to back, but a CI neighbour's noise
lands on wall clock first.

The full-tracing arm is reported for visibility and never gates — a
traced request pays for its spans by design.

Usage:
    check_traced_overhead.py BENCH.json [--threshold 1.03]

Exit status: 0 when sampled/disarmed <= threshold, 1 otherwise (or
when either arm is missing from the input).
"""

import argparse
import json
import sys

ARMS = {
    0: "disarmed",
    1: "sampled (1/64)",
    2: "full",
}


def arm_cpu_times(path):
    """arm index -> cpu_time (first non-aggregate entry per arm)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name.startswith("BM_AskTracedOverhead/"):
            continue
        try:
            arm = int(name.split("/")[1])
        except (IndexError, ValueError):
            continue
        cpu = bench.get("cpu_time")
        if arm in times or not isinstance(cpu, (int, float)):
            continue
        times[arm] = cpu
    return times


def main():
    parser = argparse.ArgumentParser(
        description="Fail when sampled tracing costs more than the "
                    "threshold over the disarmed arm.")
    parser.add_argument("bench_json",
                        help="google-benchmark JSON with the "
                             "BM_AskTracedOverhead arms")
    parser.add_argument("--threshold", type=float, default=1.03,
                        help="maximum sampled/disarmed cpu-time ratio "
                             "(default: %(default)s)")
    args = parser.parse_args()

    times = arm_cpu_times(args.bench_json)
    missing = [arm for arm in (0, 1) if arm not in times]
    if missing:
        print(f"error: {args.bench_json}: missing "
              f"BM_AskTracedOverhead arm(s) {missing} — was the "
              "benchmark filtered out?", file=sys.stderr)
        return 1

    base = times[0]
    print(f"{'arm':<16} {'cpu_time':>12} {'vs disarmed':>12}")
    for arm in sorted(times):
        ratio = times[arm] / base if base else float("inf")
        print(f"{ARMS.get(arm, str(arm)):<16} "
              f"{times[arm]:>10.2f}us {ratio:>11.3f}x")

    ratio = times[1] / base if base else float("inf")
    if ratio > args.threshold:
        print(f"\ntraced-overhead gate FAILED: sampled arm is "
              f"{ratio:.3f}x the disarmed arm "
              f"(> {args.threshold:g}x). Disarmed tracing must stay "
              "one pointer test per span site — look for work done "
              "before the `if (!trace)` early-outs.", file=sys.stderr)
        return 1
    print(f"\ntraced-overhead gate passed (sampled/disarmed "
          f"{ratio:.3f}x <= {args.threshold:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
