#!/usr/bin/env python3
"""Chaos smoke test for the serving front-end.

Spawns ``example_serve_client --serve 0 --chaos`` (server-only mode,
ephemeral port, failpoints verb enabled), then drives it through three
phases with raw-socket clients speaking the newline-delimited JSON
line protocol:

1. **Reference** — a clean pass collects the canonical answer for every
   (question, retriever) pair, blocking and streaming alike (the done
   frame carries the full answer; deltas must concatenate to it).

2. **Chaos** — seeded randomized failpoint schedules are armed over the
   wire (delays and drops on session I/O, retrieval, and engine
   leasing) while concurrent clients issue asks with mixed deadlines.
   Every surviving request must end in a typed terminal frame — done,
   error, overloaded, or deadline_exceeded; a dropped connection may
   also surface as EOF (that is what the drop failpoint simulates).
   Deadline-capped requests must terminate within deadline + slack +
   scheduling allowance. Nothing may hang, crash, or emit a torn
   frame.

3. **Post-chaos** — everything disarmed, the reference pairs are
   re-asked and must match the phase-1 answers byte for byte, proving
   fault-free completions are unaffected by the chaos machinery. STATS
   must report the injected-fault counters.

Exit status: 0 when every phase held; 1 otherwise.

Usage:
    chaos_smoke.py /path/to/example_serve_client [--clients N]
                   [--asks M] [--rounds R] [--seed S]
"""

import argparse
import json
import random
import socket
import subprocess
import sys
import threading
import time

RETRIEVERS = ["sieve", "ranger", "llamaindex"]
QUESTIONS = [
    "Which policy has the lowest miss rate in the astar workload?",
    "Why does Belady outperform LRU in the astar workload?",
]
TERMINAL = ("done", "error", "overloaded", "deadline_exceeded")
# Typed-terminal latency bound for deadline-capped chaos asks: the
# request deadline, the server's hard-cut slack (ServeOptions default
# 250 ms), the lease-wait bound, plus scheduling allowance.
DEADLINE_MS = 400
SLACK_MS = 250
LEASE_WAIT_MS = 5000
ALLOWANCE_MS = 3000

SCHEDULES = [
    "serve.write=drop@{p_write},retrieve.section=delay:15@0.4",
    "serve.read=drop@{p_read},serve.lease=delay:25,"
    "retrieve.section=delay:10@0.5",
    "retrieve.section=delay:30@0.6,serve.write=drop@{p_write}",
    # Pipeline-interior faults: the worker-pool job and the stream
    # push path throw InjectedFault, which the session must surface
    # as a typed "error" frame (never a hang or a torn stream).
    "core.worker_pool.task=error@0.25,core.stream.push=error@0.15,"
    "retrieve.section=delay:10@0.3",
]


def recv_lines(sock):
    """Yield newline-terminated lines from a blocking socket."""
    buf = b""
    while True:
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            yield line.decode("utf-8")
        chunk = sock.recv(4096)
        if not chunk:
            return
        buf += chunk


def open_session(port, timeout=120):
    """Connect, consume the hello frame, return (socket, line iter)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.settimeout(timeout)
    lines = recv_lines(sock)
    hello = json.loads(next(lines))
    if hello.get("frame") != "hello":
        raise AssertionError(f"expected hello, got {hello}")
    return sock, lines


def ask(lines, sock, rid, question, retriever, deadline_ms=0):
    """One ask; returns (terminal_kind_or_None, answer, frames_seen).

    ``None`` terminal means the connection died (EOF) — only legal
    while drop failpoints are armed.
    """
    request = {"op": "ask", "id": rid, "question": question,
               "retriever": retriever}
    if deadline_ms:
        request["deadline_ms"] = deadline_ms
    sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
    deltas, frames = "", 0
    for raw in lines:
        frame = json.loads(raw)  # malformed/torn frame raises here
        frames += 1
        if frame.get("id") != rid:
            raise AssertionError(f"frame for {frame.get('id')!r} "
                                 f"inside {rid}")
        kind = frame["frame"]
        if kind == "delta":
            deltas += frame["text"]
        if kind == "done":
            if deltas != frame["answer"]:
                raise AssertionError(f"delta bytes diverge on {rid}")
            return kind, frame["answer"], frames
        if kind in TERMINAL:
            return kind, "", frames
    return None, "", frames


def arm(port, spec, attempts=10):
    """Arm a failpoint spec over the wire ('' or 'off' disarms).

    Retries: while drop failpoints are armed, the arming session's own
    reads and writes are fair game, so a disarm request can itself be
    dropped a few times before it lands.
    """
    last = None
    for _ in range(attempts):
        try:
            sock, lines = open_session(port)
            try:
                request = {"op": "failpoints", "id": "arm",
                           "spec": spec or "off"}
                sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
                frame = json.loads(next(lines))
                if frame.get("frame") != "failpoints":
                    raise AssertionError(f"arming failed: {frame}")
                return int(frame["armed"])
            finally:
                sock.close()
        except (StopIteration, AssertionError, OSError,
                json.JSONDecodeError) as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"could not arm {spec!r} after "
                         f"{attempts} attempts: {last!r}")


def fetch_stats(port):
    sock, lines = open_session(port)
    try:
        sock.sendall(b'{"op":"stats","id":"st"}\n')
        frame = json.loads(next(lines))
        if frame.get("frame") != "stats":
            raise AssertionError(f"stats failed: {frame}")
        return frame
    finally:
        sock.close()


def reference_pass(port, errors):
    """Collect clean answers for every (question, retriever) pair."""
    reference = {}
    sock, lines = open_session(port)
    try:
        for qi, question in enumerate(QUESTIONS):
            for retriever in RETRIEVERS:
                rid = f"ref-{qi}-{retriever}"
                kind, answer, _ = ask(lines, sock, rid, question,
                                      retriever)
                if kind != "done" or not answer:
                    errors.append(f"reference ask {rid} -> {kind!r}")
                    return None
                reference[(question, retriever)] = answer
    finally:
        sock.close()
    return reference


def chaos_client(port, client_id, asks, rng_seed, counters, errors):
    rng = random.Random(rng_seed)
    for i in range(asks):
        try:
            sock, lines = open_session(port)
        except Exception:
            counters["dropped"] += 1  # hello dropped by serve.write
            continue
        try:
            deadline = rng.choice([0, 0, DEADLINE_MS])
            question = rng.choice(QUESTIONS)
            retriever = rng.choice(RETRIEVERS)
            started = time.monotonic()
            kind, _, _ = ask(lines, sock, f"c{client_id}-{i}",
                             question, retriever, deadline)
            elapsed_ms = (time.monotonic() - started) * 1000.0
            if kind is None:
                counters["dropped"] += 1
            else:
                counters[kind] += 1
                if deadline and elapsed_ms > (deadline + SLACK_MS +
                                              LEASE_WAIT_MS +
                                              ALLOWANCE_MS):
                    errors.append(
                        f"deadline ask c{client_id}-{i} took "
                        f"{elapsed_ms:.0f}ms")
        except ConnectionError:
            # RST instead of FIN: the server dropped the connection
            # while our request bytes were still unread. Same injected
            # fault as a clean EOF, just a racier goodbye.
            counters["dropped"] += 1
        except Exception as exc:  # noqa: BLE001 - collected
            errors.append(f"chaos client {client_id}: {exc!r}")
        finally:
            sock.close()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("server_binary")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--asks", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    server = subprocess.Popen(
        [args.server_binary, "--serve", "0", "--chaos"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline().strip()
        if not banner.startswith("LISTENING "):
            print(f"FAIL: unexpected banner {banner!r}", file=sys.stderr)
            return 1
        port = int(banner.split()[1])
        total = args.clients * args.asks * args.rounds
        print(f"server up on port {port}; {args.rounds} rounds x "
              f"{args.clients} clients x {args.asks} asks = {total} "
              "chaos requests")

        errors = []
        reference = reference_pass(port, errors)
        if reference is None:
            for err in errors:
                print(f"FAIL: {err}", file=sys.stderr)
            return 1

        rng = random.Random(args.seed)
        counters = {k: 0 for k in TERMINAL}
        counters["dropped"] = 0
        for round_no in range(args.rounds):
            schedule = SCHEDULES[round_no % len(SCHEDULES)].format(
                p_write=round(rng.uniform(0.05, 0.2), 2),
                p_read=round(rng.uniform(0.05, 0.2), 2))
            armed = arm(port, schedule)
            if armed < 1:
                errors.append(f"schedule {schedule!r} armed nothing")
            threads = [
                threading.Thread(
                    target=chaos_client,
                    args=(port, round_no * args.clients + i, args.asks,
                          rng.getrandbits(32), counters, errors))
                for i in range(args.clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            arm(port, "off")
            print(f"round {round_no}: schedule {schedule}")

        # Post-chaos: byte-identical to the clean reference.
        sock, lines = open_session(port)
        try:
            for (question, retriever), expected in reference.items():
                kind, answer, _ = ask(lines, sock,
                                      f"post-{retriever}", question,
                                      retriever)
                if kind != "done":
                    errors.append(f"post-chaos ask -> {kind!r}")
                elif answer != expected:
                    errors.append(
                        f"post-chaos answer diverges for "
                        f"({retriever}, {question!r})")
        finally:
            sock.close()

        stats = fetch_stats(port)
        if int(stats.get("faults_injected", 0)) < 1:
            errors.append(f"no faults recorded in stats: {stats}")

        if errors:
            for err in errors:
                print(f"FAIL: {err}", file=sys.stderr)
            return 1
        print(f"OK: {total} chaos requests -> "
              + ", ".join(f"{k}={v}" for k, v in counters.items())
              + f"; faults_injected={stats['faults_injected']}; "
              "post-chaos answers byte-identical")
        return 0
    finally:
        try:
            server.stdin.close()  # server-only mode exits on stdin EOF
            server.wait(timeout=30)
        except Exception:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
