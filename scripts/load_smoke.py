#!/usr/bin/env python3
"""Concurrency smoke test for the serving front-end.

Spawns ``example_serve_client --serve 0`` (server-only mode, ephemeral
port), waits for its ``LISTENING <port>`` banner, then drives it with
N concurrent raw-socket clients speaking the newline-delimited JSON
line protocol — no shared code with the C++ client, so a framing bug
that the in-process tests can't see (partial writes, interleaved
frames across sessions, a missing newline) fails here.

Each client runs several asks, rotating retriever per request, and
asserts for every response stream:

  * every line parses as a flat JSON object with a ``frame`` key,
  * frames carry the request id they answer,
  * the concatenated ``delta`` text equals the ``done`` answer,
  * the stream terminates with exactly one ``done`` frame.

Every third ask additionally carries a ``deadline_ms`` budget
(``--deadline-ms``, generous by default). Deadline-capped asks must
still end in a typed terminal frame — ``done`` (degraded or not) or
``deadline_exceeded`` — within deadline + slack + a scheduling
allowance, exercising the deadline path under real concurrency.

Exit status: 0 when every client saw well-formed, byte-consistent
streams; 1 otherwise.

Usage:
    load_smoke.py /path/to/example_serve_client [--clients N]
                  [--asks M] [--deadline-ms D]
"""

import argparse
import json
import socket
import subprocess
import sys
import threading
import time

# Server-side hard-cut slack past the deadline (ServeOptions default)
# plus scheduling allowance for a loaded CI machine.
SLACK_MS = 250
ALLOWANCE_MS = 5000

RETRIEVERS = ["sieve", "ranger", "llamaindex"]
QUESTION = "Which policy has the lowest miss rate in the astar workload?"
QUESTIONS = [
    QUESTION,
    "Why does Belady outperform LRU in the astar workload?",
]


def recv_lines(sock):
    """Yield newline-terminated lines from a blocking socket."""
    buf = b""
    while True:
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            yield line.decode("utf-8")
        chunk = sock.recv(4096)
        if not chunk:
            return
        buf += chunk


def run_client(port, client_id, asks, deadline_ms, errors):
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        sock.settimeout(120)
        lines = recv_lines(sock)
        hello = json.loads(next(lines))
        if hello.get("frame") != "hello":
            raise AssertionError(f"expected hello, got {hello}")
        for ask in range(asks):
            rid = f"{client_id}-{ask}"
            # Every third ask carries a deadline budget; it may finish
            # done (degraded or not) or deadline_exceeded, but always
            # with a typed terminal frame inside the latency bound.
            capped = deadline_ms > 0 and (client_id + ask) % 3 == 0
            request = {
                "op": "ask",
                "id": rid,
                "question": QUESTIONS[(client_id + ask) % len(QUESTIONS)],
                "retriever": RETRIEVERS[(client_id + ask) % len(RETRIEVERS)],
            }
            if capped:
                request["deadline_ms"] = deadline_ms
            started = time.monotonic()
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            deltas, terminal, done = "", None, None
            for raw in lines:
                frame = json.loads(raw)  # malformed frame raises here
                kind = frame["frame"]
                if frame.get("id") != rid:
                    raise AssertionError(
                        f"frame for {frame.get('id')!r} inside {rid}")
                if kind == "delta":
                    deltas += frame["text"]
                elif kind == "done":
                    terminal, done = kind, frame["answer"]
                    break
                elif kind == "deadline_exceeded" and capped:
                    terminal = kind
                    break
                elif kind in ("error", "overloaded",
                              "deadline_exceeded"):
                    raise AssertionError(f"server refused {rid}: {raw}")
            if terminal is None:
                raise AssertionError(f"stream {rid} ended without a "
                                     "terminal frame")
            if terminal == "done" and deltas != done:
                raise AssertionError(f"delta bytes diverge on {rid}")
            if capped:
                elapsed_ms = (time.monotonic() - started) * 1000.0
                bound = deadline_ms + SLACK_MS + ALLOWANCE_MS
                if elapsed_ms > bound:
                    raise AssertionError(
                        f"deadline ask {rid} took {elapsed_ms:.0f}ms "
                        f"(> {bound}ms)")
                # A hard cut ends the connection's usefulness for this
                # simple client only if the server closed it; ours
                # keeps the session, so continue asking.
        sock.close()
    except Exception as exc:  # noqa: BLE001 - collected and reported
        errors.append(f"client {client_id}: {exc!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("server_binary")
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--asks", type=int, default=3)
    parser.add_argument("--deadline-ms", type=int, default=10000,
                        help="deadline for every third ask "
                             "(0 disables the mixed-deadline phase)")
    args = parser.parse_args()

    server = subprocess.Popen(
        [args.server_binary, "--serve", "0"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline().strip()
        if not banner.startswith("LISTENING "):
            print(f"FAIL: unexpected banner {banner!r}", file=sys.stderr)
            return 1
        port = int(banner.split()[1])
        print(f"server up on port {port}; "
              f"{args.clients} clients x {args.asks} asks")

        errors = []
        threads = [
            threading.Thread(target=run_client,
                             args=(port, i, args.asks,
                                   args.deadline_ms, errors))
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            for err in errors:
                print(f"FAIL: {err}", file=sys.stderr)
            return 1
        print(f"OK: {args.clients * args.asks} streams, "
              "zero malformed frames")
        return 0
    finally:
        try:
            server.stdin.close()  # server-only mode exits on stdin EOF
            server.wait(timeout=30)
        except Exception:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
