#!/usr/bin/env bash
# Check C++ formatting with clang-format (config: .clang-format).
#
# Usage: scripts/check_format.sh [file...]
#   With no arguments, checks every tracked C++ source file.
#   Exits non-zero when any file needs reformatting.
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
    echo "check_format: $CLANG_FORMAT not found; skipping." >&2
    exit 0
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files '*.cc' '*.hh' '*.cpp')
fi

if [ "${#files[@]}" -eq 0 ]; then
    echo "check_format: no files to check."
    exit 0
fi

bad=0
for f in "${files[@]}"; do
    if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        bad=1
    fi
done

if [ "$bad" -ne 0 ]; then
    echo "check_format: run '$CLANG_FORMAT -i <file>' to fix." >&2
    exit 1
fi
echo "check_format: ${#files[@]} files clean."
