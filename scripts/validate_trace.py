#!/usr/bin/env python3
"""Schema check for exported Chrome trace-event JSON.

Validates that a trace produced by obs::toChromeJson (or exported via
CACHEMIND_TRACE_DIR) is a well-formed Chrome ``chrome://tracing`` /
Perfetto "JSON object format" document that the viewers will actually
load, before CI archives it as an artifact:

  * top-level object with a ``traceEvents`` array;
  * every event has ``ph``, ``pid``, ``tid`` and a ``name``;
  * complete events (``ph: "X"``) carry numeric ``ts`` and ``dur``;
  * at least one complete span exists (an export of an empty trace is
    an error — the benchmark that produced it lost its span tree);
  * span ids are unique and every non-root ``parent`` refers to a
    span that exists (the tree is closed under parents).

Usage:
    validate_trace.py TRACE_sample.json [more.json ...]

Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"not readable JSON: {err}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, 'missing "traceEvents" array')

    spans = 0
    span_ids = set()
    parents = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(path, f"traceEvents[{i}] is not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                return fail(path,
                            f'traceEvents[{i}] missing "{key}"')
        if ev["ph"] != "X":
            continue
        spans += 1
        for key in ("ts", "dur"):
            if not isinstance(ev.get(key), (int, float)):
                return fail(path,
                            f'traceEvents[{i}] ("{ev["name"]}"): '
                            f'"{key}" is not numeric')
        args = ev.get("args", {})
        span_id = args.get("span_id")
        if span_id is not None:
            if span_id in span_ids:
                return fail(path,
                            f"duplicate span_id {span_id} "
                            f'("{ev["name"]}")')
            span_ids.add(span_id)
            parents.append((ev["name"], args.get("parent")))

    if spans == 0:
        return fail(path, "no complete spans (ph: \"X\") — empty "
                          "trace exported")
    for name, parent in parents:
        if parent not in span_ids and parent != 0:
            return fail(path, f'span "{name}" has dangling parent '
                              f"{parent}")

    print(f"{path}: ok ({spans} spans, "
          f"{len(events) - spans} metadata events)")
    return True


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    ok = all([validate(path) for path in sys.argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
