#!/usr/bin/env python3
"""Cross-commit drift detection over archived bench trajectories.

The perf-smoke job archives one ``BENCH_micro_perf.json`` per commit
(the bench trajectory). ``check_bench_regression.py`` gates each run
against a fixed baseline with a generous threshold, which by design
lets slow creep through: a 1.3x slowdown passes every individual gate
and compounds across PRs. This script closes that gap: point it at a
directory of archived runs (filenames sorting in commit order — date-
or sequence-prefixed) and it fits a least-squares drift line per
tracked benchmark, in units of *fraction of the series mean per run*,
and warns when the slope exceeds a configurable budget.

Usage:
    bench_trend.py RUNS_DIR [--slope-warn FRACTION] [--min-runs N]
                   [--strict]

``--strict`` turns slope warnings into exit status 1 (advisory by
default: two adjacent archived runs on different CI runner generations
can legitimately drift, so the gate that blocks merges stays the
per-run regression check).

Exit status: 0 when no tracked benchmark drifts above the budget (or
the series is shorter than --min-runs, reported as a note); 1 under
--strict when any does.
"""

import argparse
import sys
from pathlib import Path

from check_bench_regression import TRACKED, first_match, load_times


def fit_slope(samples):
    """Least-squares slope of samples over run index, per-run.

    Returned in relative units (fraction of the series mean per run)
    so one budget applies to microsecond and millisecond benchmarks
    alike. A flat series fits 0.0; a series growing 5% of its mean
    every run fits 0.05.
    """
    n = len(samples)
    mean_x = (n - 1) / 2.0
    mean_y = sum(samples) / n
    if mean_y == 0:
        return 0.0
    num = sum((i - mean_x) * (y - mean_y)
              for i, y in enumerate(samples))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return (num / den) / mean_y if den else 0.0


def load_series(runs_dir):
    """[(run_name, {bench -> ns})] in filename (= commit) order."""
    paths = sorted(Path(runs_dir).glob("*.json"))
    series = []
    for path in paths:
        try:
            times = load_times(path)
        except (OSError, ValueError) as err:
            print(f"note: skipping {path.name}: {err}")
            continue
        if times:
            series.append((path.name, times))
        else:
            print(f"note: skipping {path.name}: no benchmark entries")
    return series


def main():
    parser = argparse.ArgumentParser(
        description="Warn on per-benchmark wall-time drift across a "
                    "directory of archived bench runs.")
    parser.add_argument("runs_dir",
                        help="directory of BENCH_micro_perf.json "
                             "archives, filenames sorting in commit "
                             "order")
    parser.add_argument("--slope-warn", type=float, default=0.05,
                        help="drift budget: fraction of the series "
                             "mean per run (default: %(default)s)")
    parser.add_argument("--min-runs", type=int, default=3,
                        help="minimum series length to fit a trend "
                             "(default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on drift instead of warning")
    args = parser.parse_args()

    series = load_series(args.runs_dir)
    if len(series) < args.min_runs:
        print(f"note: {len(series)} usable run(s) in {args.runs_dir}; "
              f"need {args.min_runs} to fit a trend. Nothing to do.")
        return 0

    print(f"trend over {len(series)} runs "
          f"({series[0][0]} .. {series[-1][0]}), "
          f"budget {args.slope_warn:+.1%}/run:\n")
    print(f"{'benchmark':<34} {'first':>12} {'last':>12} "
          f"{'slope/run':>10}  verdict")
    drifting = []
    for prefix in TRACKED:
        samples = []
        for _, times in series:
            _, ns = first_match(times, prefix)
            if ns is not None:
                samples.append(ns)
        if len(samples) < args.min_runs:
            print(f"{prefix:<34} {'-':>12} {'-':>12} {'-':>10}  "
                  f"sparse ({len(samples)} runs)")
            continue
        slope = fit_slope(samples)
        drifted = slope > args.slope_warn
        verdict = "DRIFTING" if drifted else "ok"
        print(f"{prefix:<34} {samples[0] / 1e6:>10.3f}ms "
              f"{samples[-1] / 1e6:>10.3f}ms {slope:>+9.1%}  "
              f"{verdict}")
        if drifted:
            drifting.append(
                f"{prefix}: {slope:+.1%}/run over {len(samples)} runs "
                f"({samples[0] / 1e6:.3f} ms -> "
                f"{samples[-1] / 1e6:.3f} ms)")

    if drifting:
        print("\nbench drift above budget:", file=sys.stderr)
        for line in drifting:
            print(f"  {line}", file=sys.stderr)
        print("\nEach step passed the per-run regression gate; the "
              "series is creeping. Find the compounding commits in "
              "the archived trajectory before refreshing the "
              "baseline again.", file=sys.stderr)
        return 1 if args.strict else 0
    print("\nno tracked benchmark drifts above "
          f"{args.slope_warn:+.1%}/run.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
