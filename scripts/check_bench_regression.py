#!/usr/bin/env python3
"""Perf regression gate over the micro-perf bench trajectory.

Compares a freshly produced ``BENCH_micro_perf.json`` (google-benchmark
``--benchmark_out`` format) against the checked-in baseline
``bench/baseline_micro_perf.json`` and fails when any *tracked*
benchmark's wall time regressed by more than the threshold factor.

Only the indexed/cached serving-path benchmarks are tracked: they are
the ones whose speedups past PRs paid for, and they are stable enough
to gate on. The threshold is deliberately generous (2x by default) so
CI-runner noise does not fire it; genuine algorithmic regressions
(dropping an index, losing the cache, serializing the stream) blow
well past 2x. Benchmarks *faster* than baseline never fail; refresh
the baseline in the PR that makes them faster to ratchet the gate.

Usage:
    check_bench_regression.py CURRENT.json [--baseline PATH]
                              [--threshold FACTOR]

Exit status: 0 when every tracked benchmark is within threshold (or
is missing from the baseline, reported as a warning), 1 otherwise.
"""

import argparse
import json
import sys

# Tracked: the sublinear/cached hot paths. Names are prefixes so
# repetition-suffixed entries ("BM_Foo/1" vs "BM_Foo/1/repeats:3")
# keep matching if runner flags change.
TRACKED = [
    "BM_TraceIndexBuild",          # one-time per-shard index build
    "BM_PostingsIntersect/10/10",  # balanced-sparse SIMD merge kernel
    "BM_PostingsIntersect/200/200",  # dense bitmap word-AND kernel
    "BM_ColdQuestionRetrieval/1",  # cold sweep on the postings index
    "BM_MultiProgramPlan/4",       # shard-parallel policy comparison
    "BM_AskBatchRepeatedSlots/1",  # repeated slots, bundle cache on
    "BM_AskStreamFirstEvent/1",    # time to first streamed evidence
    "BM_ServeRoundTrip",           # line-protocol ask round trip
    "BM_CacheHitConcurrent/1",     # clock hot tier 16-thread hit path
    "BM_CacheDemotionChurn",       # secondary-tier codec round trip
]

TIME_UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in nanoseconds, first entry per name wins.

    Tolerant of benchmark-set drift: entries missing a name or a
    real_time (error entries, future format additions) and entries in
    an unrecognized time unit are skipped with a note instead of
    raising — a renamed or retired benchmark must degrade to a named
    warning at the gate, never a KeyError before it.
    """
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or not isinstance(real_time, (int, float)):
            print(f"note: {path}: skipping malformed benchmark entry "
                  f"({name!r})")
            continue
        if name in times:
            continue
        scale = TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if scale is None:
            print(f"note: {path}: skipping {name} "
                  f"(unknown time_unit {bench.get('time_unit')!r})")
            continue
        times[name] = real_time * scale
    return times


def context_of(path):
    with open(path) as f:
        return json.load(f).get("context", {})


def warn_on_machine_skew(current_path, baseline_path):
    """Absolute wall-time gates skew with hardware: make it visible.

    The baseline is refreshed wherever the refreshing PR ran it, not
    necessarily on this runner; when core count or clock differ, say
    so in the log so a surprising verdict is attributable. (A faster
    runner makes the gate more lenient, a slower one stricter — the
    2x threshold absorbs typical runner-generation spread.)
    """
    cur = context_of(current_path)
    base = context_of(baseline_path)
    for key in ("num_cpus", "mhz_per_cpu"):
        if cur.get(key) != base.get(key):
            print(f"note: baseline machine differs ({key}: "
                  f"baseline={base.get(key)} current={cur.get(key)}); "
                  "absolute-time ratios include hardware skew.")


def first_match(times, prefix):
    for name in sorted(times):
        if name == prefix or name.startswith(prefix + "/"):
            return name, times[name]
    return None, None


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >threshold wall-time regressions "
                    "against the checked-in bench baseline.")
    parser.add_argument("current",
                        help="BENCH_micro_perf.json from this run")
    parser.add_argument("--baseline",
                        default="bench/baseline_micro_perf.json")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="maximum allowed current/baseline ratio "
                             "(default: %(default)s)")
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)
    warn_on_machine_skew(args.current, args.baseline)

    failures = []
    rows = []
    for prefix in TRACKED:
        cur_name, cur_ns = first_match(current, prefix)
        base_name, base_ns = first_match(baseline, prefix)
        if cur_ns is None:
            # Benchmark-set drift (renamed / filtered / retired), not
            # a perf regression: name it loudly, but only an actual
            # slowdown may fail the gate.
            print(f"warning: {prefix}: missing from current run "
                  "(benchmark set drifted? update TRACKED in "
                  "scripts/check_bench_regression.py)")
            rows.append((prefix, base_ns, None, None,
                         "missing (warning)"))
            continue
        if base_ns is None:
            rows.append((prefix, None, cur_ns, None,
                         "no baseline (warning)"))
            continue
        ratio = cur_ns / base_ns if base_ns else float("inf")
        verdict = "ok" if ratio <= args.threshold else "REGRESSED"
        rows.append((prefix, base_ns, cur_ns, ratio, verdict))
        if ratio > args.threshold:
            failures.append(
                f"{cur_name}: {cur_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms ({ratio:.2f}x > "
                f"{args.threshold:g}x)")

    print(f"{'benchmark':<34} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}  verdict")
    for prefix, base_ns, cur_ns, ratio, verdict in rows:
        base = f"{base_ns / 1e6:.3f}ms" if base_ns else "-"
        cur = f"{cur_ns / 1e6:.3f}ms" if cur_ns else "-"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "-"
        print(f"{prefix:<34} {base:>12} {cur:>12} "
              f"{ratio_s:>7}  {verdict}")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf the slowdown is intended, refresh "
              "bench/baseline_micro_perf.json in this PR.",
              file=sys.stderr)
        return 1
    print("\nbench regression gate passed "
          f"(threshold {args.threshold:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
