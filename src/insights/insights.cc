#include "insights/insights.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cachemind::insights {

namespace {

const db::StatsExpert *
expertFor(const db::ShardSet &db, const std::string &workload,
          const std::string &policy)
{
    return db.statsFor(db::shardKey(workload, policy));
}

} // namespace

std::vector<BypassCandidate>
recommendBypassPcs(const db::ShardSet &db,
                   const std::string &workload,
                   const std::string &policy, std::size_t n)
{
    const db::StatsExpert *expert = expertFor(db, workload, policy);
    if (!expert)
        return {};
    std::vector<BypassCandidate> candidates;
    for (const auto &s : expert->allPcStats()) {
        if (s.accesses < 100)
            continue;
        const double dead =
            s.accesses ? static_cast<double>(s.never_reused) /
                             static_cast<double>(s.accesses)
                       : 0.0;
        // Bypassable: the PC's lines rarely hit AND their reuse is
        // far away (or absent) even under the reference policy.
        if (s.hitRate() > 0.12)
            continue;
        if (s.mean_reuse_distance < 10000.0 && dead < 0.35)
            continue;
        BypassCandidate c;
        c.pc = s.pc;
        c.hit_rate = s.hitRate();
        c.mean_reuse_distance = s.mean_reuse_distance;
        c.accesses = s.accesses;
        c.dead_fraction = dead;
        candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const BypassCandidate &a, const BypassCandidate &b) {
                  if (a.accesses != b.accesses)
                      return a.accesses > b.accesses;
                  return a.pc < b.pc;
              });
    if (candidates.size() > n)
        candidates.resize(n);
    return candidates;
}

std::unordered_set<std::uint64_t>
StabilityBuckets::stablePcSet() const
{
    std::unordered_set<std::uint64_t> out;
    for (const auto &p : low_variance)
        out.insert(p.pc);
    for (const auto &p : medium_variance)
        out.insert(p.pc);
    return out;
}

StabilityBuckets
classifyPcStability(const db::ShardSet &db,
                    const std::string &workload,
                    const std::string &policy,
                    std::uint64_t min_accesses, double low_cov,
                    double high_cov)
{
    StabilityBuckets buckets;
    const db::StatsExpert *expert = expertFor(db, workload, policy);
    if (!expert)
        return buckets;
    for (const auto &s : expert->allPcStats()) {
        if (s.accesses < min_accesses)
            continue;
        if (s.mean_reuse_distance <= 0.0)
            continue;
        PcStability p;
        p.pc = s.pc;
        p.mean_reuse_distance = s.mean_reuse_distance;
        p.reuse_stdev = s.reuse_distance_stdev;
        p.cov = s.reuse_distance_stdev / s.mean_reuse_distance;
        p.accesses = s.accesses;
        if (p.cov < low_cov) {
            buckets.low_variance.push_back(p);
        } else if (p.cov < high_cov) {
            buckets.medium_variance.push_back(p);
        } else {
            buckets.high_variance.push_back(p);
        }
    }
    const auto by_cov = [](const PcStability &a, const PcStability &b) {
        if (a.cov != b.cov)
            return a.cov < b.cov;
        return a.pc < b.pc;
    };
    std::sort(buckets.low_variance.begin(), buckets.low_variance.end(),
              by_cov);
    std::sort(buckets.medium_variance.begin(),
              buckets.medium_variance.end(), by_cov);
    std::sort(buckets.high_variance.begin(),
              buckets.high_variance.end(), by_cov);
    return buckets;
}

SetHotnessReport
analyzeSetHotness(const db::ShardSet &db,
                  const std::string &workload,
                  const std::string &policy, std::size_t n)
{
    SetHotnessReport report;
    const db::StatsExpert *expert = expertFor(db, workload, policy);
    if (!expert)
        return report;
    report.hot = expert->hottestSets(n);
    report.cold = expert->coldestSets(n);
    return report;
}

std::size_t
hotSetOverlap(const std::vector<db::SetStats> &a,
              const std::vector<db::SetStats> &b)
{
    std::size_t overlap = 0;
    for (const auto &x : a) {
        for (const auto &y : b) {
            if (x.set == y.set) {
                ++overlap;
                break;
            }
        }
    }
    return overlap;
}

PrefetchTarget
findDominantMissPc(const db::ShardSet &db,
                   const std::string &workload,
                   const std::string &policy)
{
    PrefetchTarget target;
    const std::string key = db::shardKey(workload, policy);
    const db::StatsExpert *expert = db.statsFor(key);
    const db::TraceEntry *entry = db.find(key);
    if (!expert || !entry)
        return target;
    const auto top = expert->topPcs(1, db::StatsExpert::PcOrder::MissCount);
    if (top.empty())
        return target;
    target.pc = top[0].pc;
    target.misses = top[0].misses;
    target.miss_rate = top[0].missRate();
    const auto total = expert->summary().misses;
    target.miss_share =
        total ? static_cast<double>(target.misses) /
                    static_cast<double>(total)
              : 0.0;
    if (entry->table.symbols())
        target.function_name =
            entry->table.symbols()->functionName(target.pc);
    return target;
}

} // namespace cachemind::insights
