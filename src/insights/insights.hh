/**
 * @file
 * Actionable-insight analyzers (§6.3): bypass candidate discovery,
 * stable-PC identification for Mockingjay RDP training, hot/cold set
 * analysis, and dominant-miss-PC discovery for software prefetching.
 *
 * These are the programmatic counterparts of the paper's chat-driven
 * analyses: the example programs drive the same discoveries through
 * the natural-language interface; the benches use these analyzers as
 * the verified implementation and apply the interventions in the
 * simulator.
 */

#ifndef CACHEMIND_INSIGHTS_INSIGHTS_HH
#define CACHEMIND_INSIGHTS_INSIGHTS_HH

#include <unordered_set>

#include "db/shard.hh"

namespace cachemind::insights {

/** A PC recommended for conditional bypass. */
struct BypassCandidate
{
    std::uint64_t pc = 0;
    double hit_rate = 0.0;
    double mean_reuse_distance = 0.0;
    std::uint64_t accesses = 0;
    /** Fraction of this PC's lines never reused. */
    double dead_fraction = 0.0;
};

/**
 * Recommend PCs to bypass: frequently-executed PCs whose lines show
 * near-zero hit rate and very long (or absent) reuse even under the
 * reference policy — inserting them only pollutes the cache.
 */
std::vector<BypassCandidate>
recommendBypassPcs(const db::ShardSet &db,
                   const std::string &workload,
                   const std::string &policy, std::size_t n);

/** Reuse-distance stability classification of one PC (Figure 10). */
struct PcStability
{
    std::uint64_t pc = 0;
    double mean_reuse_distance = 0.0;
    double reuse_stdev = 0.0;
    /** Coefficient of variation (stdev / mean). */
    double cov = 0.0;
    std::uint64_t accesses = 0;
};

/** Stability buckets. */
struct StabilityBuckets
{
    std::vector<PcStability> low_variance;
    std::vector<PcStability> medium_variance;
    std::vector<PcStability> high_variance;

    /**
     * PCs whose reuse distances are predictable enough to train on:
     * the low- and medium-variance buckets. Excluding only the noisy
     * high-variance PCs is the Mockingjay training intervention —
     * the predictor must still see most PCs or it falls back to its
     * default prediction everywhere.
     */
    std::unordered_set<std::uint64_t> stablePcSet() const;
};

/**
 * Classify PCs by reuse-distance variance. Thresholds are on the
 * coefficient of variation (stdev / mean): PCs below `low_cov` are
 * low-variance, below `high_cov` medium, and high otherwise.
 */
StabilityBuckets classifyPcStability(const db::ShardSet &db,
                                     const std::string &workload,
                                     const std::string &policy,
                                     std::uint64_t min_accesses = 100,
                                     double low_cov = 0.35,
                                     double high_cov = 0.55);

/** Hot/cold set report (Figure 13). */
struct SetHotnessReport
{
    std::vector<db::SetStats> hot;
    std::vector<db::SetStats> cold;
};

/** Identify the n hottest/coldest sets by hit rate. */
SetHotnessReport analyzeSetHotness(const db::ShardSet &db,
                                   const std::string &workload,
                                   const std::string &policy,
                                   std::size_t n);

/** Overlap |A ∩ B| of two hot-set lists (LRU vs Belady insight). */
std::size_t hotSetOverlap(const std::vector<db::SetStats> &a,
                          const std::vector<db::SetStats> &b);

/** Dominant miss-causing PC (software-prefetch use case). */
struct PrefetchTarget
{
    std::uint64_t pc = 0;
    std::uint64_t misses = 0;
    double miss_rate = 0.0;
    /** Share of all trace misses caused by this PC. */
    double miss_share = 0.0;
    std::string function_name;
};

/** Find the PC responsible for the most misses. */
PrefetchTarget findDominantMissPc(const db::ShardSet &db,
                                  const std::string &workload,
                                  const std::string &policy);

} // namespace cachemind::insights

#endif // CACHEMIND_INSIGHTS_INSIGHTS_HH
