#include "core/cachemind.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/failpoint.hh"
#include "base/logging.hh"
#include "base/parallel.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"
#include "core/worker_pool.hh"
#include "llm/registry.hh"
#include "retrieval/registry.hh"

namespace cachemind::core {

const char *
engineErrorCodeName(EngineErrorCode code)
{
    switch (code) {
      case EngineErrorCode::UnknownRetriever: return "unknown-retriever";
      case EngineErrorCode::UnknownBackend: return "unknown-backend";
      case EngineErrorCode::InvalidOptions: return "invalid-options";
      case EngineErrorCode::EmptyQuestion: return "empty-question";
    }
    return "?";
}

std::string
errorMessage(const EngineError &error)
{
    return std::string(engineErrorCodeName(error.code)) + ": " +
           error.message;
}

Result<CacheMind, EngineError>
CacheMind::create(const db::TraceDatabase &db, EngineOptions opts)
{
    opts.retriever = str::toLower(str::trim(opts.retriever));
    opts.backend = str::toLower(str::trim(opts.backend));
    if (opts.batch_workers == 0) {
        return EngineError{EngineErrorCode::InvalidOptions,
                           "batch_workers must be >= 1"};
    }
    if (opts.stream_buffer == 0) {
        return EngineError{EngineErrorCode::InvalidOptions,
                           "stream_buffer must be >= 1"};
    }

    // One shard view, derived once, shared by the primary retriever
    // and every batch worker built later.
    db::ShardSet shards = db.shards();

    auto &retrievers = retrieval::RetrieverRegistry::instance();
    const retrieval::RetrieverOptions retriever_opts{
        opts.retriever_params};
    auto retriever =
        retrievers.create(opts.retriever, shards, retriever_opts);
    if (!retriever) {
        return EngineError{
            EngineErrorCode::UnknownRetriever,
            "no retriever registered as '" + opts.retriever +
                "' (registered: " +
                str::join(retrievers.names(), ", ") + ")"};
    }

    auto &backends = llm::BackendRegistry::instance();
    auto generator = backends.create(opts.backend);
    if (!generator) {
        return EngineError{
            EngineErrorCode::UnknownBackend,
            "no backend registered as '" + opts.backend +
                "' (registered: " +
                str::join(backends.names(), ", ") + ")"};
    }

    return CacheMind(db, std::move(shards), std::move(opts),
                     std::move(retriever), std::move(generator));
}

/**
 * Extra worker retrievers for askBatch (the engine's primary
 * retriever serves worker 0), built on first use and reused across
 * batches: rebuilding, say, a LlamaIndex embedding index per batch
 * would dwarf the answering work. The mutex guards pool growth; it
 * is not a concurrency contract for the engine itself (see the
 * header: an engine instance is single-caller).
 */
struct CacheMind::BatchPool
{
    std::mutex mu;
    std::vector<std::unique_ptr<retrieval::Retriever>> retrievers;
};

CacheMind::CacheMind(const db::TraceDatabase &db, db::ShardSet shards,
                     EngineOptions opts,
                     std::unique_ptr<retrieval::Retriever> retriever,
                     std::unique_ptr<llm::GeneratorLlm> generator)
    : db_(db), shards_(std::move(shards)), opts_(std::move(opts)),
      retriever_(std::move(retriever)), generator_(std::move(generator)),
      parser_(std::make_unique<query::NlQueryParser>(
          shards_.workloads(), shards_.policies())),
      cache_(opts_.shared_retrieval_cache
                 ? opts_.shared_retrieval_cache
                 : (opts_.retrieval_cache_capacity
                        ? std::make_shared<retrieval::RetrievalCache>(
                              retrieval::RetrievalCache::Options{
                                  opts_.retrieval_cache_capacity,
                                  opts_.retrieval_cache_hot_slots,
                                  opts_
                                      .retrieval_cache_secondary_bytes})
                        : nullptr)),
      stats_(std::make_unique<EngineStatsRecorder>()),
      batch_pool_(std::make_unique<BatchPool>())
{
}

CacheMind::CacheMind(CacheMind &&) noexcept = default;

CacheMind::~CacheMind() = default;

query::ParsedQuery
CacheMind::parseStage(const std::string &question) const
{
    return parser_->parse(question);
}

std::string
CacheMind::planStage(const retrieval::Retriever &retriever,
                     const query::ParsedQuery &parsed) const
{
    if (!cache_)
        return std::string();
    const std::string slot_key = retriever.cacheKey(parsed);
    if (slot_key.empty())
        return std::string(); // retriever opted this query out
    // '\x1f' (unit separator) never appears in a fingerprint, so the
    // first one always delimits it — the components cannot
    // ambiguously concatenate even when a slot key embeds raw text.
    return retriever.cacheFingerprint() + '\x1f' + slot_key;
}

Deadline
CacheMind::resolveDeadline(double request_ms) const
{
    return Deadline::afterMs(request_ms > 0.0
                                 ? request_ms
                                 : opts_.default_deadline_ms);
}

namespace {

/**
 * EvidenceSink for *traced* blocking retrieval: active (so retrievers
 * emit their sections) but text-discarding — each emit becomes one
 * "section:<label>" child span under the retrieve-stage span.
 * Evidence bytes never depend on sink activity (the streaming
 * invariant), so a traced ask stays byte-identical to an untraced
 * one.
 */
class TraceEvidenceSink final : public retrieval::EvidenceSink
{
  public:
    explicit TraceEvidenceSink(const obs::TraceContext &tc)
        : tc_(tc), mark_(obs::RequestTrace::nowNs())
    {
    }

    void
    emit(const std::string &label, const std::string &) override
    {
        const std::uint64_t now = obs::RequestTrace::nowNs();
        tc_.trace->addSpan(tc_.parent, "section:" + label, mark_, now);
        mark_ = now;
        ++sections_;
    }

    std::uint64_t sections() const { return sections_; }

  private:
    obs::TraceContext tc_;
    std::uint64_t mark_;
    std::uint64_t sections_ = 0;
};

/**
 * Close out a traced retrieve stage: the cache-tier outcome, a
 * synthesized section span when the retriever never ran (cache hits
 * and single-flight waits produce no emissions, but a complete span
 * tree still shows one retrieval-section span), and the degraded
 * annotations naming the stage that crossed the deadline.
 */
void
traceRetrieveOutcome(const obs::TraceContext &tc, const char *outcome,
                     std::uint64_t sections, std::uint64_t start_ns,
                     bool degraded)
{
    if (!tc)
        return;
    tc.note("cache", outcome);
    if (sections == 0) {
        tc.trace->addSpan(tc.parent, std::string("section:") + outcome,
                          start_ns, obs::RequestTrace::nowNs());
    }
    if (degraded) {
        tc.note("degraded", "true");
        tc.note("deadline_expired_in", "retrieve");
    }
}

} // namespace

std::shared_ptr<const retrieval::ContextBundle>
CacheMind::retrieveStage(retrieval::Retriever &retriever,
                         const query::ParsedQuery &parsed,
                         const std::string &cache_key,
                         const Deadline &deadline,
                         const obs::TraceContext &tc) const
{
    const std::uint64_t start_ns = tc ? obs::RequestTrace::nowNs() : 0;
    std::uint64_t sections = 0;
    // The deadline rides the sink (the retrievers' existing
    // cancellation-poll sites double as degrade checks), so the
    // blocking path runs the sink overload with an inactive sink —
    // byte-identical output, zero chunk formatting. A traced request
    // swaps in the active, text-discarding TraceEvidenceSink to get
    // per-section spans; the bundle bytes are the same either way.
    const auto compute =
        [&]() -> std::shared_ptr<const retrieval::ContextBundle> {
        if (!tc) {
            retrieval::NullEvidenceSink sink;
            sink.setDeadline(deadline);
            return std::make_shared<const retrieval::ContextBundle>(
                retriever.retrieveParsed(parsed, sink));
        }
        TraceEvidenceSink sink(tc);
        sink.setDeadline(deadline);
        auto bundle = std::make_shared<const retrieval::ContextBundle>(
            retriever.retrieveParsed(parsed, sink));
        sections += sink.sections();
        return bundle;
    };
    if (cache_key.empty()) {
        auto evidence = compute();
        traceRetrieveOutcome(tc, "bypass", sections, start_ns,
                             evidence->degraded);
        return evidence;
    }
    if (!deadline.finite()) {
        retrieval::RetrievalCache::Outcome outcome;
        auto evidence =
            cache_->getOrCompute(cache_key, compute, &outcome);
        stats_->recordCacheLookup(retriever.name(), outcome.hit,
                                  outcome.evictions);
        traceRetrieveOutcome(tc,
                             retrieval::cacheSourceName(outcome.source),
                             sections, start_ns, evidence->degraded);
        return evidence;
    }
    // Finite deadline: stay outside the single-flight protocol. A
    // deadline-capped retrieval may come back degraded, and a degraded
    // bundle must neither be admitted nor handed to coalesced waiters
    // (their budgets differ). peek never waits; publish drops degraded
    // bundles on the floor.
    retrieval::RetrievalCache::Outcome outcome;
    if (auto cached = cache_->peek(cache_key, &outcome)) {
        stats_->recordCacheLookup(retriever.name(), true, 0);
        traceRetrieveOutcome(tc,
                             retrieval::cacheSourceName(outcome.source),
                             0, start_ns, cached->degraded);
        return cached;
    }
    auto evidence = compute();
    cache_->publish(cache_key, evidence, &outcome);
    stats_->recordCacheLookup(retriever.name(), false,
                              outcome.evictions);
    traceRetrieveOutcome(tc, "miss", sections, start_ns,
                         evidence->degraded);
    return evidence;
}

std::shared_ptr<const retrieval::ContextBundle>
CacheMind::retrieveStageStreamed(retrieval::Retriever &retriever,
                                 const query::ParsedQuery &parsed,
                                 const std::string &cache_key,
                                 retrieval::EvidenceSink &sink,
                                 const obs::TraceContext &tc) const
{
    // Streams deliberately stay outside the cache's single-flight
    // protocol: a stream computing under the in-flight claim would
    // push chunks into a consumer-paced channel, letting one paused
    // consumer block every blocking ask() coalescing on the key
    // (including through a cross-engine shared cache). Instead: peek
    // (never waits), retrieve independently on a miss — chunks stream
    // unthrottled by cache state — and publish the finished bundle.
    // Two streams racing the same key may retrieve twice; the bundles
    // are byte-identical, so the duplicated work is bounded waste,
    // not a correctness risk.
    if (cache_key.empty()) {
        auto evidence = std::make_shared<const retrieval::ContextBundle>(
            retriever.retrieveParsed(parsed, sink));
        tc.note("cache", "bypass");
        return evidence;
    }
    retrieval::RetrievalCache::Outcome outcome;
    if (auto cached = cache_->peek(cache_key, &outcome)) {
        stats_->recordCacheLookup(retriever.name(), true, 0);
        tc.note("cache", retrieval::cacheSourceName(outcome.source));
        // The retriever never ran, so the evidence streams as one
        // pre-assembled chunk (a traced stream records it as the
        // stage's single "section:cached" span).
        if (sink.active())
            sink.emit("cached", cached->render());
        return cached;
    }
    auto evidence = std::make_shared<const retrieval::ContextBundle>(
        retriever.retrieveParsed(parsed, sink));
    cache_->publish(cache_key, evidence, &outcome);
    stats_->recordCacheLookup(retriever.name(), false,
                              outcome.evictions);
    tc.note("cache", "miss");
    return evidence;
}

Response
CacheMind::generateStage(
    const query::ParsedQuery &parsed,
    const std::shared_ptr<const retrieval::ContextBundle> &evidence,
    double retrieval_ms, const llm::DeltaFn *on_delta) const
{
    Response r;
    r.bundle = *evidence;
    // The cached evidence may have been assembled for a different
    // phrasing of the same slots; the response carries *this*
    // question's parsed identity so generation (keyed by the raw
    // text) and transcripts stay byte-identical to a cache-off run.
    // Likewise the latency is *this* question's retrieve-stage cost —
    // near zero on a cache hit — not the computing question's.
    r.bundle.parsed = parsed;
    r.bundle.retrieval_ms = retrieval_ms;
    llm::GenerationOptions gen_opts;
    gen_opts.shot_mode = opts_.shot_mode;
    gen_opts.tokens_per_second = opts_.tokens_per_second;
    r.answer = on_delta
                   ? generator_->answerStreaming(r.bundle, gen_opts,
                                                 *on_delta)
                   : generator_->answer(r.bundle, gen_opts);
    r.text = r.answer.text;
    // Degraded evidence still gets answered (partial evidence beats
    // none), but the degradation is counted — it is the engine-side
    // "deadline miss" signal. Degraded bundles are never cached, so
    // this counts each degraded retrieval exactly once.
    if (r.bundle.degraded)
        stats_->recordDegraded();
    return r;
}

Response
CacheMind::answerParsed(retrieval::Retriever &retriever,
                        const query::ParsedQuery &parsed,
                        const Deadline &deadline,
                        const obs::TraceContext &tc) const
{
    obs::SpanScope plan_span(tc, "plan");
    const std::string cache_key = planStage(retriever, parsed);
    plan_span.annotate("cacheable", cache_key.empty() ? "no" : "yes");
    plan_span.end();
    Stopwatch retrieve_timer;
    obs::SpanScope retrieve_span(tc, "retrieve");
    const auto evidence =
        retrieveStage(retriever, parsed, cache_key, deadline,
                      tc.child(retrieve_span.id()));
    retrieve_span.end();
    obs::SpanScope generate_span(tc, "generate");
    return generateStage(parsed, evidence,
                         retrieve_timer.milliseconds());
}

namespace {

/** EvidenceSink adapter over a callable (the streaming pipeline). */
class FnEvidenceSink final : public retrieval::EvidenceSink
{
  public:
    using Fn = std::function<void(const std::string &,
                                  const std::string &)>;
    FnEvidenceSink(Fn fn, const StreamChannel &channel)
        : fn_(std::move(fn)), channel_(channel)
    {
    }

    void
    emit(const std::string &label, const std::string &text) override
    {
        fn_(label, text);
    }

    // The channel's consumer-side cancel is the pipeline's cooperative
    // cancellation token: retrievers polling the sink between evidence
    // sections observe a dropped AnswerStream / disconnected serving
    // session and abandon the rest of the retrieval.
    bool cancelled() const override { return channel_.cancelled(); }

  private:
    Fn fn_;
    const StreamChannel &channel_;
};

} // namespace

Response
CacheMind::answerParsedStreamed(retrieval::Retriever &retriever,
                                const query::ParsedQuery &parsed,
                                std::size_t question_index,
                                StreamChannel &channel,
                                double *blocked_ms,
                                const Deadline &deadline,
                                const obs::TraceContext &tc,
                                std::uint32_t parse_span) const
{
    // Per-stream instrumentation: when the first event left the
    // pipeline (the latency a streaming consumer actually waits
    // before anything appears) and how many events of each kind were
    // emitted. Emission is counted even if the consumer has cancelled
    // the channel — the pipeline's shape does not depend on whether
    // anyone is still listening.
    Stopwatch stream_timer;
    double first_event_ms = -1.0;
    double pushing_ms = 0.0;
    std::uint64_t events = 0;
    std::uint64_t evidence_chunks = 0;
    std::uint64_t answer_deltas = 0;
    const auto push = [&](StreamEvent event) {
        event.question = question_index;
        if (first_event_ms < 0.0)
            first_event_ms = stream_timer.milliseconds();
        ++events;
        // Time spent in push is dominated by backpressure waits on a
        // full buffer (consumer pacing); the callers subtract it from
        // the recorded question latency.
        Stopwatch push_timer;
        const bool accepted = channel.push(std::move(event));
        pushing_ms += push_timer.milliseconds();
        // A refused push on a cancelled channel trips the cooperative
        // cancellation token here as well as at the retriever's
        // section boundaries, so generation (answer deltas) also stops
        // streaming into a dead channel.
        if (!accepted && channel.cancelled())
            throw retrieval::StreamCancelled{};
    };

    // Stage 1 (parsing) ran at the engine entry point; surface it.
    // Every event carries the span of the stage that produced it, so
    // a streaming consumer (the serve layer's TTFE attribution) can
    // name the stage behind its first frame.
    StreamEvent parsed_event;
    parsed_event.kind = StreamEvent::Kind::Parsed;
    parsed_event.parsed = parsed;
    parsed_event.span = parse_span;
    push(std::move(parsed_event));

    obs::SpanScope plan_span(tc, "plan");
    const std::string cache_key = planStage(retriever, parsed);
    plan_span.annotate("cacheable", cache_key.empty() ? "no" : "yes");
    plan_span.end();
    StreamEvent planned_event;
    planned_event.kind = StreamEvent::Kind::Planned;
    planned_event.cache_key = cache_key;
    planned_event.span = plan_span.id();
    push(std::move(planned_event));

    obs::SpanScope retrieve_span(tc, "retrieve");
    // Section spans are recorded where the emissions happen: on this
    // pipeline thread, in plan order (Ranger's shard-parallel
    // execution still emits in plan order), so the span tree's shape
    // is byte-stable across exec_threads settings.
    std::uint64_t section_mark =
        tc ? obs::RequestTrace::nowNs() : 0;
    FnEvidenceSink sink(
        [&](const std::string &label, const std::string &text) {
            StreamEvent event;
            event.kind = StreamEvent::Kind::EvidenceChunk;
            event.label = label;
            event.text = text;
            if (tc) {
                const std::uint64_t now = obs::RequestTrace::nowNs();
                event.span = tc.trace->addSpan(retrieve_span.id(),
                                               "section:" + label,
                                               section_mark, now);
                section_mark = now;
            }
            ++evidence_chunks;
            push(std::move(event));
        },
        channel);
    sink.setDeadline(deadline);
    Stopwatch retrieve_timer;
    const auto evidence =
        retrieveStageStreamed(retriever, parsed, cache_key, sink,
                              tc.child(retrieve_span.id()));
    const double retrieval_ms = retrieve_timer.milliseconds();
    if (evidence->degraded) {
        tc.annotate(retrieve_span.id(), "degraded", "true");
        tc.annotate(retrieve_span.id(), "deadline_expired_in",
                    "retrieve");
    }
    retrieve_span.end();

    obs::SpanScope generate_span(tc, "generate");
    const llm::DeltaFn on_delta = [&](const std::string &delta) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::AnswerDelta;
        event.text = delta;
        event.span = generate_span.id();
        ++answer_deltas;
        push(std::move(event));
    };
    Response r =
        generateStage(parsed, evidence, retrieval_ms, &on_delta);
    generate_span.end();

    // Close the root "ask" span and stamp the outcome BEFORE the Done
    // event goes on the wire: a consumer that has observed Done may
    // immediately render the trace, and must never catch the root
    // still open. Both operations are idempotent first-writer-wins,
    // so the caller's own root.end()/finishTrace stay harmless.
    if (tc) {
        tc.trace->endSpan(tc.parent);
        if (tc.trace->outcome().empty())
            tc.trace->setOutcome(r.bundle.degraded ? "degraded"
                                                   : "done");
    }
    StreamEvent done_event;
    done_event.kind = StreamEvent::Kind::Done;
    done_event.response = std::make_shared<const Response>(r);
    done_event.span = tc.parent;
    push(std::move(done_event));

    stats_->recordStream(first_event_ms < 0.0 ? 0.0 : first_event_ms,
                         events, evidence_chunks, answer_deltas);
    if (blocked_ms)
        *blocked_ms = pushing_ms;
    return r;
}

void
CacheMind::warmup()
{
    std::call_once(*warm_once_, [this] {
        // The one-time cold-index build is recorded as warm-up, not as
        // part of any stream's time-to-first-event: the first stream
        // against a cold engine must not skew serving-side TTFE
        // percentiles (a server warms its engines at pool-build time,
        // off every session's clock).
        Stopwatch timer;
        shards_.warmIndexes(opts_.build_threads);
        stats_->recordWarmup(timer.milliseconds());
    });
}

void
CacheMind::finishTrace(const std::shared_ptr<obs::RequestTrace> &trace,
                       bool degraded) const
{
    if (!trace)
        return;
    // First writer wins: the serve layer's terminal decision
    // (deadline_exceeded, overloaded) may already have landed while
    // the pipeline was finishing — never downgrade it.
    if (trace->outcome().empty())
        trace->setOutcome(degraded ? "degraded" : "done");
    stats_->recordTrace(*trace);
}

Result<Response, EngineError>
CacheMind::ask(const RequestContext &ctx)
{
    if (str::trim(ctx.question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    Stopwatch timer;
    obs::TraceContext tc{ctx.trace, ctx.trace_parent};
    obs::SpanScope root(tc, "ask");
    const obs::TraceContext rtc = tc.child(root.id());
    query::ParsedQuery parsed;
    {
        obs::SpanScope parse_span(rtc, "parse");
        parsed = parseStage(ctx.question);
    }
    Response r =
        answerParsed(*retriever_, parsed,
                     resolveDeadline(ctx.options.deadline_ms), rtc);
    root.end();
    finishTrace(ctx.trace, r.bundle.degraded);
    stats_->record(timer.milliseconds(),
                   retrieval::assessQuality(r.bundle));
    return r;
}

Result<Response, EngineError>
CacheMind::ask(const std::string &question)
{
    return ask(RequestContext(question));
}

Result<Response, EngineError>
CacheMind::ask(const std::string &question, const AskOptions &ask_opts)
{
    return ask(RequestContext(question, ask_opts));
}

Result<Response, EngineError>
CacheMind::askParsed(const query::ParsedQuery &parsed,
                     const RequestContext &ctx)
{
    if (str::trim(parsed.raw).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    Stopwatch timer;
    obs::TraceContext tc{ctx.trace, ctx.trace_parent};
    obs::SpanScope root(tc, "ask");
    root.annotate("parse", "upstream");
    Response r = answerParsed(*retriever_, parsed,
                              resolveDeadline(ctx.options.deadline_ms),
                              tc.child(root.id()));
    root.end();
    finishTrace(ctx.trace, r.bundle.degraded);
    stats_->record(timer.milliseconds(),
                   retrieval::assessQuality(r.bundle));
    return r;
}

Result<Response, EngineError>
CacheMind::askParsed(const query::ParsedQuery &parsed)
{
    return askParsed(parsed, RequestContext{});
}

void
CacheMind::ensureBatchPool(std::size_t workers)
{
    auto &extras = batch_pool_->retrievers;
    std::lock_guard<std::mutex> pool_lock(batch_pool_->mu);
    if (extras.size() >= workers - 1)
        return;
    // Construct the missing workers concurrently on the build_threads
    // pool: per-worker construction can be heavy (LlamaIndex
    // re-embeds its whole index), and each factory call is
    // independent over the shared read-only shard view.
    const std::size_t need = workers - 1 - extras.size();
    const std::size_t ctor_threads =
        opts_.build_threads
            ? opts_.build_threads
            : std::max<std::size_t>(
                  std::thread::hardware_concurrency(), 1);
    const retrieval::RetrieverOptions retriever_opts{
        opts_.retriever_params};
    std::vector<std::unique_ptr<retrieval::Retriever>> fresh(need);
    parallelFor(need, ctor_threads, [&](std::size_t i) {
        fresh[i] = retrieval::RetrieverRegistry::instance().create(
            opts_.retriever, shards_, retriever_opts);
    });
    for (auto &r : fresh) {
        CM_ASSERT(r != nullptr, "retriever vanished from registry: ",
                  opts_.retriever);
        extras.push_back(std::move(r));
    }
}

Result<std::vector<Response>, EngineError>
CacheMind::askBatch(const std::vector<RequestContext> &requests)
{
    // Pre-flight validation keeps the concurrent section infallible,
    // so error selection cannot depend on scheduling order.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (str::trim(requests[i].question).empty()) {
            return EngineError{EngineErrorCode::EmptyQuestion,
                               "batch question #" + std::to_string(i) +
                                   " is empty"};
        }
    }

    // One request through the full traced pipeline (the per-request
    // trace handle and deadline apply individually; tracing one
    // request of a batch costs the others nothing).
    const auto answer_one = [this](retrieval::Retriever &retriever,
                                   const RequestContext &req) {
        obs::TraceContext tc{req.trace, req.trace_parent};
        obs::SpanScope root(tc, "ask");
        const obs::TraceContext rtc = tc.child(root.id());
        query::ParsedQuery parsed;
        {
            obs::SpanScope parse_span(rtc, "parse");
            parsed = parseStage(req.question);
        }
        Response r = answerParsed(
            retriever, parsed,
            resolveDeadline(req.options.deadline_ms), rtc);
        root.end();
        finishTrace(req.trace, r.bundle.degraded);
        return r;
    };

    std::vector<Response> responses(requests.size());
    std::vector<double> latencies(requests.size(), 0.0);
    const std::size_t workers =
        std::min(std::max<std::size_t>(opts_.batch_workers, 1),
                 std::max<std::size_t>(requests.size(), 1));

    if (workers <= 1) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
            Stopwatch timer;
            responses[i] = answer_one(*retriever_, requests[i]);
            latencies[i] = timer.milliseconds();
        }
    } else {
        // One retriever per worker: retrievers are not required to be
        // thread-safe, and every retrieval/generation draw is keyed
        // by the question text alone, so the answers are
        // byte-identical to a sequential ask() loop regardless of how
        // questions land on workers. The cross-question cache is
        // shared by all workers (identically configured retrievers
        // assemble identical bundles for equal keys, so which worker
        // populates an entry cannot change any answer), and a hot
        // slot key retrieves once: concurrent misses coalesce onto
        // the first in-flight retrieval. Worker 0 reuses the engine's
        // primary retriever; the extra workers draw on the lazily
        // built, batch-to-batch reusable pool.
        ensureBatchPool(workers);
        auto &extras = batch_pool_->retrievers;

        std::atomic<std::size_t> next{0};
        // Exception barrier: a throwing pipeline (custom retriever,
        // bad_alloc) must propagate to the caller like a sequential
        // ask() loop, not escape a thread body into std::terminate.
        std::exception_ptr error;
        std::mutex error_mu;
        std::atomic<bool> failed{false};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                retrieval::Retriever &worker_retriever =
                    w == 0 ? *retriever_ : *extras[w - 1];
                try {
                    while (!failed.load(std::memory_order_relaxed)) {
                        const std::size_t i = next.fetch_add(1);
                        if (i >= requests.size())
                            break;
                        Stopwatch timer;
                        responses[i] =
                            answer_one(worker_retriever, requests[i]);
                        latencies[i] = timer.milliseconds();
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            });
        }
        for (auto &t : pool)
            t.join();
        if (error)
            std::rethrow_exception(error);
    }

    for (std::size_t i = 0; i < requests.size(); ++i) {
        stats_->record(latencies[i],
                       retrieval::assessQuality(responses[i].bundle));
    }
    stats_->recordBatch();
    return responses;
}

Result<std::vector<Response>, EngineError>
CacheMind::askBatch(const std::vector<std::string> &questions)
{
    std::vector<RequestContext> requests;
    requests.reserve(questions.size());
    for (const std::string &q : questions)
        requests.emplace_back(q);
    return askBatch(requests);
}

Result<AnswerStream, EngineError>
CacheMind::askStream(const std::string &question)
{
    return askStream(RequestContext(question));
}

Result<AnswerStream, EngineError>
CacheMind::askStream(const std::string &question,
                     const AskOptions &ask_opts)
{
    return askStream(RequestContext(question, ask_opts));
}

Result<AnswerStream, EngineError>
CacheMind::askStream(const RequestContext &ctx)
{
    if (str::trim(ctx.question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    // The pipeline runs as a job on the engine's persistent worker
    // pool — a warm thread parked on a condvar picks it up in the
    // microsecond range, where the former per-call std::thread spawn
    // paid thread-creation cost on every request. Lazy creation keeps
    // blocking-only engines threadless.
    if (!stream_pool_)
        stream_pool_ = std::make_unique<WorkerPool>(opts_.build_threads);
    auto channel =
        std::make_shared<StreamChannel>(opts_.stream_buffer);
    channel->setProducers(1);
    auto ticket = std::make_shared<StreamTicket>();
    // The budget clock starts at submission: queueing behind busy pool
    // workers spends the request's budget, exactly as a serving
    // front-end would account it.
    const Deadline deadline = resolveDeadline(ctx.options.deadline_ms);
    stream_pool_->submit([this, channel, ticket, ctx, deadline] {
        // Warm every shard's postings index in parallel before the
        // pipeline touches its shard, so the first evidence chunk
        // never waits behind a serial lazy index build (no-op once
        // warm). Then run the staged pipeline, pushing an event per
        // stage boundary. The exception barrier hands any pipeline
        // failure (throwing custom retriever, bad_alloc) to the
        // consumer through the channel — escaping the job would take
        // down the pool worker, where blocking ask() propagates.
        try {
            // Failpoint for the pool-task path. WorkerPool jobs may
            // not throw (workerLoop has no catch), so the site lives
            // inside this job's own barrier: an injected fault
            // surfaces to the consumer as a typed channel failure,
            // exactly like a throwing retriever would.
            fail::maybeThrow("core.worker_pool.task");
            warmup();
            Stopwatch timer;
            double blocked_ms = 0.0;
            obs::TraceContext tc{ctx.trace, ctx.trace_parent};
            obs::SpanScope root(tc, "ask");
            const obs::TraceContext rtc = tc.child(root.id());
            std::uint32_t parse_span_id = 0;
            query::ParsedQuery parsed;
            {
                obs::SpanScope parse_span(rtc, "parse");
                parsed = parseStage(ctx.question);
                parse_span_id = parse_span.id();
            }
            Response r = answerParsedStreamed(
                *retriever_, parsed, 0, *channel, &blocked_ms,
                deadline, rtc, parse_span_id);
            root.end();
            finishTrace(ctx.trace, r.bundle.degraded);
            // Serving latency only: consumer pacing (blocked pushes)
            // is not the engine's answering cost.
            stats_->record(std::max(timer.milliseconds() - blocked_ms,
                                    0.0),
                           retrieval::assessQuality(r.bundle));
        } catch (const retrieval::StreamCancelled &) {
            // The consumer went away (AnswerStream::cancel, a dropped
            // serving connection): control flow, not failure. No
            // latency sample — the pipeline was cut short. The trace
            // outcome stays whatever the consumer side decided
            // (deadline_exceeded, cancelled); only fill a default.
            if (ctx.trace && ctx.trace->outcome().empty())
                ctx.trace->setOutcome("cancelled");
            stats_->recordStreamCancelled();
        } catch (...) {
            if (ctx.trace && ctx.trace->outcome().empty())
                ctx.trace->setOutcome("error");
            channel->fail(std::current_exception());
        }
        channel->producerDone();
        // Last action: release anyone waiting on the stream handle.
        ticket->arrive();
    });
    return AnswerStream(std::move(channel), std::move(ticket));
}

Result<std::vector<Response>, EngineError>
CacheMind::askBatchStream(const std::vector<std::string> &questions,
                          const StreamSink &sink)
{
    // Same pre-flight validation as askBatch: the concurrent section
    // stays infallible, so error selection cannot depend on
    // scheduling order.
    for (std::size_t i = 0; i < questions.size(); ++i) {
        if (str::trim(questions[i]).empty()) {
            return EngineError{EngineErrorCode::EmptyQuestion,
                               "batch question #" + std::to_string(i) +
                                   " is empty"};
        }
    }
    warmup();

    std::vector<Response> responses(questions.size());
    std::vector<double> latencies(questions.size(), 0.0);
    const std::size_t workers =
        std::min(std::max<std::size_t>(opts_.batch_workers, 1),
                 std::max<std::size_t>(questions.size(), 1));
    if (workers > 1)
        ensureBatchPool(workers);
    auto &extras = batch_pool_->retrievers;

    // The channel is the MPSC fan-in: every worker produces events,
    // the calling thread is the single consumer, invoking the sink
    // serially between launching the pool and joining it. Events of
    // one question arrive in pipeline order because exactly one
    // worker answers it and push preserves per-producer order.
    StreamChannel channel(opts_.stream_buffer);
    channel.setProducers(workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            retrieval::Retriever &worker_retriever =
                w == 0 ? *retriever_ : *extras[w - 1];
            // Claim loop with a cancellation check: once the consumer
            // cancels (throwing sink) or a sibling worker fails,
            // workers finish only their in-flight question instead of
            // answering the rest of the batch nobody will read. The
            // exception barrier mirrors askStream's: a throwing
            // pipeline fails the channel (rethrown by the caller
            // after the join) rather than std::terminate-ing.
            try {
                while (!channel.cancelled() && !channel.error()) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= questions.size())
                        break;
                    Stopwatch timer;
                    double blocked_ms = 0.0;
                    responses[i] = answerParsedStreamed(
                        worker_retriever, parseStage(questions[i]), i,
                        channel, &blocked_ms, resolveDeadline(0.0));
                    // Serving latency only (see askStream).
                    latencies[i] = std::max(
                        timer.milliseconds() - blocked_ms, 0.0);
                }
            } catch (const retrieval::StreamCancelled &) {
                // Consumer-side cancel (throwing sink) tripped the
                // cooperative token mid-question: quiet retirement,
                // not a pipeline failure — failing the channel here
                // would masquerade as an engine error after the join.
                stats_->recordStreamCancelled();
            } catch (...) {
                channel.fail(std::current_exception());
            }
            channel.producerDone();
        });
    }

    // Drain until the last producer closes the channel. A throwing
    // sink cancels the stream (workers finish their in-flight
    // question — pushes now drop, claims stop) and rethrows after
    // the pool is joined.
    try {
        while (auto event = channel.pop())
            sink(*event);
    } catch (...) {
        channel.cancel();
        for (auto &t : pool)
            t.join();
        throw;
    }
    for (auto &t : pool)
        t.join();
    // A worker's pipeline failure surfaces here, after the pool is
    // quiesced — the caller sees the same exception a blocking
    // askBatch of these questions would have thrown.
    if (auto error = channel.error())
        std::rethrow_exception(error);

    for (std::size_t i = 0; i < questions.size(); ++i) {
        stats_->record(latencies[i],
                       retrieval::assessQuality(responses[i].bundle));
    }
    stats_->recordBatch();
    return responses;
}

ChatSession::ChatSession(CacheMind &engine, llm::MemoryConfig memory_cfg)
    : engine_(engine), memory_(memory_cfg)
{
}

query::ParsedQuery
ChatSession::augmentParsed(query::ParsedQuery parsed,
                           const std::vector<std::string> &recalled)
    const
{
    // Concept/code questions are retrieval-light; pinning a workload
    // from memory onto them would change what they are asking.
    if (parsed.intent == query::QueryIntent::Concept ||
        parsed.intent == query::QueryIntent::CodeGen) {
        return parsed;
    }
    if (parsed.hasWorkload() && parsed.hasPolicy())
        return parsed;

    if (recalled.empty())
        return parsed;
    std::string recalled_text;
    for (const auto &fact : recalled)
        recalled_text += fact + "\n";
    const auto mem = engine_.parser().parse(recalled_text);

    // Fill the missing slots directly (no re-parse of an augmented
    // string); `raw` is annotated the same way, so transcripts and
    // the generator's question key see what retrieval saw.
    if (!parsed.hasWorkload() && mem.hasWorkload()) {
        parsed.workloads.push_back(mem.workload());
        parsed.raw += " (in the " + mem.workload() + " workload)";
    }
    // A comparison question deliberately names no single policy; do
    // not pin one onto it from memory.
    if (!parsed.hasPolicy() && mem.hasPolicy() &&
        parsed.intent != query::QueryIntent::PolicyComparison) {
        parsed.policies.push_back(mem.policy());
        parsed.raw += " (under " + mem.policy() + ")";
    }
    return parsed;
}

Result<Response, EngineError>
ChatSession::ask(const std::string &question)
{
    // Reject blank input before augmentation: memory hints could turn
    // it into a fabricated non-empty query the engine would answer.
    if (str::trim(question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    // Conversation memory augments the query *before* retrieval:
    // noted facts from earlier turns fill slots the follow-up leaves
    // unspecified, so retrieval sees the sharpened query. The
    // question is parsed exactly once — the augmented ParsedQuery
    // enters the engine's staged pipeline directly instead of being
    // rendered back to text and parsed a second time.
    const auto recalled = memory_.recall(question);
    const auto parsed = augmentParsed(
        engine_.parser().parse(question), recalled);
    auto result = engine_.askParsed(parsed);
    if (!result.ok())
        return result;
    Response r = std::move(result).value();
    // Prepend recalled memory to the rendered context so transcripts
    // show the carried state.
    const std::string memory_block = memory_.renderContext(recalled);
    if (!memory_block.empty())
        r.bundle.result_text = memory_block + r.bundle.result_text;
    memory_.addTurn(question, r.text);
    turns_.push_back(llm::Turn{question, r.text});
    return r;
}

std::string
ChatSession::transcript() const
{
    std::ostringstream os;
    for (const auto &t : turns_) {
        os << "User: " << t.user << "\n";
        os << "Assistant: " << t.assistant << "\n\n";
    }
    return os.str();
}

} // namespace cachemind::core
