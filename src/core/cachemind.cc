#include "core/cachemind.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/parallel.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"
#include "llm/registry.hh"
#include "retrieval/registry.hh"

namespace cachemind::core {

const char *
engineErrorCodeName(EngineErrorCode code)
{
    switch (code) {
      case EngineErrorCode::UnknownRetriever: return "unknown-retriever";
      case EngineErrorCode::UnknownBackend: return "unknown-backend";
      case EngineErrorCode::InvalidOptions: return "invalid-options";
      case EngineErrorCode::EmptyQuestion: return "empty-question";
    }
    return "?";
}

std::string
errorMessage(const EngineError &error)
{
    return std::string(engineErrorCodeName(error.code)) + ": " +
           error.message;
}

Result<CacheMind, EngineError>
CacheMind::create(const db::TraceDatabase &db, EngineOptions opts)
{
    opts.retriever = str::toLower(str::trim(opts.retriever));
    opts.backend = str::toLower(str::trim(opts.backend));
    if (opts.batch_workers == 0) {
        return EngineError{EngineErrorCode::InvalidOptions,
                           "batch_workers must be >= 1"};
    }

    // One shard view, derived once, shared by the primary retriever
    // and every batch worker built later.
    db::ShardSet shards = db.shards();

    auto &retrievers = retrieval::RetrieverRegistry::instance();
    const retrieval::RetrieverOptions retriever_opts{
        opts.retriever_params};
    auto retriever =
        retrievers.create(opts.retriever, shards, retriever_opts);
    if (!retriever) {
        return EngineError{
            EngineErrorCode::UnknownRetriever,
            "no retriever registered as '" + opts.retriever +
                "' (registered: " +
                str::join(retrievers.names(), ", ") + ")"};
    }

    auto &backends = llm::BackendRegistry::instance();
    auto generator = backends.create(opts.backend);
    if (!generator) {
        return EngineError{
            EngineErrorCode::UnknownBackend,
            "no backend registered as '" + opts.backend +
                "' (registered: " +
                str::join(backends.names(), ", ") + ")"};
    }

    return CacheMind(db, std::move(shards), std::move(opts),
                     std::move(retriever), std::move(generator));
}

/**
 * Extra worker retrievers for askBatch (the engine's primary
 * retriever serves worker 0), built on first use and reused across
 * batches: rebuilding, say, a LlamaIndex embedding index per batch
 * would dwarf the answering work. The mutex guards pool growth; it
 * is not a concurrency contract for the engine itself (see the
 * header: an engine instance is single-caller).
 */
struct CacheMind::BatchPool
{
    std::mutex mu;
    std::vector<std::unique_ptr<retrieval::Retriever>> retrievers;
};

CacheMind::CacheMind(const db::TraceDatabase &db, db::ShardSet shards,
                     EngineOptions opts,
                     std::unique_ptr<retrieval::Retriever> retriever,
                     std::unique_ptr<llm::GeneratorLlm> generator)
    : db_(db), shards_(std::move(shards)), opts_(std::move(opts)),
      retriever_(std::move(retriever)), generator_(std::move(generator)),
      parser_(std::make_unique<query::NlQueryParser>(
          shards_.workloads(), shards_.policies())),
      cache_(opts_.shared_retrieval_cache
                 ? opts_.shared_retrieval_cache
                 : (opts_.retrieval_cache_capacity
                        ? std::make_shared<retrieval::RetrievalCache>(
                              opts_.retrieval_cache_capacity)
                        : nullptr)),
      stats_(std::make_unique<EngineStatsRecorder>()),
      batch_pool_(std::make_unique<BatchPool>())
{
}

CacheMind::CacheMind(CacheMind &&) noexcept = default;

CacheMind::~CacheMind() = default;

query::ParsedQuery
CacheMind::parseStage(const std::string &question) const
{
    return parser_->parse(question);
}

std::string
CacheMind::planStage(const retrieval::Retriever &retriever,
                     const query::ParsedQuery &parsed) const
{
    if (!cache_)
        return std::string();
    const std::string slot_key = retriever.cacheKey(parsed);
    if (slot_key.empty())
        return std::string(); // retriever opted this query out
    // '\x1f' (unit separator) never appears in a fingerprint, so the
    // first one always delimits it — the components cannot
    // ambiguously concatenate even when a slot key embeds raw text.
    return retriever.cacheFingerprint() + '\x1f' + slot_key;
}

std::shared_ptr<const retrieval::ContextBundle>
CacheMind::retrieveStage(retrieval::Retriever &retriever,
                         const query::ParsedQuery &parsed,
                         const std::string &cache_key) const
{
    if (cache_key.empty()) {
        return std::make_shared<const retrieval::ContextBundle>(
            retriever.retrieveParsed(parsed));
    }
    retrieval::RetrievalCache::Outcome outcome;
    auto evidence = cache_->getOrCompute(
        cache_key,
        [&] {
            return std::make_shared<const retrieval::ContextBundle>(
                retriever.retrieveParsed(parsed));
        },
        &outcome);
    stats_->recordCacheLookup(retriever.name(), outcome.hit,
                              outcome.evictions);
    return evidence;
}

Response
CacheMind::generateStage(
    const query::ParsedQuery &parsed,
    const std::shared_ptr<const retrieval::ContextBundle> &evidence,
    double retrieval_ms) const
{
    Response r;
    r.bundle = *evidence;
    // The cached evidence may have been assembled for a different
    // phrasing of the same slots; the response carries *this*
    // question's parsed identity so generation (keyed by the raw
    // text) and transcripts stay byte-identical to a cache-off run.
    // Likewise the latency is *this* question's retrieve-stage cost —
    // near zero on a cache hit — not the computing question's.
    r.bundle.parsed = parsed;
    r.bundle.retrieval_ms = retrieval_ms;
    llm::GenerationOptions gen_opts;
    gen_opts.shot_mode = opts_.shot_mode;
    r.answer = generator_->answer(r.bundle, gen_opts);
    r.text = r.answer.text;
    return r;
}

Response
CacheMind::answerParsed(retrieval::Retriever &retriever,
                        const query::ParsedQuery &parsed) const
{
    const std::string cache_key = planStage(retriever, parsed);
    Stopwatch retrieve_timer;
    const auto evidence = retrieveStage(retriever, parsed, cache_key);
    return generateStage(parsed, evidence,
                         retrieve_timer.milliseconds());
}

Result<Response, EngineError>
CacheMind::ask(const std::string &question)
{
    if (str::trim(question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    Stopwatch timer;
    Response r = answerParsed(*retriever_, parseStage(question));
    stats_->record(timer.milliseconds(),
                   retrieval::assessQuality(r.bundle));
    return r;
}

Result<Response, EngineError>
CacheMind::askParsed(const query::ParsedQuery &parsed)
{
    if (str::trim(parsed.raw).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    Stopwatch timer;
    Response r = answerParsed(*retriever_, parsed);
    stats_->record(timer.milliseconds(),
                   retrieval::assessQuality(r.bundle));
    return r;
}

Result<std::vector<Response>, EngineError>
CacheMind::askBatch(const std::vector<std::string> &questions)
{
    // Pre-flight validation keeps the concurrent section infallible,
    // so error selection cannot depend on scheduling order.
    for (std::size_t i = 0; i < questions.size(); ++i) {
        if (str::trim(questions[i]).empty()) {
            return EngineError{EngineErrorCode::EmptyQuestion,
                               "batch question #" + std::to_string(i) +
                                   " is empty"};
        }
    }

    std::vector<Response> responses(questions.size());
    std::vector<double> latencies(questions.size(), 0.0);
    const std::size_t workers =
        std::min(std::max<std::size_t>(opts_.batch_workers, 1),
                 std::max<std::size_t>(questions.size(), 1));

    if (workers <= 1) {
        for (std::size_t i = 0; i < questions.size(); ++i) {
            Stopwatch timer;
            responses[i] =
                answerParsed(*retriever_, parseStage(questions[i]));
            latencies[i] = timer.milliseconds();
        }
    } else {
        // One retriever per worker: retrievers are not required to be
        // thread-safe, and every retrieval/generation draw is keyed
        // by the question text alone, so the answers are
        // byte-identical to a sequential ask() loop regardless of how
        // questions land on workers. The cross-question cache is
        // shared by all workers (identically configured retrievers
        // assemble identical bundles for equal keys, so which worker
        // populates an entry cannot change any answer), and a hot
        // slot key retrieves once: concurrent misses coalesce onto
        // the first in-flight retrieval. Worker 0 reuses the engine's
        // primary retriever; the extra workers draw on the lazily
        // built, batch-to-batch reusable pool.
        auto &extras = batch_pool_->retrievers;
        {
            std::lock_guard<std::mutex> pool_lock(batch_pool_->mu);
            if (extras.size() < workers - 1) {
                // Construct the missing workers concurrently on the
                // build_threads pool: per-worker construction can be
                // heavy (LlamaIndex re-embeds its whole index), and
                // each factory call is independent over the shared
                // read-only shard view.
                const std::size_t need = workers - 1 - extras.size();
                const std::size_t ctor_threads =
                    opts_.build_threads
                        ? opts_.build_threads
                        : std::max<std::size_t>(
                              std::thread::hardware_concurrency(), 1);
                const retrieval::RetrieverOptions retriever_opts{
                    opts_.retriever_params};
                std::vector<std::unique_ptr<retrieval::Retriever>>
                    fresh(need);
                parallelFor(need, ctor_threads, [&](std::size_t i) {
                    fresh[i] =
                        retrieval::RetrieverRegistry::instance().create(
                            opts_.retriever, shards_, retriever_opts);
                });
                for (auto &r : fresh) {
                    CM_ASSERT(r != nullptr,
                              "retriever vanished from registry: ",
                              opts_.retriever);
                    extras.push_back(std::move(r));
                }
            }
        }

        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                retrieval::Retriever &worker_retriever =
                    w == 0 ? *retriever_ : *extras[w - 1];
                while (true) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= questions.size())
                        break;
                    Stopwatch timer;
                    responses[i] = answerParsed(
                        worker_retriever, parseStage(questions[i]));
                    latencies[i] = timer.milliseconds();
                }
            });
        }
        for (auto &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < questions.size(); ++i) {
        stats_->record(latencies[i],
                       retrieval::assessQuality(responses[i].bundle));
    }
    stats_->recordBatch();
    return responses;
}

ChatSession::ChatSession(CacheMind &engine, llm::MemoryConfig memory_cfg)
    : engine_(engine), memory_(memory_cfg)
{
}

query::ParsedQuery
ChatSession::augmentParsed(query::ParsedQuery parsed,
                           const std::vector<std::string> &recalled)
    const
{
    // Concept/code questions are retrieval-light; pinning a workload
    // from memory onto them would change what they are asking.
    if (parsed.intent == query::QueryIntent::Concept ||
        parsed.intent == query::QueryIntent::CodeGen) {
        return parsed;
    }
    if (parsed.hasWorkload() && parsed.hasPolicy())
        return parsed;

    if (recalled.empty())
        return parsed;
    std::string recalled_text;
    for (const auto &fact : recalled)
        recalled_text += fact + "\n";
    const auto mem = engine_.parser().parse(recalled_text);

    // Fill the missing slots directly (no re-parse of an augmented
    // string); `raw` is annotated the same way, so transcripts and
    // the generator's question key see what retrieval saw.
    if (!parsed.hasWorkload() && mem.hasWorkload()) {
        parsed.workloads.push_back(mem.workload());
        parsed.raw += " (in the " + mem.workload() + " workload)";
    }
    // A comparison question deliberately names no single policy; do
    // not pin one onto it from memory.
    if (!parsed.hasPolicy() && mem.hasPolicy() &&
        parsed.intent != query::QueryIntent::PolicyComparison) {
        parsed.policies.push_back(mem.policy());
        parsed.raw += " (under " + mem.policy() + ")";
    }
    return parsed;
}

Result<Response, EngineError>
ChatSession::ask(const std::string &question)
{
    // Reject blank input before augmentation: memory hints could turn
    // it into a fabricated non-empty query the engine would answer.
    if (str::trim(question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    // Conversation memory augments the query *before* retrieval:
    // noted facts from earlier turns fill slots the follow-up leaves
    // unspecified, so retrieval sees the sharpened query. The
    // question is parsed exactly once — the augmented ParsedQuery
    // enters the engine's staged pipeline directly instead of being
    // rendered back to text and parsed a second time.
    const auto recalled = memory_.recall(question);
    const auto parsed = augmentParsed(
        engine_.parser().parse(question), recalled);
    auto result = engine_.askParsed(parsed);
    if (!result.ok())
        return result;
    Response r = std::move(result).value();
    // Prepend recalled memory to the rendered context so transcripts
    // show the carried state.
    const std::string memory_block = memory_.renderContext(recalled);
    if (!memory_block.empty())
        r.bundle.result_text = memory_block + r.bundle.result_text;
    memory_.addTurn(question, r.text);
    turns_.push_back(llm::Turn{question, r.text});
    return r;
}

std::string
ChatSession::transcript() const
{
    std::ostringstream os;
    for (const auto &t : turns_) {
        os << "User: " << t.user << "\n";
        os << "Assistant: " << t.assistant << "\n\n";
    }
    return os.str();
}

} // namespace cachemind::core
