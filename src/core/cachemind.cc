#include "core/cachemind.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/parallel.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"
#include "llm/registry.hh"
#include "retrieval/registry.hh"

namespace cachemind::core {

const char *
engineErrorCodeName(EngineErrorCode code)
{
    switch (code) {
      case EngineErrorCode::UnknownRetriever: return "unknown-retriever";
      case EngineErrorCode::UnknownBackend: return "unknown-backend";
      case EngineErrorCode::InvalidOptions: return "invalid-options";
      case EngineErrorCode::EmptyQuestion: return "empty-question";
    }
    return "?";
}

std::string
errorMessage(const EngineError &error)
{
    return std::string(engineErrorCodeName(error.code)) + ": " +
           error.message;
}

Result<CacheMind, EngineError>
CacheMind::create(const db::TraceDatabase &db, EngineOptions opts)
{
    opts.retriever = str::toLower(str::trim(opts.retriever));
    opts.backend = str::toLower(str::trim(opts.backend));
    if (opts.batch_workers == 0) {
        return EngineError{EngineErrorCode::InvalidOptions,
                           "batch_workers must be >= 1"};
    }

    // One shard view, derived once, shared by the primary retriever
    // and every batch worker built later.
    db::ShardSet shards = db.shards();

    auto &retrievers = retrieval::RetrieverRegistry::instance();
    auto retriever = retrievers.create(opts.retriever, shards);
    if (!retriever) {
        return EngineError{
            EngineErrorCode::UnknownRetriever,
            "no retriever registered as '" + opts.retriever +
                "' (registered: " +
                str::join(retrievers.names(), ", ") + ")"};
    }

    auto &backends = llm::BackendRegistry::instance();
    auto generator = backends.create(opts.backend);
    if (!generator) {
        return EngineError{
            EngineErrorCode::UnknownBackend,
            "no backend registered as '" + opts.backend +
                "' (registered: " +
                str::join(backends.names(), ", ") + ")"};
    }

    return CacheMind(db, std::move(shards), std::move(opts),
                     std::move(retriever), std::move(generator));
}

/**
 * Extra worker retrievers for askBatch (the engine's primary
 * retriever serves worker 0), built on first use and reused across
 * batches: rebuilding, say, a LlamaIndex embedding index per batch
 * would dwarf the answering work. The mutex guards pool growth; it
 * is not a concurrency contract for the engine itself (see the
 * header: an engine instance is single-caller).
 */
struct CacheMind::BatchPool
{
    std::mutex mu;
    std::vector<std::unique_ptr<retrieval::Retriever>> retrievers;
};

CacheMind::CacheMind(const db::TraceDatabase &db, db::ShardSet shards,
                     EngineOptions opts,
                     std::unique_ptr<retrieval::Retriever> retriever,
                     std::unique_ptr<llm::GeneratorLlm> generator)
    : db_(db), shards_(std::move(shards)), opts_(std::move(opts)),
      retriever_(std::move(retriever)), generator_(std::move(generator)),
      stats_(std::make_unique<EngineStatsRecorder>()),
      batch_pool_(std::make_unique<BatchPool>())
{
}

CacheMind::CacheMind(CacheMind &&) noexcept = default;

CacheMind::~CacheMind() = default;

Response
CacheMind::answerOne(retrieval::Retriever &retriever,
                     const std::string &question) const
{
    Response r;
    r.bundle = retriever.retrieve(question);
    llm::GenerationOptions gen_opts;
    gen_opts.shot_mode = opts_.shot_mode;
    r.answer = generator_->answer(r.bundle, gen_opts);
    r.text = r.answer.text;
    return r;
}

Result<Response, EngineError>
CacheMind::ask(const std::string &question)
{
    if (str::trim(question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    Stopwatch timer;
    Response r = answerOne(*retriever_, question);
    stats_->record(timer.milliseconds(),
                   retrieval::assessQuality(r.bundle));
    return r;
}

Result<std::vector<Response>, EngineError>
CacheMind::askBatch(const std::vector<std::string> &questions)
{
    // Pre-flight validation keeps the concurrent section infallible,
    // so error selection cannot depend on scheduling order.
    for (std::size_t i = 0; i < questions.size(); ++i) {
        if (str::trim(questions[i]).empty()) {
            return EngineError{EngineErrorCode::EmptyQuestion,
                               "batch question #" + std::to_string(i) +
                                   " is empty"};
        }
    }

    std::vector<Response> responses(questions.size());
    std::vector<double> latencies(questions.size(), 0.0);
    const std::size_t workers =
        std::min(std::max<std::size_t>(opts_.batch_workers, 1),
                 std::max<std::size_t>(questions.size(), 1));

    if (workers <= 1) {
        for (std::size_t i = 0; i < questions.size(); ++i) {
            Stopwatch timer;
            responses[i] = answerOne(*retriever_, questions[i]);
            latencies[i] = timer.milliseconds();
        }
    } else {
        // One retriever per worker: retrievers are not required to be
        // thread-safe, and every retrieval/generation draw is keyed
        // by the question text alone, so the answers are
        // byte-identical to a sequential ask() loop regardless of how
        // questions land on workers. Worker 0 reuses the engine's
        // primary retriever; the extra workers draw on the lazily
        // built, batch-to-batch reusable pool.
        auto &extras = batch_pool_->retrievers;
        {
            std::lock_guard<std::mutex> pool_lock(batch_pool_->mu);
            if (extras.size() < workers - 1) {
                // Construct the missing workers concurrently on the
                // build_threads pool: per-worker construction can be
                // heavy (LlamaIndex re-embeds its whole index), and
                // each factory call is independent over the shared
                // read-only shard view.
                const std::size_t need = workers - 1 - extras.size();
                const std::size_t ctor_threads =
                    opts_.build_threads
                        ? opts_.build_threads
                        : std::max<std::size_t>(
                              std::thread::hardware_concurrency(), 1);
                std::vector<std::unique_ptr<retrieval::Retriever>>
                    fresh(need);
                parallelFor(need, ctor_threads, [&](std::size_t i) {
                    fresh[i] =
                        retrieval::RetrieverRegistry::instance().create(
                            opts_.retriever, shards_);
                });
                for (auto &r : fresh) {
                    CM_ASSERT(r != nullptr,
                              "retriever vanished from registry: ",
                              opts_.retriever);
                    extras.push_back(std::move(r));
                }
            }
        }

        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                retrieval::Retriever &worker_retriever =
                    w == 0 ? *retriever_ : *extras[w - 1];
                while (true) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= questions.size())
                        break;
                    Stopwatch timer;
                    responses[i] =
                        answerOne(worker_retriever, questions[i]);
                    latencies[i] = timer.milliseconds();
                }
            });
        }
        for (auto &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < questions.size(); ++i) {
        stats_->record(latencies[i],
                       retrieval::assessQuality(responses[i].bundle));
    }
    stats_->recordBatch();
    return responses;
}

ChatSession::ChatSession(CacheMind &engine, llm::MemoryConfig memory_cfg)
    : engine_(engine),
      parser_(engine.database().workloads(),
              engine.database().policies()),
      memory_(memory_cfg)
{
}

std::string
ChatSession::augmentQuery(const std::string &question,
                          const std::vector<std::string> &recalled) const
{
    const auto slots = parser_.parse(question);
    // Concept/code questions are retrieval-light; pinning a workload
    // from memory onto them would change what they are asking.
    if (slots.intent == query::QueryIntent::Concept ||
        slots.intent == query::QueryIntent::CodeGen) {
        return question;
    }
    if (slots.hasWorkload() && slots.hasPolicy())
        return question;

    if (recalled.empty())
        return question;
    std::string recalled_text;
    for (const auto &fact : recalled)
        recalled_text += fact + "\n";
    const auto mem = parser_.parse(recalled_text);

    std::string augmented = question;
    if (!slots.hasWorkload() && mem.hasWorkload())
        augmented += " (in the " + mem.workload() + " workload)";
    // A comparison question deliberately names no single policy; do
    // not pin one onto it from memory.
    if (!slots.hasPolicy() && mem.hasPolicy() &&
        slots.intent != query::QueryIntent::PolicyComparison) {
        augmented += " (under " + mem.policy() + ")";
    }
    return augmented;
}

Result<Response, EngineError>
ChatSession::ask(const std::string &question)
{
    // Reject blank input before augmentation: memory hints could turn
    // it into a fabricated non-empty query the engine would answer.
    if (str::trim(question).empty()) {
        return EngineError{EngineErrorCode::EmptyQuestion,
                           "question is empty"};
    }
    // Conversation memory augments the query *before* retrieval:
    // noted facts from earlier turns fill slots the follow-up leaves
    // unspecified, so retrieval sees the sharpened query.
    const auto recalled = memory_.recall(question);
    auto result = engine_.ask(augmentQuery(question, recalled));
    if (!result.ok())
        return result;
    Response r = std::move(result).value();
    // Prepend recalled memory to the rendered context so transcripts
    // show the carried state.
    const std::string memory_block = memory_.renderContext(recalled);
    if (!memory_block.empty())
        r.bundle.result_text = memory_block + r.bundle.result_text;
    memory_.addTurn(question, r.text);
    turns_.push_back(llm::Turn{question, r.text});
    return r;
}

std::string
ChatSession::transcript() const
{
    std::ostringstream os;
    for (const auto &t : turns_) {
        os << "User: " << t.user << "\n";
        os << "Assistant: " << t.assistant << "\n\n";
    }
    return os.str();
}

} // namespace cachemind::core
