#include "core/cachemind.hh"

#include <sstream>

#include "base/logging.hh"
#include "retrieval/llamaindex.hh"
#include "retrieval/ranger.hh"
#include "retrieval/sieve.hh"

namespace cachemind::core {

const char *
retrieverKindName(RetrieverKind kind)
{
    switch (kind) {
      case RetrieverKind::Sieve: return "sieve";
      case RetrieverKind::Ranger: return "ranger";
      case RetrieverKind::LlamaIndex: return "llamaindex";
    }
    return "?";
}

CacheMind::CacheMind(const db::TraceDatabase &db, CacheMindConfig cfg)
    : db_(db), cfg_(cfg)
{
    switch (cfg_.retriever) {
      case RetrieverKind::Sieve:
        retriever_ = std::make_unique<retrieval::SieveRetriever>(db_);
        break;
      case RetrieverKind::Ranger:
        retriever_ = std::make_unique<retrieval::RangerRetriever>(db_);
        break;
      case RetrieverKind::LlamaIndex:
        retriever_ =
            std::make_unique<retrieval::LlamaIndexRetriever>(db_);
        break;
    }
    generator_ = std::make_unique<llm::GeneratorLlm>(cfg_.backend);
}

CacheMind::~CacheMind() = default;

Response
CacheMind::ask(const std::string &question)
{
    Response r;
    r.bundle = retriever_->retrieve(question);
    llm::GenerationOptions opts;
    opts.shot_mode = cfg_.shot_mode;
    r.answer = generator_->answer(r.bundle, opts);
    r.text = r.answer.text;
    return r;
}

ChatSession::ChatSession(CacheMind &engine, llm::MemoryConfig memory_cfg)
    : engine_(engine), memory_(memory_cfg)
{
}

Response
ChatSession::ask(const std::string &question)
{
    // Conversation memory augments the query before retrieval: noted
    // facts from earlier turns sharpen under-specified follow-ups.
    Response r = engine_.ask(question);
    // Prepend recalled memory to the rendered context so transcripts
    // show the carried state.
    const std::string memory_block = memory_.renderContext(question);
    if (!memory_block.empty())
        r.bundle.result_text = memory_block + r.bundle.result_text;
    memory_.addTurn(question, r.text);
    turns_.push_back(llm::Turn{question, r.text});
    return r;
}

std::string
ChatSession::transcript() const
{
    std::ostringstream os;
    for (const auto &t : turns_) {
        os << "User: " << t.user << "\n";
        os << "Assistant: " << t.assistant << "\n\n";
    }
    return os.str();
}

} // namespace cachemind::core
