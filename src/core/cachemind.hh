/**
 * @file
 * The CacheMind engine: the public v2 facade wiring a trace database,
 * a registry-constructed retriever, and a registry-constructed
 * generator backend into ask()/askBatch() calls, plus a ChatSession
 * that layers conversation memory on top (the assistive chat tool of
 * the paper's use-case transcripts).
 *
 * Components are referenced by registry name (see
 * retrieval::RetrieverRegistry and llm::BackendRegistry): new
 * retrievers and backends self-register from their own translation
 * units, so this facade never changes when one is added.
 * Misconfiguration surfaces as typed Result errors instead of silent
 * defaults, and independent questions can be answered concurrently
 * through a small worker pool with deterministic answers and stable
 * output ordering.
 */

#ifndef CACHEMIND_CORE_CACHEMIND_HH
#define CACHEMIND_CORE_CACHEMIND_HH

#include <memory>
#include <string>
#include <vector>

#include "base/result.hh"
#include "core/engine_stats.hh"
#include "db/database.hh"
#include "llm/generator.hh"
#include "llm/memory.hh"
#include "query/parser.hh"
#include "retrieval/context.hh"

namespace cachemind::core {

/** Engine configuration: components by registry name. */
struct EngineOptions
{
    /** Retriever registry key ("sieve", "ranger", "llamaindex", ...). */
    std::string retriever = "sieve";
    /** Backend registry key ("gpt-4o", "o3", ...). */
    std::string backend = "gpt-4o";
    /** Prompting mode passed to the generator. */
    llm::ShotMode shot_mode = llm::ShotMode::ZeroShot;
    /** Worker threads used by askBatch (>= 1). */
    std::size_t batch_workers = 4;
    /**
     * Threads used when the engine constructs components — today the
     * per-worker retriever pool built on first askBatch, where e.g.
     * LlamaIndex re-embeds its whole index per worker. Same sentinel
     * as db::BuildOptions::build_threads: 0 = one thread per hardware
     * core (always clamped to the work available).
     */
    std::size_t build_threads = 0;
};

/** What went wrong, as a branchable code plus a rendered message. */
enum class EngineErrorCode {
    UnknownRetriever,
    UnknownBackend,
    InvalidOptions,
    EmptyQuestion,
};

const char *engineErrorCodeName(EngineErrorCode code);

struct EngineError
{
    EngineErrorCode code = EngineErrorCode::InvalidOptions;
    std::string message;
};

/** Render an EngineError for logs (also used by Result::expect). */
std::string errorMessage(const EngineError &error);

/** One complete question/answer exchange. */
struct Response
{
    /** Final natural-language answer. */
    std::string text;
    /** The evidence bundle behind the answer. */
    retrieval::ContextBundle bundle;
    /** Structured answer (graders, chat tooling). */
    llm::Answer answer;
};

/**
 * The engine. The database must outlive the engine.
 *
 * Concurrency contract: askBatch fans out internally, and stats()
 * snapshots are safe from any thread, but an engine instance expects
 * one caller at a time for ask()/askBatch() — callers wanting
 * parallel serving run one engine per thread (engines are cheap; the
 * database is shared and read-only).
 */
class CacheMind
{
  public:
    class Builder;

    /**
     * Construct an engine from options; typed errors for unknown
     * component names or invalid settings.
     */
    static Result<CacheMind, EngineError>
    create(const db::TraceDatabase &db,
           EngineOptions opts = EngineOptions{});

    // Moves and the destructor are defined out of line where
    // BatchPool is a complete type.
    CacheMind(CacheMind &&) noexcept;
    ~CacheMind();
    CacheMind(const CacheMind &) = delete;
    CacheMind &operator=(const CacheMind &) = delete;

    /** Answer one natural-language question, trace-grounded. */
    Result<Response, EngineError> ask(const std::string &question);

    /**
     * Answer independent questions concurrently on the engine's
     * worker pool. Answers are deterministic — byte-identical to a
     * sequential ask() loop — and results preserve question order.
     * Each worker gets its own registry-constructed retriever, and
     * every generator draw is keyed by the question text alone, so
     * scheduling order cannot leak into any answer.
     */
    Result<std::vector<Response>, EngineError>
    askBatch(const std::vector<std::string> &questions);

    /** Aggregate serving statistics (thread-safe snapshot). */
    EngineStats stats() const { return stats_->snapshot(); }

    retrieval::Retriever &retriever() { return *retriever_; }
    const llm::GeneratorLlm &generator() const { return *generator_; }
    const EngineOptions &options() const { return opts_; }
    const db::TraceDatabase &database() const { return db_; }
    /** The shard view the engine's retrievers serve from. */
    const db::ShardSet &shards() const { return shards_; }

  private:
    CacheMind(const db::TraceDatabase &db, db::ShardSet shards,
              EngineOptions opts,
              std::unique_ptr<retrieval::Retriever> retriever,
              std::unique_ptr<llm::GeneratorLlm> generator);

    /** Retrieve + generate for one question (no stats side effects). */
    Response answerOne(retrieval::Retriever &retriever,
                       const std::string &question) const;

    struct BatchPool;

    const db::TraceDatabase &db_;
    /** Immutable shard view handed to every registry-built retriever. */
    db::ShardSet shards_;
    EngineOptions opts_;
    std::unique_ptr<retrieval::Retriever> retriever_;
    std::unique_ptr<llm::GeneratorLlm> generator_;
    std::unique_ptr<EngineStatsRecorder> stats_;
    /** Lazily-built per-worker retrievers, reused across batches. */
    std::unique_ptr<BatchPool> batch_pool_;
};

/**
 * Fluent construction:
 *
 *   auto engine = core::CacheMind::Builder(db)
 *                     .withRetriever("sieve")
 *                     .withBackend("gpt-4o")
 *                     .withShotMode(llm::ShotMode::ZeroShot)
 *                     .build()           // Result<CacheMind, ...>
 *                     .expect("engine");
 */
class CacheMind::Builder
{
  public:
    explicit Builder(const db::TraceDatabase &db) : db_(db) {}

    Builder &
    withRetriever(std::string name)
    {
        opts_.retriever = std::move(name);
        return *this;
    }

    Builder &
    withBackend(std::string name)
    {
        opts_.backend = std::move(name);
        return *this;
    }

    Builder &
    withShotMode(llm::ShotMode mode)
    {
        opts_.shot_mode = mode;
        return *this;
    }

    Builder &
    withBatchWorkers(std::size_t workers)
    {
        opts_.batch_workers = workers;
        return *this;
    }

    Builder &
    withBuildThreads(std::size_t threads)
    {
        opts_.build_threads = threads;
        return *this;
    }

    Result<CacheMind, EngineError>
    build() const
    {
        return CacheMind::create(db_, opts_);
    }

  private:
    const db::TraceDatabase &db_;
    EngineOptions opts_;
};

/** Multi-turn session with conversation memory. */
class ChatSession
{
  public:
    explicit ChatSession(CacheMind &engine,
                         llm::MemoryConfig memory_cfg =
                             llm::MemoryConfig{});

    /** Ask with conversation context; records the turn. */
    Result<Response, EngineError> ask(const std::string &question);

    const llm::ConversationMemory &memory() const { return memory_; }

    /** Full transcript rendered as a demo chat (Figures 10-13). */
    std::string transcript() const;

  private:
    /**
     * Fill slots the question leaves unspecified (workload/policy)
     * from the recalled conversation facts, so retrieval sees the
     * sharpened query. Explicit slots in the question always win.
     */
    std::string
    augmentQuery(const std::string &question,
                 const std::vector<std::string> &recalled) const;

    CacheMind &engine_;
    query::NlQueryParser parser_;
    llm::ConversationMemory memory_;
    std::vector<llm::Turn> turns_;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_CACHEMIND_HH
