/**
 * @file
 * The CacheMind engine: the public facade wiring a trace database, a
 * retriever (Sieve, Ranger, or the LlamaIndex baseline), and a
 * generator backend into a single ask() call, plus a ChatSession that
 * layers conversation memory on top (the assistive chat tool of the
 * paper's use-case transcripts).
 */

#ifndef CACHEMIND_CORE_CACHEMIND_HH
#define CACHEMIND_CORE_CACHEMIND_HH

#include <memory>

#include "db/database.hh"
#include "llm/generator.hh"
#include "llm/memory.hh"
#include "retrieval/context.hh"

namespace cachemind::core {

/** Which retriever the engine uses. */
enum class RetrieverKind { Sieve, Ranger, LlamaIndex };

const char *retrieverKindName(RetrieverKind kind);

/** Engine configuration. */
struct CacheMindConfig
{
    llm::BackendKind backend = llm::BackendKind::Gpt4o;
    RetrieverKind retriever = RetrieverKind::Sieve;
    llm::ShotMode shot_mode = llm::ShotMode::ZeroShot;
};

/** One complete question/answer exchange. */
struct Response
{
    /** Final natural-language answer. */
    std::string text;
    /** The evidence bundle behind the answer. */
    retrieval::ContextBundle bundle;
    /** Structured answer (graders, chat tooling). */
    llm::Answer answer;
};

/** The engine. The database must outlive the engine. */
class CacheMind
{
  public:
    explicit CacheMind(const db::TraceDatabase &db,
                       CacheMindConfig cfg = CacheMindConfig{});
    ~CacheMind();

    CacheMind(const CacheMind &) = delete;
    CacheMind &operator=(const CacheMind &) = delete;

    /** Answer one natural-language question, trace-grounded. */
    Response ask(const std::string &question);

    retrieval::Retriever &retriever() { return *retriever_; }
    const llm::GeneratorLlm &generator() const { return *generator_; }
    const CacheMindConfig &config() const { return cfg_; }
    const db::TraceDatabase &database() const { return db_; }

  private:
    const db::TraceDatabase &db_;
    CacheMindConfig cfg_;
    std::unique_ptr<retrieval::Retriever> retriever_;
    std::unique_ptr<llm::GeneratorLlm> generator_;
};

/** Multi-turn session with conversation memory. */
class ChatSession
{
  public:
    explicit ChatSession(CacheMind &engine,
                         llm::MemoryConfig memory_cfg =
                             llm::MemoryConfig{});

    /** Ask with conversation context; records the turn. */
    Response ask(const std::string &question);

    const llm::ConversationMemory &memory() const { return memory_; }

    /** Full transcript rendered as a demo chat (Figures 10-13). */
    std::string transcript() const;

  private:
    CacheMind &engine_;
    llm::ConversationMemory memory_;
    std::vector<llm::Turn> turns_;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_CACHEMIND_HH
