/**
 * @file
 * The CacheMind engine: the public v2 facade wiring a trace database,
 * a registry-constructed retriever, and a registry-constructed
 * generator backend into ask()/askBatch() calls, plus a ChatSession
 * that layers conversation memory on top (the assistive chat tool of
 * the paper's use-case transcripts).
 *
 * ask() runs an explicit staged pipeline — parse, plan, retrieve,
 * generate. Parsing happens exactly once per question at the engine
 * level; the plan stage derives a cache key from (retriever
 * fingerprint, shard key, slot key); the retrieve stage serves the
 * evidence bundle from a shared, thread-safe cross-question
 * RetrievalCache (single-flight: concurrent misses on a hot slice
 * coalesce onto one retrieval) before the generator answers from it.
 *
 * Components are referenced by registry name (see
 * retrieval::RetrieverRegistry and llm::BackendRegistry): new
 * retrievers and backends self-register from their own translation
 * units, so this facade never changes when one is added.
 * Misconfiguration surfaces as typed Result errors instead of silent
 * defaults, and independent questions can be answered concurrently
 * through a small worker pool with deterministic answers and stable
 * output ordering.
 */

#ifndef CACHEMIND_CORE_CACHEMIND_HH
#define CACHEMIND_CORE_CACHEMIND_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/deadline.hh"
#include "base/result.hh"
#include "core/engine_stats.hh"
#include "core/stream.hh"
#include "db/database.hh"
#include "llm/generator.hh"
#include "llm/memory.hh"
#include "obs/trace.hh"
#include "query/parser.hh"
#include "retrieval/cache.hh"
#include "retrieval/context.hh"

namespace cachemind::core {

class WorkerPool;

/** Engine configuration: components by registry name. */
struct EngineOptions
{
    /** Retriever registry key ("sieve", "ranger", "llamaindex", ...). */
    std::string retriever = "sieve";
    /** Backend registry key ("gpt-4o", "o3", ...). */
    std::string backend = "gpt-4o";
    /** Prompting mode passed to the generator. */
    llm::ShotMode shot_mode = llm::ShotMode::ZeroShot;
    /** Worker threads used by askBatch (>= 1). */
    std::size_t batch_workers = 4;
    /**
     * Threads used when the engine constructs components — today the
     * per-worker retriever pool built on first askBatch, where e.g.
     * LlamaIndex re-embeds its whole index per worker. Same sentinel
     * as db::BuildOptions::build_threads: 0 = one thread per hardware
     * core (always clamped to the work available).
     */
    std::size_t build_threads = 0;
    /**
     * Capacity (resident bundles) of the shared cross-question
     * retrieval cache; 0 disables it. One cache is shared by ask()
     * and every askBatch worker, so overlapping questions about the
     * same trace slice assemble their evidence bundle once.
     */
    std::size_t retrieval_cache_capacity = 1024;
    /**
     * Encoded-byte budget of the retrieval cache's compressed
     * secondary tier (0 disables the tier). Bundles the hot clock
     * tier demotes are kept in binary-codec form instead of being
     * destroyed; a secondary hit decodes and re-promotes instead of
     * re-running retrieval. Byte-exact codec round trip: answers are
     * identical with the tier on or off.
     */
    std::size_t retrieval_cache_secondary_bytes = 0;
    /**
     * Hot-tier slot-table size (0 = derive from capacity). Rounded up
     * to a power of two, at least 2x the capacity; raise it to thin
     * probe windows for very hot skewed key sets.
     */
    std::size_t retrieval_cache_hot_slots = 0;
    /**
     * Externally owned retrieval cache shared *across engines*. When
     * set, it replaces the engine-private cache (the capacity knob is
     * ignored). Retrieval is backend-independent and cache keys embed
     * the retriever fingerprint, so a multi-backend sweep over the
     * same shard view (the Figure 4/6 harness) can hand every engine
     * one cache and assemble each evidence bundle once instead of
     * once per backend. The cache must outlive every engine using it.
     */
    std::shared_ptr<retrieval::RetrievalCache> shared_retrieval_cache;
    /**
     * Per-retriever scenario knobs forwarded verbatim to the registry
     * factory (e.g. {"evidence_window","4"} for Sieve, {"fidelity",
     * "0.6"} for Ranger) — Figure 5/6-style sweeps run through the
     * Builder instead of constructing components directly. Knobs feed
     * the retriever's cache fingerprint, so differently tuned engines
     * never alias each other's cached bundles.
     */
    std::map<std::string, std::string> retriever_params;
    /**
     * Buffered events per streaming channel (>= 1): the backpressure
     * bound between the askStream/askBatchStream pipeline workers and
     * the consumer. Small values bound memory under a slow consumer;
     * large values decouple bursty producers from it.
     */
    std::size_t stream_buffer = 64;
    /**
     * Streaming generation pace in tokens per second (0 = unpaced),
     * forwarded to llm::GenerationOptions. With a pace set, answer
     * deltas are emitted at a real backend's decode rate, so
     * end-to-end streaming latency includes a generation term instead
     * of being retrieval-only. Answer bytes are unaffected.
     */
    double tokens_per_second = 0.0;
    /**
     * Default retrieval deadline per question in milliseconds (0 =
     * none). When the budget runs out mid-retrieval the retriever
     * degrades — it returns the evidence gathered so far with
     * bundle.degraded set and the answer is generated from partial
     * evidence — instead of failing. Degraded bundles never enter the
     * retrieval cache. Per-call AskOptions::deadline_ms overrides
     * this. Questions with a finite deadline bypass the single-flight
     * miss coalescing (a degraded result must not be handed to
     * coalesced waiters), so leave this 0 unless requests carry real
     * latency budgets.
     */
    double default_deadline_ms = 0.0;
};

/** Per-call knobs for ask()/askStream(). */
struct AskOptions
{
    /**
     * Retrieval deadline for this question in milliseconds; 0 falls
     * back to EngineOptions::default_deadline_ms (and if that is also
     * 0, the question has no deadline).
     */
    double deadline_ms = 0.0;
};

/**
 * One request, as a single value: the question, its per-call knobs,
 * an optional correlation id, and an optional trace handle. This is
 * the unified argument accepted by ask/askParsed/askStream/askBatch
 * (and, over the wire, by the serve layer's handleAsk) — the older
 * positional `(question, ask_opts)` overloads are thin shims that
 * build one of these.
 *
 * Tracing: traced() attaches a fresh obs::RequestTrace; the engine
 * then records a span per pipeline stage (parse, plan, retrieve with
 * per-section children and the cache-tier outcome, generate) under
 * `trace_parent`. With `trace` null the request runs exactly the
 * untraced hot path (a single pointer test per potential span).
 */
struct RequestContext
{
    std::string question;
    AskOptions options;
    /**
     * Caller-supplied correlation id ("" = none). The serve layer
     * echoes it on every frame of the request and keys the `trace`
     * verb with it.
     */
    std::string request_id;
    /** Trace sink for this request; null = not traced. */
    std::shared_ptr<obs::RequestTrace> trace;
    /** Span id the engine's root "ask" span should nest under. */
    std::uint32_t trace_parent = 0;

    RequestContext() = default;
    explicit RequestContext(std::string q) : question(std::move(q)) {}
    RequestContext(std::string q, AskOptions opts)
        : question(std::move(q)), options(opts)
    {
    }

    RequestContext &
    withDeadlineMs(double ms)
    {
        options.deadline_ms = ms;
        return *this;
    }

    RequestContext &
    withRequestId(std::string id)
    {
        request_id = std::move(id);
        return *this;
    }

    /** Attach a fresh trace (id defaults to request_id). */
    RequestContext &
    traced(std::string id = "")
    {
        if (id.empty())
            id = request_id.empty() ? question : request_id;
        trace = std::make_shared<obs::RequestTrace>(std::move(id));
        trace_parent = 0;
        return *this;
    }
};

/** What went wrong, as a branchable code plus a rendered message. */
enum class EngineErrorCode {
    UnknownRetriever,
    UnknownBackend,
    InvalidOptions,
    EmptyQuestion,
};

const char *engineErrorCodeName(EngineErrorCode code);

struct EngineError
{
    EngineErrorCode code = EngineErrorCode::InvalidOptions;
    std::string message;
};

/** Render an EngineError for logs (also used by Result::expect). */
std::string errorMessage(const EngineError &error);

/** One complete question/answer exchange. */
struct Response
{
    /** Final natural-language answer. */
    std::string text;
    /** The evidence bundle behind the answer. */
    retrieval::ContextBundle bundle;
    /** Structured answer (graders, chat tooling). */
    llm::Answer answer;
};

/**
 * The engine. The database must outlive the engine.
 *
 * Concurrency contract: askBatch fans out internally, and stats()
 * snapshots are safe from any thread, but an engine instance expects
 * one caller at a time for ask()/askBatch() — callers wanting
 * parallel serving run one engine per thread (engines are cheap; the
 * database is shared and read-only).
 */
class CacheMind
{
  public:
    class Builder;

    /**
     * Construct an engine from options; typed errors for unknown
     * component names or invalid settings.
     */
    static Result<CacheMind, EngineError>
    create(const db::TraceDatabase &db,
           EngineOptions opts = EngineOptions{});

    // Moves and the destructor are defined out of line where
    // BatchPool is a complete type.
    CacheMind(CacheMind &&) noexcept;
    ~CacheMind();
    CacheMind(const CacheMind &) = delete;
    CacheMind &operator=(const CacheMind &) = delete;

    /**
     * Answer one request, trace-grounded. The RequestContext carries
     * the question, per-call knobs, and (optionally) a request id and
     * trace handle — see RequestContext.
     */
    Result<Response, EngineError> ask(const RequestContext &ctx);

    /** Shim: ask one question with default knobs. */
    Result<Response, EngineError> ask(const std::string &question);

    /** Shim: ask() with per-call knobs (deadline). */
    Result<Response, EngineError> ask(const std::string &question,
                                      const AskOptions &ask_opts);

    /**
     * Answer an already-parsed question. This is the pipeline entry
     * for callers that parse (or augment) upstream — ChatSession
     * sharpens under-specified follow-ups at the slot level and hands
     * the result here, so the question is parsed exactly once. The
     * context's `question` field is ignored (the parsed query wins);
     * its knobs, request id, and trace handle apply as in ask().
     */
    Result<Response, EngineError>
    askParsed(const query::ParsedQuery &parsed, const RequestContext &ctx);

    /** Shim: askParsed with default knobs. */
    Result<Response, EngineError>
    askParsed(const query::ParsedQuery &parsed);

    /**
     * Answer independent requests concurrently on the engine's
     * worker pool. Answers are deterministic — byte-identical to a
     * sequential ask() loop — and results preserve request order.
     * Each worker gets its own registry-constructed retriever, and
     * every generator draw is keyed by the question text alone, so
     * scheduling order cannot leak into any answer. Per-request
     * deadlines and trace handles apply individually.
     */
    Result<std::vector<Response>, EngineError>
    askBatch(const std::vector<RequestContext> &requests);

    /** Shim: batch of plain questions with default knobs. */
    Result<std::vector<Response>, EngineError>
    askBatch(const std::vector<std::string> &questions);

    /**
     * Streaming ask: run the staged pipeline on a background thread
     * and return a pull-style AnswerStream that yields an event as
     * each stage completes — Parsed, Planned, one EvidenceChunk per
     * section the retriever assembles, AnswerDelta fragments during
     * generation, and a terminal Done whose Response is byte-identical
     * to a blocking ask() of the same question. Streamed retrieval
     * still goes through the shared RetrievalCache (a hit streams the
     * cached bundle as one chunk). The first streaming call warms
     * every shard's postings index in parallel (see warmup()), so the
     * first event never waits behind a serial index build.
     *
     * The stream counts as the engine's one in-flight call: consume
     * (or drop) it before the next ask()/askBatch()/askStream(), and
     * neither move nor destroy the engine while a stream is live.
     */
    Result<AnswerStream, EngineError>
    askStream(const RequestContext &ctx);

    /** Shim: stream one question with default knobs. */
    Result<AnswerStream, EngineError>
    askStream(const std::string &question);

    /** Shim: askStream() with per-call knobs (deadline). */
    Result<AnswerStream, EngineError>
    askStream(const std::string &question, const AskOptions &ask_opts);

    /** Consumer callback for askBatchStream (called serially). */
    using StreamSink = std::function<void(const StreamEvent &)>;

    /**
     * Streaming batch: answer independent questions concurrently on
     * the worker pool while delivering every pipeline event to `sink`
     * as it happens. Events carry their question index; events of one
     * question arrive in pipeline order, events of different
     * questions interleave. The sink runs on the calling thread only
     * — no synchronization needed inside it. Returns the full
     * response vector, byte-identical to askBatch (and therefore to a
     * sequential ask() loop). If the sink throws, the stream is
     * cancelled, workers are joined, and the exception is rethrown.
     */
    Result<std::vector<Response>, EngineError>
    askBatchStream(const std::vector<std::string> &questions,
                   const StreamSink &sink);

    /**
     * Pre-build every shard's postings index on the build_threads
     * pool (idempotent, thread-safe): a cold sweep's first questions
     * otherwise pay the lazy per-shard builds serially. The streaming
     * entry points call this once on first use; latency-sensitive
     * blocking callers can invoke it explicitly after construction.
     */
    void warmup();

    /** Aggregate serving statistics (thread-safe snapshot). */
    EngineStats
    stats() const
    {
        EngineStats s = stats_->snapshot();
        s.index = shards_.indexTotals();
        if (cache_)
            s.cache_tiers = cache_->tiered();
        return s;
    }

    retrieval::Retriever &retriever() { return *retriever_; }
    const llm::GeneratorLlm &generator() const { return *generator_; }
    const EngineOptions &options() const { return opts_; }
    const db::TraceDatabase &database() const { return db_; }
    /** The shard view the engine's retrievers serve from. */
    const db::ShardSet &shards() const { return shards_; }
    /** The engine-level parser (vocabulary from the shard view). */
    const query::NlQueryParser &parser() const { return *parser_; }
    /** The shared cross-question cache; nullptr when disabled. */
    const retrieval::RetrievalCache *
    retrievalCache() const
    {
        return cache_.get();
    }

  private:
    CacheMind(const db::TraceDatabase &db, db::ShardSet shards,
              EngineOptions opts,
              std::unique_ptr<retrieval::Retriever> retriever,
              std::unique_ptr<llm::GeneratorLlm> generator);

    // ------------------------------------------------ pipeline stages
    //
    // parse -> plan -> retrieve -> generate. Each stage is pure with
    // respect to answer bytes: scheduling and cache state can change
    // *when* evidence is assembled, never *what* is answered.

    /** Stage 1: parse the question once, at the engine level. */
    query::ParsedQuery parseStage(const std::string &question) const;

    /**
     * Stage 2: derive the cross-question cache key for this
     * (retriever, parsed query) pair; "" = do not cache.
     */
    std::string planStage(const retrieval::Retriever &retriever,
                          const query::ParsedQuery &parsed) const;

    /**
     * Stage 3: produce the evidence bundle, through the shared cache
     * when the plan allows (single-flight on concurrent misses).
     * When `tc` is traced, its parent is the retrieve-stage span: one
     * child span per evidence section plus a cache-tier outcome
     * annotation (hot_hit / secondary_promote / miss /
     * single_flight_wait / bypass) land there.
     */
    std::shared_ptr<const retrieval::ContextBundle>
    retrieveStage(retrieval::Retriever &retriever,
                  const query::ParsedQuery &parsed,
                  const std::string &cache_key,
                  const Deadline &deadline = Deadline(),
                  const obs::TraceContext &tc = obs::TraceContext{}) const;

    /**
     * Stage 3, streaming form: evidence sections stream into `sink`
     * as the retriever assembles them. Uses the cache's non-blocking
     * peek/publish protocol instead of single-flight getOrCompute —
     * a stream must never hold the in-flight claim while pushing
     * into a consumer-paced channel (see retrieveStageStreamed's
     * definition for the hostage scenario). Cache hits stream the
     * cached bundle as one "cached" chunk.
     */
    std::shared_ptr<const retrieval::ContextBundle>
    retrieveStageStreamed(retrieval::Retriever &retriever,
                          const query::ParsedQuery &parsed,
                          const std::string &cache_key,
                          retrieval::EvidenceSink &sink,
                          const obs::TraceContext &tc =
                              obs::TraceContext{}) const;

    /**
     * Resolve the effective deadline for one call: per-call budget,
     * else the engine default, else infinite.
     */
    Deadline resolveDeadline(double request_ms) const;

    /**
     * Stage 4: generate the answer from the evidence. The response
     * bundle is a per-question copy patched with *this* question's
     * parsed identity (so bundle sharing never leaks another
     * phrasing's raw text into generation) and *this* question's
     * retrieve-stage latency (near zero on a cache hit). When
     * `on_delta` is non-null the answer text additionally streams
     * through it fragment by fragment; the generated bytes are
     * identical either way.
     */
    Response
    generateStage(const query::ParsedQuery &parsed,
                  const std::shared_ptr<const retrieval::ContextBundle>
                      &evidence,
                  double retrieval_ms,
                  const llm::DeltaFn *on_delta = nullptr) const;

    /**
     * Stages 2-4 for one parsed question (no latency recording).
     * When `tc` is traced, plan/retrieve/generate spans nest under
     * its parent.
     */
    Response answerParsed(retrieval::Retriever &retriever,
                          const query::ParsedQuery &parsed,
                          const Deadline &deadline = Deadline(),
                          const obs::TraceContext &tc =
                              obs::TraceContext{}) const;

    /**
     * Stages 2-4 for one parsed question with every stage boundary
     * (and every mid-stage evidence chunk / answer delta) pushed into
     * `channel` as StreamEvents tagged with `question_index`. Records
     * per-stream statistics (time-to-first-event, event counts);
     * overall question latency is recorded by the entry points.
     * `blocked_ms` (when non-null) receives the wall time spent
     * inside channel pushes — backpressure from a slow consumer —
     * which the entry points subtract so EngineStats latency
     * percentiles keep measuring serving work, not consumer pacing.
     */
    Response answerParsedStreamed(retrieval::Retriever &retriever,
                                  const query::ParsedQuery &parsed,
                                  std::size_t question_index,
                                  StreamChannel &channel,
                                  double *blocked_ms = nullptr,
                                  const Deadline &deadline = Deadline(),
                                  const obs::TraceContext &tc =
                                      obs::TraceContext{},
                                  std::uint32_t parse_span = 0) const;

    /**
     * Close out a traced request: set a default outcome ("done" /
     * "degraded") unless a terminal decision already landed (first
     * writer wins — the serve layer may have cut the request), and
     * fold the stage latencies into EngineStats.trace.
     */
    void finishTrace(const std::shared_ptr<obs::RequestTrace> &trace,
                     bool degraded) const;

    struct BatchPool;

    /**
     * Grow the lazily built batch retriever pool to serve `workers`
     * workers (worker 0 is the engine's primary retriever). Reused by
     * askBatch and askBatchStream.
     */
    void ensureBatchPool(std::size_t workers);

    const db::TraceDatabase &db_;
    /** Immutable shard view handed to every registry-built retriever. */
    db::ShardSet shards_;
    EngineOptions opts_;
    std::unique_ptr<retrieval::Retriever> retriever_;
    std::unique_ptr<llm::GeneratorLlm> generator_;
    /** Engine-level query parser: one parse per question, any stage. */
    std::unique_ptr<query::NlQueryParser> parser_;
    /** Shared cross-question retrieval cache (nullptr = disabled). */
    std::shared_ptr<retrieval::RetrievalCache> cache_;
    std::unique_ptr<EngineStatsRecorder> stats_;
    /** Lazily-built per-worker retrievers, reused across batches. */
    std::unique_ptr<BatchPool> batch_pool_;
    /**
     * Persistent askStream pipeline workers (lazily created on first
     * askStream, sized by build_threads). Parking a warm thread on a
     * condvar replaces the former per-call std::thread spawn, which
     * cost tens of microseconds of time-to-first-event per request —
     * the difference between a serving front-end that spawns a thread
     * per question and one that never does.
     */
    std::unique_ptr<WorkerPool> stream_pool_;
    /** One-shot guard for the parallel index warm-up (warmup()). */
    std::unique_ptr<std::once_flag> warm_once_ =
        std::make_unique<std::once_flag>();
};

/**
 * Fluent construction:
 *
 *   auto engine = core::CacheMind::Builder(db)
 *                     .withRetriever("sieve")
 *                     .withBackend("gpt-4o")
 *                     .withShotMode(llm::ShotMode::ZeroShot)
 *                     .build()           // Result<CacheMind, ...>
 *                     .expect("engine");
 */
class CacheMind::Builder
{
  public:
    explicit Builder(const db::TraceDatabase &db) : db_(db) {}

    Builder &
    withRetriever(std::string name)
    {
        opts_.retriever = std::move(name);
        return *this;
    }

    Builder &
    withBackend(std::string name)
    {
        opts_.backend = std::move(name);
        return *this;
    }

    Builder &
    withShotMode(llm::ShotMode mode)
    {
        opts_.shot_mode = mode;
        return *this;
    }

    Builder &
    withBatchWorkers(std::size_t workers)
    {
        opts_.batch_workers = workers;
        return *this;
    }

    Builder &
    withBuildThreads(std::size_t threads)
    {
        opts_.build_threads = threads;
        return *this;
    }

    /** Shared cross-question retrieval-cache capacity (0 = off). */
    Builder &
    withRetrievalCacheCapacity(std::size_t bundles)
    {
        opts_.retrieval_cache_capacity = bundles;
        return *this;
    }

    /** Compressed secondary-tier byte budget (0 = tier off). */
    Builder &
    withSecondaryCacheBytes(std::size_t bytes)
    {
        opts_.retrieval_cache_secondary_bytes = bytes;
        return *this;
    }

    /** Hot-tier slot-table size (0 = derive from capacity). */
    Builder &
    withHotCacheSlots(std::size_t slots)
    {
        opts_.retrieval_cache_hot_slots = slots;
        return *this;
    }

    /**
     * Externally owned bundle cache shared across engines (the
     * multi-backend sweep pattern); overrides the capacity knob.
     */
    Builder &
    withSharedRetrievalCache(
        std::shared_ptr<retrieval::RetrievalCache> cache)
    {
        opts_.shared_retrieval_cache = std::move(cache);
        return *this;
    }

    /** Streaming-channel buffer capacity (events; >= 1). */
    Builder &
    withStreamBuffer(std::size_t events)
    {
        opts_.stream_buffer = events;
        return *this;
    }

    /** Streaming generation pace (tokens/second; 0 = unpaced). */
    Builder &
    withTokensPerSecond(double pace)
    {
        opts_.tokens_per_second = pace;
        return *this;
    }

    /** Default per-question retrieval deadline in ms (0 = none). */
    Builder &
    withDeadlineMs(double ms)
    {
        opts_.default_deadline_ms = ms;
        return *this;
    }

    /** Raw scenario knob forwarded to the retriever factory. */
    Builder &
    withRetrieverParam(std::string key, std::string value)
    {
        opts_.retriever_params[std::move(key)] = std::move(value);
        return *this;
    }

    /** Sieve evidence-window knob (Figure 5-style sweeps). */
    Builder &
    withSieveEvidenceWindow(std::size_t rows)
    {
        return withRetrieverParam("evidence_window",
                                  std::to_string(rows));
    }

    /** Ranger codegen-fidelity knob (Figure 6-style sweeps). */
    Builder &
    withRangerFidelity(double fidelity)
    {
        return withRetrieverParam("fidelity",
                                  std::to_string(fidelity));
    }

    Result<CacheMind, EngineError>
    build() const
    {
        return CacheMind::create(db_, opts_);
    }

  private:
    const db::TraceDatabase &db_;
    EngineOptions opts_;
};

/** Multi-turn session with conversation memory. */
class ChatSession
{
  public:
    explicit ChatSession(CacheMind &engine,
                         llm::MemoryConfig memory_cfg =
                             llm::MemoryConfig{});

    /** Ask with conversation context; records the turn. */
    Result<Response, EngineError> ask(const std::string &question);

    const llm::ConversationMemory &memory() const { return memory_; }

    /** Full transcript rendered as a demo chat (Figures 10-13). */
    std::string transcript() const;

  private:
    /**
     * Fill slots the question leaves unspecified (workload/policy)
     * from the recalled conversation facts, so retrieval sees the
     * sharpened query. Explicit slots in the question always win.
     * Operates on the parsed query directly — the augmented result is
     * handed to CacheMind::askParsed, never re-parsed — with `raw`
     * annotated to keep transcripts and generator keying faithful to
     * what retrieval actually saw.
     */
    query::ParsedQuery
    augmentParsed(query::ParsedQuery parsed,
                  const std::vector<std::string> &recalled) const;

    CacheMind &engine_;
    llm::ConversationMemory memory_;
    std::vector<llm::Turn> turns_;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_CACHEMIND_HH
