#include "core/stream.hh"

#include "base/failpoint.hh"
#include "base/logging.hh"
#include "core/cachemind.hh"

namespace cachemind::core {

const char *
streamEventKindName(StreamEvent::Kind kind)
{
    switch (kind) {
      case StreamEvent::Kind::Parsed: return "parsed";
      case StreamEvent::Kind::Planned: return "planned";
      case StreamEvent::Kind::EvidenceChunk: return "evidence";
      case StreamEvent::Kind::AnswerDelta: return "delta";
      case StreamEvent::Kind::Done: return "done";
    }
    return "?";
}

StreamChannel::StreamChannel(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
StreamChannel::push(StreamEvent event)
{
    // Failpoint for the channel-internals path, evaluated before the
    // lock (a Delay must not stall consumers, and an Error must not
    // unwind while holding the mutex). An injected error propagates
    // through the producer's push into the pipeline's exception
    // barrier, surfacing as a typed channel failure — never a torn
    // delta sequence on a surviving stream.
    fail::maybeThrow("core.stream.push");
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [this] {
        return cancelled_ || closed_ || buffer_.size() < capacity_;
    });
    if (cancelled_ || closed_)
        return false;
    buffer_.push_back(std::move(event));
    ++pushed_;
    can_pop_.notify_one();
    return true;
}

std::optional<StreamEvent>
StreamChannel::pop()
{
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [this] {
        return cancelled_ || closed_ || !buffer_.empty();
    });
    if (buffer_.empty())
        return std::nullopt; // closed or cancelled, fully drained
    StreamEvent event = std::move(buffer_.front());
    buffer_.pop_front();
    can_push_.notify_one();
    return event;
}

std::optional<StreamEvent>
StreamChannel::popUntil(std::chrono::steady_clock::time_point at,
                        bool *timed_out)
{
    if (timed_out)
        *timed_out = false;
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = can_pop_.wait_until(lock, at, [this] {
        return cancelled_ || closed_ || !buffer_.empty();
    });
    if (!ready) {
        if (timed_out)
            *timed_out = true;
        return std::nullopt;
    }
    if (buffer_.empty())
        return std::nullopt; // closed or cancelled, fully drained
    StreamEvent event = std::move(buffer_.front());
    buffer_.pop_front();
    can_push_.notify_one();
    return event;
}

std::optional<StreamEvent>
StreamChannel::tryPop()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.empty())
        return std::nullopt;
    StreamEvent event = std::move(buffer_.front());
    buffer_.pop_front();
    can_push_.notify_one();
    return event;
}

void
StreamChannel::setProducers(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mu_);
    producers_ = n;
}

void
StreamChannel::producerDone()
{
    std::lock_guard<std::mutex> lock(mu_);
    CM_ASSERT(producers_ > 0, "producerDone without setProducers");
    if (--producers_ == 0) {
        closed_ = true;
        can_pop_.notify_all();
        can_push_.notify_all();
    }
}

void
StreamChannel::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_pop_.notify_all();
    can_push_.notify_all();
}

void
StreamChannel::fail(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_)
        error_ = std::move(error);
}

std::exception_ptr
StreamChannel::error() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
}

void
StreamChannel::cancel()
{
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    buffer_.clear();
    can_pop_.notify_all();
    can_push_.notify_all();
}

bool
StreamChannel::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

bool
StreamChannel::cancelled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
}

std::uint64_t
StreamChannel::pushed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
}

void
StreamTicket::arrive()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        done_ = true;
    }
    done_cv_.notify_all();
}

void
StreamTicket::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return done_; });
}

AnswerStream::AnswerStream(std::shared_ptr<StreamChannel> channel,
                           std::shared_ptr<StreamTicket> ticket)
    : channel_(std::move(channel)), ticket_(std::move(ticket))
{
}

AnswerStream::AnswerStream(AnswerStream &&) noexcept = default;

AnswerStream &
AnswerStream::operator=(AnswerStream &&other) noexcept
{
    if (this != &other) {
        finish();
        channel_ = std::move(other.channel_);
        ticket_ = std::move(other.ticket_);
        done_ = std::move(other.done_);
    }
    return *this;
}

AnswerStream::~AnswerStream() { finish(); }

void
AnswerStream::cancel()
{
    finish();
}

void
AnswerStream::finish()
{
    if (channel_)
        channel_->cancel();
    if (ticket_) {
        ticket_->wait();
        ticket_.reset();
    }
}

std::optional<StreamEvent>
AnswerStream::next()
{
    if (!channel_ || done_)
        return std::nullopt;
    auto event = channel_->pop();
    if (!event) {
        // Drained without Done: the pipeline failed. Surface the
        // worker's exception here, exactly as blocking ask() would
        // have thrown it.
        if (auto error = channel_->error())
            std::rethrow_exception(error);
        return std::nullopt;
    }
    if (event->kind == StreamEvent::Kind::Done)
        done_ = event->response;
    return event;
}

std::optional<StreamEvent>
AnswerStream::nextBefore(const Deadline &deadline, bool *expired)
{
    if (expired)
        *expired = false;
    if (!deadline.finite())
        return next();
    if (!channel_ || done_)
        return std::nullopt;
    bool timed_out = false;
    auto event = channel_->popUntil(deadline.timePoint(), &timed_out);
    if (!event) {
        if (timed_out) {
            if (expired)
                *expired = true;
            return std::nullopt;
        }
        if (auto error = channel_->error())
            std::rethrow_exception(error);
        return std::nullopt;
    }
    if (event->kind == StreamEvent::Kind::Done)
        done_ = event->response;
    return event;
}

Response
AnswerStream::wait()
{
    while (!done_) {
        if (!next()) {
            // next() rethrows pipeline failures; draining without
            // either Done or an error is only possible after cancel(),
            // and a cancelled stream must not be wait()ed on.
            CM_ASSERT(done_ != nullptr,
                      "stream drained without a Done event");
        }
    }
    return *done_;
}

} // namespace cachemind::core
