/**
 * @file
 * A persistent worker pool parked on a condition variable, replacing
 * the per-call std::thread spawn on the interactive streaming path.
 *
 * Thread creation costs tens of microseconds — it dominated warm
 * time-to-first-event for askStream, and a serving front-end that
 * spawned a thread per request would pay it on every question. The
 * pool starts threads lazily (an engine used only for blocking ask()
 * never creates one), parks idle workers on a condvar, and grows up
 * to its cap only when a job arrives and every started worker is
 * busy. Submitted jobs always run: destruction drains the queue
 * before joining, so a completion latch armed by a job can never be
 * abandoned.
 */

#ifndef CACHEMIND_CORE_WORKER_POOL_HH
#define CACHEMIND_CORE_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cachemind::core {

class WorkerPool
{
  public:
    /**
     * A pool that will run at most `threads` jobs concurrently
     * (0 = one per hardware core). No thread is started until the
     * first submit().
     */
    explicit WorkerPool(std::size_t threads);

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Drains every pending job, then joins all workers. */
    ~WorkerPool();

    /**
     * Enqueue one job. A parked worker picks it up immediately; if
     * none is idle and the pool is below its thread cap, a new worker
     * is started for it. Jobs may not throw — a streaming pipeline
     * converts its failures into channel state before returning.
     */
    void submit(std::function<void()> job);

    /** Maximum concurrent jobs. */
    std::size_t threadCap() const { return cap_; }

    /** Workers started so far (grows lazily toward the cap). */
    std::size_t threadsStarted() const;

  private:
    void workerLoop();

    const std::size_t cap_;
    mutable std::mutex mu_;
    std::condition_variable work_ready_;
    std::deque<std::function<void()>> jobs_;
    std::vector<std::thread> workers_;
    std::size_t idle_ = 0;
    bool stopping_ = false;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_WORKER_POOL_HH
