/**
 * @file
 * The async streaming answer subsystem: StreamEvent (one unit of
 * pipeline progress), StreamChannel (a bounded multi-producer /
 * single-consumer event queue), and AnswerStream (the pull-style
 * consumer handle returned by CacheMind::askStream).
 *
 * The staged ask() pipeline — parse, plan, retrieve, generate — emits
 * an event as each stage completes: the parsed slots, the derived
 * cache key, every evidence section the retriever assembles (see
 * retrieval::EvidenceSink), the answer text in deltas, and a terminal
 * Done carrying the complete Response. Streaming changes *when*
 * results become visible, never *what* is answered: the Done response
 * is byte-identical to a blocking ask() for the same question.
 *
 * The channel is the serving-side latency lever: the first evidence
 * section reaches the consumer while the retriever is still
 * assembling the rest of the bundle and before generation starts, so
 * interactive "why did this line get evicted?" sessions see evidence
 * on screen at a fraction of the full-answer latency.
 */

#ifndef CACHEMIND_CORE_STREAM_HH
#define CACHEMIND_CORE_STREAM_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "base/deadline.hh"
#include "query/parsed_query.hh"

namespace cachemind::core {

struct Response;

/** One unit of streaming pipeline progress. */
struct StreamEvent
{
    enum class Kind {
        /** Stage 1 done: the question's parsed slots are available. */
        Parsed,
        /** Stage 2 done: the retrieval-cache key was derived. */
        Planned,
        /** One evidence section, streamed mid-retrieval. */
        EvidenceChunk,
        /** One fragment of the answer text, streamed mid-generation. */
        AnswerDelta,
        /** Terminal: the complete response (byte-identical to ask()). */
        Done,
    };

    Kind kind = Kind::Parsed;
    /** Index of the question within its batch (0 for askStream). */
    std::size_t question = 0;
    /** Parsed: the slots as the engine-level parser understood them. */
    query::ParsedQuery parsed;
    /** Planned: the cross-question cache key ("" = not cacheable). */
    std::string cache_key;
    /** EvidenceChunk: section name ("overview", "slice", ...). */
    std::string label;
    /** EvidenceChunk / AnswerDelta: the streamed text. */
    std::string text;
    /** Done: the complete response behind a shared handle. */
    std::shared_ptr<const Response> response;
    /**
     * Span id of the pipeline stage that produced this event (0 when
     * the request is untraced) — Parsed carries the parse span,
     * Planned the plan span, each EvidenceChunk its section span,
     * AnswerDelta the generate span, Done the request's root span.
     * Consumers resolve it through the request's obs::RequestTrace;
     * the serve layer uses it to attribute time-to-first-event to a
     * stage.
     */
    std::uint32_t span = 0;
};

const char *streamEventKindName(StreamEvent::Kind kind);

/**
 * Bounded MPSC event channel: any number of pipeline workers push,
 * one consumer pops. push() applies backpressure (blocks while the
 * buffer is full) so a slow consumer bounds producer memory; pop()
 * blocks until an event, the channel closing, or cancellation.
 *
 * Producers are counted: setProducers(n) arms the channel, each
 * producer calls producerDone() exactly once, and the last one closes
 * the channel so the consumer's pop() drains to nullopt without any
 * out-of-band signal. cancel() is the consumer-side escape hatch (an
 * abandoned AnswerStream): buffered events are dropped and subsequent
 * pushes return false immediately, so producers never block on a
 * consumer that went away.
 */
class StreamChannel
{
  public:
    explicit StreamChannel(std::size_t capacity = 64);

    StreamChannel(const StreamChannel &) = delete;
    StreamChannel &operator=(const StreamChannel &) = delete;

    /**
     * Producer: enqueue one event, blocking while the buffer is full.
     * Returns false (dropping the event) once the channel is
     * cancelled or closed.
     */
    bool push(StreamEvent event);

    /** Consumer: blocking pop; nullopt once closed and drained. */
    std::optional<StreamEvent> pop();

    /**
     * Consumer: pop with a wall-clock bound. Returns nullopt with
     * *timed_out = true when `at` passes before an event arrives (the
     * channel is untouched — the serving layer uses this to cut a
     * stream that blew its deadline with a typed frame).
     */
    std::optional<StreamEvent>
    popUntil(std::chrono::steady_clock::time_point at, bool *timed_out);

    /** Consumer: non-blocking pop; nullopt when nothing is buffered. */
    std::optional<StreamEvent> tryPop();

    /** Arm the producer count before any producer starts. */
    void setProducers(std::size_t n);

    /** One producer finished; the last close()s the channel. */
    void producerDone();

    /** Producer side: no further events (pending pops drain). */
    void close();

    /**
     * Producer side: record a pipeline failure (first error wins).
     * Buffered events still drain; once the channel is exhausted the
     * consumer observes the error through error() — AnswerStream and
     * askBatchStream rethrow it, matching blocking ask(), instead of
     * letting it escape a worker thread into std::terminate.
     */
    void fail(std::exception_ptr error);

    /** The recorded pipeline failure, if any. */
    std::exception_ptr error() const;

    /** Consumer side: drop buffered events, refuse new pushes. */
    void cancel();

    bool closed() const;
    bool cancelled() const;
    std::size_t capacity() const { return capacity_; }

    /** Events accepted by push() over the channel's lifetime. */
    std::uint64_t pushed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::deque<StreamEvent> buffer_;
    std::size_t producers_ = 0;
    std::uint64_t pushed_ = 0;
    std::exception_ptr error_;
    bool closed_ = false;
    bool cancelled_ = false;
};

/**
 * Completion latch between a pooled stream job and the AnswerStream
 * handle that observes it. The job arms nothing up front; it calls
 * arrive() as its very last action, and the handle's destructor
 * wait()s so the pipeline never outlives the channel it pushes into.
 * This replaces joining a per-call std::thread: the worker thread is
 * persistent (core::WorkerPool) and is never joined per stream.
 */
class StreamTicket
{
  public:
    /** Job side: signal completion (exactly once, as the last step). */
    void arrive();

    /** Consumer side: block until arrive() was called. */
    void wait();

  private:
    std::mutex mu_;
    std::condition_variable done_cv_;
    bool done_ = false;
};

/**
 * Consumer handle for one streaming question (CacheMind::askStream).
 * The pipeline runs as a job on the engine's persistent worker pool;
 * next() pulls events in pipeline order (Parsed, Planned, evidence
 * chunks, answer deltas, Done). Destroying the handle mid-stream is
 * safe: the channel is cancelled so the job never blocks on the
 * departed consumer, and the job's completion ticket is awaited.
 */
class AnswerStream
{
  public:
    AnswerStream(std::shared_ptr<StreamChannel> channel,
                 std::shared_ptr<StreamTicket> ticket);
    AnswerStream(AnswerStream &&) noexcept;
    AnswerStream &operator=(AnswerStream &&) noexcept;
    ~AnswerStream();

    /**
     * Next event in pipeline order; nullopt once the stream is
     * exhausted (the Done event has been delivered). If the pipeline
     * failed (a throwing custom retriever, bad_alloc), the buffered
     * events drain first and the failure is rethrown here — the same
     * exception a blocking ask() of the question would have thrown.
     */
    std::optional<StreamEvent> next();

    /**
     * next() bounded by a deadline: when the deadline passes before
     * the next event arrives, returns nullopt with *expired = true and
     * leaves the stream intact (the caller decides whether to cancel).
     * An infinite deadline behaves exactly like next().
     */
    std::optional<StreamEvent> nextBefore(const Deadline &deadline,
                                          bool *expired);

    /**
     * Drain to completion and return the final response —
     * byte-identical to a blocking ask() of the same question
     * (rethrowing its failure if the pipeline threw). Events already
     * consumed through next() are not replayed; calling wait() after
     * Done was delivered returns the stored response.
     */
    Response wait();

    /** True once the Done event has been seen (by next() or wait()). */
    bool done() const { return done_ != nullptr; }

    /**
     * Abandon the stream: cancel the channel (the pipeline's
     * cooperative cancellation token trips at its next emission
     * point, reclaiming in-flight retrieval work) and wait for the
     * pipeline job to retire. Subsequent next() calls return nullopt.
     * This is the serving-side disconnect path; destruction calls it
     * implicitly.
     */
    void cancel();

  private:
    void finish();

    std::shared_ptr<StreamChannel> channel_;
    std::shared_ptr<StreamTicket> ticket_;
    std::shared_ptr<const Response> done_;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_STREAM_HH
