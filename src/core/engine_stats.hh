/**
 * @file
 * Per-engine aggregate serving statistics: questions served, retrieval
 * hit quality, and latency percentiles. The recorder is thread-safe so
 * askBatch workers can publish into it concurrently; snapshots are
 * cheap value types for reporting.
 */

#ifndef CACHEMIND_CORE_ENGINE_STATS_HH
#define CACHEMIND_CORE_ENGINE_STATS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "db/index.hh"
#include "retrieval/cache.hh"
#include "retrieval/context.hh"

namespace cachemind::obs {
class RequestTrace;
}

namespace cachemind::core {

/** Cross-question retrieval-cache counters (per retriever or total). */
struct RetrievalCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/** Streaming-pipeline counters (askStream / askBatchStream). */
struct StreamStats
{
    /** Questions answered through a streaming entry point. */
    std::uint64_t streams = 0;
    /** Events emitted across all streams (all kinds). */
    std::uint64_t events = 0;
    /** EvidenceChunk events emitted. */
    std::uint64_t evidence_chunks = 0;
    /** AnswerDelta events emitted. */
    std::uint64_t answer_deltas = 0;
    /**
     * Streams abandoned by their consumer before Done (a cancelled
     * AnswerStream / dropped serving connection). Cancelled streams
     * contribute no latency or time-to-first-event samples.
     */
    std::uint64_t cancelled = 0;

    /**
     * Cold index warm-ups observed (at most one per engine) and their
     * total cost. Warm-up is recorded here, *outside* the
     * time-to-first-event reservoir, so the first stream against a
     * cold engine does not skew server-side TTFE percentiles.
     */
    std::uint64_t warmups = 0;
    double warmup_ms_total = 0.0;

    /**
     * Time-to-first-event percentiles (milliseconds): the gap between
     * a stream's pipeline starting and its first event being emitted
     * — the latency a streaming consumer actually waits before
     * anything appears, as opposed to the full-answer latency in
     * latency_p50_ms.
     */
    double first_event_p50_ms = 0.0;
    double first_event_p90_ms = 0.0;
    double first_event_mean_ms = 0.0;
};

/**
 * Aggregates over *traced* requests (see obs::RequestTrace): how long
 * each pipeline stage took, and which stage was the slowest — the
 * "where did the time go" histogram a percentile alone cannot answer.
 * Only requests that carried a trace contribute (untraced requests
 * record no per-stage timings by design).
 */
struct TraceStats
{
    /** Traced requests folded in. */
    std::uint64_t traced = 0;

    /** Per-stage latency percentiles (milliseconds). */
    double parse_p50_ms = 0.0;
    double parse_p90_ms = 0.0;
    double plan_p50_ms = 0.0;
    double plan_p90_ms = 0.0;
    double retrieve_p50_ms = 0.0;
    double retrieve_p90_ms = 0.0;
    double generate_p50_ms = 0.0;
    double generate_p90_ms = 0.0;

    /** Requests whose slowest stage was parse/plan/retrieve/generate. */
    std::uint64_t slowest_parse = 0;
    std::uint64_t slowest_plan = 0;
    std::uint64_t slowest_retrieve = 0;
    std::uint64_t slowest_generate = 0;
};

/** Point-in-time aggregate over everything the engine has served. */
struct EngineStats
{
    /** Questions answered (ask + askBatch). */
    std::uint64_t questions = 0;
    /** askBatch invocations. */
    std::uint64_t batches = 0;

    /** Retrieval-quality population (Figure 5 buckets). */
    std::uint64_t quality_low = 0;
    std::uint64_t quality_medium = 0;
    std::uint64_t quality_high = 0;

    /**
     * Questions answered from deadline-degraded (partial) evidence —
     * the engine-side deadline-miss signal. Degraded bundles are never
     * cached, so each degraded retrieval counts exactly once.
     */
    std::uint64_t degraded_answers = 0;

    /** End-to-end per-question latency percentiles (milliseconds). */
    double latency_p50_ms = 0.0;
    double latency_p90_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_mean_ms = 0.0;

    /** Streaming-pipeline counters. */
    StreamStats stream;

    /** Per-stage aggregates over traced requests. */
    TraceStats trace;

    /** Retrieval-cache totals across all retrievers. */
    RetrievalCacheStats cache;
    /** Retrieval-cache counters split by retriever name. */
    std::map<std::string, RetrievalCacheStats> cache_by_retriever;

    /**
     * Per-tier retrieval-cache stats (hot clock tier, compressed
     * secondary tier, promotion/demotion traffic). Filled by
     * CacheMind::stats() straight from the cache, not the recorder —
     * a shared cache reports the same tier numbers through every
     * engine using it.
     */
    retrieval::RetrievalCache::TieredCounters cache_tiers;

    /**
     * Postings-index instrumentation over the engine's shard view:
     * shards indexed so far, total one-time build cost, indexed
     * lookups served, and the scan-equivalent rows they skipped.
     * Filled by CacheMind::stats() from the shards, not the recorder.
     */
    db::IndexTotals index;

    /** Fraction of questions with high-quality retrieved context. */
    double
    highQualityFraction() const
    {
        return questions == 0
                   ? 0.0
                   : static_cast<double>(quality_high) /
                         static_cast<double>(questions);
    }
};

/** Thread-safe accumulator behind CacheMind::stats(). */
class EngineStatsRecorder
{
  public:
    /** Record one answered question. */
    void record(double latency_ms, retrieval::ContextQuality quality);

    /** Record one completed askBatch call. */
    void recordBatch();

    /**
     * Record one retrieval-cache lookup for the named retriever: hit
     * or miss, plus any entries the lookup's insertion evicted.
     */
    void recordCacheLookup(const std::string &retriever, bool hit,
                           std::uint64_t evictions);

    /**
     * Record one completed streaming question: its time-to-first-event
     * and the events it emitted, split by kind.
     */
    void recordStream(double first_event_ms, std::uint64_t events,
                      std::uint64_t evidence_chunks,
                      std::uint64_t answer_deltas);

    /** Record one consumer-cancelled stream (no latency samples). */
    void recordStreamCancelled();

    /** Record one answer generated from deadline-degraded evidence. */
    void recordDegraded();

    /** Record the engine's one-time cold index warm-up cost. */
    void recordWarmup(double warmup_ms);

    /**
     * Fold one finished traced request into EngineStats.trace: stage
     * durations are read from the trace's parse/plan/retrieve/generate
     * spans (first occurrence each; a missing span contributes 0).
     */
    void recordTrace(const obs::RequestTrace &trace);

    /** Aggregate snapshot (percentiles via base/stats_util). */
    EngineStats snapshot() const;

  private:
    /**
     * Latency percentiles come from a bounded deterministic
     * reservoir, so a long-lived engine's memory and snapshot cost
     * stay flat no matter how many questions it serves. Counts and
     * the mean stay exact.
     */
    static constexpr std::size_t kReservoirCap = 4096;

    mutable std::mutex mu_;
    std::uint64_t questions_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t quality_low_ = 0;
    std::uint64_t quality_medium_ = 0;
    std::uint64_t quality_high_ = 0;
    double latency_sum_ms_ = 0.0;
    std::uint64_t streams_ = 0;
    std::uint64_t stream_events_ = 0;
    std::uint64_t stream_evidence_chunks_ = 0;
    std::uint64_t stream_answer_deltas_ = 0;
    std::uint64_t stream_cancelled_ = 0;
    std::uint64_t degraded_answers_ = 0;
    std::uint64_t warmups_ = 0;
    double warmup_ms_total_ = 0.0;
    double first_event_sum_ms_ = 0.0;
    std::map<std::string, RetrievalCacheStats> cache_by_retriever_;
    /** Traced-request accumulators (EngineStats.trace). */
    std::uint64_t traced_ = 0;
    std::uint64_t slowest_stage_[4] = {0, 0, 0, 0};
    /** One bounded reservoir per stage: parse, plan, retrieve, gen. */
    std::vector<double> stage_reservoir_ms_[4];
    std::vector<double> latency_reservoir_ms_;
    /** Same bounded-reservoir scheme for time-to-first-event. */
    std::vector<double> first_event_reservoir_ms_;
    /**
     * Scratch for percentile extraction: the reservoir is copied and
     * sorted exactly once per snapshot, into a buffer reused across
     * snapshots so steady-state polling allocates nothing.
     */
    mutable std::vector<double> sort_scratch_;
};

} // namespace cachemind::core

#endif // CACHEMIND_CORE_ENGINE_STATS_HH
