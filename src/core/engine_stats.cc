#include "core/engine_stats.hh"

#include <algorithm>

#include "base/random.hh"
#include "base/stats_util.hh"
#include "obs/trace.hh"

namespace cachemind::core {

void
EngineStatsRecorder::record(double latency_ms,
                            retrieval::ContextQuality quality)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++questions_;
    latency_sum_ms_ += latency_ms;
    if (latency_reservoir_ms_.size() < kReservoirCap) {
        latency_reservoir_ms_.push_back(latency_ms);
    } else {
        // Algorithm R with a deterministic (hash-keyed) draw: sample
        // i replaces a random slot with probability cap/i.
        const std::uint64_t slot =
            splitMix64(questions_) % questions_;
        if (slot < kReservoirCap)
            latency_reservoir_ms_[static_cast<std::size_t>(slot)] =
                latency_ms;
    }
    switch (quality) {
      case retrieval::ContextQuality::Low: ++quality_low_; break;
      case retrieval::ContextQuality::Medium: ++quality_medium_; break;
      case retrieval::ContextQuality::High: ++quality_high_; break;
    }
}

void
EngineStatsRecorder::recordBatch()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
}

void
EngineStatsRecorder::recordCacheLookup(const std::string &retriever,
                                       bool hit, std::uint64_t evictions)
{
    std::lock_guard<std::mutex> lock(mu_);
    RetrievalCacheStats &s = cache_by_retriever_[retriever];
    if (hit)
        ++s.hits;
    else
        ++s.misses;
    s.evictions += evictions;
}

void
EngineStatsRecorder::recordStream(double first_event_ms,
                                  std::uint64_t events,
                                  std::uint64_t evidence_chunks,
                                  std::uint64_t answer_deltas)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++streams_;
    stream_events_ += events;
    stream_evidence_chunks_ += evidence_chunks;
    stream_answer_deltas_ += answer_deltas;
    first_event_sum_ms_ += first_event_ms;
    if (first_event_reservoir_ms_.size() < kReservoirCap) {
        first_event_reservoir_ms_.push_back(first_event_ms);
    } else {
        const std::uint64_t slot = splitMix64(streams_) % streams_;
        if (slot < kReservoirCap)
            first_event_reservoir_ms_[static_cast<std::size_t>(slot)] =
                first_event_ms;
    }
}

void
EngineStatsRecorder::recordStreamCancelled()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stream_cancelled_;
}

void
EngineStatsRecorder::recordDegraded()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++degraded_answers_;
}

void
EngineStatsRecorder::recordWarmup(double warmup_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++warmups_;
    warmup_ms_total_ += warmup_ms;
}

void
EngineStatsRecorder::recordTrace(const obs::RequestTrace &trace)
{
    // Stage durations from the trace's span names: the first
    // parse/plan/retrieve/generate span each (index matches
    // stage_reservoir_ms_ / slowest_stage_ order).
    static const char *const kStages[4] = {"parse", "plan", "retrieve",
                                           "generate"};
    double stage_ms[4] = {0.0, 0.0, 0.0, 0.0};
    bool seen[4] = {false, false, false, false};
    for (const obs::TraceSpan &span : trace.spans()) {
        for (int i = 0; i < 4; ++i) {
            if (!seen[i] && span.name == kStages[i] &&
                span.end_ns >= span.start_ns && span.end_ns != 0) {
                stage_ms[i] = static_cast<double>(span.end_ns -
                                                  span.start_ns) /
                              1e6;
                seen[i] = true;
            }
        }
    }
    int slowest = 0;
    for (int i = 1; i < 4; ++i) {
        if (stage_ms[i] > stage_ms[slowest])
            slowest = i;
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++traced_;
    ++slowest_stage_[slowest];
    for (int i = 0; i < 4; ++i) {
        auto &reservoir = stage_reservoir_ms_[i];
        if (reservoir.size() < kReservoirCap) {
            reservoir.push_back(stage_ms[i]);
        } else {
            const std::uint64_t slot = splitMix64(traced_) % traced_;
            if (slot < kReservoirCap)
                reservoir[static_cast<std::size_t>(slot)] = stage_ms[i];
        }
    }
}

EngineStats
EngineStatsRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    EngineStats s;
    s.questions = questions_;
    s.batches = batches_;
    s.quality_low = quality_low_;
    s.degraded_answers = degraded_answers_;
    s.quality_medium = quality_medium_;
    s.quality_high = quality_high_;
    s.cache_by_retriever = cache_by_retriever_;
    for (const auto &[name, counters] : cache_by_retriever_) {
        (void)name;
        s.cache.hits += counters.hits;
        s.cache.misses += counters.misses;
        s.cache.evictions += counters.evictions;
    }
    if (!latency_reservoir_ms_.empty()) {
        sort_scratch_.assign(latency_reservoir_ms_.begin(),
                             latency_reservoir_ms_.end());
        std::sort(sort_scratch_.begin(), sort_scratch_.end());
        s.latency_p50_ms = stats::percentileSorted(sort_scratch_, 50.0);
        s.latency_p90_ms = stats::percentileSorted(sort_scratch_, 90.0);
        s.latency_p99_ms = stats::percentileSorted(sort_scratch_, 99.0);
        s.latency_mean_ms =
            latency_sum_ms_ / static_cast<double>(questions_);
    }
    s.stream.streams = streams_;
    s.stream.events = stream_events_;
    s.stream.evidence_chunks = stream_evidence_chunks_;
    s.stream.answer_deltas = stream_answer_deltas_;
    s.stream.cancelled = stream_cancelled_;
    s.stream.warmups = warmups_;
    s.stream.warmup_ms_total = warmup_ms_total_;
    if (!first_event_reservoir_ms_.empty()) {
        sort_scratch_.assign(first_event_reservoir_ms_.begin(),
                             first_event_reservoir_ms_.end());
        std::sort(sort_scratch_.begin(), sort_scratch_.end());
        s.stream.first_event_p50_ms =
            stats::percentileSorted(sort_scratch_, 50.0);
        s.stream.first_event_p90_ms =
            stats::percentileSorted(sort_scratch_, 90.0);
        s.stream.first_event_mean_ms =
            first_event_sum_ms_ / static_cast<double>(streams_);
    }
    s.trace.traced = traced_;
    s.trace.slowest_parse = slowest_stage_[0];
    s.trace.slowest_plan = slowest_stage_[1];
    s.trace.slowest_retrieve = slowest_stage_[2];
    s.trace.slowest_generate = slowest_stage_[3];
    double *stage_p50[4] = {&s.trace.parse_p50_ms, &s.trace.plan_p50_ms,
                            &s.trace.retrieve_p50_ms,
                            &s.trace.generate_p50_ms};
    double *stage_p90[4] = {&s.trace.parse_p90_ms, &s.trace.plan_p90_ms,
                            &s.trace.retrieve_p90_ms,
                            &s.trace.generate_p90_ms};
    for (int i = 0; i < 4; ++i) {
        if (stage_reservoir_ms_[i].empty())
            continue;
        sort_scratch_.assign(stage_reservoir_ms_[i].begin(),
                             stage_reservoir_ms_[i].end());
        std::sort(sort_scratch_.begin(), sort_scratch_.end());
        *stage_p50[i] = stats::percentileSorted(sort_scratch_, 50.0);
        *stage_p90[i] = stats::percentileSorted(sort_scratch_, 90.0);
    }
    return s;
}

} // namespace cachemind::core
