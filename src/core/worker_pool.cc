#include "core/worker_pool.hh"

#include <algorithm>
#include <utility>

namespace cachemind::core {

WorkerPool::WorkerPool(std::size_t threads)
    : cap_(threads == 0
               ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
               : threads)
{
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
        // Grow only when every started worker is busy: an engine that
        // never runs two streams at once keeps exactly one thread.
        if (idle_ == 0 && workers_.size() < cap_)
            workers_.emplace_back([this] { workerLoop(); });
    }
    work_ready_.notify_one();
}

std::size_t
WorkerPool::threadsStarted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        while (jobs_.empty() && !stopping_) {
            ++idle_;
            work_ready_.wait(lock);
            --idle_;
        }
        if (jobs_.empty())
            return; // stopping, queue drained
        std::function<void()> job = std::move(jobs_.front());
        jobs_.pop_front();
        lock.unlock();
        job();
        lock.lock();
    }
}

} // namespace cachemind::core
