/**
 * @file
 * Named failpoints for fault-injection testing.
 *
 * A failpoint is a named site in production code where a test (or an
 * operator chasing a bug) can inject a fault: throw an error, sleep for
 * N milliseconds, corrupt a byte buffer, or drop a connection. Sites
 * are compiled in unconditionally — the disarmed fast path is a single
 * relaxed atomic load of a global armed-site counter, so planting a
 * failpoint on a hot path costs nothing measurable until someone arms
 * it.
 *
 * Arming
 * ------
 * Three equivalent ways:
 *   - environment: `CACHEMIND_FAILPOINTS="site=action,..."` read once
 *     at process start;
 *   - programmatic: `fail::arm("site", spec)` / `fail::armSpec("...")`;
 *   - over the wire: the serve layer's `failpoints` verb (only when the
 *     server was started with `debug_failpoints` enabled).
 *
 * Spec syntax (comma-separated list of sites):
 *
 *     <site>=<action>[:<arg>][@<probability>][#<max_hits>]
 *
 *     error            throw fail::InjectedFault at the site
 *     delay:<ms>       sleep <ms> milliseconds, then continue
 *     corrupt[:<n>]    truncate + flip <n> bytes of the site's buffer
 *     drop             report the connection/stream as dead
 *     off              disarm the site
 *
 * Examples:
 *     serve.read=drop@0.05          drop 5% of session reads
 *     db.index_build=error#1        fail exactly one index build
 *     retrieve.section=delay:50     50ms stall between evidence sections
 *
 * Draws are deterministic: each site keeps a hit counter and the
 * probability draw for hit N is keyed by (fnv1a(site), N), so a given
 * spec produces the same fault schedule per site on every run.
 */

#ifndef CACHEMIND_BASE_FAILPOINT_HH
#define CACHEMIND_BASE_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace cachemind::fail {

/** What an armed failpoint does when it fires. */
enum class Action {
    Off,     ///< Disarmed; never fires.
    Error,   ///< Throw InjectedFault.
    Delay,   ///< Sleep `arg` milliseconds.
    Corrupt, ///< Mangle the byte buffer passed to maybeCorrupt().
    Drop,    ///< Report the connection/stream as dead.
};

/** Exception thrown by sites armed with Action::Error. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at failpoint '" + site + "'"),
          site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** Full description of an armed failpoint. */
struct FailSpec {
    Action action = Action::Off;
    /** Delay: milliseconds to sleep. Corrupt: bytes to flip (>= 1). */
    std::uint64_t arg = 0;
    /** Chance each hit fires, in [0, 1]; draws are deterministic. */
    double probability = 1.0;
    /** Auto-disarm after this many fired hits (0 = unlimited). */
    std::uint64_t max_hits = 0;
};

/** A fired failpoint hit, as seen by the planted site. */
struct Hit {
    Action action = Action::Off;
    std::uint64_t arg = 0;
};

/** True when at least one site is armed (one relaxed atomic load). */
bool anyArmed();

/** Number of currently armed sites. */
std::size_t armedCount();

/** Arm one site programmatically. action Off disarms it. */
void arm(const std::string &site, const FailSpec &spec);

/**
 * Arm sites from a spec string (syntax in the file header). An empty
 * string or the single word "off" disarms every site. Returns false and
 * fills `error` (when non-null) on a malformed spec; sites parsed
 * before the error remain armed.
 */
bool armSpec(const std::string &spec, std::string *error = nullptr);

/** Disarm one site. */
void disarm(const std::string &site);

/** Disarm every site (hit counters are kept). */
void disarmAll();

/** Total faults fired across all sites since process start. */
std::uint64_t injectedTotal();

/** Faults fired per site since process start. */
std::map<std::string, std::uint64_t> injectedBySite();

/**
 * Evaluate a site: bump its hit counter and, if the site is armed and
 * the deterministic draw fires, return the action to perform. Callers
 * normally use the maybe* wrappers below instead.
 */
std::optional<Hit> evaluate(const std::string &site);

namespace detail {
std::optional<Hit> evaluateArmed(const std::string &site);
void sleepMs(std::uint64_t ms);
void corruptBytes(const std::string &site, std::string &bytes,
                  std::uint64_t flips);
} // namespace detail

/**
 * Site helper: honor Delay (sleep) and Error (throw InjectedFault).
 * Other actions are ignored at this site.
 */
inline void
maybeThrow(const std::string &site)
{
    if (!anyArmed())
        return;
    if (auto hit = detail::evaluateArmed(site)) {
        if (hit->action == Action::Delay)
            detail::sleepMs(hit->arg);
        else if (hit->action == Action::Error)
            throw InjectedFault(site);
    }
}

/**
 * Site helper for I/O paths: honor Delay (sleep, then proceed) and
 * Drop/Error (return true — the caller must treat the connection or
 * stream as dead).
 */
inline bool
maybeDrop(const std::string &site)
{
    if (!anyArmed())
        return false;
    if (auto hit = detail::evaluateArmed(site)) {
        if (hit->action == Action::Delay)
            detail::sleepMs(hit->arg);
        else if (hit->action == Action::Drop || hit->action == Action::Error)
            return true;
    }
    return false;
}

/** Site helper: honor Delay only (sleep, then proceed). */
inline void
maybeDelay(const std::string &site)
{
    if (!anyArmed())
        return;
    if (auto hit = detail::evaluateArmed(site)) {
        if (hit->action == Action::Delay)
            detail::sleepMs(hit->arg);
    }
}

/**
 * Site helper for codec paths: honor Corrupt/Error by deterministically
 * truncating `bytes` and flipping `arg` bytes (so a downstream decoder
 * reliably rejects the buffer), and Delay by sleeping.
 */
inline void
maybeCorrupt(const std::string &site, std::string &bytes)
{
    if (!anyArmed())
        return;
    if (auto hit = detail::evaluateArmed(site)) {
        if (hit->action == Action::Delay)
            detail::sleepMs(hit->arg);
        else if (hit->action == Action::Corrupt ||
                 hit->action == Action::Error)
            detail::corruptBytes(site, bytes, hit->arg ? hit->arg : 1);
    }
}

} // namespace cachemind::fail

#endif // CACHEMIND_BASE_FAILPOINT_HH
