/**
 * @file
 * Deterministic pseudo-random primitives.
 *
 * Everything stochastic in CacheMind flows through these generators so
 * that traces, policies, and simulated-LLM error draws are reproducible
 * bit-for-bit across runs and platforms.
 */

#ifndef CACHEMIND_BASE_RANDOM_HH
#define CACHEMIND_BASE_RANDOM_HH

#include <cstdint>
#include <string>

namespace cachemind {

/** One SplitMix64 step; also usable as a 64-bit integer mixer. */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Mix two 64-bit values into one (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                           (a >> 2)));
}

/** FNV-1a hash of a byte string. */
std::uint64_t fnv1a(const std::string &s);

/**
 * Small, fast deterministic RNG (xoshiro256** seeded via SplitMix64).
 *
 * Not cryptographic; statistical quality is more than sufficient for
 * workload synthesis and capability-gate draws.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

    /** Re-seed the generator deterministically from one 64-bit value. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Draw from a (rounded) geometric-like distribution, mean approx m. */
    std::uint64_t nextGeometric(double mean);

    /** Gaussian via Box–Muller (deterministic given the stream). */
    double nextGaussian(double mean, double stdev);

  private:
    std::uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

/**
 * Deterministic Bernoulli draw keyed by an arbitrary tuple of values.
 *
 * Used by the simulated LLM backends: the outcome for (model, question,
 * skill) never changes across runs, so benchmark results are stable.
 */
bool keyedBernoulli(std::uint64_t key, double p);

/** Deterministic uniform double in [0,1) keyed by a 64-bit value. */
double keyedUniform(std::uint64_t key);

/** Deterministic pick of an index in [0, n) keyed by a 64-bit value. */
std::size_t keyedPick(std::uint64_t key, std::size_t n);

} // namespace cachemind

#endif // CACHEMIND_BASE_RANDOM_HH
