#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace cachemind {

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {
constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &lane : s_) {
        x = splitMix64(x);
        lane = x;
    }
    have_cached_gaussian_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    CM_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    CM_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    const double u = nextDouble();
    const double v = -std::log(1.0 - u) * mean;
    return static_cast<std::uint64_t>(v);
}

double
Rng::nextGaussian(double mean, double stdev)
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return mean + stdev * cached_gaussian_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.141592653589793 * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return mean + stdev * r * std::cos(theta);
}

bool
keyedBernoulli(std::uint64_t key, double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return keyedUniform(key) < p;
}

double
keyedUniform(std::uint64_t key)
{
    return static_cast<double>(splitMix64(key) >> 11) * 0x1.0p-53;
}

std::size_t
keyedPick(std::uint64_t key, std::size_t n)
{
    CM_ASSERT(n > 0, "keyedPick requires n > 0");
    return static_cast<std::size_t>(splitMix64(key) % n);
}

} // namespace cachemind
