#include "base/str.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace cachemind::str {

std::string
toLower(const std::string &s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep, bool keep_empty)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (keep_empty || !cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (keep_empty || !cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
containsNoCase(const std::string &haystack, const std::string &needle)
{
    if (needle.empty())
        return true;
    return toLower(haystack).find(toLower(needle)) != std::string::npos;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    if (from.empty())
        return s;
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::optional<std::uint64_t>
parseHex(const std::string &s)
{
    std::string body = toLower(trim(s));
    if (startsWith(body, "0x"))
        body = body.substr(2);
    if (body.empty() || body.size() > 16)
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : body) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return v;
}

std::optional<std::uint64_t>
parseU64(const std::string &s)
{
    const std::string body = trim(s);
    if (body.empty())
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : body) {
        if (c < '0' || c > '9')
            return std::nullopt;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

std::optional<double>
parseDouble(const std::string &s)
{
    std::string body = trim(s);
    if (!body.empty() && body.back() == '%')
        body.pop_back();
    if (body.empty())
        return std::nullopt;
    char *end = nullptr;
    const double v = std::strtod(body.c_str(), &end);
    if (end == body.c_str() || *end != '\0')
        return std::nullopt;
    return v;
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

std::string
fixed(double v, int decimals)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << v;
    return os.str();
}

std::string
percent(double ratio, int decimals)
{
    return fixed(ratio * 100.0, decimals) + "%";
}

std::vector<std::uint64_t>
extractHexTokens(const std::string &text)
{
    std::vector<std::uint64_t> out;
    const std::string lower = toLower(text);
    for (std::size_t i = 0; i + 2 < lower.size(); ++i) {
        if (lower[i] == '0' && lower[i + 1] == 'x') {
            std::size_t j = i + 2;
            while (j < lower.size() &&
                   std::isxdigit(static_cast<unsigned char>(lower[j]))) {
                ++j;
            }
            if (j > i + 2) {
                if (auto v = parseHex(lower.substr(i, j - i)))
                    out.push_back(*v);
            }
            i = j;
        }
    }
    return out;
}

std::vector<std::uint64_t>
extractIntTokens(const std::string &text)
{
    std::vector<std::uint64_t> out;
    std::size_t i = 0;
    while (i < text.size()) {
        if (std::isdigit(static_cast<unsigned char>(text[i]))) {
            // Skip hex literals entirely: handled by extractHexTokens.
            if (text[i] == '0' && i + 1 < text.size() &&
                (text[i + 1] == 'x' || text[i + 1] == 'X')) {
                i += 2;
                while (i < text.size() &&
                       std::isxdigit(static_cast<unsigned char>(text[i]))) {
                    ++i;
                }
                continue;
            }
            if (i >= 1 && (text[i - 1] == 'x' || text[i - 1] == 'X')) {
                while (i < text.size() &&
                       std::isxdigit(static_cast<unsigned char>(text[i]))) {
                    ++i;
                }
                continue;
            }
            std::size_t j = i;
            std::uint64_t v = 0;
            while (j < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[j]))) {
                v = v * 10 + static_cast<std::uint64_t>(text[j] - '0');
                ++j;
            }
            out.push_back(v);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<std::size_t> prev(m + 1);
    std::vector<std::size_t> cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

} // namespace cachemind::str
