#include "base/failpoint.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "base/random.hh"
#include "base/str.hh"

namespace cachemind::fail {

namespace {

/** Count of armed sites; the disarmed fast path loads only this. */
std::atomic<std::uint64_t> g_armed_sites{0};

/** Total fired faults across all sites. */
std::atomic<std::uint64_t> g_injected_total{0};

struct SiteState {
    FailSpec spec;
    std::uint64_t hits = 0;  ///< Evaluations while the registry was hot.
    std::uint64_t fired = 0; ///< Evaluations that injected a fault.
};

struct Registry {
    std::mutex mu;
    std::map<std::string, SiteState> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
parseAction(const std::string &word, Action &out)
{
    const std::string w = str::toLower(str::trim(word));
    if (w == "error")
        out = Action::Error;
    else if (w == "delay")
        out = Action::Delay;
    else if (w == "corrupt")
        out = Action::Corrupt;
    else if (w == "drop")
        out = Action::Drop;
    else if (w == "off")
        out = Action::Off;
    else
        return false;
    return true;
}

bool
parseEntry(const std::string &entry, std::string &site, FailSpec &spec,
           std::string *error)
{
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (error)
            *error = "failpoint entry '" + entry + "' is not <site>=<action>";
        return false;
    }
    site = str::trim(entry.substr(0, eq));
    std::string rhs = str::trim(entry.substr(eq + 1));
    spec = FailSpec{};

    const auto hash = rhs.rfind('#');
    if (hash != std::string::npos) {
        const auto parsed = str::parseU64(str::trim(rhs.substr(hash + 1)));
        if (!parsed) {
            if (error)
                *error = "bad max_hits in failpoint entry '" + entry + "'";
            return false;
        }
        spec.max_hits = *parsed;
        rhs = rhs.substr(0, hash);
    }
    const auto at = rhs.rfind('@');
    if (at != std::string::npos) {
        const auto parsed = str::parseDouble(str::trim(rhs.substr(at + 1)));
        if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
            if (error)
                *error = "bad probability in failpoint entry '" + entry + "'";
            return false;
        }
        spec.probability = *parsed;
        rhs = rhs.substr(0, at);
    }
    const auto colon = rhs.find(':');
    if (colon != std::string::npos) {
        const auto parsed = str::parseU64(str::trim(rhs.substr(colon + 1)));
        if (!parsed) {
            if (error)
                *error = "bad argument in failpoint entry '" + entry + "'";
            return false;
        }
        spec.arg = *parsed;
        rhs = rhs.substr(0, colon);
    }
    if (!parseAction(rhs, spec.action)) {
        if (error)
            *error = "unknown failpoint action '" + str::trim(rhs) + "'";
        return false;
    }
    return true;
}

/** Arm `site` with `spec` while holding the registry mutex. */
void
armLocked(Registry &r, const std::string &site, const FailSpec &spec)
{
    SiteState &state = r.sites[site];
    const bool was_armed = state.spec.action != Action::Off;
    const bool now_armed = spec.action != Action::Off;
    state.spec = spec;
    if (was_armed && !now_armed)
        g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    else if (!was_armed && now_armed)
        g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

/** Reads CACHEMIND_FAILPOINTS once at process start. */
struct EnvArm {
    EnvArm()
    {
        const char *spec = std::getenv("CACHEMIND_FAILPOINTS");
        if (spec != nullptr && *spec != '\0')
            armSpec(spec);
    }
};

const EnvArm g_env_arm{};

} // namespace

bool
anyArmed()
{
    return g_armed_sites.load(std::memory_order_relaxed) != 0;
}

std::size_t
armedCount()
{
    return static_cast<std::size_t>(
        g_armed_sites.load(std::memory_order_relaxed));
}

void
arm(const std::string &site, const FailSpec &spec)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    armLocked(r, site, spec);
}

bool
armSpec(const std::string &spec, std::string *error)
{
    const std::string trimmed = str::trim(spec);
    if (trimmed.empty() || str::toLower(trimmed) == "off") {
        disarmAll();
        return true;
    }
    Registry &r = registry();
    for (const std::string &entry : str::split(trimmed, ',', /*keep_empty=*/false)) {
        std::string site;
        FailSpec parsed;
        if (!parseEntry(str::trim(entry), site, parsed, error))
            return false;
        std::lock_guard<std::mutex> lock(r.mu);
        armLocked(r, site, parsed);
    }
    return true;
}

void
disarm(const std::string &site)
{
    arm(site, FailSpec{});
}

void
disarmAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &[site, state] : r.sites) {
        if (state.spec.action != Action::Off) {
            state.spec = FailSpec{};
            g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

std::uint64_t
injectedTotal()
{
    return g_injected_total.load(std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t>
injectedBySite()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, std::uint64_t> out;
    for (const auto &[site, state] : r.sites)
        if (state.fired > 0)
            out[site] = state.fired;
    return out;
}

std::optional<Hit>
evaluate(const std::string &site)
{
    if (!anyArmed())
        return std::nullopt;
    return detail::evaluateArmed(site);
}

namespace detail {

std::optional<Hit>
evaluateArmed(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end())
        return std::nullopt;
    SiteState &state = it->second;
    const std::uint64_t hit_no = state.hits++;
    if (state.spec.action == Action::Off)
        return std::nullopt;
    if (state.spec.probability < 1.0 &&
        keyedUniform(hashCombine(fnv1a(site), hit_no)) >=
            state.spec.probability)
        return std::nullopt;
    Hit hit{state.spec.action, state.spec.arg};
    ++state.fired;
    g_injected_total.fetch_add(1, std::memory_order_relaxed);
    if (state.spec.max_hits != 0 && state.fired >= state.spec.max_hits)
        armLocked(r, site, FailSpec{});
    return hit;
}

void
sleepMs(std::uint64_t ms)
{
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void
corruptBytes(const std::string &site, std::string &bytes,
             std::uint64_t flips)
{
    if (bytes.empty())
        return;
    // Truncation makes the damage unambiguous to length-prefixed
    // decoders; a lone bit flip could survive decoding as a plausible
    // (but wrong) payload.
    bytes.resize(bytes.size() / 2);
    if (bytes.empty())
        return;
    const std::uint64_t key = hashCombine(fnv1a(site), bytes.size());
    for (std::uint64_t i = 0; i < flips; ++i) {
        const std::size_t pos =
            keyedPick(hashCombine(key, i), bytes.size());
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0xA5);
    }
}

} // namespace detail

} // namespace cachemind::fail
