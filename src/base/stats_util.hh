/**
 * @file
 * Descriptive-statistics helpers shared by the statistics expert, the
 * insight analyzers, and the benchmark graders.
 */

#ifndef CACHEMIND_BASE_STATS_UTIL_HH
#define CACHEMIND_BASE_STATS_UTIL_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace cachemind::stats {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population variance; 0 for inputs of size < 2. */
double variance(const std::vector<double> &xs);

/** Population standard deviation. */
double stdev(const std::vector<double> &xs);

/** Median (average of middle two for even sizes); 0 if empty. */
double median(std::vector<double> xs);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> xs, double p);

/** Percentile over data the caller has already sorted ascending. */
double percentileSorted(const std::vector<double> &xs, double p);

/** Pearson correlation; 0 if undefined (constant input or size < 2). */
double pearson(const std::vector<double> &xs,
               const std::vector<double> &ys);

/** Min/max/mean/stdev bundle for one pass over the data. */
struct Summary
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stdev = 0.0;
};

/** Single-pass summary of a vector. */
Summary summarize(const std::vector<double> &xs);

/**
 * Streaming mean/variance accumulator (Welford). Useful where storing
 * per-sample vectors would be wasteful (per-PC reuse statistics).
 */
class RunningStats
{
  public:
    void push(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stdev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Integer histogram with fixed-width bins starting at `lo`. */
class Histogram
{
  public:
    Histogram(double lo, double bin_width, std::size_t bins);

    void push(double x);
    std::size_t binCount(std::size_t bin) const;
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double binLow(std::size_t bin) const;

  private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace cachemind::stats

#endif // CACHEMIND_BASE_STATS_UTIL_HH
