/**
 * @file
 * Small string utilities used across the query, retrieval, and LLM
 * layers: case folding, splitting, hex parsing/formatting, and numeric
 * formatting suitable for trace artifacts.
 */

#ifndef CACHEMIND_BASE_STR_HH
#define CACHEMIND_BASE_STR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cachemind::str {

/** ASCII lower-case copy. */
std::string toLower(const std::string &s);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a single character, dropping empty pieces if requested. */
std::vector<std::string> split(const std::string &s, char sep,
                               bool keep_empty = false);

/** Split on any whitespace run. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** True if `s` begins with `prefix`. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if `s` ends with `suffix`. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Case-insensitive substring containment. */
bool containsNoCase(const std::string &haystack,
                    const std::string &needle);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Replace every occurrence of `from` with `to`. */
std::string replaceAll(std::string s, const std::string &from,
                       const std::string &to);

/**
 * Parse a hex literal with or without the 0x prefix.
 * @return nullopt if any non-hex character is present.
 */
std::optional<std::uint64_t> parseHex(const std::string &s);

/** Parse a decimal unsigned integer. */
std::optional<std::uint64_t> parseU64(const std::string &s);

/** Parse a floating-point number (also accepts trailing '%'). */
std::optional<double> parseDouble(const std::string &s);

/** Format as 0x-prefixed lower-case hex. */
std::string hex(std::uint64_t v);

/** Format a double with fixed decimals. */
std::string fixed(double v, int decimals = 2);

/** Format a ratio as a percentage string, e.g. "94.91%". */
std::string percent(double ratio, int decimals = 2);

/**
 * Extract every hex-looking token (0x...) from free text, in order.
 * Used by the natural-language query parser to find PCs/addresses.
 */
std::vector<std::uint64_t> extractHexTokens(const std::string &text);

/** Extract every decimal integer token from free text, in order. */
std::vector<std::uint64_t> extractIntTokens(const std::string &text);

/** Levenshtein edit distance (for fuzzy workload/policy matching). */
std::size_t editDistance(const std::string &a, const std::string &b);

} // namespace cachemind::str

#endif // CACHEMIND_BASE_STR_HH
