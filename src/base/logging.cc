#include "base/logging.hh"

#include <cstdlib>
#include <iostream>

namespace cachemind {
namespace detail {

namespace {
bool note_output_enabled = true;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}
} // namespace

void
emitFatal(LogLevel level, const std::string &msg, const char *file,
          int line)
{
    std::cerr << levelTag(level) << ": " << msg << " (" << file << ":"
              << line << ")" << std::endl;
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
emitNote(LogLevel level, const std::string &msg)
{
    if (!note_output_enabled)
        return;
    std::cerr << levelTag(level) << ": " << msg << std::endl;
}

} // namespace detail

void
setNoteOutputEnabled(bool enabled)
{
    detail::note_output_enabled = enabled;
}

} // namespace cachemind
