/**
 * @file
 * Minimal index-space parallelism shared by the parallel database
 * build and the engine's component construction. One primitive only:
 * a blocking parallelFor over [0, n) with atomic work handout, so
 * tasks of uneven cost (Parrot training vs a plain LRU replay)
 * balance automatically without a scheduler.
 */

#ifndef CACHEMIND_BASE_PARALLEL_HH
#define CACHEMIND_BASE_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cachemind {

/**
 * Run fn(i) for every i in [0, n) on up to `threads` threads (the
 * calling thread counts as one and participates). Returns once every
 * index has been processed. fn must be safe to call concurrently for
 * distinct indices; threads <= 1 degrades to a plain inline loop, so
 * callers need no separate sequential code path.
 *
 * If fn throws, remaining work is abandoned, every worker is joined,
 * and the first exception is rethrown on the calling thread — the
 * same contract as running the loop inline (indices already handed
 * out may still complete; none are retried).
 */
template <typename Fn>
void
parallelFor(std::size_t n, std::size_t threads, Fn &&fn)
{
    if (n == 0)
        return;
    const std::size_t workers =
        std::min(std::max<std::size_t>(threads, 1), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mu;
    auto drain = [&] {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!error)
                    error = std::current_exception();
                next.store(n); // abandon the remaining work
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 0; w + 1 < workers; ++w)
        pool.emplace_back(drain);
    drain();
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace cachemind

#endif // CACHEMIND_BASE_PARALLEL_HH
