/**
 * @file
 * Logging and error-reporting primitives in the gem5 spirit.
 *
 * panic()  — internal invariant violated (a CacheMind bug); aborts.
 * fatal()  — unrecoverable user error (bad config/arguments); exits.
 * warn()   — something suspicious but survivable.
 * inform() — status messages.
 */

#ifndef CACHEMIND_BASE_LOGGING_HH
#define CACHEMIND_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace cachemind {

/** Severity levels used by the logging backend. */
enum class LogLevel { Info, Warn, Fatal, Panic };

namespace detail {

/** Emit a formatted message; Fatal exits, Panic aborts. */
[[noreturn]] void emitFatal(LogLevel level, const std::string &msg,
                            const char *file, int line);
void emitNote(LogLevel level, const std::string &msg);

inline void
packMessage(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
packMessage(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    packMessage(os, rest...);
}

template <typename... Args>
std::string
buildMessage(const Args &...args)
{
    std::ostringstream os;
    packMessage(os, args...);
    return os.str();
}

} // namespace detail

/** Abort with a message: only for conditions that indicate a bug. */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, const Args &...args)
{
    detail::emitFatal(LogLevel::Panic, detail::buildMessage(args...),
                      file, line);
}

/** Exit with a message: for user-caused unrecoverable conditions. */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, const Args &...args)
{
    detail::emitFatal(LogLevel::Fatal, detail::buildMessage(args...),
                      file, line);
}

/** Print a warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::emitNote(LogLevel::Warn, detail::buildMessage(args...));
}

/** Print an informational note to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::emitNote(LogLevel::Info, detail::buildMessage(args...));
}

/** Toggle whether warn()/inform() produce output (tests silence them). */
void setNoteOutputEnabled(bool enabled);

#define CM_PANIC(...) ::cachemind::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define CM_FATAL(...) ::cachemind::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; active in all build types. */
#define CM_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cachemind::panicAt(__FILE__, __LINE__,                      \
                                 "assertion failed: " #cond " ",          \
                                 ##__VA_ARGS__);                          \
        }                                                                 \
    } while (0)

} // namespace cachemind

#endif // CACHEMIND_BASE_LOGGING_HH
