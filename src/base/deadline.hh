/**
 * @file
 * Steady-clock request deadlines.
 *
 * A Deadline is a point on the monotonic clock after which a request
 * should stop doing new work. Default-constructed deadlines are
 * infinite (never expire), so code can carry one unconditionally and
 * only pay a clock read when a budget was actually set.
 *
 * Deadlines are value types: cheap to copy, immutable once built, and
 * safe to read from any thread.
 */

#ifndef CACHEMIND_BASE_DEADLINE_HH
#define CACHEMIND_BASE_DEADLINE_HH

#include <chrono>
#include <limits>

namespace cachemind {

class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Infinite deadline: never expires. */
    constexpr Deadline() = default;

    /** Deadline `ms` milliseconds from now (ms <= 0 means infinite). */
    static Deadline
    afterMs(double ms)
    {
        if (ms <= 0.0)
            return Deadline();
        Deadline d;
        d.finite_ = true;
        d.at_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
        return d;
    }

    /** Explicitly infinite deadline (same as default construction). */
    static constexpr Deadline never() { return Deadline(); }

    /** True when a finite budget was set. */
    constexpr bool finite() const { return finite_; }

    /** True when the budget was set and has run out. */
    bool expired() const { return finite_ && Clock::now() >= at_; }

    /** Milliseconds left; +infinity when no budget was set. */
    double
    remainingMs() const
    {
        if (!finite_)
            return std::numeric_limits<double>::infinity();
        return std::chrono::duration<double, std::milli>(at_ - Clock::now())
            .count();
    }

    /** Absolute expiry instant; only meaningful when finite(). */
    Clock::time_point timePoint() const { return at_; }

  private:
    bool finite_ = false;
    Clock::time_point at_{};
};

} // namespace cachemind

#endif // CACHEMIND_BASE_DEADLINE_HH
