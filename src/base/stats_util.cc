#include "base/stats_util.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace cachemind::stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
stdev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
percentile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, p);
}

double
percentileSorted(const std::vector<double> &xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p <= 0.0)
        return xs.front();
    if (p >= 100.0)
        return xs.back();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size())
        return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    CM_ASSERT(xs.size() == ys.size(), "pearson requires equal sizes");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    RunningStats rs;
    for (double x : xs)
        rs.push(x);
    s.count = rs.count();
    s.min = rs.min();
    s.max = rs.max();
    s.mean = rs.mean();
    s.stdev = rs.stdev();
    return s;
}

void
RunningStats::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stdev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double bin_width, std::size_t bins)
    : lo_(lo), width_(bin_width), counts_(bins, 0)
{
    CM_ASSERT(bin_width > 0.0, "histogram bin width must be positive");
    CM_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::push(double x)
{
    double idx = (x - lo_) / width_;
    if (idx < 0.0)
        idx = 0.0;
    std::size_t bin = static_cast<std::size_t>(idx);
    if (bin >= counts_.size())
        bin = counts_.size() - 1;
    ++counts_[bin];
    ++total_;
}

std::size_t
Histogram::binCount(std::size_t bin) const
{
    CM_ASSERT(bin < counts_.size(), "histogram bin out of range");
    return counts_[bin];
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

} // namespace cachemind::stats
