/**
 * @file
 * Wall-clock stopwatch used only for *reporting* retrieval latencies
 * (Figure 9); no simulation result depends on it.
 */

#ifndef CACHEMIND_BASE_STOPWATCH_HH
#define CACHEMIND_BASE_STOPWATCH_HH

#include <chrono>

namespace cachemind {

/** Monotonic stopwatch with microsecond resolution. */
class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = clock::now(); }

    /** Elapsed time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }

    /** Elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace cachemind

#endif // CACHEMIND_BASE_STOPWATCH_HH
