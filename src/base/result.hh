/**
 * @file
 * A minimal typed-error result: either a value T or an error E.
 *
 * The v2 engine API returns Result instead of silently falling back
 * to defaults: misconfiguration (unknown retriever/backend names) and
 * malformed requests surface as typed errors the caller can branch
 * on, log, or escalate.
 */

#ifndef CACHEMIND_BASE_RESULT_HH
#define CACHEMIND_BASE_RESULT_HH

#include <utility>
#include <variant>

#include "base/logging.hh"

namespace cachemind {

/**
 * Holds exactly one of a success value T or an error E.
 *
 * Construction is implicit from either alternative, so functions can
 * `return value;` or `return error;` directly. Accessors assert the
 * active alternative: calling value() on an error (or vice versa) is
 * a caller bug and panics.
 *
 * `expect(context)` is the terse consumption form for tools and
 * examples where an error is unrecoverable: it moves the value out or
 * exits with the rendered error. It relies on an ADL-visible
 * `errorMessage(const E &)` overload.
 */
template <typename T, typename E>
class [[nodiscard]] Result
{
  public:
    Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

    /** True when this result holds a value. */
    bool ok() const { return v_.index() == 0; }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        CM_ASSERT(ok(), "Result::value() on an error result");
        return std::get<0>(v_);
    }

    T &
    value() &
    {
        CM_ASSERT(ok(), "Result::value() on an error result");
        return std::get<0>(v_);
    }

    T &&
    value() &&
    {
        CM_ASSERT(ok(), "Result::value() on an error result");
        return std::move(std::get<0>(v_));
    }

    const E &
    error() const
    {
        CM_ASSERT(!ok(), "Result::error() on a success result");
        return std::get<1>(v_);
    }

    /** Move the value out, or exit fatally with the rendered error. */
    T
    expect(const char *context) &&
    {
        if (!ok())
            CM_FATAL(context, ": ", errorMessage(std::get<1>(v_)));
        return std::move(std::get<0>(v_));
    }

  private:
    std::variant<T, E> v_;
};

} // namespace cachemind

#endif // CACHEMIND_BASE_RESULT_HH
