/**
 * @file
 * Cycle-approximate in-order core model.
 *
 * Substitutes for the paper's gem5 runs (DESIGN.md §2): IPC is derived
 * from an ideal-width base CPI plus the exposed fraction of memory
 * latency per access. Software prefetches occupy an issue slot but
 * never stall, which is exactly the mechanism that makes the §6.3
 * prefetch fix profitable.
 */

#ifndef CACHEMIND_SIM_CORE_MODEL_HH
#define CACHEMIND_SIM_CORE_MODEL_HH

#include "sim/hierarchy.hh"
#include "trace/record.hh"

namespace cachemind::sim {

/** Core timing knobs (Table 2 processor: 6-wide, 4 GHz). */
struct CoreConfig
{
    /** Ideal CPI at full issue width. */
    double base_cpi = 0.25;
    /** Fraction of load miss latency exposed (MLP/ROB overlap). */
    double load_expose = 0.55;
    /** Fraction of store latency exposed (store buffer drains). */
    double store_expose = 0.05;
    /**
     * DRAM channel service time per access (single channel,
     * DDR4-3200): a bandwidth roofline. Even perfectly prefetched
     * streams cannot retire faster than the channel can deliver
     * lines, which is what bounds the software-prefetch speedup.
     */
    double dram_service_cycles = 48.0;
};

/** End-to-end result of a trace run. */
struct SimSummary
{
    std::uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;
    std::uint64_t dram_accesses = 0;
};

/**
 * Run a CPU trace through a hierarchy and integrate stall cycles.
 * The hierarchy keeps its state, so repeated runs model warmed caches.
 */
SimSummary runTrace(const trace::Trace &t, Hierarchy &hier,
                    const CoreConfig &core = CoreConfig{});

/** Convenience: build a hierarchy with `llc_policy` and run. */
SimSummary runTrace(const trace::Trace &t, const HierarchyConfig &cfg,
                    std::unique_ptr<policy::ReplacementPolicy> llc_policy,
                    const CoreConfig &core = CoreConfig{});

} // namespace cachemind::sim

#endif // CACHEMIND_SIM_CORE_MODEL_HH
