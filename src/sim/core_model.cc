#include "sim/core_model.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cachemind::sim {

SimSummary
runTrace(const trace::Trace &t, Hierarchy &hier, const CoreConfig &core)
{
    SimSummary s;
    double stall_cycles = 0.0;
    const double l1_lat =
        static_cast<double>(hier.config().l1d.latency);

    for (const auto &r : t) {
        const HierarchyOutcome out = hier.access(r.pc, r.address, r.type);
        if (r.type == trace::AccessType::Prefetch)
            continue; // non-blocking: warms caches, never stalls
        const double beyond_l1 =
            static_cast<double>(out.latency) > l1_lat
                ? static_cast<double>(out.latency) - l1_lat
                : 0.0;
        if (r.type == trace::AccessType::Store) {
            stall_cycles += beyond_l1 * core.store_expose;
        } else {
            stall_cycles += beyond_l1 * core.load_expose;
        }
    }

    s.instructions = t.instructions();
    const double compute_cycles =
        static_cast<double>(s.instructions) * core.base_cpi +
        stall_cycles;
    const double bandwidth_cycles =
        static_cast<double>(hier.dramAccesses()) *
        core.dram_service_cycles;
    s.cycles = std::max(compute_cycles, bandwidth_cycles);
    s.ipc = s.cycles > 0.0
                ? static_cast<double>(s.instructions) / s.cycles
                : 0.0;
    s.l1d = hier.l1d().stats();
    s.l2 = hier.l2().stats();
    s.llc = hier.llc().stats();
    s.dram_accesses = hier.dramAccesses();
    return s;
}

SimSummary
runTrace(const trace::Trace &t, const HierarchyConfig &cfg,
         std::unique_ptr<policy::ReplacementPolicy> llc_policy,
         const CoreConfig &core)
{
    Hierarchy hier(cfg, std::move(llc_policy));
    return runTrace(t, hier, core);
}

} // namespace cachemind::sim
