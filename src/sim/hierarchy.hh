/**
 * @file
 * Four-level cache hierarchy (L1I, L1D, L2, LLC) plus a DRAM latency
 * model, configured per Table 2 of the paper. L1/L2 run LRU; the LLC
 * policy is pluggable. An observer hook exposes the demand-access
 * stream that reaches the LLC — the stream the paper's PARROT-based
 * pipeline replays to build the trace database.
 */

#ifndef CACHEMIND_SIM_HIERARCHY_HH
#define CACHEMIND_SIM_HIERARCHY_HH

#include <functional>
#include <memory>

#include "sim/cache.hh"
#include "trace/record.hh"

namespace cachemind::sim {

/** DRAM timing (flat latency; banking detail is out of scope). */
struct DramConfig
{
    /** Round-trip latency in core cycles (DDR4-3200 at 4 GHz). */
    std::uint32_t latency = 160;
};

/** Full hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig llc;
    DramConfig dram;
};

/** Table 2 configuration of the paper. */
HierarchyConfig defaultHierarchyConfig();

/** Render the hierarchy configuration as a Table 2-style text block. */
std::string describeConfig(const HierarchyConfig &cfg);

/** Where an access was finally served. */
enum class ServiceLevel : std::uint8_t { L1, L2, Llc, Dram };

/** Outcome of one hierarchy access. */
struct HierarchyOutcome
{
    ServiceLevel level = ServiceLevel::L1;
    /** Total load-to-use latency in cycles. */
    std::uint32_t latency = 0;
};

/**
 * The hierarchy proper. Data accesses go L1D -> L2 -> LLC -> DRAM;
 * writebacks propagate downward on dirty evictions. Non-inclusive.
 */
class Hierarchy
{
  public:
    /** Callback for each demand access that reaches the LLC. */
    using LlcObserver = std::function<void(
        std::uint64_t pc, std::uint64_t address, trace::AccessType type)>;

    Hierarchy(HierarchyConfig cfg,
              std::unique_ptr<policy::ReplacementPolicy> llc_policy);

    /** One data access from the core. */
    HierarchyOutcome access(std::uint64_t pc, std::uint64_t address,
                            trace::AccessType type);

    /** Observe the LLC demand stream (set before replay). */
    void setLlcObserver(LlcObserver obs) { llc_observer_ = std::move(obs); }

    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const Cache &l1d() const { return *l1d_; }
    const Cache &l2() const { return *l2_; }
    const Cache &llc() const { return *llc_; }
    const HierarchyConfig &config() const { return cfg_; }

    /** DRAM demand fetches observed. */
    std::uint64_t dramAccesses() const { return dram_accesses_; }

  private:
    HierarchyConfig cfg_;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    LlcObserver llc_observer_;
    std::uint64_t access_counter_ = 0;
    std::uint64_t dram_accesses_ = 0;
};

} // namespace cachemind::sim

#endif // CACHEMIND_SIM_HIERARCHY_HH
