#include "sim/llc_replay.hh"

#include <unordered_map>

#include "base/logging.hh"
#include "policy/basic_policies.hh"

namespace cachemind::sim {

std::vector<LlcAccess>
captureLlcStream(const trace::Trace &t, const HierarchyConfig &cfg)
{
    std::vector<LlcAccess> stream;
    stream.reserve(t.size() / 3);
    Hierarchy hier(cfg, std::make_unique<policy::LruPolicy>());
    const std::uint64_t line_bytes = cfg.llc.line_bytes;
    hier.setLlcObserver([&stream, line_bytes](std::uint64_t pc,
                                              std::uint64_t address,
                                              trace::AccessType type) {
        stream.push_back(
            LlcAccess{pc, address, address / line_bytes, type});
    });
    for (const auto &r : t)
        hier.access(r.pc, r.address, r.type);
    return stream;
}

std::vector<LlcAccess>
captureLlcStream(const trace::Trace &t)
{
    return captureLlcStream(t, defaultHierarchyConfig());
}

namespace {

/** Fenwick tree over stream positions (for stack distances). */
class Fenwick
{
  public:
    explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

    void
    add(std::size_t i, int delta)
    {
        for (++i; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum of [0, i]. */
    int
    prefix(std::size_t i) const
    {
        int s = 0;
        for (++i; i > 0; i -= i & (~i + 1))
            s += tree_[i];
        return s;
    }

    /** Sum of (a, b) exclusive on both ends. */
    int
    between(std::size_t a, std::size_t b) const
    {
        if (b <= a + 1)
            return 0;
        return prefix(b - 1) - prefix(a);
    }

  private:
    std::vector<int> tree_;
};

} // namespace

OracleInfo
computeOracle(const std::vector<LlcAccess> &stream)
{
    const std::size_t n = stream.size();
    OracleInfo o;
    o.next_use.assign(n, policy::kNoNextUse);
    o.prev_use.assign(n, kNoPrevUse);
    o.stack_distance.assign(n, kNoPrevUse);

    // Backward pass: next use per position.
    {
        std::unordered_map<std::uint64_t, std::uint64_t> seen;
        seen.reserve(n / 4);
        for (std::size_t i = n; i-- > 0;) {
            const auto it = seen.find(stream[i].line);
            if (it != seen.end())
                o.next_use[i] = it->second;
            seen[stream[i].line] = i;
        }
    }

    // Forward pass: previous use + LRU stack distance via Fenwick.
    {
        std::unordered_map<std::uint64_t, std::uint64_t> last;
        last.reserve(n / 4);
        Fenwick marks(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto it = last.find(stream[i].line);
            if (it != last.end()) {
                o.prev_use[i] = it->second;
                o.stack_distance[i] = static_cast<std::uint64_t>(
                    marks.between(it->second, i));
                marks.add(it->second, -1);
            }
            marks.add(i, +1);
            last[stream[i].line] = i;
        }
    }
    return o;
}

const char *
missTypeName(MissType t)
{
    switch (t) {
      case MissType::None: return "None";
      case MissType::Compulsory: return "Compulsory";
      case MissType::Capacity: return "Capacity";
      case MissType::Conflict: return "Conflict";
    }
    return "?";
}

LlcReplayer::LlcReplayer(CacheConfig cfg,
                         std::unique_ptr<policy::ReplacementPolicy> pol)
    : cache_(std::make_unique<Cache>(std::move(cfg), std::move(pol)))
{
}

CacheStats
LlcReplayer::replay(const std::vector<LlcAccess> &stream,
                    const OracleInfo *oracle, const EventCallback &cb,
                    std::uint32_t snapshot_every)
{
    CM_ASSERT(snapshot_every >= 1, "snapshot_every must be >= 1");
    const std::uint64_t total_lines =
        static_cast<std::uint64_t>(cache_->config().sets) *
        cache_->config().ways;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const LlcAccess &a = stream[i];
        policy::AccessInfo info;
        info.pc = a.pc;
        info.address = a.address;
        info.line = a.line;
        info.access_index = i;
        info.type = a.type;
        if (oracle)
            info.next_use = oracle->next_use[i];

        ReplayEvent ev;
        const bool want_event = static_cast<bool>(cb);
        const std::uint32_t set = cache_->setOf(a.line);
        if (want_event && i % snapshot_every == 0) {
            for (const auto &l : cache_->linesOf(set)) {
                if (l.valid)
                    ev.snapshot.push_back(
                        SnapshotEntry{l.last_pc, l.line});
            }
            ev.scores = cache_->setScores(set);
        }

        // Victim forward-reuse info must be captured before access()
        // overwrites the way; the cache reports it in the result.
        const CacheAccessResult res = cache_->access(info);

        if (!want_event)
            continue;

        ev.index = i;
        ev.pc = a.pc;
        ev.address = a.address;
        ev.line = a.line;
        ev.set = res.set;
        ev.hit = res.hit;
        ev.bypassed = res.bypassed;
        if (oracle) {
            ev.recency = oracle->prev_use[i] == kNoPrevUse
                             ? kNoPrevUse
                             : i - oracle->prev_use[i];
            ev.reuse_distance =
                oracle->next_use[i] == policy::kNoNextUse
                    ? policy::kNoNextUse
                    : oracle->next_use[i] - i;
        }
        if (!res.hit) {
            if (!oracle || oracle->prev_use[i] == kNoPrevUse) {
                ev.miss_type = MissType::Compulsory;
            } else if (oracle->stack_distance[i] >= total_lines) {
                ev.miss_type = MissType::Capacity;
            } else {
                ev.miss_type = MissType::Conflict;
            }
        }
        if (res.evicted) {
            ev.has_victim = true;
            ev.evicted_line = res.evicted_line;
            ev.evicted_pc = res.evicted_pc;
            if (oracle) {
                // The victim's next use after its last touch is the
                // next use after now (hits refresh last touch).
                const std::uint64_t vlast = res.evicted_last_index;
                const std::uint64_t vnext = oracle->next_use[vlast];
                if (vnext != policy::kNoNextUse && vnext > i)
                    ev.evicted_reuse_distance = vnext - i;
                const bool evicted_finite =
                    ev.evicted_reuse_distance != policy::kNoNextUse;
                const bool inserted_finite =
                    ev.reuse_distance != policy::kNoNextUse;
                ev.wrong_eviction =
                    evicted_finite &&
                    (!inserted_finite ||
                     ev.evicted_reuse_distance < ev.reuse_distance);
            }
        }
        cb(ev);
    }
    return cache_->stats();
}

policy::ParrotModel
ParrotModelBuilder::train(const std::vector<LlcAccess> &stream,
                          const OracleInfo &oracle)
{
    policy::ParrotTrainer trainer;
    for (std::size_t i = 0; i < stream.size(); ++i)
        trainer.observe(stream[i].pc, i, oracle.next_use[i]);
    return trainer.finish();
}

} // namespace cachemind::sim
