/**
 * @file
 * Set-associative cache with a pluggable replacement policy.
 *
 * The cache is trace-driven (no data storage, tags only) in the
 * ChampSim style. It supports:
 *  - pluggable replacement via policy::ReplacementPolicy,
 *  - policy-initiated bypass (Belady/PARROT/Mockingjay) and an
 *    external per-PC bypass filter (the §6.3 bypass use case),
 *  - dirty-line writeback signalling to the next level, and
 *  - full introspection of resident lines and per-line policy scores
 *    (consumed by the database builder's snapshot columns).
 */

#ifndef CACHEMIND_SIM_CACHE_HH
#define CACHEMIND_SIM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/replacement.hh"

namespace cachemind::sim {

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sets = 2048;
    std::uint32_t ways = 16;
    std::uint32_t line_bytes = 64;
    /** Hit latency in cycles. */
    std::uint32_t latency = 26;
    /** Miss-status holding registers (bookkeeping only). */
    std::uint32_t mshrs = 64;

    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(sets) * ways * line_bytes;
    }
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Line skipped insertion (policy or external bypass). */
    bool bypassed = false;
    std::uint32_t set = 0;
    /** Way hit or filled; undefined when bypassed. */
    std::uint32_t way = 0;
    /** A valid line was evicted to make room. */
    bool evicted = false;
    std::uint64_t evicted_line = 0;
    std::uint64_t evicted_pc = 0;
    /** Evicted line's last-touch stream index. */
    std::uint64_t evicted_last_index = 0;
    /** Evicted line was dirty (writeback required). */
    bool evicted_dirty = false;
};

/** Aggregate counters for one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    double hitRate() const { return accesses ? 1.0 - missRate() : 0.0; }
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    Cache(CacheConfig cfg,
          std::unique_ptr<policy::ReplacementPolicy> policy);

    /**
     * Perform one access. `info.line` must already hold the cache
     * line number (the hierarchy derives it from the address).
     */
    CacheAccessResult access(const policy::AccessInfo &info);

    /** Is `line` currently resident (no state change)? */
    bool probe(std::uint64_t line) const;

    /** Mark a resident line dirty (writeback arrival); no-op if absent. */
    void markDirty(std::uint64_t line);

    /** Invalidate a line if resident; returns true if it was. */
    bool invalidate(std::uint64_t line);

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }
    policy::ReplacementPolicy &policy() { return *policy_; }
    const policy::ReplacementPolicy &policy() const { return *policy_; }

    /** Set index for a line number. */
    std::uint32_t
    setOf(std::uint64_t line) const
    {
        return static_cast<std::uint32_t>(line % cfg_.sets);
    }

    /** Resident line metadata of one set (ways entries). */
    const std::vector<policy::LineMeta> &linesOf(std::uint32_t set) const;

    /** Policy score of each way in a set (database snapshot column). */
    std::vector<std::uint64_t> setScores(std::uint32_t set) const;

    /**
     * External per-PC bypass filter; when it returns true the missing
     * line is not inserted. Models the conditional-bypass hardware fix
     * of §6.3 without touching the policy.
     */
    void
    setBypassFilter(std::function<bool(std::uint64_t pc)> filter)
    {
        bypass_filter_ = std::move(filter);
    }

  private:
    CacheConfig cfg_;
    std::unique_ptr<policy::ReplacementPolicy> policy_;
    CacheStats stats_;
    std::function<bool(std::uint64_t)> bypass_filter_;
    /** sets_ vectors of exactly `ways` LineMeta. */
    std::vector<std::vector<policy::LineMeta>> sets_;
};

} // namespace cachemind::sim

#endif // CACHEMIND_SIM_CACHE_HH
