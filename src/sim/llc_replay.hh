/**
 * @file
 * LLC stream capture, oracle pre-passes, and annotated replay.
 *
 * Pipeline (mirrors the paper's PARROT-based flow, §5):
 *  1. captureLlcStream(): run the CPU trace through the hierarchy once
 *     (L1/L2 filter with LRU) and record every demand access that
 *     reaches the LLC. The stream does not depend on the LLC policy.
 *  2. computeOracle(): backward pass computing, per stream position,
 *     the next and previous use of the same line plus the LRU stack
 *     distance (for compulsory/capacity/conflict classification).
 *  3. LlcReplayer::replay(): replay the stream under any replacement
 *     policy, emitting one fully annotated ReplayEvent per access —
 *     the raw material of the external trace database.
 */

#ifndef CACHEMIND_SIM_LLC_REPLAY_HH
#define CACHEMIND_SIM_LLC_REPLAY_HH

#include <functional>
#include <memory>
#include <vector>

#include "policy/parrot.hh"
#include "sim/hierarchy.hh"
#include "trace/record.hh"

namespace cachemind::sim {

/** One entry of the captured LLC demand stream. */
struct LlcAccess
{
    std::uint64_t pc = 0;
    std::uint64_t address = 0;
    std::uint64_t line = 0;
    trace::AccessType type = trace::AccessType::Load;
};

/** Capture the LLC demand stream for a CPU-level trace. */
std::vector<LlcAccess> captureLlcStream(const trace::Trace &t,
                                        const HierarchyConfig &cfg);

/** Capture with the default (Table 2) hierarchy configuration. */
std::vector<LlcAccess> captureLlcStream(const trace::Trace &t);

/** Sentinel for "no previous use". */
constexpr std::uint64_t kNoPrevUse = policy::kNoNextUse;

/** Oracle annotations over an LLC stream. */
struct OracleInfo
{
    /** Stream index of the next access to the same line (or sentinel). */
    std::vector<std::uint64_t> next_use;
    /** Stream index of the previous access (or sentinel). */
    std::vector<std::uint64_t> prev_use;
    /** Distinct lines touched since the previous access (or sentinel). */
    std::vector<std::uint64_t> stack_distance;
};

/** Backward/forward passes producing OracleInfo. */
OracleInfo computeOracle(const std::vector<LlcAccess> &stream);

/** Miss taxonomy for the database's miss_type column. */
enum class MissType : std::uint8_t { None, Compulsory, Capacity,
                                     Conflict };

/** Human-readable miss-type name. */
const char *missTypeName(MissType t);

/** One resident (pc, line) pair in a set snapshot. */
struct SnapshotEntry
{
    std::uint64_t pc = 0;
    std::uint64_t line = 0;
};

/** Fully annotated replayed LLC access. */
struct ReplayEvent
{
    std::uint64_t index = 0;
    std::uint64_t pc = 0;
    std::uint64_t address = 0;
    std::uint64_t line = 0;
    std::uint32_t set = 0;
    bool hit = false;
    bool bypassed = false;
    MissType miss_type = MissType::None;

    bool has_victim = false;
    std::uint64_t evicted_line = 0;
    std::uint64_t evicted_pc = 0;

    /** Forward reuse distance of the accessed line (or sentinel). */
    std::uint64_t reuse_distance = policy::kNoNextUse;
    /** Backward recency of the accessed line (or sentinel). */
    std::uint64_t recency = kNoPrevUse;
    /** Forward reuse distance of the evicted line (or sentinel). */
    std::uint64_t evicted_reuse_distance = policy::kNoNextUse;
    /** Eviction displaced a line needed sooner than the inserted one. */
    bool wrong_eviction = false;

    /** Resident (pc, line) pairs of the set before this access. */
    std::vector<SnapshotEntry> snapshot;
    /** Policy eviction scores of the set before this access. */
    std::vector<std::uint64_t> scores;
};

/**
 * Replays an LLC stream under a policy, emitting annotated events.
 *
 * Snapshot/score capture costs memory bandwidth; it can be decimated
 * with `snapshot_every` (1 = every event).
 */
class LlcReplayer
{
  public:
    using EventCallback = std::function<void(const ReplayEvent &)>;

    LlcReplayer(CacheConfig cfg,
                std::unique_ptr<policy::ReplacementPolicy> pol);

    /**
     * Replay `stream`. `oracle` may be null for policies that do not
     * need the future (everything except Belady and the annotation of
     * reuse distances). The callback may be empty when only aggregate
     * statistics are wanted.
     */
    CacheStats replay(const std::vector<LlcAccess> &stream,
                      const OracleInfo *oracle, const EventCallback &cb,
                      std::uint32_t snapshot_every = 1);

    Cache &cache() { return *cache_; }
    const Cache &cache() const { return *cache_; }

  private:
    std::unique_ptr<Cache> cache_;
};

/**
 * Convenience: train a PARROT model for a stream (Belady-annotated
 * imitation pass, DESIGN.md §2).
 */
class ParrotModelBuilder
{
  public:
    /** Train on the stream using the supplied oracle. */
    static policy::ParrotModel train(const std::vector<LlcAccess> &stream,
                                     const OracleInfo &oracle);
};

} // namespace cachemind::sim

#endif // CACHEMIND_SIM_LLC_REPLAY_HH
