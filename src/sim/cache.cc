#include "sim/cache.hh"

#include "base/logging.hh"

namespace cachemind::sim {

Cache::Cache(CacheConfig cfg,
             std::unique_ptr<policy::ReplacementPolicy> policy)
    : cfg_(std::move(cfg)), policy_(std::move(policy))
{
    CM_ASSERT(cfg_.sets > 0 && cfg_.ways > 0, "cache geometry");
    CM_ASSERT(policy_ != nullptr, "cache requires a policy");
    policy_->configure(cfg_.sets, cfg_.ways);
    sets_.assign(cfg_.sets,
                 std::vector<policy::LineMeta>(cfg_.ways));
}

CacheAccessResult
Cache::access(const policy::AccessInfo &info)
{
    CacheAccessResult res;
    const std::uint32_t set = setOf(info.line);
    res.set = set;
    auto &lines = sets_[set];
    ++stats_.accesses;

    // Hit path.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (lines[w].valid && lines[w].line == info.line) {
            res.hit = true;
            res.way = w;
            lines[w].last_pc = info.pc;
            lines[w].last_access_index = info.access_index;
            lines[w].last_next_use = info.next_use;
            if (info.type == trace::AccessType::Store ||
                info.type == trace::AccessType::Writeback) {
                lines[w].dirty = true;
            }
            ++stats_.hits;
            policy_->onHit(set, w, info);
            return res;
        }
    }

    ++stats_.misses;

    // External (use-case) bypass filter first, then policy bypass.
    if (bypass_filter_ && bypass_filter_(info.pc)) {
        res.bypassed = true;
        ++stats_.bypasses;
        return res;
    }
    if (policy_->shouldBypass(set, info, lines)) {
        res.bypassed = true;
        ++stats_.bypasses;
        return res;
    }

    // Fill an invalid way if one exists.
    std::uint32_t way = cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!lines[w].valid) {
            way = w;
            break;
        }
    }

    if (way == cfg_.ways) {
        way = policy_->chooseVictim(set, info, lines);
        CM_ASSERT(way < cfg_.ways, "victim way out of range from ",
                  policy_->name());
        policy::LineMeta &victim = lines[way];
        res.evicted = true;
        res.evicted_line = victim.line;
        res.evicted_pc = victim.last_pc;
        res.evicted_last_index = victim.last_access_index;
        res.evicted_dirty = victim.dirty;
        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.writebacks;
        policy_->onEvict(set, way, info);
    }

    policy::LineMeta &slot = lines[way];
    slot.valid = true;
    slot.dirty = info.type == trace::AccessType::Store ||
                 info.type == trace::AccessType::Writeback;
    slot.line = info.line;
    slot.last_pc = info.pc;
    slot.last_access_index = info.access_index;
    slot.insert_index = info.access_index;
    slot.last_next_use = info.next_use;
    res.way = way;
    policy_->onInsert(set, way, info);
    return res;
}

bool
Cache::probe(std::uint64_t line) const
{
    const auto &lines = sets_[setOf(line)];
    for (const auto &l : lines) {
        if (l.valid && l.line == line)
            return true;
    }
    return false;
}

void
Cache::markDirty(std::uint64_t line)
{
    auto &lines = sets_[setOf(line)];
    for (auto &l : lines) {
        if (l.valid && l.line == line) {
            l.dirty = true;
            return;
        }
    }
}

bool
Cache::invalidate(std::uint64_t line)
{
    auto &lines = sets_[setOf(line)];
    for (auto &l : lines) {
        if (l.valid && l.line == line) {
            l.valid = false;
            l.dirty = false;
            return true;
        }
    }
    return false;
}

const std::vector<policy::LineMeta> &
Cache::linesOf(std::uint32_t set) const
{
    CM_ASSERT(set < cfg_.sets, "set index out of range");
    return sets_[set];
}

std::vector<std::uint64_t>
Cache::setScores(std::uint32_t set) const
{
    CM_ASSERT(set < cfg_.sets, "set index out of range");
    std::vector<std::uint64_t> scores(cfg_.ways, 0);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w)
        scores[w] = policy_->lineScore(set, w);
    return scores;
}

} // namespace cachemind::sim
