#include "sim/hierarchy.hh"

#include <sstream>

#include "base/logging.hh"
#include "policy/basic_policies.hh"

namespace cachemind::sim {

HierarchyConfig
defaultHierarchyConfig()
{
    HierarchyConfig cfg;
    cfg.l1i = CacheConfig{"L1I", 64, 8, 64, 4, 8};
    cfg.l1d = CacheConfig{"L1D", 64, 8, 64, 4, 16};
    cfg.l2 = CacheConfig{"L2", 1024, 8, 64, 12, 32};
    cfg.llc = CacheConfig{"LLC", 2048, 16, 64, 26, 64};
    cfg.dram = DramConfig{160};
    return cfg;
}

std::string
describeConfig(const HierarchyConfig &cfg)
{
    auto line = [](const CacheConfig &c) {
        std::ostringstream os;
        os << c.name << ": " << c.capacityBytes() / 1024 << " KB, "
           << c.sets << " sets, " << c.ways << " ways; " << c.latency
           << "-cycle latency; " << c.mshrs << "-entry MSHR";
        return os.str();
    };
    std::ostringstream os;
    os << "Processor: 1 core; 4 GHz; 6-wide fetch/decode/execute; "
          "4-wide retire; 352-entry ROB; 128-entry LQ; 72-entry SQ\n"
       << line(cfg.l1i) << "; LRU\n"
       << line(cfg.l1d) << "; LRU\n"
       << line(cfg.l2) << "; LRU\n"
       << line(cfg.llc) << "; pluggable replacement\n"
       << "DRAM: DDR4-3200; " << cfg.dram.latency
       << "-cycle round trip\n";
    return os.str();
}

Hierarchy::Hierarchy(HierarchyConfig cfg,
                     std::unique_ptr<policy::ReplacementPolicy> llc_policy)
    : cfg_(std::move(cfg))
{
    l1i_ = std::make_unique<Cache>(
        cfg_.l1i, std::make_unique<policy::LruPolicy>());
    l1d_ = std::make_unique<Cache>(
        cfg_.l1d, std::make_unique<policy::LruPolicy>());
    l2_ = std::make_unique<Cache>(
        cfg_.l2, std::make_unique<policy::LruPolicy>());
    CM_ASSERT(llc_policy != nullptr, "hierarchy needs an LLC policy");
    llc_ = std::make_unique<Cache>(cfg_.llc, std::move(llc_policy));
}

HierarchyOutcome
Hierarchy::access(std::uint64_t pc, std::uint64_t address,
                  trace::AccessType type)
{
    HierarchyOutcome out;
    const std::uint64_t idx = access_counter_++;

    policy::AccessInfo info;
    info.pc = pc;
    info.address = address;
    info.access_index = idx;
    info.type = type;

    // L1D.
    info.line = address / cfg_.l1d.line_bytes;
    const CacheAccessResult r1 = l1d_->access(info);
    out.latency = cfg_.l1d.latency;
    if (r1.evicted && r1.evicted_dirty) {
        // Dirty writeback into L2 (update-in-place or ignore on miss).
        l2_->markDirty(r1.evicted_line);
    }
    if (r1.hit) {
        out.level = ServiceLevel::L1;
        return out;
    }

    // L2.
    info.line = address / cfg_.l2.line_bytes;
    const CacheAccessResult r2 = l2_->access(info);
    out.latency += cfg_.l2.latency;
    if (r2.evicted && r2.evicted_dirty)
        llc_->markDirty(r2.evicted_line);
    if (r2.hit) {
        out.level = ServiceLevel::L2;
        return out;
    }

    // LLC: the demand stream the database is built from.
    if (llc_observer_)
        llc_observer_(pc, address, type);
    info.line = address / cfg_.llc.line_bytes;
    const CacheAccessResult r3 = llc_->access(info);
    out.latency += cfg_.llc.latency;
    if (r3.hit) {
        out.level = ServiceLevel::Llc;
        return out;
    }

    ++dram_accesses_;
    out.level = ServiceLevel::Dram;
    out.latency += cfg_.dram.latency;
    return out;
}

} // namespace cachemind::sim
