/**
 * @file
 * Text primitives for semantic retrieval: tokenizer, feature-hashing
 * sentence embedder, cosine similarity, and a brute-force vector
 * index.
 *
 * The embedder is a deterministic hashed bag-of-words over word
 * unigrams, bigrams, and character trigrams — the same family of
 * sparse-to-dense embeddings used by practical retrieval baselines.
 * It reproduces the paper's key observation about embedding-based RAG
 * on traces: two rows differing in a few hex digits map to nearly
 * identical vectors, so cosine retrieval cannot separate them
 * (§6.2, Figure 9).
 */

#ifndef CACHEMIND_TEXT_EMBEDDING_HH
#define CACHEMIND_TEXT_EMBEDDING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cachemind::text {

/** Lower-cased word tokens; hex literals are kept as single tokens. */
std::vector<std::string> tokenize(const std::string &text);

/** Cosine similarity of two equal-dimension vectors. */
double cosine(const std::vector<float> &a, const std::vector<float> &b);

/** Deterministic feature-hashing embedder. */
class HashEmbedder
{
  public:
    explicit HashEmbedder(std::size_t dims = 128);

    /** Embed text into an L2-normalised vector. */
    std::vector<float> embed(const std::string &text) const;

    std::size_t dims() const { return dims_; }

    /** Convenience: cosine similarity of two texts. */
    double similarity(const std::string &a, const std::string &b) const;

  private:
    void addFeature(std::vector<float> &v, const std::string &feat,
                    float weight) const;

    std::size_t dims_;
};

/** One retrieval hit from the vector index. */
struct IndexHit
{
    std::size_t doc = 0;
    double score = 0.0;
};

/**
 * Brute-force dense index (exact top-k). Documents carry a payload
 * string (rendered content) and an opaque tag for evaluation.
 */
class VectorIndex
{
  public:
    explicit VectorIndex(const HashEmbedder &embedder)
        : embedder_(embedder)
    {}

    /** Add a document; returns its id. */
    std::size_t add(std::string payload, std::string tag = "");

    /** Exact top-k by cosine similarity to the query text. */
    std::vector<IndexHit> topK(const std::string &query,
                               std::size_t k) const;

    const std::string &payload(std::size_t doc) const
    {
        return payloads_[doc];
    }
    const std::string &tag(std::size_t doc) const { return tags_[doc]; }
    std::size_t size() const { return payloads_.size(); }

  private:
    const HashEmbedder &embedder_;
    std::vector<std::vector<float>> vectors_;
    std::vector<std::string> payloads_;
    std::vector<std::string> tags_;
};

/**
 * Fuzzy name matcher: ranks candidate names against a query using a
 * blend of embedding similarity, token membership, and edit distance.
 * Used by Sieve's trace-level filtering to extract workload/policy
 * names from free text (§3.2.1).
 */
struct NameMatch
{
    std::string name;
    double score = 0.0;
};

std::vector<NameMatch> rankNames(const std::string &query,
                                 const std::vector<std::string> &names,
                                 const HashEmbedder &embedder);

} // namespace cachemind::text

#endif // CACHEMIND_TEXT_EMBEDDING_HH
