#include "text/embedding.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace cachemind::text {

std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string cur;
    const std::string lower = str::toLower(text);
    for (std::size_t i = 0; i < lower.size(); ++i) {
        const char c = lower[i];
        const bool word_char =
            std::isalnum(static_cast<unsigned char>(c)) || c == '_';
        if (word_char) {
            cur.push_back(c);
        } else {
            if (!cur.empty())
                tokens.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

double
cosine(const std::vector<float> &a, const std::vector<float> &b)
{
    CM_ASSERT(a.size() == b.size(), "cosine dims mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    if (na <= 0.0 || nb <= 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

HashEmbedder::HashEmbedder(std::size_t dims) : dims_(dims)
{
    CM_ASSERT(dims_ >= 8, "embedder needs at least 8 dims");
}

void
HashEmbedder::addFeature(std::vector<float> &v, const std::string &feat,
                         float weight) const
{
    const std::uint64_t h = fnv1a(feat);
    const std::size_t slot = static_cast<std::size_t>(h % dims_);
    // Signed hashing reduces collision bias.
    const float sign = (splitMix64(h) & 1) ? 1.0f : -1.0f;
    v[slot] += sign * weight;
}

std::vector<float>
HashEmbedder::embed(const std::string &text) const
{
    std::vector<float> v(dims_, 0.0f);
    const auto tokens = tokenize(text);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        addFeature(v, tokens[i], 1.0f);
        if (i + 1 < tokens.size())
            addFeature(v, tokens[i] + "_" + tokens[i + 1], 0.5f);
        // Character trigrams give robustness to morphology.
        const std::string &t = tokens[i];
        if (t.size() > 3) {
            for (std::size_t k = 0; k + 3 <= t.size(); ++k)
                addFeature(v, "#" + t.substr(k, 3), 0.25f);
        }
    }
    double norm = 0.0;
    for (const float x : v)
        norm += static_cast<double>(x) * x;
    if (norm > 0.0) {
        const float inv = static_cast<float>(1.0 / std::sqrt(norm));
        for (float &x : v)
            x *= inv;
    }
    return v;
}

double
HashEmbedder::similarity(const std::string &a, const std::string &b)
    const
{
    return cosine(embed(a), embed(b));
}

std::size_t
VectorIndex::add(std::string payload, std::string tag)
{
    vectors_.push_back(embedder_.embed(payload));
    payloads_.push_back(std::move(payload));
    tags_.push_back(std::move(tag));
    return payloads_.size() - 1;
}

std::vector<IndexHit>
VectorIndex::topK(const std::string &query, std::size_t k) const
{
    const auto q = embedder_.embed(query);
    std::vector<IndexHit> hits;
    hits.reserve(vectors_.size());
    for (std::size_t i = 0; i < vectors_.size(); ++i)
        hits.push_back(IndexHit{i, cosine(q, vectors_[i])});
    const std::size_t keep = std::min(k, hits.size());
    std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(),
                      [](const IndexHit &a, const IndexHit &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.doc < b.doc;
                      });
    hits.resize(keep);
    return hits;
}

std::vector<NameMatch>
rankNames(const std::string &query,
          const std::vector<std::string> &names,
          const HashEmbedder &embedder)
{
    const auto tokens = tokenize(query);
    const auto qvec = embedder.embed(query);
    std::vector<NameMatch> out;
    for (const auto &name : names) {
        double score = cosine(qvec, embedder.embed(name));
        // Exact token membership dominates.
        for (const auto &tok : tokens) {
            if (tok == str::toLower(name)) {
                score += 1.0;
                break;
            }
        }
        // Light fuzzy credit for near-miss spellings ("beladys").
        std::size_t best_ed = name.size();
        for (const auto &tok : tokens)
            best_ed = std::min(best_ed,
                               str::editDistance(tok,
                                                 str::toLower(name)));
        if (best_ed <= 2 && name.size() > 3)
            score += 0.5 * (3.0 - static_cast<double>(best_ed)) / 3.0;
        out.push_back(NameMatch{name, score});
    }
    std::sort(out.begin(), out.end(),
              [](const NameMatch &a, const NameMatch &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.name < b.name;
              });
    return out;
}

} // namespace cachemind::text
