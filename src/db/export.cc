#include "db/export.hh"

#include <ostream>
#include <sstream>

#include "base/str.hh"

namespace cachemind::db {

namespace {

/** CSV-quote a field if it contains separators or quotes. */
std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (const char c : value) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

std::string
pairList(const std::vector<PcAddr> &pairs)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        os << (i ? ";" : "") << str::hex(pairs[i].pc) << ":"
           << str::hex(pairs[i].address);
    }
    return os.str();
}

} // namespace

std::string
csvHeader(const ExportOptions &options)
{
    std::string header =
        "index,program_counter,memory_address,cache_set_id,evict,"
        "miss_type,evicted_address,accessed_address_reuse_distance,"
        "accessed_address_recency,evicted_address_reuse_distance,"
        "wrong_eviction,accessed_address_recency_text,function_name";
    if (options.include_snapshots) {
        header += ",current_cache_lines,cache_line_eviction_scores,"
                  "recent_access_history";
    }
    return header;
}

std::string
csvRow(const TraceTable &table, std::size_t i,
       const ExportOptions &options)
{
    const AccessRow row = table.row(i);
    std::ostringstream os;
    os << row.index << "," << str::hex(row.program_counter) << ","
       << str::hex(row.memory_address) << "," << row.cache_set_id
       << "," << (row.is_miss ? "Cache Miss" : "Cache Hit") << ","
       << sim::missTypeName(row.miss_type) << ","
       << (row.has_victim ? str::hex(row.evicted_address) : "") << ","
       << row.accessed_reuse_distance << "," << row.accessed_recency
       << "," << row.evicted_reuse_distance << ","
       << (row.wrong_eviction ? 1 : 0) << ","
       << csvField(row.recency_text) << ","
       << csvField(row.function_name);
    if (options.include_snapshots) {
        std::ostringstream scores;
        for (std::size_t k = 0;
             k < row.cache_line_eviction_scores.size(); ++k) {
            scores << (k ? ";" : "")
                   << row.cache_line_eviction_scores[k];
        }
        os << "," << csvField(pairList(row.current_cache_lines)) << ","
           << csvField(scores.str()) << ","
           << csvField(pairList(row.recent_access_history));
    }
    return os.str();
}

void
exportEntryCsv(const TraceEntry &entry, std::ostream &os,
               const ExportOptions &options)
{
    os << csvHeader(options) << "\n";
    const std::size_t n =
        options.max_rows
            ? std::min(options.max_rows, entry.table.size())
            : entry.table.size();
    for (std::size_t i = 0; i < n; ++i)
        os << csvRow(entry.table, i, options) << "\n";
}

void
exportManifest(const TraceDatabase &db, std::ostream &os)
{
    os << "# CacheMind trace-database manifest\n";
    for (const auto &key : db.keys()) {
        const TraceEntry *entry = db.find(key);
        os << "\n[" << key << "]\n";
        os << "workload = " << entry->workload << "\n";
        os << "policy = " << entry->policy << "\n";
        os << "rows = " << entry->table.size() << "\n";
        // Scan variant: a manifest dump only needs the count, and
        // must not force (and retain) a postings-index build.
        os << "unique_pcs = " << entry->table.uniquePcsScan().size()
           << "\n";
        os << "description = " << csvField(entry->description) << "\n";
        os << "metadata = " << csvField(entry->metadata) << "\n";
    }
}

} // namespace cachemind::db
