/**
 * @file
 * The "Cache Statistical Expert" (§3.2.3): per-PC, per-set, and
 * whole-trace aggregate statistics computed from a TraceTable. Both
 * retrievers use it to assemble context, and the benchmark generator
 * uses it as the single source of ground truth.
 */

#ifndef CACHEMIND_DB_STATS_EXPERT_HH
#define CACHEMIND_DB_STATS_EXPERT_HH

#include <map>
#include <optional>
#include <vector>

#include "db/table.hh"

namespace cachemind::db {

/** Per-PC aggregates. */
struct PcStats
{
    std::uint64_t pc = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Accesses that caused an eviction. */
    std::uint64_t evictions_caused = 0;
    std::uint64_t wrong_evictions = 0;
    /** Accesses whose line is never used again. */
    std::uint64_t never_reused = 0;

    /** Mean forward reuse distance over finite samples. */
    double mean_reuse_distance = 0.0;
    double reuse_distance_stdev = 0.0;
    /** Mean forward reuse distance of lines this PC evicted. */
    double mean_evicted_reuse_distance = 0.0;
    /** Mean backward recency over finite samples. */
    double mean_recency = 0.0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
    double hitRate() const { return accesses ? 1.0 - missRate() : 0.0; }
    double
    wrongEvictionPct() const
    {
        return evictions_caused
                   ? 100.0 * static_cast<double>(wrong_evictions) /
                         static_cast<double>(evictions_caused)
                   : 0.0;
    }
};

/** Per-set aggregates (the set-hotness use case). */
struct SetStats
{
    std::uint32_t set = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Whole-trace aggregates (the metadata summary string). */
struct TraceSummary
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t wrong_evictions = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;
    std::uint64_t unique_pcs = 0;
    /** Pearson correlation of recency vs miss outcome. */
    double recency_miss_correlation = 0.0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
    double
    wrongEvictionPct() const
    {
        return evictions ? 100.0 * static_cast<double>(wrong_evictions) /
                               static_cast<double>(evictions)
                         : 0.0;
    }
};

/**
 * Aggregator over one TraceTable. All statistics are computed once at
 * construction (single pass where possible) and served from maps.
 */
class StatsExpert
{
  public:
    explicit StatsExpert(const TraceTable &table);

    /** Stats for one PC; nullopt if the PC never appears. */
    std::optional<PcStats> pcStats(std::uint64_t pc) const;

    /** All per-PC stats, ascending by PC. */
    std::vector<PcStats> allPcStats() const;

    /** Stats for one set; nullopt if never touched. */
    std::optional<SetStats> setStats(std::uint32_t set) const;

    /** All touched sets, ascending. */
    std::vector<SetStats> allSetStats() const;

    /** Whole-trace summary. */
    const TraceSummary &summary() const { return summary_; }

    /** Hottest/coldest `n` sets by hit rate (ties by set id). */
    std::vector<SetStats> hottestSets(std::size_t n) const;
    std::vector<SetStats> coldestSets(std::size_t n) const;

    /** PCs ordered by a descending metric. */
    enum class PcOrder { MissCount, MissRate, Accesses,
                         MeanReuseDistance, ReuseStdev };
    std::vector<PcStats> topPcs(std::size_t n, PcOrder order) const;

  private:
    const TraceTable &table_;
    std::map<std::uint64_t, PcStats> pc_stats_;
    std::map<std::uint32_t, SetStats> set_stats_;
    TraceSummary summary_;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_STATS_EXPERT_HH
