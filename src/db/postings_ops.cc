#include "db/postings_ops.hh"

#include <algorithm>

// SIMD gating. This translation unit is compiled with -msse4.2/-mavx2
// (see CMakeLists); nothing SIMD leaks into headers, so the rest of
// the codebase keeps the default codegen. CACHEMIND_DISABLE_SIMD
// forces the scalar fallback everywhere, which the dedicated CI
// column builds and tests.
#if !defined(CACHEMIND_DISABLE_SIMD) && defined(__x86_64__) &&                 \
    defined(__SSE4_2__)
#define CACHEMIND_POSTINGS_SSE42 1
#endif
#if !defined(CACHEMIND_DISABLE_SIMD) && defined(__x86_64__) &&                 \
    defined(__AVX2__)
#define CACHEMIND_POSTINGS_AVX2 1
#endif
#if defined(CACHEMIND_POSTINGS_SSE42) || defined(CACHEMIND_POSTINGS_AVX2)
#include <immintrin.h>
#endif

namespace cachemind::db {

namespace {

void bump(std::atomic<std::uint64_t> &c, std::uint64_t n = 1)
{
    c.fetch_add(n, std::memory_order_relaxed);
}

// Compiled-in SIMD still needs the running CPU to agree: the binary
// may be built on a newer machine than it runs on.
bool cpuHasSse42()
{
#if defined(CACHEMIND_POSTINGS_SSE42)
    static const bool ok = __builtin_cpu_supports("sse4.2");
    return ok;
#else
    return false;
#endif
}

bool cpuHasAvx2()
{
#if defined(CACHEMIND_POSTINGS_AVX2)
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
#else
    return false;
#endif
}

void decodeWord(std::uint64_t word, std::uint32_t bit_base,
                std::vector<std::uint32_t> &out)
{
    while (word != 0) {
        out.push_back(bit_base +
                      static_cast<std::uint32_t>(__builtin_ctzll(word)));
        word &= word - 1;
    }
}

/**
 * Exponential probe + binary search for the first element >= v,
 * starting at `from` — the same shape as the previous flat-CSR
 * galloping, on uint16 chunk values.
 */
std::size_t gallopLowerBound(const std::uint16_t *d, std::size_t n,
                             std::size_t from, std::uint16_t v)
{
    if (from >= n || d[from] >= v)
        return from;
    std::size_t lo = from;
    std::size_t hi = from + 1;
    std::size_t step = 1;
    while (hi < n && d[hi] < v) {
        lo = hi;
        hi += step;
        step <<= 1;
    }
    if (hi > n)
        hi = n;
    return static_cast<std::size_t>(std::lower_bound(d + lo, d + hi, v) - d);
}

/** Skewed array pair: iterate the smaller side, gallop in the larger. */
std::size_t gallopIntersect(const std::uint16_t *a, std::size_t na,
                            const std::uint16_t *b, std::size_t nb,
                            std::uint16_t *outb,
                            PostingsOpsCounters *counters)
{
    if (na > nb)
        return gallopIntersect(b, nb, a, na, outb, counters);
    std::size_t m = 0;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < na; ++i) {
        const std::uint16_t v = a[i];
        pos = gallopLowerBound(b, nb, pos, v);
        if (pos == nb)
            break;
        if (b[pos] == v)
            outb[m++] = v;
    }
    if (counters != nullptr)
        bump(counters->scalar_ops, na);
    return m;
}

/** Mandatory fallback: textbook two-pointer merge intersection. */
std::size_t scalarMerge(const std::uint16_t *a, std::size_t na,
                        const std::uint16_t *b, std::size_t nb,
                        std::uint16_t *outb)
{
    std::size_t i = 0;
    std::size_t j = 0;
    std::size_t m = 0;
    while (i < na && j < nb) {
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            outb[m++] = a[i];
            ++i;
            ++j;
        }
    }
    return m;
}

#if defined(CACHEMIND_POSTINGS_SSE42)

/**
 * For every 8-bit match mask, the pshufb control that compacts the
 * matched uint16 lanes to the front of the vector.
 */
struct ShuffleTable
{
    std::uint8_t m[256][16];

    ShuffleTable()
    {
        for (int mask = 0; mask < 256; ++mask) {
            int pos = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if ((mask & (1 << bit)) != 0) {
                    m[mask][2 * pos] = static_cast<std::uint8_t>(2 * bit);
                    m[mask][2 * pos + 1] =
                        static_cast<std::uint8_t>(2 * bit + 1);
                    ++pos;
                }
            }
            for (; pos < 8; ++pos) {
                m[mask][2 * pos] = 0x80;
                m[mask][2 * pos + 1] = 0x80;
            }
        }
    }
};

const ShuffleTable kShuffle;

/**
 * Blockwise 8x8 uint16 intersection: each round compares one 8-lane
 * block of `a` against one of `b` with PCMPESTRM (EQUAL_ANY — explicit
 * lengths, so a legitimate 0 value is not treated as a terminator),
 * compacts the matched lanes with one shuffle, and advances whichever
 * block has the smaller maximum. `outb` needs 8 lanes of slack past
 * the true match count for the unconditional store.
 */
std::size_t simdMerge(const std::uint16_t *a, std::size_t na,
                      const std::uint16_t *b, std::size_t nb,
                      std::uint16_t *outb, PostingsOpsCounters *counters)
{
    std::size_t i = 0;
    std::size_t j = 0;
    std::size_t m = 0;
    std::uint64_t blocks = 0;
    while (i + 8 <= na && j + 8 <= nb) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + j));
        const __m128i hits = _mm_cmpestrm(
            vb, 8, va, 8,
            _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
        const int mask = _mm_extract_epi32(hits, 0);
        const __m128i ctrl = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(kShuffle.m[mask]));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(outb + m),
                         _mm_shuffle_epi8(va, ctrl));
        m += static_cast<std::size_t>(__builtin_popcount(
            static_cast<unsigned>(mask)));
        ++blocks;
        const std::uint16_t amax = a[i + 7];
        const std::uint16_t bmax = b[j + 7];
        if (amax <= bmax)
            i += 8;
        if (bmax <= amax)
            j += 8;
    }
    if (counters != nullptr)
        bump(counters->simd_ops, blocks);
    // Scalar tail once either side has fewer than 8 lanes left.
    while (i < na && j < nb) {
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            outb[m++] = a[i];
            ++i;
            ++j;
        }
    }
    return m;
}

#endif // CACHEMIND_POSTINGS_SSE42

void bitmapAnd(const std::uint64_t *aw, const std::uint64_t *bw,
               std::uint32_t base, std::vector<std::uint32_t> &out,
               PostingsOpsCounters *counters)
{
#if defined(CACHEMIND_POSTINGS_AVX2)
    if (cpuHasAvx2()) {
        std::uint64_t blocks = 0;
        for (std::uint32_t w = 0; w < kPostingsBitmapWords; w += 4) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(aw + w));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(bw + w));
            const __m256i x = _mm256_and_si256(va, vb);
            ++blocks;
            if (_mm256_testz_si256(x, x) != 0)
                continue;
            alignas(32) std::uint64_t tmp[4];
            _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), x);
            for (std::uint32_t t = 0; t < 4; ++t)
                decodeWord(tmp[t], base + (w + t) * 64, out);
        }
        if (counters != nullptr)
            bump(counters->simd_ops, blocks);
        return;
    }
#endif
    for (std::uint32_t w = 0; w < kPostingsBitmapWords; ++w)
        decodeWord(aw[w] & bw[w], base + w * 64, out);
    if (counters != nullptr)
        bump(counters->scalar_ops, kPostingsBitmapWords);
}

void bitmapProbe(const std::uint64_t *words, const std::uint16_t *vals,
                 std::uint32_t n, std::uint32_t base,
                 std::vector<std::uint32_t> &out,
                 PostingsOpsCounters *counters)
{
    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint16_t v = vals[k];
        if (((words[v >> 6] >> (v & 63)) & 1) != 0)
            out.push_back(base | v);
    }
    if (counters != nullptr)
        bump(counters->scalar_ops, n);
}

void intersectChunkPair(const PostingsChunk &ca, const PostingsList &a,
                        const PostingsChunk &cb, const PostingsList &b,
                        std::vector<std::uint32_t> &out,
                        PostingsOpsCounters *counters,
                        IntersectKernel force)
{
    const std::uint32_t base = ca.base;
    const bool a_bitmap = ca.kind == PostingsChunk::Bitmap;
    const bool b_bitmap = cb.kind == PostingsChunk::Bitmap;
    if (a_bitmap && b_bitmap) {
        if (counters != nullptr)
            bump(counters->bitmap_words);
        bitmapAnd(a.bitmap_pool + ca.data_off, b.bitmap_pool + cb.data_off,
                  base, out, counters);
        return;
    }
    if (a_bitmap || b_bitmap) {
        if (counters != nullptr)
            bump(counters->bitmap_probe);
        const std::uint64_t *words = a_bitmap
                                         ? a.bitmap_pool + ca.data_off
                                         : b.bitmap_pool + cb.data_off;
        const std::uint16_t *vals = a_bitmap
                                        ? b.array_pool + cb.data_off
                                        : a.array_pool + ca.data_off;
        const std::uint32_t n = a_bitmap ? cb.count : ca.count;
        bitmapProbe(words, vals, n, base, out, counters);
        return;
    }

    const std::uint16_t *pa = a.array_pool + ca.data_off;
    const std::uint16_t *pb = b.array_pool + cb.data_off;
    const std::size_t na = ca.count;
    const std::size_t nb = cb.count;
    // 8 lanes of slack for the SIMD kernel's unconditional store.
    std::uint16_t buf[kPostingsArrayMax + 8];

    bool gallop = false;
    switch (force) {
    case IntersectKernel::Galloping:
        gallop = true;
        break;
    case IntersectKernel::Merge:
        gallop = false;
        break;
    case IntersectKernel::Auto:
        gallop = std::min(na, nb) * kGallopSkewRatio <= std::max(na, nb);
        break;
    }

    std::size_t m = 0;
    if (gallop) {
        if (counters != nullptr)
            bump(counters->galloping);
        m = gallopIntersect(pa, na, pb, nb, buf, counters);
    } else {
#if defined(CACHEMIND_POSTINGS_SSE42)
        if (cpuHasSse42()) {
            if (counters != nullptr)
                bump(counters->merge_simd);
            m = simdMerge(pa, na, pb, nb, buf, counters);
        } else
#endif
        {
            if (counters != nullptr) {
                bump(counters->merge_scalar);
                bump(counters->scalar_ops, na + nb);
            }
            m = scalarMerge(pa, na, pb, nb, buf);
        }
    }
    for (std::size_t k = 0; k < m; ++k)
        out.push_back(base | buf[k]);
}

} // namespace

void PostingsStore::reserve(std::size_t total_rows,
                            std::size_t total_keys)
{
    key_off_.reserve(total_keys + 1);
    key_total_.reserve(total_keys);
    chunks_.reserve(total_keys);
    array_pool_.reserve(total_rows);
}

void PostingsStore::appendKey(const std::uint32_t *rows, std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    while (i < n) {
        const std::uint32_t chunk = rows[i] >> kPostingsChunkBits;
        std::size_t j = i;
        while (j < n && (rows[j] >> kPostingsChunkBits) == chunk)
            ++j;
        PostingsChunk c;
        c.base = chunk << kPostingsChunkBits;
        c.count = static_cast<std::uint32_t>(j - i);
        if (c.count > kPostingsArrayMax) {
            c.kind = PostingsChunk::Bitmap;
            c.data_off = static_cast<std::uint32_t>(bitmap_pool_.size());
            bitmap_pool_.resize(bitmap_pool_.size() + kPostingsBitmapWords,
                                0);
            std::uint64_t *words = bitmap_pool_.data() + c.data_off;
            for (std::size_t k = i; k < j; ++k) {
                const std::uint32_t low =
                    rows[k] & (kPostingsChunkSize - 1);
                words[low >> 6] |= std::uint64_t{1} << (low & 63);
            }
            ++bitmap_chunks_;
        } else {
            c.kind = PostingsChunk::Array;
            c.data_off = static_cast<std::uint32_t>(array_pool_.size());
            array_pool_.resize(array_pool_.size() + c.count);
            std::uint16_t *dst = array_pool_.data() + c.data_off;
            for (std::size_t k = i; k < j; ++k)
                dst[k - i] = static_cast<std::uint16_t>(
                    rows[k] & (kPostingsChunkSize - 1));
            ++array_chunks_;
        }
        chunks_.push_back(c);
        total += c.count;
        i = j;
    }
    key_off_.push_back(static_cast<std::uint32_t>(chunks_.size()));
    key_total_.push_back(total);
}

void PostingsStore::shrink()
{
    key_off_.shrink_to_fit();
    key_total_.shrink_to_fit();
    chunks_.shrink_to_fit();
    array_pool_.shrink_to_fit();
    bitmap_pool_.shrink_to_fit();
}

PostingsList PostingsStore::list(std::size_t key) const
{
    PostingsList l;
    if (key + 1 >= key_off_.size())
        return l;
    const std::uint32_t b = key_off_[key];
    const std::uint32_t e = key_off_[key + 1];
    l.chunks = chunks_.data() + b;
    l.num_chunks = e - b;
    l.total = key_total_[key];
    l.array_pool = array_pool_.data();
    l.bitmap_pool = bitmap_pool_.data();
    return l;
}

std::size_t PostingsStore::payloadBytes() const
{
    return array_pool_.size() * sizeof(std::uint16_t) +
           bitmap_pool_.size() * sizeof(std::uint64_t) +
           chunks_.size() * sizeof(PostingsChunk);
}

void intersectLists(const PostingsList &a, const PostingsList &b,
                    std::size_t limit, std::vector<std::uint32_t> &out,
                    PostingsOpsCounters *counters, IntersectKernel force)
{
    out.clear();
    if (a.empty() || b.empty())
        return;
    std::uint32_t ia = 0;
    std::uint32_t ib = 0;
    while (ia < a.num_chunks && ib < b.num_chunks) {
        const PostingsChunk &ca = a.chunks[ia];
        const PostingsChunk &cb = b.chunks[ib];
        if (ca.base < cb.base) {
            ++ia;
            continue;
        }
        if (cb.base < ca.base) {
            ++ib;
            continue;
        }
        intersectChunkPair(ca, a, cb, b, out, counters, force);
        ++ia;
        ++ib;
        // Early exit is chunk-granular: a chunk's matches are cheap to
        // overshoot (<= 64K) and truncating afterwards keeps every
        // kernel limit-oblivious, hence trivially byte-identical.
        if (limit != 0 && out.size() >= limit) {
            out.resize(limit);
            return;
        }
    }
}

void decodeList(const PostingsList &list, std::vector<std::uint32_t> &out,
                std::size_t limit)
{
    out.clear();
    const std::uint64_t want =
        limit == 0 ? list.total
                   : std::min<std::uint64_t>(list.total, limit);
    out.reserve(static_cast<std::size_t>(want));
    for (std::uint32_t ci = 0; ci < list.num_chunks; ++ci) {
        const PostingsChunk &c = list.chunks[ci];
        if (c.kind == PostingsChunk::Array) {
            const std::uint16_t *p = list.array_pool + c.data_off;
            for (std::uint32_t k = 0; k < c.count; ++k)
                out.push_back(c.base | p[k]);
        } else {
            const std::uint64_t *w = list.bitmap_pool + c.data_off;
            for (std::uint32_t wi = 0; wi < kPostingsBitmapWords; ++wi)
                decodeWord(w[wi], c.base + wi * 64, out);
        }
        if (limit != 0 && out.size() >= limit) {
            out.resize(limit);
            return;
        }
    }
}

bool simdCompiled() { return cpuHasSse42() || cpuHasAvx2(); }

} // namespace cachemind::db
