#include "db/stats_expert.hh"

#include <algorithm>
#include <cmath>

#include "base/stats_util.hh"

namespace cachemind::db {

namespace {

/** Welford accumulators grouped per PC for reuse-distance stdev. */
struct PcAccum
{
    stats::RunningStats reuse;
    stats::RunningStats evicted_reuse;
    stats::RunningStats recency;
};

} // namespace

StatsExpert::StatsExpert(const TraceTable &table) : table_(table)
{
    std::map<std::uint64_t, PcAccum> accum;

    std::vector<double> recency_samples;
    std::vector<double> miss_samples;
    recency_samples.reserve(table.size());
    miss_samples.reserve(table.size());

    for (std::size_t i = 0; i < table.size(); ++i) {
        const std::uint64_t pc = table.pcAt(i);
        PcStats &ps = pc_stats_[pc];
        PcAccum &pa = accum[pc];
        ps.pc = pc;
        ++ps.accesses;
        ++summary_.accesses;

        const bool miss = table.isMissAt(i);
        if (miss) {
            ++ps.misses;
            ++summary_.misses;
        } else {
            ++ps.hits;
        }
        switch (table.missTypeAt(i)) {
          case sim::MissType::Compulsory: ++summary_.compulsory; break;
          case sim::MissType::Capacity: ++summary_.capacity; break;
          case sim::MissType::Conflict: ++summary_.conflict; break;
          case sim::MissType::None: break;
        }
        if (table.bypassedAt(i))
            ++summary_.bypasses;
        if (table.hasVictimAt(i)) {
            ++ps.evictions_caused;
            ++summary_.evictions;
            if (table.wrongEvictionAt(i)) {
                ++ps.wrong_evictions;
                ++summary_.wrong_evictions;
            }
            const std::int64_t erd = table.evictedReuseDistanceAt(i);
            if (erd != kNoValue)
                pa.evicted_reuse.push(static_cast<double>(erd));
        }

        const std::int64_t rd = table.reuseDistanceAt(i);
        if (rd != kNoValue) {
            pa.reuse.push(static_cast<double>(rd));
        } else {
            ++ps.never_reused;
        }
        const std::int64_t rec = table.recencyAt(i);
        if (rec != kNoValue) {
            pa.recency.push(static_cast<double>(rec));
            recency_samples.push_back(static_cast<double>(rec));
            miss_samples.push_back(miss ? 1.0 : 0.0);
        }

        SetStats &ss = set_stats_[table.setAt(i)];
        ss.set = table.setAt(i);
        ++ss.accesses;
        if (!miss)
            ++ss.hits;
    }

    for (auto &[pc, ps] : pc_stats_) {
        const PcAccum &pa = accum[pc];
        ps.mean_reuse_distance = pa.reuse.mean();
        ps.reuse_distance_stdev = pa.reuse.stdev();
        ps.mean_evicted_reuse_distance = pa.evicted_reuse.mean();
        ps.mean_recency = pa.recency.mean();
    }

    summary_.unique_pcs = pc_stats_.size();
    summary_.recency_miss_correlation =
        stats::pearson(recency_samples, miss_samples);
}

std::optional<PcStats>
StatsExpert::pcStats(std::uint64_t pc) const
{
    const auto it = pc_stats_.find(pc);
    if (it == pc_stats_.end())
        return std::nullopt;
    return it->second;
}

std::vector<PcStats>
StatsExpert::allPcStats() const
{
    std::vector<PcStats> out;
    out.reserve(pc_stats_.size());
    for (const auto &[pc, ps] : pc_stats_)
        out.push_back(ps);
    return out;
}

std::optional<SetStats>
StatsExpert::setStats(std::uint32_t set) const
{
    const auto it = set_stats_.find(set);
    if (it == set_stats_.end())
        return std::nullopt;
    return it->second;
}

std::vector<SetStats>
StatsExpert::allSetStats() const
{
    std::vector<SetStats> out;
    out.reserve(set_stats_.size());
    for (const auto &[set, ss] : set_stats_)
        out.push_back(ss);
    return out;
}

std::vector<SetStats>
StatsExpert::hottestSets(std::size_t n) const
{
    auto sets = allSetStats();
    std::sort(sets.begin(), sets.end(),
              [](const SetStats &a, const SetStats &b) {
                  if (a.hitRate() != b.hitRate())
                      return a.hitRate() > b.hitRate();
                  return a.set < b.set;
              });
    if (sets.size() > n)
        sets.resize(n);
    return sets;
}

std::vector<SetStats>
StatsExpert::coldestSets(std::size_t n) const
{
    auto sets = allSetStats();
    std::sort(sets.begin(), sets.end(),
              [](const SetStats &a, const SetStats &b) {
                  if (a.hitRate() != b.hitRate())
                      return a.hitRate() < b.hitRate();
                  return a.set < b.set;
              });
    if (sets.size() > n)
        sets.resize(n);
    return sets;
}

std::vector<PcStats>
StatsExpert::topPcs(std::size_t n, PcOrder order) const
{
    auto pcs = allPcStats();
    auto metric = [order](const PcStats &p) -> double {
        switch (order) {
          case PcOrder::MissCount:
            return static_cast<double>(p.misses);
          case PcOrder::MissRate: return p.missRate();
          case PcOrder::Accesses:
            return static_cast<double>(p.accesses);
          case PcOrder::MeanReuseDistance:
            return p.mean_reuse_distance;
          case PcOrder::ReuseStdev: return p.reuse_distance_stdev;
        }
        return 0.0;
    };
    std::sort(pcs.begin(), pcs.end(),
              [&metric](const PcStats &a, const PcStats &b) {
                  const double ma = metric(a), mb = metric(b);
                  if (ma != mb)
                      return ma > mb;
                  return a.pc < b.pc;
              });
    if (pcs.size() > n)
        pcs.resize(n);
    return pcs;
}

} // namespace cachemind::db
