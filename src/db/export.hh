/**
 * @file
 * Artifact export for the trace database: per-trace CSV dataframes
 * (the §4.3 schema, flat columns) and metadata/description dumps —
 * the open-artifact format the paper promises alongside
 * CacheMindBench.
 */

#ifndef CACHEMIND_DB_EXPORT_HH
#define CACHEMIND_DB_EXPORT_HH

#include <iosfwd>
#include <string>

#include "db/database.hh"

namespace cachemind::db {

/** Options controlling CSV export. */
struct ExportOptions
{
    /** Cap on exported rows (0 = all). */
    std::size_t max_rows = 0;
    /** Include the snapshot/history columns (wide rows). */
    bool include_snapshots = true;
};

/** CSV header line for the per-access schema. */
std::string csvHeader(const ExportOptions &options = ExportOptions{});

/** Render one row as a CSV line (no trailing newline). */
std::string csvRow(const TraceTable &table, std::size_t i,
                   const ExportOptions &options = ExportOptions{});

/** Stream one trace entry as CSV (header + rows). */
void exportEntryCsv(const TraceEntry &entry, std::ostream &os,
                    const ExportOptions &options = ExportOptions{});

/**
 * Stream the whole database as a manifest: one block per entry with
 * key, description, metadata, and row/PC counts.
 */
void exportManifest(const TraceDatabase &db, std::ostream &os);

} // namespace cachemind::db

#endif // CACHEMIND_DB_EXPORT_HH
