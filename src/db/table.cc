#include "db/table.hh"

#include <algorithm>

#include "base/failpoint.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "db/index.hh"

namespace cachemind::db {

// Out of line: LazyIndex holds a unique_ptr<TraceIndex>, so these
// need TraceIndex complete (db/index.hh is a .cc-only include).
TraceTable::TraceTable() : lazy_(std::make_unique<LazyIndex>()) {}
TraceTable::~TraceTable() = default;
TraceTable::TraceTable(TraceTable &&) noexcept = default;
TraceTable &TraceTable::operator=(TraceTable &&) noexcept = default;

const TraceIndex &
TraceTable::index() const
{
    const TraceIndex *idx = indexOrFallback();
    CM_ASSERT(idx != nullptr, "postings index build failed");
    return *idx;
}

const TraceIndex *
TraceTable::indexOrFallback() const
{
    std::call_once(lazy_->once, [this] {
        try {
            fail::maybeThrow("db.index_build");
            lazy_->index = std::make_unique<TraceIndex>(*this);
            lazy_->built.store(true, std::memory_order_release);
        } catch (...) {
            // The once_flag is flipped (the lambda returned), so the
            // failure is permanent for this table: concurrent and
            // future readers all take the scan path.
            lazy_->failed.store(true, std::memory_order_release);
        }
    });
    return lazy_->built.load(std::memory_order_acquire)
               ? lazy_->index.get()
               : nullptr;
}

bool
TraceTable::indexBuildFailed() const
{
    return lazy_->failed.load(std::memory_order_acquire);
}

const TraceIndex *
TraceTable::indexIfBuilt() const
{
    return lazy_->built.load(std::memory_order_acquire)
               ? lazy_->index.get()
               : nullptr;
}

void
TraceTable::reserve(std::size_t n)
{
    pc_id_.reserve(n);
    addr_id_.reserve(n);
    set_.reserve(n);
    flags_.reserve(n);
    miss_type_.reserve(n);
    reuse_.reserve(n);
    recency_.reserve(n);
    evicted_reuse_.reserve(n);
    evicted_line_id_.reserve(n);
    evicted_pc_id_.reserve(n);
    snap_off_.reserve(n + 1);
    score_off_.reserve(n + 1);
}

std::uint32_t
TraceTable::internPc(std::uint64_t pc)
{
    auto [it, inserted] =
        pc_lookup_.emplace(pc, static_cast<std::uint32_t>(pcs_.size()));
    if (inserted)
        pcs_.push_back(pc);
    return it->second;
}

std::uint32_t
TraceTable::internAddr(std::uint64_t addr)
{
    auto [it, inserted] = addr_lookup_.emplace(
        addr, static_cast<std::uint32_t>(addrs_.size()));
    if (inserted)
        addrs_.push_back(addr);
    return it->second;
}

std::uint32_t
TraceTable::internLine(std::uint64_t line)
{
    auto [it, inserted] = line_lookup_.emplace(
        line, static_cast<std::uint32_t>(lines_.size()));
    if (inserted)
        lines_.push_back(line);
    return it->second;
}

namespace {

std::int64_t
toSigned(std::uint64_t v)
{
    return v == policy::kNoNextUse ? kNoValue
                                   : static_cast<std::int64_t>(v);
}

} // namespace

void
TraceTable::append(const sim::ReplayEvent &ev,
                   const std::vector<PcAddr> &history)
{
    if (snap_off_.empty()) {
        snap_off_.push_back(0);
        score_off_.push_back(0);
    }
    if (history_len_ == 0 && !history.empty())
        history_len_ = static_cast<std::uint32_t>(history.size());

    pc_id_.push_back(internPc(ev.pc));
    addr_id_.push_back(internAddr(ev.address));
    set_.push_back(ev.set);

    std::uint8_t flags = 0;
    if (!ev.hit)
        flags |= kMissBit;
    if (ev.bypassed)
        flags |= kBypassBit;
    if (ev.has_victim)
        flags |= kVictimBit;
    if (ev.wrong_eviction)
        flags |= kWrongBit;
    flags_.push_back(flags);
    miss_type_.push_back(static_cast<std::uint8_t>(ev.miss_type));

    reuse_.push_back(toSigned(ev.reuse_distance));
    recency_.push_back(toSigned(ev.recency));
    evicted_reuse_.push_back(toSigned(ev.evicted_reuse_distance));
    evicted_line_id_.push_back(
        ev.has_victim ? internLine(ev.evicted_line) : 0);
    evicted_pc_id_.push_back(ev.has_victim ? internPc(ev.evicted_pc)
                                           : 0);

    for (const auto &entry : ev.snapshot) {
        snap_pc_id_.push_back(internPc(entry.pc));
        snap_line_id_.push_back(internLine(entry.line));
    }
    snap_off_.push_back(static_cast<std::uint32_t>(snap_pc_id_.size()));

    for (const auto score : ev.scores) {
        scores_.push_back(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(score, 0xffffffffULL)));
    }
    score_off_.push_back(static_cast<std::uint32_t>(scores_.size()));

    std::uint8_t count = 0;
    for (const auto &h : history) {
        hist_pc_id_.push_back(internPc(h.pc));
        hist_addr_id_.push_back(internAddr(h.address));
        ++count;
    }
    // Pad so the pool stays fixed-width per row.
    for (std::uint32_t i = count; i < history_len_; ++i) {
        hist_pc_id_.push_back(0);
        hist_addr_id_.push_back(0);
    }
    hist_count_.push_back(count);
}

std::uint64_t
TraceTable::evictedAddressAt(std::size_t i) const
{
    if (!hasVictimAt(i))
        return 0;
    return lines_[evicted_line_id_[i]] * line_bytes_;
}

std::string
TraceTable::recencyTextAt(std::size_t i) const
{
    const std::int64_t r = recency_[i];
    if (r == kNoValue)
        return "first access";
    if (r <= 64)
        return "very recent";
    if (r <= 1024)
        return "recent";
    if (r <= 16384)
        return "distant";
    return "very distant";
}

const std::vector<std::uint64_t> &
TraceTable::uniquePcs() const
{
    if (const TraceIndex *idx = indexOrFallback())
        return idx->uniquePcs();
    ensureFallbackListings();
    return lazy_->fallback_pcs;
}

const std::vector<std::uint32_t> &
TraceTable::uniqueSets() const
{
    if (const TraceIndex *idx = indexOrFallback())
        return idx->uniqueSets();
    ensureFallbackListings();
    return lazy_->fallback_sets;
}

void
TraceTable::ensureFallbackListings() const
{
    std::call_once(lazy_->fallback_once, [this] {
        lazy_->fallback_pcs = uniquePcsScan();
        lazy_->fallback_sets = uniqueSetsScan();
    });
}

std::vector<std::uint64_t>
TraceTable::uniquePcsScan() const
{
    std::vector<std::uint64_t> pcs(pcs_.begin(), pcs_.end());
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

std::vector<std::uint32_t>
TraceTable::uniqueSetsScan() const
{
    // Size the seen-bitmap once (it used to grow incrementally,
    // reallocating on every new high-water set id).
    std::uint32_t max_set = 0;
    for (const auto s : set_)
        max_set = std::max(max_set, s);
    std::vector<bool> seen(set_.empty() ? 0 : max_set + 1u, false);
    std::vector<std::uint32_t> out;
    for (const auto s : set_) {
        if (!seen[s]) {
            seen[s] = true;
            out.push_back(s);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
TraceTable::containsPc(std::uint64_t pc) const
{
    return pc_lookup_.count(pc) > 0;
}

bool
TraceTable::containsAddress(std::uint64_t address) const
{
    return addr_lookup_.count(address) > 0;
}

std::optional<std::uint32_t>
TraceTable::pcIdOf(std::uint64_t pc) const
{
    const auto it = pc_lookup_.find(pc);
    if (it == pc_lookup_.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::uint32_t>
TraceTable::addrIdOf(std::uint64_t address) const
{
    const auto it = addr_lookup_.find(address);
    if (it == addr_lookup_.end())
        return std::nullopt;
    return it->second;
}

std::vector<std::uint32_t>
TraceTable::filter(const std::uint64_t *pc, const std::uint64_t *address,
                   std::size_t limit) const
{
    if (!pc && !address)
        return filterScan(pc, address, limit);

    const auto pc_id = pc ? pcIdOf(*pc) : std::nullopt;
    if (pc && !pc_id)
        return {};
    const auto addr_id = address ? addrIdOf(*address) : std::nullopt;
    if (address && !addr_id)
        return {};

    const TraceIndex *idx_ptr = indexOrFallback();
    if (!idx_ptr)
        return filterScan(pc, address, limit);
    const TraceIndex &idx = *idx_ptr;
    if (pc_id && addr_id) {
        const PostingsList a = idx.pcPostings(*pc_id);
        const PostingsList b = idx.addrPostings(*addr_id);
        std::vector<std::uint32_t> out;
        idx.intersect(a, b, limit, out);
        idx.noteLookup(std::min(a.size(), b.size()));
        return out;
    }

    const PostingsList post =
        pc_id ? idx.pcPostings(*pc_id) : idx.addrPostings(*addr_id);
    const std::size_t take =
        limit ? std::min(limit, post.size()) : post.size();
    std::vector<std::uint32_t> out;
    decodeList(post, out, take);
    idx.noteLookup(take);
    return out;
}

std::vector<std::uint32_t>
TraceTable::filterScan(const std::uint64_t *pc,
                       const std::uint64_t *address,
                       std::size_t limit) const
{
    std::vector<std::uint32_t> out;
    std::uint32_t pc_id = 0, addr_id = 0;
    if (pc) {
        const auto it = pc_lookup_.find(*pc);
        if (it == pc_lookup_.end())
            return out;
        pc_id = it->second;
    }
    if (address) {
        const auto it = addr_lookup_.find(*address);
        if (it == addr_lookup_.end())
            return out;
        addr_id = it->second;
    }
    for (std::size_t i = 0; i < size(); ++i) {
        if (pc && pc_id_[i] != pc_id)
            continue;
        if (address && addr_id_[i] != addr_id)
            continue;
        out.push_back(static_cast<std::uint32_t>(i));
        if (limit && out.size() >= limit)
            break;
    }
    return out;
}

AccessRow
TraceTable::row(std::size_t i) const
{
    CM_ASSERT(i < size(), "row index out of range");
    AccessRow r;
    r.index = i;
    r.program_counter = pcAt(i);
    r.memory_address = addressAt(i);
    r.cache_set_id = set_[i];
    r.is_miss = isMissAt(i);
    r.bypassed = bypassedAt(i);
    r.miss_type = missTypeAt(i);
    r.has_victim = hasVictimAt(i);
    r.evicted_address = evictedAddressAt(i);
    r.accessed_reuse_distance = reuse_[i];
    r.accessed_recency = recency_[i];
    r.evicted_reuse_distance = evicted_reuse_[i];
    r.wrong_eviction = wrongEvictionAt(i);
    r.recency_text = recencyTextAt(i);

    if (symbols_) {
        r.function_name = symbols_->functionName(r.program_counter);
        r.function_code = symbols_->sourceFor(r.program_counter);
        r.assembly_code =
            symbols_->assemblyAround(r.program_counter);
    }

    for (std::uint32_t k = snap_off_[i]; k < snap_off_[i + 1]; ++k) {
        r.current_cache_lines.push_back(
            PcAddr{pcs_[snap_pc_id_[k]],
                   lines_[snap_line_id_[k]] * line_bytes_});
    }
    for (std::uint32_t k = score_off_[i]; k < score_off_[i + 1]; ++k)
        r.cache_line_eviction_scores.push_back(scores_[k]);

    if (history_len_ > 0) {
        const std::size_t base =
            static_cast<std::size_t>(i) * history_len_;
        for (std::uint8_t k = 0; k < hist_count_[i]; ++k) {
            r.recent_access_history.push_back(
                PcAddr{pcs_[hist_pc_id_[base + k]],
                       addrs_[hist_addr_id_[base + k]]});
        }
    }
    return r;
}

} // namespace cachemind::db
