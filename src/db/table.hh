/**
 * @file
 * The per-trace "dataframe" of the external database (§4.3).
 *
 * Storage is columnar with interned dictionaries for PCs, addresses,
 * and lines so that a full 12-table database stays within a few
 * hundred megabytes. Row materialisation (AccessRow) renders the
 * source-level string columns (function name/code, disassembly,
 * textual recency) on demand from the workload's symbol table, which
 * keeps identical rows byte-identical — required for exact-match
 * grading in CacheMindBench.
 */

#ifndef CACHEMIND_DB_TABLE_HH
#define CACHEMIND_DB_TABLE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/llc_replay.hh"
#include "trace/symbols.hh"

namespace cachemind::db {

class TraceIndex;

/** Numeric sentinel for "no value" (-1 in the paper's dataframes). */
constexpr std::int64_t kNoValue = -1;

/** One (pc, address) pair in snapshot/history columns. */
struct PcAddr
{
    std::uint64_t pc = 0;
    std::uint64_t address = 0;

    bool
    operator==(const PcAddr &other) const
    {
        return pc == other.pc && address == other.address;
    }
};

/** Fully materialised row (all §4.3 columns). */
struct AccessRow
{
    std::uint64_t index = 0;
    std::uint64_t program_counter = 0;
    std::uint64_t memory_address = 0;
    std::uint32_t cache_set_id = 0;
    /** true = Cache Miss (the paper's `evict` column semantics). */
    bool is_miss = false;
    bool bypassed = false;
    sim::MissType miss_type = sim::MissType::None;

    bool has_victim = false;
    /** Base byte address of the evicted line (0 when none). */
    std::uint64_t evicted_address = 0;

    std::int64_t accessed_reuse_distance = kNoValue;
    std::int64_t accessed_recency = kNoValue;
    std::int64_t evicted_reuse_distance = kNoValue;
    bool wrong_eviction = false;

    /** Textual recency descriptor (schema's accessed_address_recency). */
    std::string recency_text;
    std::string function_name;
    std::string function_code;
    std::string assembly_code;

    std::vector<PcAddr> current_cache_lines;
    std::vector<std::uint64_t> cache_line_eviction_scores;
    std::vector<PcAddr> recent_access_history;
};

/** Columnar per-trace table. */
class TraceTable
{
  public:
    TraceTable();
    ~TraceTable();
    // Move-only: the lazy postings index holds a once_flag. Moves are
    // build-phase only (single-threaded), like all table mutation.
    TraceTable(TraceTable &&) noexcept;
    TraceTable &operator=(TraceTable &&) noexcept;
    TraceTable(const TraceTable &) = delete;
    TraceTable &operator=(const TraceTable &) = delete;

    /** Symbol table used to render string columns (non-owning). */
    void setSymbols(const trace::SymbolTable *symbols)
    {
        symbols_ = symbols;
    }
    const trace::SymbolTable *symbols() const { return symbols_; }

    /** Line size used to render line base addresses. */
    void setLineBytes(std::uint32_t bytes) { line_bytes_ = bytes; }

    void reserve(std::size_t n);

    /**
     * Append one replay event; `history` is the recent-access window
     * (most recent last) maintained by the builder.
     */
    void append(const sim::ReplayEvent &ev,
                const std::vector<PcAddr> &history);

    std::size_t size() const { return pc_id_.size(); }
    bool empty() const { return pc_id_.empty(); }

    // ----- Fast columnar accessors (no string work) -----
    std::uint64_t pcAt(std::size_t i) const { return pcs_[pc_id_[i]]; }
    std::uint64_t addressAt(std::size_t i) const
    {
        return addrs_[addr_id_[i]];
    }
    std::uint32_t setAt(std::size_t i) const { return set_[i]; }
    bool isMissAt(std::size_t i) const { return flagAt(i, kMissBit); }
    bool bypassedAt(std::size_t i) const
    {
        return flagAt(i, kBypassBit);
    }
    bool hasVictimAt(std::size_t i) const
    {
        return flagAt(i, kVictimBit);
    }
    bool wrongEvictionAt(std::size_t i) const
    {
        return flagAt(i, kWrongBit);
    }
    sim::MissType missTypeAt(std::size_t i) const
    {
        return static_cast<sim::MissType>(miss_type_[i]);
    }
    /** Forward reuse distance in LLC accesses (kNoValue if none). */
    std::int64_t reuseDistanceAt(std::size_t i) const
    {
        return reuse_[i];
    }
    /** Backward recency in LLC accesses (kNoValue on first touch). */
    std::int64_t recencyAt(std::size_t i) const { return recency_[i]; }
    std::int64_t evictedReuseDistanceAt(std::size_t i) const
    {
        return evicted_reuse_[i];
    }
    /** Base byte address of the victim line (0 when none). */
    std::uint64_t evictedAddressAt(std::size_t i) const;
    std::uint64_t evictedPcAt(std::size_t i) const
    {
        return hasVictimAt(i) ? pcs_[evicted_pc_id_[i]] : 0;
    }

    /** Textual recency descriptor used in the string column. */
    std::string recencyTextAt(std::size_t i) const;

    /**
     * Unique PCs appearing in the table, ascending — served from the
     * postings index's build-time cache (no per-call sort).
     */
    const std::vector<std::uint64_t> &uniquePcs() const;
    /** Unique sets touched, ascending (index-cached, no re-sort). */
    const std::vector<std::uint32_t> &uniqueSets() const;

    /** Reference O(n) unique-PC listing (equivalence tests). */
    std::vector<std::uint64_t> uniquePcsScan() const;
    /** Reference O(n) unique-set listing (equivalence tests). */
    std::vector<std::uint32_t> uniqueSetsScan() const;

    /** Does this exact (pc) appear anywhere? O(1). */
    bool containsPc(std::uint64_t pc) const;
    /** Does this exact (address) appear anywhere? O(1). */
    bool containsAddress(std::uint64_t address) const;

    /** Dictionary id for a PC value; nullopt when absent. */
    std::optional<std::uint32_t> pcIdOf(std::uint64_t pc) const;
    /** Dictionary id for an address value; nullopt when absent. */
    std::optional<std::uint32_t> addrIdOf(std::uint64_t address) const;

    /**
     * Row indices matching optional pc/address filters, ascending.
     * Served from the postings index (lookup or adaptive kernel
     * intersection) — byte-identical to filterScan, sublinear in the
     * table size. Row ids are uint32 to match the postings width.
     */
    std::vector<std::uint32_t>
    filter(const std::uint64_t *pc, const std::uint64_t *address,
           std::size_t limit = 0) const;

    /**
     * Reference O(n) row walk with identical semantics to filter():
     * the pre-index scan path, kept for equivalence tests and
     * scan-mode retrievers (never touches the index).
     */
    std::vector<std::uint32_t>
    filterScan(const std::uint64_t *pc, const std::uint64_t *address,
               std::size_t limit = 0) const;

    /**
     * The table's postings index, built lazily exactly once under a
     * once_flag (same pattern as the shard's StatsExpert) — safe to
     * hit from any number of concurrent readers. Asserts that the
     * build succeeded; callers that can degrade should use
     * indexOrFallback() instead.
     */
    const TraceIndex &index() const;
    /**
     * The postings index, or nullptr when its one-time build failed
     * (fault injection, resource exhaustion). Failure is sticky: the
     * build is never retried, so every reader of this table degrades
     * to the reference scan path consistently instead of flapping
     * between indexed and scanned answers.
     */
    const TraceIndex *indexOrFallback() const;
    /** Did the one-time index build fail for good? */
    bool indexBuildFailed() const;
    /** The index if some reader already built it; nullptr otherwise. */
    const TraceIndex *indexIfBuilt() const;

    /** Materialise a full row with all string columns. */
    AccessRow row(std::size_t i) const;

  private:
    friend class TraceIndex;
    static constexpr std::uint8_t kMissBit = 1 << 0;
    static constexpr std::uint8_t kBypassBit = 1 << 1;
    static constexpr std::uint8_t kVictimBit = 1 << 2;
    static constexpr std::uint8_t kWrongBit = 1 << 3;

    bool
    flagAt(std::size_t i, std::uint8_t bit) const
    {
        return (flags_[i] & bit) != 0;
    }

    std::uint32_t internPc(std::uint64_t pc);
    std::uint32_t internAddr(std::uint64_t addr);
    std::uint32_t internLine(std::uint64_t line);

    const trace::SymbolTable *symbols_ = nullptr;
    std::uint32_t line_bytes_ = 64;

    // Dictionaries.
    std::vector<std::uint64_t> pcs_;
    std::vector<std::uint64_t> addrs_;
    std::vector<std::uint64_t> lines_;
    std::unordered_map<std::uint64_t, std::uint32_t> pc_lookup_;
    std::unordered_map<std::uint64_t, std::uint32_t> addr_lookup_;
    std::unordered_map<std::uint64_t, std::uint32_t> line_lookup_;

    // Core columns.
    std::vector<std::uint32_t> pc_id_;
    std::vector<std::uint32_t> addr_id_;
    std::vector<std::uint32_t> set_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint8_t> miss_type_;
    std::vector<std::int64_t> reuse_;
    std::vector<std::int64_t> recency_;
    std::vector<std::int64_t> evicted_reuse_;
    std::vector<std::uint32_t> evicted_line_id_;
    std::vector<std::uint32_t> evicted_pc_id_;

    // Snapshot pools: [snap_off_[i], snap_off_[i+1]) slices.
    std::vector<std::uint32_t> snap_off_;
    std::vector<std::uint32_t> snap_pc_id_;
    std::vector<std::uint32_t> snap_line_id_;
    std::vector<std::uint32_t> score_off_;
    std::vector<std::uint32_t> scores_;

    // History pool (fixed-width window per row).
    std::uint32_t history_len_ = 0;
    std::vector<std::uint32_t> hist_pc_id_;
    std::vector<std::uint32_t> hist_addr_id_;
    std::vector<std::uint8_t> hist_count_;

    /**
     * Lazily built postings index. Heap-allocated so the table stays
     * movable during the single-threaded build phase; the once_flag
     * makes the build race-free once concurrent readers arrive.
     */
    struct LazyIndex
    {
        std::once_flag once;
        std::atomic<bool> built{false};
        /** Build threw; sticky — readers use the scan path forever. */
        std::atomic<bool> failed{false};
        std::unique_ptr<TraceIndex> index;
        /**
         * Scan-computed unique listings, built once on the first
         * uniquePcs()/uniqueSets() call after a failed index build so
         * the by-reference listing accessors keep working (and stay
         * byte-identical to the index's build-time cache).
         */
        std::once_flag fallback_once;
        std::vector<std::uint64_t> fallback_pcs;
        std::vector<std::uint32_t> fallback_sets;
    };
    mutable std::unique_ptr<LazyIndex> lazy_;

    /** Populate the fallback listings exactly once. */
    void ensureFallbackListings() const;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_TABLE_HH
