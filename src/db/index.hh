/**
 * @file
 * Per-shard postings index over one TraceTable — the sublinear
 * execution substrate behind filter/DSL retrieval.
 *
 * The paper's trace-grounding contract (§4.3) turns every answer into
 * a query over a per-(workload, policy) dataframe; in a CacheMindBench
 * sweep nearly every question is *cold* (unique slots), so the
 * cross-question bundle cache never amortises the scan. The index
 * amortises it at the shard level instead: one O(n) build per shard
 * yields row-ordered postings keyed by pc/address dictionary id and by
 * cache set, precomputed per-key hit/miss/eviction counters, and the
 * sorted unique-PC/set listings — after which every filter is a
 * postings lookup (or a kernel intersection) and every counting
 * aggregate is an O(1) counter read.
 *
 * Postings are stored as roaring-style chunked containers
 * (db/postings_ops.hh): per 64K-row chunk either a sorted uint16 array
 * or a bitmap, intersected through the adaptive kernel selector
 * (galloping / SIMD merge / bitmap AND). Containers preserve row
 * order, so every consumer remains byte-identical to the reference
 * scan (enforced by randomized index-vs-scan equivalence tests). The
 * index is immutable after construction except for relaxed
 * instrumentation counters (lookups / rows skipped / per-kernel
 * dispatch counts) surfaced through EngineStats.
 */

#ifndef CACHEMIND_DB_INDEX_HH
#define CACHEMIND_DB_INDEX_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "db/postings_ops.hh"

namespace cachemind::db {

class TraceTable;

/** Precomputed aggregates for one postings key (pc, address or set). */
struct IndexKeyCounts
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Accesses under this key that evicted a victim. */
    std::uint64_t evictions = 0;

    std::uint64_t hits() const { return accesses - misses; }
};

/**
 * Aggregate index instrumentation across a shard set (EngineStats):
 * how many shards have paid the one-time build, what it cost, how much
 * scan work the postings have avoided since, which intersection
 * kernels the adaptive selector picked, and the container mix.
 */
struct IndexTotals
{
    /** Shards whose lazy index has been built. */
    std::uint64_t shards_indexed = 0;
    /** Total one-time build cost across those shards. */
    double build_ms_total = 0.0;
    /** Indexed lookups served (filters + DSL aggregates). */
    std::uint64_t lookups = 0;
    /** Scan-equivalent rows the postings avoided walking. */
    std::uint64_t rows_skipped = 0;

    // ---- adaptive-selector dispatch counts (chunk pairs) ----
    std::uint64_t kernel_galloping = 0;
    std::uint64_t kernel_merge_simd = 0;
    std::uint64_t kernel_merge_scalar = 0;
    std::uint64_t kernel_bitmap = 0;
    std::uint64_t kernel_bitmap_probe = 0;
    /** Vector blocks processed by SIMD kernels. */
    std::uint64_t simd_ops = 0;
    /** Elements processed by scalar kernels. */
    std::uint64_t scalar_ops = 0;

    // ---- container mix across built shards ----
    std::uint64_t array_chunks = 0;
    std::uint64_t bitmap_chunks = 0;
    /** Postings container payload bytes across built shards. */
    std::uint64_t postings_bytes = 0;
};

/** The per-shard postings index. Build once, read from any thread. */
class TraceIndex
{
  public:
    /** One full build pass over the table (timed; see buildMs). */
    explicit TraceIndex(const TraceTable &table);

    std::size_t rows() const { return rows_; }
    /** Wall-clock cost of the constructor's build pass. */
    double buildMs() const { return build_ms_; }

    /** Whole-table counters (unfiltered aggregates). */
    const IndexKeyCounts &totals() const { return totals_; }

    // ---- postings by dictionary id / set value (row-ordered) ----
    PostingsList pcPostings(std::uint32_t pc_id) const;
    PostingsList addrPostings(std::uint32_t addr_id) const;
    /** Postings for a set *value*; empty when the set is untouched. */
    PostingsList setPostings(std::uint32_t set) const;

    // ---- per-key counters (nullptr when the key is absent) ----
    const IndexKeyCounts *pcCounts(std::uint32_t pc_id) const;
    const IndexKeyCounts *addrCounts(std::uint32_t addr_id) const;
    const IndexKeyCounts *setCounts(std::uint32_t set) const;

    /** Sorted unique PC values, cached at build time. */
    const std::vector<std::uint64_t> &uniquePcs() const
    {
        return unique_pcs_;
    }
    /** Sorted unique set values, cached at build time. */
    const std::vector<std::uint32_t> &uniqueSets() const
    {
        return unique_sets_;
    }

    /**
     * Adaptive kernel intersection of two chunked lists into `out`
     * (ascending row ids; stops once `limit` matches are found, 0 =
     * unbounded), feeding this index's kernel counters. Byte-identical
     * to the reference scan by the postings_ops invariant.
     */
    void intersect(const PostingsList &a, const PostingsList &b,
                   std::size_t limit,
                   std::vector<std::uint32_t> &out) const
    {
        intersectLists(a, b, limit, out, &kernel_counters_);
    }

    /**
     * Record one indexed operation that touched `rows_visited` rows
     * where a scan would have walked the whole table. Relaxed
     * counters: instrumentation only, never part of any answer.
     */
    void
    noteLookup(std::size_t rows_visited) const
    {
        lookups_.fetch_add(1, std::memory_order_relaxed);
        if (rows_visited < rows_) {
            rows_skipped_.fetch_add(rows_ - rows_visited,
                                    std::memory_order_relaxed);
        }
    }

    std::uint64_t
    lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    rowsSkipped() const
    {
        return rows_skipped_.load(std::memory_order_relaxed);
    }

    /** Kernel dispatch counters (shared by all three keyspaces). */
    const PostingsOpsCounters &kernelCounters() const
    {
        return kernel_counters_;
    }

    std::uint64_t
    arrayChunks() const
    {
        return pc_store_.arrayChunks() + addr_store_.arrayChunks() +
               set_store_.arrayChunks();
    }
    std::uint64_t
    bitmapChunks() const
    {
        return pc_store_.bitmapChunks() + addr_store_.bitmapChunks() +
               set_store_.bitmapChunks();
    }
    std::size_t
    postingsBytes() const
    {
        return pc_store_.payloadBytes() + addr_store_.payloadBytes() +
               set_store_.payloadBytes();
    }

  private:
    std::size_t rows_ = 0;
    double build_ms_ = 0.0;
    IndexKeyCounts totals_;

    PostingsStore pc_store_;
    PostingsStore addr_store_;
    /** Set postings are keyed by set value (dense, small range). */
    PostingsStore set_store_;

    std::vector<IndexKeyCounts> pc_counts_;
    std::vector<IndexKeyCounts> addr_counts_;
    std::vector<IndexKeyCounts> set_counts_;

    std::vector<std::uint64_t> unique_pcs_;
    std::vector<std::uint32_t> unique_sets_;

    mutable std::atomic<std::uint64_t> lookups_{0};
    mutable std::atomic<std::uint64_t> rows_skipped_{0};
    mutable PostingsOpsCounters kernel_counters_;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_INDEX_HH
