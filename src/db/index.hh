/**
 * @file
 * Per-shard postings index over one TraceTable — the sublinear
 * execution substrate behind filter/DSL retrieval.
 *
 * The paper's trace-grounding contract (§4.3) turns every answer into
 * a query over a per-(workload, policy) dataframe; in a CacheMindBench
 * sweep nearly every question is *cold* (unique slots), so the
 * cross-question bundle cache never amortises the scan. The index
 * amortises it at the shard level instead: one O(n) build per shard
 * yields row-ordered postings lists keyed by pc/address dictionary id
 * and by cache set, precomputed per-key hit/miss/eviction counters,
 * and the sorted unique-PC/set listings — after which every filter is
 * a postings lookup (or a galloping intersection) and every counting
 * aggregate is an O(1) counter read.
 *
 * Postings preserve row order, so every consumer remains byte-
 * identical to the reference scan (enforced by randomized
 * index-vs-scan equivalence tests). The index is immutable after
 * construction except for two relaxed instrumentation counters
 * (lookups / rows skipped) surfaced through EngineStats.
 */

#ifndef CACHEMIND_DB_INDEX_HH
#define CACHEMIND_DB_INDEX_HH

#include <atomic>
#include <cstdint>
#include <vector>

namespace cachemind::db {

class TraceTable;

/** Precomputed aggregates for one postings key (pc, address or set). */
struct IndexKeyCounts
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Accesses under this key that evicted a victim. */
    std::uint64_t evictions = 0;

    std::uint64_t hits() const { return accesses - misses; }
};

/**
 * Aggregate index instrumentation across a shard set (EngineStats):
 * how many shards have paid the one-time build, what it cost, and how
 * much scan work the postings have avoided since.
 */
struct IndexTotals
{
    /** Shards whose lazy index has been built. */
    std::uint64_t shards_indexed = 0;
    /** Total one-time build cost across those shards. */
    double build_ms_total = 0.0;
    /** Indexed lookups served (filters + DSL aggregates). */
    std::uint64_t lookups = 0;
    /** Scan-equivalent rows the postings avoided walking. */
    std::uint64_t rows_skipped = 0;
};

/** A borrowed, ascending run of row indices inside the index. */
struct PostingsSpan
{
    const std::uint32_t *first = nullptr;
    const std::uint32_t *last = nullptr;

    std::size_t size() const
    {
        return static_cast<std::size_t>(last - first);
    }
    bool empty() const { return first == last; }
    const std::uint32_t *begin() const { return first; }
    const std::uint32_t *end() const { return last; }
};

/** The per-shard postings index. Build once, read from any thread. */
class TraceIndex
{
  public:
    /** One full build pass over the table (timed; see buildMs). */
    explicit TraceIndex(const TraceTable &table);

    std::size_t rows() const { return rows_; }
    /** Wall-clock cost of the constructor's build pass. */
    double buildMs() const { return build_ms_; }

    /** Whole-table counters (unfiltered aggregates). */
    const IndexKeyCounts &totals() const { return totals_; }

    // ---- postings by dictionary id / set value (row-ordered) ----
    PostingsSpan pcPostings(std::uint32_t pc_id) const;
    PostingsSpan addrPostings(std::uint32_t addr_id) const;
    /** Postings for a set *value*; empty when the set is untouched. */
    PostingsSpan setPostings(std::uint32_t set) const;

    // ---- per-key counters (nullptr when the key is absent) ----
    const IndexKeyCounts *pcCounts(std::uint32_t pc_id) const;
    const IndexKeyCounts *addrCounts(std::uint32_t addr_id) const;
    const IndexKeyCounts *setCounts(std::uint32_t set) const;

    /** Sorted unique PC values, cached at build time. */
    const std::vector<std::uint64_t> &uniquePcs() const
    {
        return unique_pcs_;
    }
    /** Sorted unique set values, cached at build time. */
    const std::vector<std::uint32_t> &uniqueSets() const
    {
        return unique_sets_;
    }

    /**
     * Galloping intersection of two ascending postings runs; stops
     * early once `limit` matches are found (0 = unbounded). Output is
     * ascending, so intersected filters stay byte-identical to the
     * reference scan.
     */
    static std::vector<std::size_t>
    intersect(PostingsSpan a, PostingsSpan b, std::size_t limit = 0);

    /**
     * Record one indexed operation that touched `rows_visited` rows
     * where a scan would have walked the whole table. Relaxed
     * counters: instrumentation only, never part of any answer.
     */
    void
    noteLookup(std::size_t rows_visited) const
    {
        lookups_.fetch_add(1, std::memory_order_relaxed);
        if (rows_visited < rows_) {
            rows_skipped_.fetch_add(rows_ - rows_visited,
                                    std::memory_order_relaxed);
        }
    }

    std::uint64_t
    lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    rowsSkipped() const
    {
        return rows_skipped_.load(std::memory_order_relaxed);
    }

  private:
    /** CSR postings: rows of key k live in [off[k], off[k+1]). */
    struct Csr
    {
        std::vector<std::uint32_t> off;
        std::vector<std::uint32_t> rows;

        PostingsSpan
        span(std::size_t key) const
        {
            if (key + 1 >= off.size())
                return PostingsSpan{};
            return PostingsSpan{rows.data() + off[key],
                                rows.data() + off[key + 1]};
        }
    };

    std::size_t rows_ = 0;
    double build_ms_ = 0.0;
    IndexKeyCounts totals_;

    Csr pc_post_;
    Csr addr_post_;
    /** Set postings are keyed by set value (dense, small range). */
    Csr set_post_;

    std::vector<IndexKeyCounts> pc_counts_;
    std::vector<IndexKeyCounts> addr_counts_;
    std::vector<IndexKeyCounts> set_counts_;

    std::vector<std::uint64_t> unique_pcs_;
    std::vector<std::uint32_t> unique_sets_;

    mutable std::atomic<std::uint64_t> lookups_{0};
    mutable std::atomic<std::uint64_t> rows_skipped_{0};
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_INDEX_HH
