/**
 * @file
 * The external trace database (§4.3 "Data organization").
 *
 * Entries are keyed `<workload>_evictions_<policy>` and carry the
 * per-access dataframe, a free-form metadata summary string, and a
 * human-readable description — exactly the three fields of the paper's
 * `loaded_data` dictionary. The database also owns the per-workload
 * symbol tables that back the string columns.
 */

#ifndef CACHEMIND_DB_DATABASE_HH
#define CACHEMIND_DB_DATABASE_HH

#include <map>
#include <memory>
#include <string>

#include "db/stats_expert.hh"
#include "db/table.hh"

namespace cachemind::db {

/** One `loaded_data[key]` entry. */
struct TraceEntry
{
    TraceTable table;
    /** Free-form whole-trace summary string (paper's `metadata`). */
    std::string metadata;
    /** Workload + policy description (paper's `description`). */
    std::string description;
    std::string workload;
    std::string policy;
};

/** The full external store. */
class TraceDatabase
{
  public:
    TraceDatabase() = default;
    TraceDatabase(TraceDatabase &&) = default;
    TraceDatabase &operator=(TraceDatabase &&) = default;
    TraceDatabase(const TraceDatabase &) = delete;
    TraceDatabase &operator=(const TraceDatabase &) = delete;

    /** Canonical key: `<workload>_evictions_<policy>`. */
    static std::string keyFor(const std::string &workload,
                              const std::string &policy);

    /** Register a workload's symbol table (stable address). */
    const trace::SymbolTable *
    addSymbols(const std::string &workload, trace::SymbolTable symbols);

    const trace::SymbolTable *symbolsFor(const std::string &workload)
        const;

    /** Add an entry (moves it in). */
    void addEntry(TraceEntry entry);

    /** Lookup by key; nullptr if absent. */
    const TraceEntry *find(const std::string &key) const;

    /** Lookup by workload + policy names; nullptr if absent. */
    const TraceEntry *find(const std::string &workload,
                           const std::string &policy) const;

    /** Lazily built statistics expert for an entry key. */
    const StatsExpert *statsFor(const std::string &key) const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Distinct workload names present, sorted. */
    std::vector<std::string> workloads() const;

    /** Distinct policy names present, sorted. */
    std::vector<std::string> policies() const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::string, TraceEntry> entries_;
    std::map<std::string, std::unique_ptr<trace::SymbolTable>> symbols_;
    /** Cache of lazily constructed experts (mutable: logical const). */
    mutable std::map<std::string, std::unique_ptr<StatsExpert>> experts_;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_DATABASE_HH
