/**
 * @file
 * The external trace database (§4.3 "Data organization").
 *
 * Entries are keyed `<workload>_evictions_<policy>` and carry the
 * per-access dataframe, a free-form metadata summary string, and a
 * human-readable description — exactly the three fields of the paper's
 * `loaded_data` dictionary. The database also owns the per-workload
 * symbol tables that back the string columns.
 *
 * Internally the database is partitioned into per-(workload, policy)
 * TraceShards (see db/shard.hh): each shard owns its entry and its
 * lazily built StatsExpert, so concurrent readers never contend on —
 * or race over — a global expert cache. Mutation (addEntry/addSymbols)
 * is build-phase only: it is not synchronized against readers, and
 * views handed out by shard()/shards() are invalidated by it.
 */

#ifndef CACHEMIND_DB_DATABASE_HH
#define CACHEMIND_DB_DATABASE_HH

#include <map>
#include <memory>
#include <string>

#include "db/shard.hh"
#include "db/stats_expert.hh"
#include "db/table.hh"

namespace cachemind::db {

/** The full external store. */
class TraceDatabase
{
  public:
    TraceDatabase() = default;
    TraceDatabase(TraceDatabase &&) = default;
    TraceDatabase &operator=(TraceDatabase &&) = default;
    TraceDatabase(const TraceDatabase &) = delete;
    TraceDatabase &operator=(const TraceDatabase &) = delete;

    /** Canonical key: `<workload>_evictions_<policy>`. */
    static std::string keyFor(const std::string &workload,
                              const std::string &policy);

    /** Register a workload's symbol table (stable address). */
    const trace::SymbolTable *
    addSymbols(const std::string &workload, trace::SymbolTable symbols);

    const trace::SymbolTable *symbolsFor(const std::string &workload)
        const;

    /**
     * Add an entry (moves it in). Replacing an existing key swaps in
     * a whole new shard: TraceEntry pointers, expert pointers, and
     * shard views previously obtained for that key dangle afterwards.
     * Mutation is build-phase only — never add entries while engines
     * or retrievers hold views of this database.
     */
    void addEntry(TraceEntry entry);

    /** Lookup by key; nullptr if absent. */
    const TraceEntry *find(const std::string &key) const;

    /** Lookup by workload + policy names; nullptr if absent. */
    const TraceEntry *find(const std::string &workload,
                           const std::string &policy) const;

    /**
     * Lazily built statistics expert for an entry key. Thread-safe:
     * the expert is constructed once under the owning shard's
     * once_flag, so concurrent askBatch workers on the same (or
     * sibling) keys never race.
     */
    const StatsExpert *statsFor(const std::string &key) const;

    /** Handle to one shard; invalid view when the key is absent. */
    TraceShardView shard(const std::string &key) const;
    TraceShardView shard(const std::string &workload,
                         const std::string &policy) const;

    /** Read-only view over every shard (what retrievers consume). */
    ShardSet shards() const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Distinct workload names present, sorted. */
    std::vector<std::string> workloads() const;

    /** Distinct policy names present, sorted. */
    std::vector<std::string> policies() const;

    std::size_t size() const { return shards_.size(); }

  private:
    /** unique_ptr: shards hold a once_flag and need stable addresses. */
    std::map<std::string, std::unique_ptr<TraceShard>> shards_;
    std::map<std::string, std::unique_ptr<trace::SymbolTable>> symbols_;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_DATABASE_HH
