#include "db/database.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cachemind::db {

std::string
TraceDatabase::keyFor(const std::string &workload,
                      const std::string &policy)
{
    return workload + "_evictions_" + policy;
}

const trace::SymbolTable *
TraceDatabase::addSymbols(const std::string &workload,
                          trace::SymbolTable symbols)
{
    auto owned = std::make_unique<trace::SymbolTable>(std::move(symbols));
    const trace::SymbolTable *ptr = owned.get();
    symbols_[workload] = std::move(owned);
    return ptr;
}

const trace::SymbolTable *
TraceDatabase::symbolsFor(const std::string &workload) const
{
    const auto it = symbols_.find(workload);
    return it == symbols_.end() ? nullptr : it->second.get();
}

void
TraceDatabase::addEntry(TraceEntry entry)
{
    const std::string key = keyFor(entry.workload, entry.policy);
    entries_[key] = std::move(entry);
    experts_.erase(key);
}

const TraceEntry *
TraceDatabase::find(const std::string &key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

const TraceEntry *
TraceDatabase::find(const std::string &workload,
                    const std::string &policy) const
{
    return find(keyFor(workload, policy));
}

const StatsExpert *
TraceDatabase::statsFor(const std::string &key) const
{
    const TraceEntry *entry = find(key);
    if (!entry)
        return nullptr;
    auto it = experts_.find(key);
    if (it == experts_.end()) {
        it = experts_
                 .emplace(key,
                          std::make_unique<StatsExpert>(entry->table))
                 .first;
    }
    return it->second.get();
}

std::vector<std::string>
TraceDatabase::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_)
        out.push_back(key);
    return out;
}

std::vector<std::string>
TraceDatabase::workloads() const
{
    std::vector<std::string> out;
    for (const auto &[key, entry] : entries_) {
        if (std::find(out.begin(), out.end(), entry.workload) ==
            out.end()) {
            out.push_back(entry.workload);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
TraceDatabase::policies() const
{
    std::vector<std::string> out;
    for (const auto &[key, entry] : entries_) {
        if (std::find(out.begin(), out.end(), entry.policy) ==
            out.end()) {
            out.push_back(entry.policy);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace cachemind::db
