#include "db/database.hh"

#include "base/logging.hh"

namespace cachemind::db {

std::string
TraceDatabase::keyFor(const std::string &workload,
                      const std::string &policy)
{
    return shardKey(workload, policy);
}

const trace::SymbolTable *
TraceDatabase::addSymbols(const std::string &workload,
                          trace::SymbolTable symbols)
{
    auto owned = std::make_unique<trace::SymbolTable>(std::move(symbols));
    const trace::SymbolTable *ptr = owned.get();
    symbols_[workload] = std::move(owned);
    return ptr;
}

const trace::SymbolTable *
TraceDatabase::symbolsFor(const std::string &workload) const
{
    const auto it = symbols_.find(workload);
    return it == symbols_.end() ? nullptr : it->second.get();
}

void
TraceDatabase::addEntry(TraceEntry entry)
{
    std::string key = keyFor(entry.workload, entry.policy);
    // Replacing the whole shard discards any previously built expert;
    // a once_flag cannot be re-armed in place.
    auto shard = std::make_unique<TraceShard>(key, std::move(entry));
    shards_[std::move(key)] = std::move(shard);
}

const TraceEntry *
TraceDatabase::find(const std::string &key) const
{
    const auto it = shards_.find(key);
    return it == shards_.end() ? nullptr : &it->second->entry();
}

const TraceEntry *
TraceDatabase::find(const std::string &workload,
                    const std::string &policy) const
{
    return find(keyFor(workload, policy));
}

const StatsExpert *
TraceDatabase::statsFor(const std::string &key) const
{
    const auto it = shards_.find(key);
    return it == shards_.end() ? nullptr : it->second->stats();
}

TraceShardView
TraceDatabase::shard(const std::string &key) const
{
    const auto it = shards_.find(key);
    return TraceShardView(it == shards_.end() ? nullptr
                                              : it->second.get());
}

TraceShardView
TraceDatabase::shard(const std::string &workload,
                     const std::string &policy) const
{
    return shard(keyFor(workload, policy));
}

ShardSet
TraceDatabase::shards() const
{
    std::vector<const TraceShard *> all;
    all.reserve(shards_.size());
    for (const auto &[key, shard] : shards_)
        all.push_back(shard.get());
    return ShardSet(std::move(all));
}

std::vector<std::string>
TraceDatabase::keys() const
{
    std::vector<std::string> out;
    out.reserve(shards_.size());
    for (const auto &[key, shard] : shards_)
        out.push_back(key);
    return out;
}

std::vector<std::string>
TraceDatabase::workloads() const
{
    return shards().workloads();
}

std::vector<std::string>
TraceDatabase::policies() const
{
    return shards().policies();
}

} // namespace cachemind::db
