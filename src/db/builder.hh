/**
 * @file
 * End-to-end database construction (the paper's §5 pipeline):
 * workload model -> CPU trace -> hierarchy capture -> per-policy
 * annotated LLC replay -> dataframe + metadata string + description.
 */

#ifndef CACHEMIND_DB_BUILDER_HH
#define CACHEMIND_DB_BUILDER_HH

#include <vector>

#include "db/database.hh"
#include "policy/replacement.hh"
#include "sim/hierarchy.hh"
#include "trace/workload.hh"

namespace cachemind::db {

/** What to build. */
struct BuildOptions
{
    sim::HierarchyConfig hierarchy = sim::defaultHierarchyConfig();
    std::vector<trace::WorkloadKind> workloads = {
        trace::WorkloadKind::Astar, trace::WorkloadKind::Lbm,
        trace::WorkloadKind::Mcf};
    std::vector<policy::PolicyKind> policies = {
        policy::PolicyKind::Belady, policy::PolicyKind::Lru,
        policy::PolicyKind::Parrot, policy::PolicyKind::Mlp};
    /** 0 = use each workload model's default trace length. */
    std::uint64_t accesses_override = 0;
    /** Recent-access-history window stored per row. */
    std::uint32_t history_len = 4;
    /**
     * Worker threads for the parallel build path: trace generation
     * and oracle computation run once per workload, replays run once
     * per (workload, policy) pair, both fanned out on a small pool.
     * The output is byte-identical to the sequential build (tables,
     * metadata strings, key ordering). 1 = sequential; 0 = one thread
     * per hardware core.
     */
    std::size_t build_threads = 1;
};

/** Build the metadata summary string from a computed expert. */
std::string buildMetadataString(const StatsExpert &expert);

/** Build the full database per options. */
TraceDatabase buildDatabase(const BuildOptions &options = BuildOptions{});

/**
 * Build a single-entry database for one (workload, policy) pair with
 * the default hierarchy — convenience for tests and use cases.
 */
TraceDatabase buildSingleDatabase(trace::WorkloadKind workload,
                                  policy::PolicyKind policy,
                                  std::uint64_t accesses_override = 0);

} // namespace cachemind::db

#endif // CACHEMIND_DB_BUILDER_HH
