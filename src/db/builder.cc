#include "db/builder.hh"

#include <deque>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/parallel.hh"
#include "base/str.hh"
#include "policy/parrot.hh"
#include "sim/llc_replay.hh"

namespace cachemind::db {

std::string
buildMetadataString(const StatsExpert &expert)
{
    const TraceSummary &s = expert.summary();
    const std::uint64_t misses = s.misses;
    const double cap_pct =
        misses ? 100.0 * static_cast<double>(s.capacity) /
                     static_cast<double>(misses)
               : 0.0;
    const double conf_pct =
        misses ? 100.0 * static_cast<double>(s.conflict) /
                     static_cast<double>(misses)
               : 0.0;
    const double comp_pct =
        misses ? 100.0 * static_cast<double>(s.compulsory) /
                     static_cast<double>(misses)
               : 0.0;

    std::ostringstream os;
    os << "Cache Performance Summary: " << s.accesses
       << " total accesses, " << s.misses << " total misses, "
       << str::percent(s.missRate()) << " miss rate, "
       << str::fixed(comp_pct) << "% compulsory misses, "
       << str::fixed(cap_pct) << "% capacity misses, "
       << str::fixed(conf_pct) << "% conflict misses, " << s.evictions
       << " total evictions, " << s.bypasses << " bypassed fills, "
       << s.wrong_evictions << " ("
       << str::fixed(s.wrongEvictionPct())
       << "%) wrong evictions where evicted line has lower reuse "
          "distance. The correlation between accessed address recency "
          "and cache misses is "
       << str::fixed(s.recency_miss_correlation) << ". "
       << s.unique_pcs << " unique program counters.";
    return os.str();
}

namespace {

/** Build one entry by replaying a stream under one policy. */
TraceEntry
buildEntry(const std::string &workload_name,
           const std::string &workload_desc, policy::PolicyKind pk,
           const std::vector<sim::LlcAccess> &stream,
           const sim::OracleInfo &oracle, const sim::HierarchyConfig &cfg,
           const trace::SymbolTable *symbols, std::uint32_t history_len)
{
    std::unique_ptr<policy::ReplacementPolicy> pol;
    if (pk == policy::PolicyKind::Parrot) {
        auto parrot = std::make_unique<policy::ParrotPolicy>();
        parrot->setModel(
            sim::ParrotModelBuilder::train(stream, oracle));
        pol = std::move(parrot);
    } else {
        pol = policy::makePolicy(pk);
    }

    TraceEntry entry;
    entry.workload = workload_name;
    entry.policy = policy::policyName(pk);
    entry.table.setSymbols(symbols);
    entry.table.setLineBytes(cfg.llc.line_bytes);
    entry.table.reserve(stream.size());

    std::deque<PcAddr> window;
    std::vector<PcAddr> history;
    sim::LlcReplayer replayer(cfg.llc, std::move(pol));
    replayer.replay(
        stream, &oracle,
        [&](const sim::ReplayEvent &ev) {
            history.assign(window.begin(), window.end());
            entry.table.append(ev, history);
            window.push_back(PcAddr{ev.pc, ev.address});
            if (window.size() > history_len)
                window.pop_front();
        });

    const StatsExpert expert(entry.table);
    entry.metadata = buildMetadataString(expert);

    std::ostringstream desc;
    desc << "Workload: " << workload_desc << "\nReplacement Policy: "
         << policy::policyDescription(pk);
    entry.description = desc.str();
    return entry;
}

} // namespace

TraceDatabase
buildDatabase(const BuildOptions &options)
{
    const std::size_t threads =
        options.build_threads
            ? options.build_threads
            : std::max<std::size_t>(
                  std::thread::hardware_concurrency(), 1);

    TraceDatabase db;
    if (threads <= 1) {
        // Sequential path: one workload's artifacts live at a time,
        // so peak memory stays at a single stream.
        for (const auto wk : options.workloads) {
            auto model = trace::makeWorkload(wk);
            const trace::SymbolTable *symbols =
                db.addSymbols(model->info().name, model->symbols());
            const auto cpu_trace =
                options.accesses_override
                    ? model->generate(options.accesses_override)
                    : model->generate();
            const auto stream =
                sim::captureLlcStream(cpu_trace, options.hierarchy);
            const auto oracle = sim::computeOracle(stream);
            for (const auto pk : options.policies) {
                db.addEntry(buildEntry(
                    model->info().name, model->info().description, pk,
                    stream, oracle, options.hierarchy, symbols,
                    options.history_len));
            }
        }
        return db;
    }

    // Parallel path. Every task is a pure function of its inputs
    // (trace synthesis, replay, and Parrot training all draw from
    // deterministic keyed generators), so the result is byte-identical
    // to the sequential build; only wall-clock changes. Peak memory
    // holds every workload's LLC stream at once — the price of the
    // workload-level fan-out.
    struct WorkloadArtifacts
    {
        std::string name;
        std::string description;
        trace::SymbolTable symbols;
        std::vector<sim::LlcAccess> stream;
        sim::OracleInfo oracle;
    };

    // Stage 1: per-workload trace generation, LLC capture, and oracle
    // computation — done once per workload and shared read-only by
    // every policy replay below.
    const std::size_t n_workloads = options.workloads.size();
    std::vector<WorkloadArtifacts> arts(n_workloads);
    parallelFor(n_workloads, threads, [&](std::size_t wi) {
        auto model = trace::makeWorkload(options.workloads[wi]);
        WorkloadArtifacts &a = arts[wi];
        a.name = model->info().name;
        a.description = model->info().description;
        a.symbols = model->symbols();
        const auto cpu_trace =
            options.accesses_override
                ? model->generate(options.accesses_override)
                : model->generate();
        a.stream = sim::captureLlcStream(cpu_trace, options.hierarchy);
        a.oracle = sim::computeOracle(a.stream);
    });

    // Symbol registration mutates the database: single-threaded, in
    // workload order, before any entry references the tables.
    std::vector<const trace::SymbolTable *> symbols(n_workloads);
    for (std::size_t wi = 0; wi < n_workloads; ++wi)
        symbols[wi] = db.addSymbols(arts[wi].name,
                                    std::move(arts[wi].symbols));

    // Stage 2: one task per (workload, policy) pair.
    const std::size_t n_policies = options.policies.size();
    std::vector<TraceEntry> entries(n_workloads * n_policies);
    parallelFor(entries.size(), threads, [&](std::size_t t) {
        const WorkloadArtifacts &a = arts[t / n_policies];
        entries[t] = buildEntry(a.name, a.description,
                                options.policies[t % n_policies],
                                a.stream, a.oracle, options.hierarchy,
                                symbols[t / n_policies],
                                options.history_len);
    });
    for (auto &entry : entries)
        db.addEntry(std::move(entry));
    return db;
}

TraceDatabase
buildSingleDatabase(trace::WorkloadKind workload,
                    policy::PolicyKind policy,
                    std::uint64_t accesses_override)
{
    BuildOptions options;
    options.workloads = {workload};
    options.policies = {policy};
    options.accesses_override = accesses_override;
    return buildDatabase(options);
}

} // namespace cachemind::db
