#include "db/shard.hh"

#include <algorithm>
#include <set>
#include <thread>

#include "base/parallel.hh"
#include "db/database.hh"

namespace cachemind::db {

std::string
shardKey(const std::string &workload, const std::string &policy)
{
    return workload + "_evictions_" + policy;
}

const StatsExpert *
TraceShard::stats() const
{
    std::call_once(expert_once_, [this] {
        expert_ = std::make_unique<StatsExpert>(entry_.table);
    });
    return expert_.get();
}

namespace {

bool
keyLess(const TraceShard *a, const TraceShard *b)
{
    return a->key() < b->key();
}

} // namespace

ShardSet::ShardSet(const TraceDatabase &db) : ShardSet(db.shards()) {}

ShardSet::ShardSet(std::vector<const TraceShard *> shards)
    : shards_(std::move(shards))
{
    std::sort(shards_.begin(), shards_.end(), keyLess);
}

const TraceShard *
ShardSet::lookup(const std::string &key) const
{
    const auto it = std::lower_bound(
        shards_.begin(), shards_.end(), key,
        [](const TraceShard *s, const std::string &k) {
            return s->key() < k;
        });
    if (it == shards_.end() || (*it)->key() != key)
        return nullptr;
    return *it;
}

TraceShardView
ShardSet::shard(const std::string &key) const
{
    return TraceShardView(lookup(key));
}

TraceShardView
ShardSet::shard(const std::string &workload,
                const std::string &policy) const
{
    return shard(shardKey(workload, policy));
}

ShardSet
ShardSet::forWorkload(const std::string &workload) const
{
    std::vector<const TraceShard *> subset;
    for (const auto *s : shards_) {
        if (s->entry().workload == workload)
            subset.push_back(s);
    }
    return ShardSet(std::move(subset));
}

const TraceEntry *
ShardSet::find(const std::string &key) const
{
    const TraceShard *s = lookup(key);
    return s ? &s->entry() : nullptr;
}

const TraceEntry *
ShardSet::find(const std::string &workload,
               const std::string &policy) const
{
    return find(shardKey(workload, policy));
}

const StatsExpert *
ShardSet::statsFor(const std::string &key) const
{
    const TraceShard *s = lookup(key);
    return s ? s->stats() : nullptr;
}

const TraceIndex *
ShardSet::indexFor(const std::string &key) const
{
    const TraceShard *s = lookup(key);
    return s ? s->index() : nullptr;
}

std::size_t
ShardSet::warmIndexes(std::size_t build_threads) const
{
    // Only the shards that have not paid their one-time build yet:
    // a second warm pass (or one racing a sweep that already built
    // some shards) scans the once-flags and returns without spawning
    // any thread.
    std::vector<const TraceShard *> pending;
    for (const auto *s : shards_) {
        const TraceTable &t = s->table();
        if (!t.indexIfBuilt() && !t.indexBuildFailed())
            pending.push_back(s);
    }
    if (pending.empty())
        return 0;
    const std::size_t threads =
        build_threads ? build_threads
                      : std::max<std::size_t>(
                            std::thread::hardware_concurrency(), 1);
    parallelFor(pending.size(), threads,
                [&](std::size_t i) { pending[i]->index(); });
    return pending.size();
}

IndexTotals
ShardSet::indexTotals() const
{
    IndexTotals totals;
    for (const auto *s : shards_) {
        const TraceIndex *idx = s->table().indexIfBuilt();
        if (!idx)
            continue;
        ++totals.shards_indexed;
        totals.build_ms_total += idx->buildMs();
        totals.lookups += idx->lookups();
        totals.rows_skipped += idx->rowsSkipped();
        const PostingsOpsCounters &k = idx->kernelCounters();
        totals.kernel_galloping +=
            k.galloping.load(std::memory_order_relaxed);
        totals.kernel_merge_simd +=
            k.merge_simd.load(std::memory_order_relaxed);
        totals.kernel_merge_scalar +=
            k.merge_scalar.load(std::memory_order_relaxed);
        totals.kernel_bitmap +=
            k.bitmap_words.load(std::memory_order_relaxed);
        totals.kernel_bitmap_probe +=
            k.bitmap_probe.load(std::memory_order_relaxed);
        totals.simd_ops += k.simd_ops.load(std::memory_order_relaxed);
        totals.scalar_ops +=
            k.scalar_ops.load(std::memory_order_relaxed);
        totals.array_chunks += idx->arrayChunks();
        totals.bitmap_chunks += idx->bitmapChunks();
        totals.postings_bytes += idx->postingsBytes();
    }
    return totals;
}

std::vector<std::string>
ShardSet::keys() const
{
    std::vector<std::string> out;
    out.reserve(shards_.size());
    for (const auto *s : shards_)
        out.push_back(s->key());
    return out;
}

std::vector<std::string>
ShardSet::workloads() const
{
    std::set<std::string> seen;
    for (const auto *s : shards_)
        seen.insert(s->entry().workload);
    return {seen.begin(), seen.end()};
}

std::vector<std::string>
ShardSet::policies() const
{
    std::set<std::string> seen;
    for (const auto *s : shards_)
        seen.insert(s->entry().policy);
    return {seen.begin(), seen.end()};
}

} // namespace cachemind::db
