/**
 * @file
 * Shard-level ownership and views of the trace database (§4.3 data
 * organization, partitioned).
 *
 * A TraceShard is the unit of ownership behind one
 * `<workload>_evictions_<policy>` key: the TraceEntry, the lazily
 * built StatsExpert (constructed under a per-shard std::once_flag so
 * concurrent askBatch workers race-freely share one expert), and the
 * workload's shared symbol table reached through the entry's table.
 *
 * TraceShardView is a cheap handle to one shard. ShardSet is an
 * immutable, key-sorted view over many shards — the read surface that
 * retrievers, the query interpreter, and the benchmark generator
 * consume instead of a whole mutable database reference, so the ask
 * hot path touches no global mutable state.
 */

#ifndef CACHEMIND_DB_SHARD_HH
#define CACHEMIND_DB_SHARD_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/index.hh"
#include "db/stats_expert.hh"
#include "db/table.hh"

namespace cachemind::db {

class TraceDatabase;

/** Canonical entry key: `<workload>_evictions_<policy>`. */
std::string shardKey(const std::string &workload,
                     const std::string &policy);

/** One `loaded_data[key]` entry. */
struct TraceEntry
{
    TraceTable table;
    /** Free-form whole-trace summary string (paper's `metadata`). */
    std::string metadata;
    /** Workload + policy description (paper's `description`). */
    std::string description;
    std::string workload;
    std::string policy;
};

/**
 * Unit of ownership for one (workload, policy) pair. Shards are
 * immutable after construction except for the expert cache, which is
 * built exactly once under the once_flag — safe to hit from any
 * number of threads.
 */
class TraceShard
{
  public:
    TraceShard(std::string key, TraceEntry entry)
        : key_(std::move(key)), entry_(std::move(entry))
    {
    }
    TraceShard(const TraceShard &) = delete;
    TraceShard &operator=(const TraceShard &) = delete;

    const std::string &key() const { return key_; }
    const TraceEntry &entry() const { return entry_; }
    const TraceTable &table() const { return entry_.table; }

    /** The workload's symbol table (nullptr when absent). */
    const trace::SymbolTable *
    symbols() const
    {
        return entry_.table.symbols();
    }

    /** The shard's statistics expert, built once, thread-safe. */
    const StatsExpert *stats() const;

    /**
     * The shard's postings index, built once under the table's
     * once_flag (same lazy pattern as stats()), thread-safe. Returns
     * nullptr when the one-time build failed — callers degrade to the
     * reference scan path for this shard.
     */
    const TraceIndex *index() const
    {
        return entry_.table.indexOrFallback();
    }

  private:
    std::string key_;
    TraceEntry entry_;
    mutable std::once_flag expert_once_;
    mutable std::unique_ptr<StatsExpert> expert_;
};

/**
 * Non-owning handle to one shard. Default-constructed views are
 * invalid; entry()/table()/key() must only be called on valid views,
 * stats()/symbols() return nullptr on invalid ones.
 */
class TraceShardView
{
  public:
    TraceShardView() = default;
    explicit TraceShardView(const TraceShard *shard) : shard_(shard) {}

    bool valid() const { return shard_ != nullptr; }
    explicit operator bool() const { return valid(); }

    const std::string &key() const { return shard_->key(); }
    const TraceEntry &entry() const { return shard_->entry(); }
    const TraceTable &table() const { return shard_->table(); }

    const StatsExpert *
    stats() const
    {
        return shard_ ? shard_->stats() : nullptr;
    }

    /**
     * Lazily built postings index; nullptr on invalid views and on
     * shards whose index build failed (scan fallback).
     */
    const TraceIndex *
    index() const
    {
        return shard_ ? shard_->index() : nullptr;
    }

    const trace::SymbolTable *
    symbols() const
    {
        return shard_ ? shard_->symbols() : nullptr;
    }

  private:
    const TraceShard *shard_ = nullptr;
};

/**
 * Immutable, key-sorted view over a set of shards. Cheap to copy
 * (a vector of pointers); the shards — and hence the database that
 * owns them — must outlive every view.
 */
class ShardSet
{
  public:
    ShardSet() = default;

    /**
     * Bridging view over every shard of a database. Deliberately
     * implicit: call sites that passed `const TraceDatabase &` into
     * retrievers, the interpreter, or the generator keep compiling
     * while now receiving only the read surface.
     */
    ShardSet(const TraceDatabase &db);

    /** View over an explicit shard list (sorted by key internally). */
    explicit ShardSet(std::vector<const TraceShard *> shards);

    /** Handle for one key; invalid view when absent. */
    TraceShardView shard(const std::string &key) const;
    TraceShardView shard(const std::string &workload,
                         const std::string &policy) const;

    /**
     * Subset holding every policy shard of one workload — the natural
     * scope for cross-policy comparison intents.
     */
    ShardSet forWorkload(const std::string &workload) const;

    /** Lookup by key; nullptr if absent. */
    const TraceEntry *find(const std::string &key) const;
    const TraceEntry *find(const std::string &workload,
                           const std::string &policy) const;

    /** Thread-safe lazily built expert; nullptr if absent. */
    const StatsExpert *statsFor(const std::string &key) const;

    /** Thread-safe lazily built postings index; nullptr if absent. */
    const TraceIndex *indexFor(const std::string &key) const;

    /**
     * Pre-build every shard's postings index on a parallelFor pool
     * (build_threads = 0 means one thread per hardware core), instead
     * of letting a sweep's first queries pay the builds serially.
     * Idempotent and safe to race with concurrent queries: each build
     * still runs under its shard's once_flag, so warm-while-querying
     * never double-builds. Returns the number of shards that were
     * still unbuilt when the warm pass started.
     */
    std::size_t warmIndexes(std::size_t build_threads = 0) const;

    /**
     * Aggregate index instrumentation over every shard in the view:
     * which shards have paid the one-time build, the total build
     * cost, and the scan work the postings have avoided. Never forces
     * a build — unbuilt shards simply do not contribute.
     */
    IndexTotals indexTotals() const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Distinct workload names present, sorted. */
    std::vector<std::string> workloads() const;

    /** Distinct policy names present, sorted. */
    std::vector<std::string> policies() const;

    std::size_t size() const { return shards_.size(); }
    bool empty() const { return shards_.empty(); }

  private:
    const TraceShard *lookup(const std::string &key) const;

    /** Sorted by key (binary-search lookups, deterministic order). */
    std::vector<const TraceShard *> shards_;
};

} // namespace cachemind::db

#endif // CACHEMIND_DB_SHARD_HH
