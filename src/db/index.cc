#include "db/index.hh"

#include <algorithm>

#include "base/stopwatch.hh"
#include "db/table.hh"

namespace cachemind::db {

namespace {

/** CSR fill: prefix-sum offsets, then place rows in order. */
void
buildCsr(std::vector<std::uint32_t> &off, std::vector<std::uint32_t> &rows,
         const std::vector<IndexKeyCounts> &counts, std::size_t n)
{
    off.assign(counts.size() + 1, 0);
    for (std::size_t k = 0; k < counts.size(); ++k) {
        off[k + 1] =
            off[k] + static_cast<std::uint32_t>(counts[k].accesses);
    }
    rows.resize(n);
}

} // namespace

TraceIndex::TraceIndex(const TraceTable &t)
{
    Stopwatch timer;
    rows_ = t.size();
    const std::size_t n = rows_;

    const std::size_t num_pcs = t.pcs_.size();
    const std::size_t num_addrs = t.addrs_.size();
    std::uint32_t max_set = 0;
    for (const auto s : t.set_)
        max_set = std::max(max_set, s);
    const std::size_t num_sets = n == 0 ? 0 : max_set + 1u;

    pc_counts_.assign(num_pcs, IndexKeyCounts{});
    addr_counts_.assign(num_addrs, IndexKeyCounts{});
    set_counts_.assign(num_sets, IndexKeyCounts{});

    // Pass 1: per-key and whole-table counters.
    for (std::size_t i = 0; i < n; ++i) {
        const bool miss = (t.flags_[i] & TraceTable::kMissBit) != 0;
        const bool evict = (t.flags_[i] & TraceTable::kVictimBit) != 0;
        for (IndexKeyCounts *c : {&pc_counts_[t.pc_id_[i]],
                                  &addr_counts_[t.addr_id_[i]],
                                  &set_counts_[t.set_[i]]}) {
            ++c->accesses;
            c->misses += miss;
            c->evictions += evict;
        }
        ++totals_.accesses;
        totals_.misses += miss;
        totals_.evictions += evict;
    }

    // Pass 2: row-ordered postings (CSR) per key space. Filling in
    // row order keeps every postings list ascending, which is what
    // makes indexed results byte-identical to the reference scan.
    buildCsr(pc_post_.off, pc_post_.rows, pc_counts_, n);
    buildCsr(addr_post_.off, addr_post_.rows, addr_counts_, n);
    buildCsr(set_post_.off, set_post_.rows, set_counts_, n);
    std::vector<std::uint32_t> pc_fill(
        pc_post_.off.begin(), pc_post_.off.begin() + num_pcs);
    std::vector<std::uint32_t> addr_fill(
        addr_post_.off.begin(), addr_post_.off.begin() + num_addrs);
    std::vector<std::uint32_t> set_fill(
        set_post_.off.begin(), set_post_.off.begin() + num_sets);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = static_cast<std::uint32_t>(i);
        pc_post_.rows[pc_fill[t.pc_id_[i]]++] = row;
        addr_post_.rows[addr_fill[t.addr_id_[i]]++] = row;
        set_post_.rows[set_fill[t.set_[i]]++] = row;
    }

    // Build-time unique listings (previously re-sorted per call).
    unique_pcs_.assign(t.pcs_.begin(), t.pcs_.end());
    std::sort(unique_pcs_.begin(), unique_pcs_.end());
    unique_sets_.reserve(64);
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        if (set_counts_[s].accesses > 0)
            unique_sets_.push_back(s);
    }

    build_ms_ = timer.milliseconds();
}

PostingsSpan
TraceIndex::pcPostings(std::uint32_t pc_id) const
{
    return pc_post_.span(pc_id);
}

PostingsSpan
TraceIndex::addrPostings(std::uint32_t addr_id) const
{
    return addr_post_.span(addr_id);
}

PostingsSpan
TraceIndex::setPostings(std::uint32_t set) const
{
    return set_post_.span(set);
}

const IndexKeyCounts *
TraceIndex::pcCounts(std::uint32_t pc_id) const
{
    return pc_id < pc_counts_.size() ? &pc_counts_[pc_id] : nullptr;
}

const IndexKeyCounts *
TraceIndex::addrCounts(std::uint32_t addr_id) const
{
    return addr_id < addr_counts_.size() ? &addr_counts_[addr_id]
                                         : nullptr;
}

const IndexKeyCounts *
TraceIndex::setCounts(std::uint32_t set) const
{
    if (set >= set_counts_.size() || set_counts_[set].accesses == 0)
        return nullptr;
    return &set_counts_[set];
}

namespace {

/**
 * Exponential probe + binary search: first element >= v in [first,
 * last). O(log d) in the distance d advanced, which is what makes the
 * intersection "galloping" — skew between list lengths is cheap.
 */
const std::uint32_t *
gallopLowerBound(const std::uint32_t *first, const std::uint32_t *last,
                 std::uint32_t v)
{
    std::size_t step = 1;
    const std::uint32_t *lo = first;
    const std::uint32_t *hi = first;
    while (hi < last && *hi < v) {
        lo = hi + 1;
        hi = static_cast<std::size_t>(last - lo) > step ? lo + step
                                                        : last;
        step <<= 1;
    }
    return std::lower_bound(lo, hi, v);
}

} // namespace

std::vector<std::size_t>
TraceIndex::intersect(PostingsSpan a, PostingsSpan b, std::size_t limit)
{
    std::vector<std::size_t> out;
    if (a.size() > b.size())
        std::swap(a, b);
    const std::uint32_t *bp = b.begin();
    for (const std::uint32_t *ap = a.begin(); ap != a.end(); ++ap) {
        bp = gallopLowerBound(bp, b.end(), *ap);
        if (bp == b.end())
            break;
        if (*bp == *ap) {
            out.push_back(*ap);
            ++bp;
            if (limit && out.size() >= limit)
                break;
        }
    }
    return out;
}

} // namespace cachemind::db
