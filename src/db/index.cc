#include "db/index.hh"

#include <algorithm>

#include "base/stopwatch.hh"
#include "db/table.hh"

namespace cachemind::db {

namespace {

/** Transient flat CSR used during the build pass. */
struct FlatCsr
{
    std::vector<std::uint32_t> off;
    std::vector<std::uint32_t> rows;
};

/** CSR fill: prefix-sum offsets, then place rows in order. */
void
buildCsr(FlatCsr &csr, const std::vector<IndexKeyCounts> &counts,
         std::size_t n)
{
    csr.off.assign(counts.size() + 1, 0);
    for (std::size_t k = 0; k < counts.size(); ++k) {
        csr.off[k + 1] =
            csr.off[k] + static_cast<std::uint32_t>(counts[k].accesses);
    }
    csr.rows.resize(n);
}

/** Convert the flat CSR into chunked containers, key by key. */
void
chunkify(const FlatCsr &csr, PostingsStore &store)
{
    const std::size_t keys = csr.off.size() - 1;
    store.reserve(csr.rows.size(), keys);
    for (std::size_t k = 0; k < keys; ++k) {
        store.appendKey(csr.rows.data() + csr.off[k],
                        csr.off[k + 1] - csr.off[k]);
    }
    store.shrink();
}

} // namespace

TraceIndex::TraceIndex(const TraceTable &t)
{
    Stopwatch timer;
    rows_ = t.size();
    const std::size_t n = rows_;

    const std::size_t num_pcs = t.pcs_.size();
    const std::size_t num_addrs = t.addrs_.size();
    std::uint32_t max_set = 0;
    for (const auto s : t.set_)
        max_set = std::max(max_set, s);
    const std::size_t num_sets = n == 0 ? 0 : max_set + 1u;

    pc_counts_.assign(num_pcs, IndexKeyCounts{});
    addr_counts_.assign(num_addrs, IndexKeyCounts{});
    set_counts_.assign(num_sets, IndexKeyCounts{});

    // Pass 1: per-key and whole-table counters.
    for (std::size_t i = 0; i < n; ++i) {
        const bool miss = (t.flags_[i] & TraceTable::kMissBit) != 0;
        const bool evict = (t.flags_[i] & TraceTable::kVictimBit) != 0;
        for (IndexKeyCounts *c : {&pc_counts_[t.pc_id_[i]],
                                  &addr_counts_[t.addr_id_[i]],
                                  &set_counts_[t.set_[i]]}) {
            ++c->accesses;
            c->misses += miss;
            c->evictions += evict;
        }
        ++totals_.accesses;
        totals_.misses += miss;
        totals_.evictions += evict;
    }

    // Pass 2: row-ordered postings per key space — first a transient
    // flat CSR (prefix-sum + scatter, exactly the old layout), then
    // converted key-by-key into chunked array/bitmap containers.
    // Filling in row order keeps every postings list ascending, which
    // is what makes indexed results byte-identical to the reference
    // scan.
    FlatCsr pc_csr;
    FlatCsr addr_csr;
    FlatCsr set_csr;
    buildCsr(pc_csr, pc_counts_, n);
    buildCsr(addr_csr, addr_counts_, n);
    buildCsr(set_csr, set_counts_, n);
    std::vector<std::uint32_t> pc_fill(
        pc_csr.off.begin(), pc_csr.off.begin() + num_pcs);
    std::vector<std::uint32_t> addr_fill(
        addr_csr.off.begin(), addr_csr.off.begin() + num_addrs);
    std::vector<std::uint32_t> set_fill(
        set_csr.off.begin(), set_csr.off.begin() + num_sets);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = static_cast<std::uint32_t>(i);
        pc_csr.rows[pc_fill[t.pc_id_[i]]++] = row;
        addr_csr.rows[addr_fill[t.addr_id_[i]]++] = row;
        set_csr.rows[set_fill[t.set_[i]]++] = row;
    }
    chunkify(pc_csr, pc_store_);
    chunkify(addr_csr, addr_store_);
    chunkify(set_csr, set_store_);

    // Build-time unique listings (previously re-sorted per call).
    unique_pcs_.assign(t.pcs_.begin(), t.pcs_.end());
    std::sort(unique_pcs_.begin(), unique_pcs_.end());
    unique_sets_.reserve(64);
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        if (set_counts_[s].accesses > 0)
            unique_sets_.push_back(s);
    }

    build_ms_ = timer.milliseconds();
}

PostingsList
TraceIndex::pcPostings(std::uint32_t pc_id) const
{
    return pc_store_.list(pc_id);
}

PostingsList
TraceIndex::addrPostings(std::uint32_t addr_id) const
{
    return addr_store_.list(addr_id);
}

PostingsList
TraceIndex::setPostings(std::uint32_t set) const
{
    return set_store_.list(set);
}

const IndexKeyCounts *
TraceIndex::pcCounts(std::uint32_t pc_id) const
{
    return pc_id < pc_counts_.size() ? &pc_counts_[pc_id] : nullptr;
}

const IndexKeyCounts *
TraceIndex::addrCounts(std::uint32_t addr_id) const
{
    return addr_id < addr_counts_.size() ? &addr_counts_[addr_id]
                                         : nullptr;
}

const IndexKeyCounts *
TraceIndex::setCounts(std::uint32_t set) const
{
    if (set >= set_counts_.size() || set_counts_[set].accesses == 0)
        return nullptr;
    return &set_counts_[set];
}

} // namespace cachemind::db
