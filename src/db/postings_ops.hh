/**
 * @file
 * Vectorized postings-execution kernels and the chunked (roaring-style)
 * postings container behind TraceIndex.
 *
 * PR 4's flat CSR postings made every filter a lookup or a galloping
 * intersection; this layer is the next order of magnitude, data-layout
 * work on the same hot path. Postings are stored per 64K-row chunk as
 * either a sorted uint16 array (sparse chunks) or a 1024-word bitmap
 * (dense chunks, > kPostingsArrayMax rows), so big-trace shards shrink
 * (2 bytes/row worst case, 8 KiB cap for dense chunks) and dense keys
 * intersect word-at-a-time.
 *
 * Intersection runs through an adaptive kernel selector:
 *   - bitmap x bitmap  -> word-wise AND (AVX2 4-words-at-a-time with a
 *     testz fast path when compiled in);
 *   - bitmap x array   -> bit probes along the array;
 *   - array x array    -> galloping when the lengths are skewed by
 *     kGallopSkewRatio or more, otherwise a linear merge (SSE4.2
 *     _mm_cmpestrm 8x8 uint16 block compare when compiled in).
 *
 * SIMD paths are compile-time gated (-msse4.2/-mavx2 on this one
 * translation unit, plus a one-time runtime CPU check) and can be
 * forced off with -DCACHEMIND_DISABLE_SIMD=ON; the scalar fallback is
 * mandatory and kept byte-identical by randomized property tests in
 * tests/postings_ops_test.cc. Every kernel emits ascending row ids and
 * honors the early-exit `limit`, so every consumer stays byte-identical
 * to the reference scan.
 */

#ifndef CACHEMIND_DB_POSTINGS_OPS_HH
#define CACHEMIND_DB_POSTINGS_OPS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cachemind::db {

/** Rows per chunk: row ids sharing their upper 16 bits. */
inline constexpr std::uint32_t kPostingsChunkBits = 16;
inline constexpr std::uint32_t kPostingsChunkSize =
    1u << kPostingsChunkBits;
/** 64-bit words in one bitmap container. */
inline constexpr std::uint32_t kPostingsBitmapWords =
    kPostingsChunkSize / 64;
/**
 * Container crossover: a chunk holding more than this many rows is
 * stored as a bitmap (8 KiB) instead of a sorted uint16 array — the
 * exact point where the array would outgrow the bitmap.
 */
inline constexpr std::uint32_t kPostingsArrayMax = 4096;
/**
 * Adaptive-selector skew threshold: array pairs whose lengths differ
 * by at least this ratio gallop; comparable lengths take the linear
 * (SIMD) merge. Tuned by BM_PostingsIntersect.
 */
inline constexpr std::size_t kGallopSkewRatio = 16;

/** One container: rows of [base, base + kPostingsChunkSize). */
struct PostingsChunk
{
    enum Kind : std::uint8_t { Array = 0, Bitmap = 1 };

    /** First row id covered (chunk index << kPostingsChunkBits). */
    std::uint32_t base = 0;
    /** Rows present in this chunk (1..kPostingsChunkSize). */
    std::uint32_t count = 0;
    /** Offset into the owning store's array or bitmap pool. */
    std::uint32_t data_off = 0;
    std::uint8_t kind = Array;
};

/**
 * Borrowed view of one key's chunked postings list. Chunks are
 * ascending by base; within a chunk the container enumerates ascending
 * row ids, so the whole list is ascending — the invariant every
 * byte-identity proof rests on.
 */
struct PostingsList
{
    const PostingsChunk *chunks = nullptr;
    std::uint32_t num_chunks = 0;
    /** Total rows across all chunks. */
    std::uint64_t total = 0;
    const std::uint16_t *array_pool = nullptr;
    const std::uint64_t *bitmap_pool = nullptr;

    std::size_t size() const { return total; }
    bool empty() const { return total == 0; }
};

/**
 * Relaxed instrumentation counters: which kernel the adaptive selector
 * picked and whether the SIMD or scalar path ran. Never part of any
 * answer; surfaced through EngineStats.index and the STATS verb.
 */
struct PostingsOpsCounters
{
    /** Array-pair intersections routed to galloping (skewed). */
    std::atomic<std::uint64_t> galloping{0};
    /** Array-pair linear merges on the SIMD kernel. */
    std::atomic<std::uint64_t> merge_simd{0};
    /** Array-pair linear merges on the scalar fallback. */
    std::atomic<std::uint64_t> merge_scalar{0};
    /** Bitmap x bitmap word-AND chunk intersections. */
    std::atomic<std::uint64_t> bitmap_words{0};
    /** Array-probed-into-bitmap chunk intersections. */
    std::atomic<std::uint64_t> bitmap_probe{0};
    /** Vector blocks processed by SIMD kernels. */
    std::atomic<std::uint64_t> simd_ops{0};
    /** Elements processed by scalar kernels. */
    std::atomic<std::uint64_t> scalar_ops{0};
};

/** Test hook: pin the array-pair kernel instead of adapting. */
enum class IntersectKernel {
    Auto,
    Galloping,
    Merge,
};

/**
 * Owning chunked store for every key of one keyspace — the successor
 * of the flat CSR rows array. Built once (appendKey per key, in key
 * order, rows ascending), immutable afterwards; list() views borrow
 * the pools.
 */
class PostingsStore
{
  public:
    /**
     * Pre-size the pools for a build of `total_rows` rows over
     * `total_keys` keys (array pool worst case: every chunk sparse).
     * Purely an allocation hint; shrink() trims the slack.
     */
    void reserve(std::size_t total_rows, std::size_t total_keys);

    /** Append key `k`'s postings; must be called for k = 0, 1, ... */
    void appendKey(const std::uint32_t *rows, std::size_t n);

    /** Trim pool slack after the last appendKey. */
    void shrink();

    /** View of one key's list (empty for out-of-range keys). */
    PostingsList list(std::size_t key) const;

    std::size_t keys() const { return key_off_.size() - 1; }
    std::uint64_t arrayChunks() const { return array_chunks_; }
    std::uint64_t bitmapChunks() const { return bitmap_chunks_; }
    /** Container payload bytes (array + bitmap pools). */
    std::size_t payloadBytes() const;

  private:
    /** key -> [key_off_[k], key_off_[k+1]) into chunks_. */
    std::vector<std::uint32_t> key_off_{0};
    std::vector<std::uint64_t> key_total_;
    std::vector<PostingsChunk> chunks_;
    std::vector<std::uint16_t> array_pool_;
    std::vector<std::uint64_t> bitmap_pool_;
    std::uint64_t array_chunks_ = 0;
    std::uint64_t bitmap_chunks_ = 0;
};

/**
 * Adaptive intersection of two chunked lists into `out` (cleared
 * first): ascending row ids, stopping once `limit` matches are found
 * (0 = unbounded). `force` pins the array-pair kernel for tests;
 * bitmap-involved chunk pairs always take their natural kernel.
 */
void intersectLists(const PostingsList &a, const PostingsList &b,
                    std::size_t limit, std::vector<std::uint32_t> &out,
                    PostingsOpsCounters *counters = nullptr,
                    IntersectKernel force = IntersectKernel::Auto);

/**
 * Decode a chunked list into ascending row ids in `out` (cleared
 * first), stopping after `limit` entries (0 = all).
 */
void decodeList(const PostingsList &list,
                std::vector<std::uint32_t> &out, std::size_t limit = 0);

/**
 * Inline full walk: fn(row_id) for every row, ascending — the
 * zero-materialization alternative to decodeList for single-list
 * consumers (dims == 1 aggregate walks).
 */
template <typename Fn>
inline void
forEachRow(const PostingsList &list, Fn &&fn)
{
    for (std::uint32_t c = 0; c < list.num_chunks; ++c) {
        const PostingsChunk &ch = list.chunks[c];
        if (ch.kind == PostingsChunk::Array) {
            const std::uint16_t *p = list.array_pool + ch.data_off;
            for (std::uint32_t k = 0; k < ch.count; ++k)
                fn(ch.base | p[k]);
        } else {
            const std::uint64_t *w = list.bitmap_pool + ch.data_off;
            for (std::uint32_t wi = 0; wi < kPostingsBitmapWords;
                 ++wi) {
                std::uint64_t word = w[wi];
                while (word != 0) {
                    const auto bit = static_cast<std::uint32_t>(
                        __builtin_ctzll(word));
                    word &= word - 1;
                    fn(ch.base | (wi << 6) | bit);
                }
            }
        }
    }
}

/**
 * True when the SIMD kernels were compiled in *and* this CPU supports
 * them; false in CACHEMIND_DISABLE_SIMD builds, on non-x86 targets,
 * and on CPUs without SSE4.2/AVX2 — everywhere the mandatory scalar
 * fallback runs instead.
 */
bool simdCompiled();

} // namespace cachemind::db

#endif // CACHEMIND_DB_POSTINGS_OPS_HH
