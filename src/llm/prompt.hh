/**
 * @file
 * Prompt assembly: system prompt, one-/few-shot example shots, the
 * rendered retrieval context, and the user question (Figures 3 and 6
 * of the paper).
 */

#ifndef CACHEMIND_LLM_PROMPT_HH
#define CACHEMIND_LLM_PROMPT_HH

#include <string>
#include <vector>

namespace cachemind::llm {

/** Prompting strategy (§6.1 "One and Few-shot Prompting"). */
enum class ShotMode { ZeroShot, OneShot, FewShot };

const char *shotModeName(ShotMode mode);

/** One worked example placed in the prompt. */
struct ExampleShot
{
    /** The example's retrieval context. */
    std::string context;
    std::string question;
    std::string answer;
    /** True when the example demonstrates rejecting a false premise. */
    bool demonstrates_trick = false;
};

/** Assembled prompt. */
struct Prompt
{
    std::string system;
    std::vector<ExampleShot> shots;
    /** Rendered retrieval context for the actual question. */
    std::string context;
    std::string question;

    /** Full text as it would be sent to a completion API. */
    std::string render() const;

    bool
    hasTrickShot() const
    {
        for (const auto &s : shots) {
            if (s.demonstrates_trick)
                return true;
        }
        return false;
    }
};

/** The generator's default system prompt. */
std::string defaultSystemPrompt();

/** Canonical example shots used by the prompting ablation (Fig. 6). */
std::vector<ExampleShot> canonicalShots(ShotMode mode);

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_PROMPT_HH
