#include "llm/generator.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "base/random.hh"
#include "base/str.hh"
#include "llm/knowledge.hh"
#include "query/dsl.hh"

namespace cachemind::llm {

using query::QueryIntent;
using retrieval::ContextBundle;
using retrieval::ContextQuality;

namespace {

std::uint64_t
questionKey(const ContextBundle &bundle)
{
    return fnv1a(bundle.parsed.raw);
}

bool
wantsHighest(const std::string &raw)
{
    const std::string lower = str::toLower(raw);
    return lower.find("highest") != std::string::npos ||
           lower.find("worst") != std::string::npos ||
           lower.find("most misses") != std::string::npos ||
           lower.find("largest") != std::string::npos;
}

/** Extract "NN.NN% miss rate" style figures from metadata text. */
std::optional<double>
missRateFromMetadata(const std::string &metadata)
{
    const auto pos = metadata.find("% miss rate");
    if (pos == std::string::npos)
        return std::nullopt;
    std::size_t start = pos;
    while (start > 0 &&
           (std::isdigit(static_cast<unsigned char>(metadata[start - 1]))
            || metadata[start - 1] == '.')) {
        --start;
    }
    const auto v = str::parseDouble(metadata.substr(start, pos - start));
    if (!v)
        return std::nullopt;
    return *v / 100.0;
}

} // namespace

GeneratorLlm::GeneratorLlm(const std::string &name,
                           CapabilityProfile profile)
    : name_(name),
      // Keep the salt above the built-in enum range so a custom
      // backend never shares a built-in backend's draw stream.
      identity_(fnv1a(name) | 0x100),
      profile_(std::move(profile))
{
}

bool
GeneratorLlm::roll(std::uint64_t qkey, const char *skill, double p) const
{
    // Common random numbers: the difficulty of a (question, skill)
    // pair is shared across backends, so a stronger profile succeeds
    // on a superset of the questions a weaker one solves. This is
    // both realistic (questions have intrinsic difficulty) and it
    // reproduces the paper's signature quantisation where same-skill
    // backends land on identical category scores.
    const double difficulty =
        keyedUniform(hashCombine(qkey, fnv1a(skill)));
    return difficulty < p;
}

Prompt
GeneratorLlm::buildPrompt(const ContextBundle &bundle,
                          const GenerationOptions &opts) const
{
    Prompt prompt;
    prompt.system = defaultSystemPrompt();
    prompt.shots = canonicalShots(opts.shot_mode);
    prompt.context = bundle.render();
    prompt.question = bundle.parsed.raw;
    return prompt;
}

bool
GeneratorLlm::maybeCopyExample(const ContextBundle &bundle,
                               const Prompt &prompt, std::uint64_t qkey,
                               Answer &out) const
{
    if (prompt.shots.empty())
        return false;
    if (retrieval::assessQuality(bundle) != ContextQuality::Low)
        return false;
    if (!roll(qkey, "overreliance", profile_.context_overreliance))
        return false;
    // The model silently substitutes the example's context for its
    // own missing evidence (the §6.1 failure mode).
    const ExampleShot &shot = prompt.shots.front();
    out.copied_example = true;
    out.text = shot.answer;
    if (shot.answer.find("Cache Miss") != std::string::npos)
        out.says_hit = false;
    else if (shot.answer.find("Cache Hit") != std::string::npos)
        out.says_hit = true;
    return true;
}

Answer
GeneratorLlm::answer(const ContextBundle &bundle,
                     const GenerationOptions &opts) const
{
    const std::uint64_t qkey = questionKey(bundle);

    // Coverage gate: the all-or-nothing engagement axis (o3). It
    // affects open-ended reasoning, not mechanical lookups — o3's
    // trace-grounded scores in the paper are high while its reasoning
    // scores are bimodal (Figures 4 and 7).
    const bool reasoning_task =
        bundle.parsed.intent == QueryIntent::Explain ||
        bundle.parsed.intent == QueryIntent::Concept ||
        bundle.parsed.intent == QueryIntent::CodeGen;
    if (reasoning_task && !roll(qkey, "coverage", profile_.coverage)) {
        Answer a;
        a.engaged = false;
        a.text = "I do not have enough grounded data to answer this "
                 "reliably.";
        return a;
    }

    const Prompt prompt = buildPrompt(bundle, opts);

    switch (bundle.parsed.intent) {
      case QueryIntent::HitMiss:
        return answerHitMiss(bundle, prompt, qkey);
      case QueryIntent::MissRate: return answerMissRate(bundle, qkey);
      case QueryIntent::PolicyComparison:
        return answerComparison(bundle, qkey);
      case QueryIntent::Count: return answerCount(bundle, qkey);
      case QueryIntent::Arithmetic:
        return answerArithmetic(bundle, qkey);
      case QueryIntent::ListPcs:
      case QueryIntent::ListSets:
        return answerListing(bundle, qkey);
      case QueryIntent::SetStats: return answerSetStats(bundle, qkey);
      case QueryIntent::TopPcs: return answerTopPcs(bundle, qkey);
      case QueryIntent::PcStats: return answerPcStats(bundle, qkey);
      case QueryIntent::Concept: return answerConcept(bundle, qkey);
      case QueryIntent::CodeGen: return answerCodeGen(bundle, qkey);
      case QueryIntent::Explain: return answerExplain(bundle, qkey);
      case QueryIntent::Unknown: break;
    }

    Answer a;
    Answer copied;
    if (maybeCopyExample(bundle, prompt, qkey, copied))
        return copied;
    a.text = "I could not map this question onto the trace database.";
    return a;
}

Answer
GeneratorLlm::answerHitMiss(const ContextBundle &bundle,
                            const Prompt &prompt,
                            std::uint64_t qkey) const
{
    Answer a;
    const auto &q = bundle.parsed;

    // 1. Exact row evidence.
    for (const auto &row : bundle.rows) {
        const bool pc_ok = !q.pc || row.program_counter == *q.pc;
        const bool addr_ok =
            !q.address || row.memory_address == *q.address;
        if (pc_ok && addr_ok) {
            bool is_hit = !row.is_miss;
            if (!roll(qkey, "lookup", profile_.lookup))
                is_hit = !is_hit; // characteristic misread
            a.says_hit = is_hit;
            a.evidence.push_back(str::hex(row.program_counter));
            a.evidence.push_back(str::hex(row.memory_address));
            std::ostringstream os;
            os << "The access at PC " << str::hex(row.program_counter)
               << " to address " << str::hex(row.memory_address)
               << " results in a "
               << (is_hit ? "Cache Hit" : "Cache Miss") << " ("
               << bundle.trace_key << ").";
            if (row.has_victim && !is_hit) {
                os << " It evicted " << str::hex(row.evicted_address);
                if (row.evicted_reuse_distance != db::kNoValue) {
                    os << ", needed again in "
                       << row.evicted_reuse_distance << " accesses";
                }
                os << ".";
            }
            a.text = os.str();
            return a;
        }
    }

    // 2. Premise rejection path.
    if (bundle.premise_violation) {
        double scepticism = profile_.skepticism;
        if (prompt.hasTrickShot())
            scepticism = std::min(1.0, scepticism + 0.25);
        if (roll(qkey, "skepticism", scepticism)) {
            a.rejected_premise = true;
            a.text = "TRICK: " + bundle.premise_note;
            a.evidence.push_back(bundle.premise_note);
            return a;
        }
    }

    // 3. Textual evidence (Ranger result strings, LlamaIndex chunks).
    if (!bundle.result_text.empty() && q.pc && q.address) {
        const bool has_pc =
            bundle.result_text.find(str::hex(*q.pc)) != std::string::npos;
        const bool has_addr = bundle.result_text.find(str::hex(
                                  *q.address)) != std::string::npos;
        if (has_pc && has_addr) {
            const bool miss = bundle.result_text.find("Cache Miss") !=
                              std::string::npos;
            bool is_hit = !miss;
            if (!roll(qkey, "lookup", profile_.lookup))
                is_hit = !is_hit;
            a.says_hit = is_hit;
            a.evidence.push_back(str::hex(*q.pc));
            a.text = std::string("Based on the retrieved context the "
                                 "access is a ") +
                     (is_hit ? "Cache Hit." : "Cache Miss.");
            return a;
        }
    }

    // 4. Partial evidence: infer the likely outcome from per-PC
    // statistics (the medium-quality-context behaviour — right
    // neighbourhood, no exact row).
    if (bundle.pc_stats && q.pc && bundle.pc_stats->pc == *q.pc &&
        roll(qkey, "stat-inference", profile_.rate_calc)) {
        const bool likely_hit = bundle.pc_stats->hitRate() >= 0.5;
        a.says_hit = likely_hit;
        a.evidence.push_back(str::hex(*q.pc));
        a.text = "No exact row for this address is in the retrieved "
                 "slice, but PC " + str::hex(*q.pc) + " has a " +
                 str::percent(bundle.pc_stats->missRate()) +
                 " miss rate, so this access most likely " +
                 (likely_hit ? "hits." : "misses.");
        return a;
    }

    // 5. No usable evidence: copy an example or hallucinate a guess.
    Answer copied;
    if (maybeCopyExample(bundle, prompt, qkey, copied))
        return copied;
    if (roll(qkey, "skepticism-weak", profile_.skepticism)) {
        a.rejected_premise = true;
        a.text = "I cannot verify this access in the retrieved trace "
                 "slice; the premise may be wrong.";
        return a;
    }
    // Ungrounded guesses skew toward "hit": a plausible-sounding
    // positive is the characteristic hallucination.
    const bool guess_hit = keyedBernoulli(
        decisionKeyFor(identity_, qkey, "hallucinated-guess"), 0.75);
    a.says_hit = guess_hit;
    a.text = std::string("The access results in a ") +
             (guess_hit ? "Cache Hit." : "Cache Miss.");
    return a;
}

Answer
GeneratorLlm::answerMissRate(const ContextBundle &bundle,
                             std::uint64_t qkey) const
{
    Answer a;
    std::optional<double> rate;
    std::string source;

    if (bundle.parsed.pc && bundle.pc_stats &&
        bundle.pc_stats->pc == *bundle.parsed.pc) {
        rate = bundle.pc_stats->missRate();
        source = "per-PC statistics";
        a.evidence.push_back(str::hex(bundle.pc_stats->pc));
    } else if (bundle.computed) {
        rate = *bundle.computed;
        source = "executed retrieval program";
    } else if (!bundle.metadata.empty() && !bundle.parsed.pc) {
        rate = missRateFromMetadata(bundle.metadata);
        source = "trace metadata";
    } else if (!bundle.rows.empty()) {
        std::size_t misses = 0;
        for (const auto &row : bundle.rows)
            misses += row.is_miss;
        rate = static_cast<double>(misses) /
               static_cast<double>(bundle.rows.size());
        source = "evidence window (partial)";
    }

    if (!rate) {
        a.text = "The retrieved context does not contain the miss "
                 "rate for this query.";
        return a;
    }
    double value = *rate;
    if (!roll(qkey, "rate_calc", profile_.rate_calc))
        value = 1.0 - value; // classic hit/miss-rate confusion
    a.number = value;
    std::ostringstream os;
    os << "The miss rate is " << str::percent(value) << " (from "
       << source << ", trace " << bundle.trace_key << ").";
    a.text = os.str();
    a.evidence.push_back(str::percent(value));
    return a;
}

Answer
GeneratorLlm::answerComparison(const ContextBundle &bundle,
                               std::uint64_t qkey) const
{
    Answer a;
    if (bundle.policy_numbers.size() < 2) {
        // Not enough cross-policy evidence: guess a policy.
        static const char *fallback[] = {"lru", "belady", "parrot",
                                         "mlp"};
        const auto pick = keyedPick(
            decisionKeyFor(identity_, qkey, "comparison-guess"), 4);
        a.chosen_policy = fallback[pick];
        a.text = "Evidence is incomplete, but " + *a.chosen_policy +
                 " likely has the best behaviour here.";
        return a;
    }
    const bool highest = wantsHighest(bundle.parsed.raw);
    auto sorted = bundle.policy_numbers;
    std::sort(sorted.begin(), sorted.end(),
              [](const retrieval::PolicyNumber &x,
                 const retrieval::PolicyNumber &y) {
                  if (x.value != y.value)
                      return x.value < y.value;
                  return x.policy < y.policy;
              });
    const auto &best = highest ? sorted.back() : sorted.front();
    const auto &runner_up =
        highest ? sorted[sorted.size() - 2] : sorted[1];

    const bool correct = roll(qkey, "comparison", profile_.comparison);
    const auto &pick = correct ? best : runner_up;
    a.chosen_policy = pick.policy;
    std::ostringstream os;
    os << "Policy '" << pick.policy << "' has the "
       << (highest ? "highest" : "lowest") << " miss rate ("
       << str::percent(pick.value) << ") among";
    for (const auto &p : sorted) {
        os << " " << p.policy << "=" << str::percent(p.value);
        a.evidence.push_back(p.policy);
    }
    os << ".";
    a.text = os.str();
    return a;
}

Answer
GeneratorLlm::answerCount(const ContextBundle &bundle,
                          std::uint64_t qkey) const
{
    Answer a;
    if (bundle.total_is_exact) {
        a.number = static_cast<double>(bundle.total_matches);
        std::ostringstream os;
        os << "Count = " << bundle.total_matches
           << " (exact, computed over the full trace by the executed "
              "program).";
        a.text = os.str();
        a.evidence.push_back(std::to_string(bundle.total_matches));
        return a;
    }
    // Only a bounded window is visible: the model counts what it can
    // see. This is the mechanistic counting failure of §6.1 — even a
    // perfect counter over a truncated window undercounts.
    (void)qkey;
    a.number = static_cast<double>(bundle.rows.size());
    std::ostringstream os;
    os << "I count " << bundle.rows.size()
       << " matching accesses in the retrieved slice.";
    a.text = os.str();
    return a;
}

Answer
GeneratorLlm::answerArithmetic(const ContextBundle &bundle,
                               std::uint64_t qkey) const
{
    Answer a;
    const auto &q = bundle.parsed;
    std::optional<double> value;
    std::string source;

    if (bundle.computed) {
        value = *bundle.computed;
        source = "executed retrieval program";
    } else if (bundle.pc_stats) {
        // Direct statistic reads cover a subset of aggregates.
        const auto &s = *bundle.pc_stats;
        if (q.agg == query::AggKind::Mean &&
            q.field == query::FieldKind::EvictedReuseDistance) {
            value = s.mean_evicted_reuse_distance;
            source = "per-PC statistics";
        } else if (q.agg == query::AggKind::Mean &&
                   q.field == query::FieldKind::ReuseDistance) {
            value = s.mean_reuse_distance;
            source = "per-PC statistics";
        } else if (q.agg == query::AggKind::Std &&
                   q.field == query::FieldKind::ReuseDistance) {
            value = s.reuse_distance_stdev;
            source = "per-PC statistics";
        } else if (q.agg == query::AggKind::Mean &&
                   q.field == query::FieldKind::Recency) {
            value = s.mean_recency;
            source = "per-PC statistics";
        }
    }

    if (!value && !bundle.rows.empty()) {
        // Fall back to window arithmetic: gated, and inherently
        // partial (the window is a truncated slice).
        if (!roll(qkey, "arithmetic", profile_.arithmetic)) {
            a.number = static_cast<double>(bundle.rows.size());
            a.text = "The aggregate over the retrieved slice is "
                     "inconclusive; the slice has " +
                     std::to_string(bundle.rows.size()) + " rows.";
            return a;
        }
        std::vector<double> xs;
        for (const auto &row : bundle.rows) {
            std::int64_t v = db::kNoValue;
            switch (q.field) {
              case query::FieldKind::ReuseDistance:
                v = row.accessed_reuse_distance;
                break;
              case query::FieldKind::EvictedReuseDistance:
                v = row.evicted_reuse_distance;
                break;
              case query::FieldKind::Recency:
                v = row.accessed_recency;
                break;
              default: break;
            }
            if (v != db::kNoValue)
                xs.push_back(static_cast<double>(v));
        }
        if (!xs.empty()) {
            double out = 0.0;
            switch (q.agg) {
              case query::AggKind::Sum:
                for (const double x : xs)
                    out += x;
                break;
              case query::AggKind::Max:
                out = *std::max_element(xs.begin(), xs.end());
                break;
              case query::AggKind::Min:
                out = *std::min_element(xs.begin(), xs.end());
                break;
              case query::AggKind::Std: {
                double m = 0.0;
                for (const double x : xs)
                    m += x;
                m /= static_cast<double>(xs.size());
                double acc = 0.0;
                for (const double x : xs)
                    acc += (x - m) * (x - m);
                out = std::sqrt(acc / static_cast<double>(xs.size()));
                break;
              }
              case query::AggKind::Mean:
              default: {
                for (const double x : xs)
                    out += x;
                out /= static_cast<double>(xs.size());
                break;
              }
            }
            value = out;
            source = "evidence window (partial)";
        }
    }

    if (!value) {
        a.text = "The retrieved context lacks the values needed for "
                 "this computation.";
        return a;
    }
    double out = *value;
    // Even with the value in hand, weak arithmetic can garble the
    // final reporting step (unit slips, off-by-order errors).
    if (source == "per-PC statistics" &&
        !roll(qkey, "arithmetic-report",
              0.1 + 0.5 * profile_.arithmetic)) {
        out *= 2.0;
    }
    a.number = out;
    std::ostringstream os;
    os << "The " << (q.agg == query::AggKind::Std ? "standard deviation"
                                                  : "aggregate")
       << " over " << query::fieldName(q.field) << " is "
       << str::fixed(out, 2) << " (from " << source << ").";
    a.text = os.str();
    a.evidence.push_back(str::fixed(out, 2));
    return a;
}

Answer
GeneratorLlm::answerListing(const ContextBundle &bundle,
                            std::uint64_t) const
{
    Answer a;
    a.listed_values = bundle.values;
    std::ostringstream os;
    const bool pcs = bundle.parsed.intent == QueryIntent::ListPcs;
    os << (pcs ? "Unique PCs" : "Unique cache sets") << " in "
       << bundle.trace_key << " (" << bundle.values.size()
       << (bundle.values_complete ? ", complete" : ", truncated")
       << "):";
    for (const auto v : bundle.values) {
        if (pcs) {
            os << " " << str::hex(v);
        } else {
            os << " " << v;
        }
    }
    a.text = os.str();
    a.number = static_cast<double>(bundle.values.size());
    return a;
}

Answer
GeneratorLlm::answerSetStats(const ContextBundle &bundle,
                             std::uint64_t) const
{
    Answer a;
    if (bundle.set_stats.empty()) {
        a.text = "No per-set statistics were retrieved.";
        return a;
    }
    std::ostringstream os;
    const std::size_t half = bundle.set_stats.size() / 2;
    os << "Hot sets:";
    for (std::size_t i = 0; i < half; ++i) {
        os << " " << bundle.set_stats[i].set << " (hit rate "
           << str::percent(bundle.set_stats[i].hitRate()) << ")";
        a.listed_values.push_back(bundle.set_stats[i].set);
    }
    os << ". Cold sets:";
    for (std::size_t i = half; i < bundle.set_stats.size(); ++i) {
        os << " " << bundle.set_stats[i].set << " (hit rate "
           << str::percent(bundle.set_stats[i].hitRate()) << ")";
        a.listed_values.push_back(bundle.set_stats[i].set);
    }
    os << ".";
    a.text = os.str();
    return a;
}

Answer
GeneratorLlm::answerTopPcs(const ContextBundle &bundle,
                           std::uint64_t) const
{
    Answer a;
    if (bundle.pc_stats_list.empty()) {
        a.text = "No ranked per-PC statistics were retrieved.";
        return a;
    }
    std::ostringstream os;
    os << "Ranked PCs by miss count in " << bundle.trace_key << ":";
    for (const auto &s : bundle.pc_stats_list) {
        os << " " << str::hex(s.pc) << " (" << s.misses << " misses, "
           << str::percent(s.missRate()) << " miss rate, mean reuse "
           << str::fixed(s.mean_reuse_distance, 0) << ")";
        a.listed_values.push_back(s.pc);
        a.evidence.push_back(str::hex(s.pc));
    }
    os << ".";
    a.text = os.str();
    return a;
}

Answer
GeneratorLlm::answerPcStats(const ContextBundle &bundle,
                            std::uint64_t) const
{
    Answer a;
    if (!bundle.pc_stats) {
        a.text = "No statistics were retrieved for this PC.";
        return a;
    }
    const auto &s = *bundle.pc_stats;
    std::ostringstream os;
    os << "PC " << str::hex(s.pc) << " in " << bundle.trace_key << ": "
       << s.accesses << " accesses, " << s.hits << " hits ("
       << str::percent(s.hitRate()) << " hit rate), mean reuse "
          "distance "
       << str::fixed(s.mean_reuse_distance, 1) << " (stdev "
       << str::fixed(s.reuse_distance_stdev, 1) << "), "
       << s.wrong_evictions << " wrong evictions";
    if (!bundle.function_name.empty())
        os << "; function " << bundle.function_name;
    os << ".";
    a.text = os.str();
    a.number = s.hitRate();
    a.evidence.push_back(str::hex(s.pc));
    return a;
}

Answer
GeneratorLlm::answerConcept(const ContextBundle &bundle,
                            std::uint64_t qkey) const
{
    Answer a;
    const ConceptTopic *topic = topicFor(bundle.parsed.raw);
    if (!topic) {
        a.text = "This is outside my cache-architecture knowledge.";
        return a;
    }
    // "Context can suppress latent knowledge": noisy partial slices
    // in the context can override known-correct points (§6.1).
    bool suppressed = false;
    if (!bundle.rows.empty() &&
        retrieval::assessQuality(bundle) != ContextQuality::High) {
        suppressed = keyedBernoulli(
            decisionKeyFor(identity_, qkey, "context-suppression"), 0.5);
    }
    std::ostringstream os;
    std::size_t included = 0;
    for (std::size_t i = 0; i < topic->points.size(); ++i) {
        const std::string tag = "concept-point-" + std::to_string(i);
        double p = profile_.concept_knowledge;
        if (suppressed && i >= topic->points.size() / 2)
            p *= 0.3;
        if (roll(qkey, tag.c_str(), p)) {
            os << (included ? " " : "") << topic->points[i] << ".";
            a.evidence.push_back(topic->points[i]);
            ++included;
        }
    }
    if (included == 0) {
        a.text = "It depends on the configuration; without more "
                 "context both choices behave similarly.";
        return a;
    }
    a.text = os.str();
    return a;
}

Answer
GeneratorLlm::answerCodeGen(const ContextBundle &bundle,
                            std::uint64_t qkey) const
{
    Answer a;
    const auto &q = bundle.parsed;
    query::DslProgram prog;
    prog.trace_key = bundle.trace_key;
    prog.pc = q.pc;
    prog.address = q.address;
    const std::string lower = str::toLower(q.raw);
    if (lower.find("hit") != std::string::npos) {
        prog.op = query::DslOp::HitCount;
    } else if (lower.find("count") != std::string::npos ||
               lower.find("how many") != std::string::npos) {
        prog.op = query::DslOp::CountRows;
    } else if (lower.find("miss rate") != std::string::npos) {
        prog.op = query::DslOp::MissRate;
    } else {
        prog.op = query::DslOp::SelectRows;
    }
    // Codegen slips: weak generations lose filters and the target
    // operation at once (the paper's o3/finetuned code is noticeably
    // unfaithful, not just off by one clause). Faithfulness needs two
    // independent sub-skills: schema recall and query-plan fidelity.
    const bool faithful =
        roll(qkey, "codegen", profile_.codegen) &&
        roll(qkey, "codegen-plan", 0.5 + 0.5 * profile_.codegen);
    if (!faithful) {
        prog.op = query::DslOp::SelectRows;
        switch (keyedPick(decisionKeyFor(identity_, qkey, "codegen-error"),
                          2)) {
          case 0: prog.address.reset(); break;
          default: prog.pc.reset(); break;
        }
    }
    a.text = "```python\n" + query::renderProgramAsPython(prog) + "```";
    if (prog.pc)
        a.evidence.push_back(str::hex(*prog.pc));
    if (prog.address)
        a.evidence.push_back(str::hex(*prog.address));
    a.evidence.push_back(query::dslOpName(prog.op));
    return a;
}

Answer
GeneratorLlm::answerExplain(const ContextBundle &bundle,
                            std::uint64_t qkey) const
{
    Answer a;
    const std::string lower = str::toLower(bundle.parsed.raw);
    const bool semantic_q =
        lower.find("assembly") != std::string::npos ||
        lower.find("semantic") != std::string::npos ||
        lower.find("source") != std::string::npos ||
        lower.find("function") != std::string::npos ||
        lower.find("code context") != std::string::npos;
    const bool workload_q =
        !semantic_q && (bundle.parsed.workloads.size() > 1 ||
                        lower.find("which workload") !=
                            std::string::npos ||
                        lower.find("workloads") != std::string::npos);
    const double skill = semantic_q ? profile_.semantic
                         : workload_q ? profile_.synthesis
                                      : profile_.causal;
    const char *skill_tag = semantic_q    ? "semantic"
                            : workload_q  ? "synthesis"
                                          : "causal";

    std::ostringstream os;

    // Claim 1: quantitative evidence (needs retrieved numbers).
    bool cited_numbers = false;
    if (bundle.pc_stats && roll(qkey, "explain-cite", skill)) {
        const auto &s = *bundle.pc_stats;
        os << "PC " << str::hex(s.pc) << " has a "
           << str::percent(s.missRate()) << " miss rate with mean "
              "reuse distance "
           << str::fixed(s.mean_reuse_distance, 0) << " (stdev "
           << str::fixed(s.reuse_distance_stdev, 0) << "). ";
        a.evidence.push_back(str::hex(s.pc));
        a.evidence.push_back(str::percent(s.missRate()));
        cited_numbers = true;
    }
    if (!bundle.policy_numbers.empty() &&
        roll(qkey, "explain-cite2", skill)) {
        os << "Across the compared "
           << (bundle.policy_numbers_label.empty()
                   ? "policies"
                   : bundle.policy_numbers_label)
           << ":";
        auto sorted = bundle.policy_numbers;
        std::sort(sorted.begin(), sorted.end(),
                  [](const retrieval::PolicyNumber &x,
                     const retrieval::PolicyNumber &y) {
                      return x.value > y.value;
                  });
        for (const auto &p : sorted) {
            os << " " << p.policy << "=" << str::percent(p.value);
            a.evidence.push_back(p.policy);
        }
        os << "; the highest miss rate belongs to "
           << sorted.front().policy << ". ";
        cited_numbers = true;
    }
    if (!cited_numbers && !bundle.metadata.empty() &&
        roll(qkey, "explain-cite3", skill)) {
        os << "Trace metadata: "
           << bundle.metadata.substr(
                  0, std::min<std::size_t>(bundle.metadata.size(), 180))
           << "... ";
        cited_numbers = true;
    }

    // Claim 2: the causal mechanism, correct only if the skill roll
    // passes; otherwise a plausible but non-grounded generic claim.
    const bool mechanism_ok = roll(qkey, skill_tag, skill);
    if (semantic_q) {
        if (mechanism_ok && !bundle.function_name.empty()) {
            os << "The PC sits in " << bundle.function_name
               << "; its access pattern in the source ("
               << (bundle.function_code.empty()
                       ? "loop body"
                       : bundle.function_code.substr(
                             0, std::min<std::size_t>(
                                    bundle.function_code.size(), 60)))
               << "...) explains the reuse behaviour: repeated touches "
                  "to a small structure keep reuse distances short, so "
                  "the lines stay resident. ";
            a.evidence.push_back(bundle.function_name);
        } else if (mechanism_ok) {
            os << "The access pattern at this PC has short reuse "
                  "distances, so its lines survive in the set. ";
        } else {
            os << "The behaviour likely stems from compiler "
                  "scheduling choices at this PC. ";
        }
    } else if (workload_q) {
        if (mechanism_ok) {
            os << "The dominant factor is the workload's working-set "
                  "structure: streaming scans generate capacity "
                  "misses that no recency order can avoid, while "
                  "reused structures interleaved with the scans are "
                  "the lines a better policy protects. ";
        } else {
            os << "The workloads differ mostly in instruction mix, "
                  "which changes cache pressure. ";
        }
    } else {
        if (mechanism_ok) {
            os << "Belady exploits future knowledge: it keeps exactly "
                  "the lines with the shortest forward reuse distance, "
                  "while recency-based policies must evict by history; "
                  "lines whose reuse distance exceeds what a 16-way "
                  "recency stack retains miss under LRU but survive "
                  "under the oracle. ";
        } else {
            os << "The difference comes from tie-breaking details in "
                  "the policies' insertion positions. ";
        }
    }

    // Claim 3: actionable implication (fluency-gated polish).
    if (roll(qkey, "explain-implication", skill * profile_.fluency)) {
        if (semantic_q) {
            os << "A software fix would restructure this access or "
                  "prefetch it explicitly.";
        } else if (workload_q) {
            os << "Policies with PC-aware reuse prediction or scan "
                  "bypass (SHiP/DRRIP-style) recover most of the "
                  "oracle gap here.";
        } else {
            os << "Bypassing never-reused fills or training a reuse-"
                  "distance predictor on this PC closes the gap.";
        }
    }

    // Fine-tuned-style fabrication: fluent but ungrounded specifics.
    if (!cited_numbers &&
        roll(qkey, "fabricate", profile_.context_overreliance * 0.6)) {
        os << " Empirically the gap is about "
           << 3 + (decisionKeyFor(identity_, qkey, "fab") % 20)
           << "% in our runs.";
        a.copied_example = true; // flag as ungrounded specifics
    }

    a.text = os.str();
    return a;
}

std::vector<std::string>
splitAnswerDeltas(const std::string &text)
{
    // Target fragment size for simulated token streaming. Fragments
    // prefer to break after whitespace so the stream reads naturally,
    // but never exceed 2x the target when the text has no break
    // points (a long hex listing still streams).
    constexpr std::size_t kTarget = 48;
    std::vector<std::string> deltas;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = std::min(pos + kTarget, text.size());
        if (end < text.size()) {
            // Extend to the next whitespace (bounded) so words are
            // never split mid-token.
            std::size_t scan = end;
            const std::size_t scan_limit =
                std::min(pos + 2 * kTarget, text.size());
            while (scan < scan_limit &&
                   !std::isspace(static_cast<unsigned char>(
                       text[scan]))) {
                ++scan;
            }
            // Include the whitespace itself in this fragment; when
            // the scan hit the 2x cap instead of whitespace, cut
            // exactly there so the bound holds.
            end = scan < scan_limit ? scan + 1 : scan;
        }
        deltas.push_back(text.substr(pos, end - pos));
        pos = end;
    }
    return deltas;
}

Answer
GeneratorLlm::answerStreaming(const ContextBundle &bundle,
                              const GenerationOptions &opts,
                              const DeltaFn &on_delta) const
{
    // The simulated backend composes its full answer in one pass, so
    // incremental generation replays that text as deterministic
    // fragments. The answer object itself is the blocking call's —
    // the byte-identity contract of the streaming pipeline.
    Answer a = answer(bundle, opts);
    if (on_delta) {
        const bool paced = opts.tokens_per_second > 0.0;
        bool first = true;
        for (const auto &delta : splitAnswerDeltas(a.text)) {
            // Decode-rate pacing: each delta after the first waits for
            // the tokens of the *previous* delta to have "decoded", so
            // the first byte is never delayed by its own pace.
            if (paced && !first) {
                const double tokens = std::max<double>(
                    1.0, static_cast<double>(delta.size()) / 4.0);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        tokens / opts.tokens_per_second));
            }
            first = false;
            on_delta(delta);
        }
    }
    return a;
}

} // namespace cachemind::llm
