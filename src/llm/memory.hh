/**
 * @file
 * Conversation memory for the assistive chat tool: a sliding buffer
 * of recent turns, a rolling summary of older turns, and a vector
 * store of noted facts that can be re-retrieved by similarity — the
 * three mechanisms the paper describes for carrying context across
 * turns (§1 "LLMs have limited context windows...").
 */

#ifndef CACHEMIND_LLM_MEMORY_HH
#define CACHEMIND_LLM_MEMORY_HH

#include <deque>
#include <string>
#include <vector>

#include "text/embedding.hh"

namespace cachemind::llm {

/** One conversation turn. */
struct Turn
{
    std::string user;
    std::string assistant;
};

/** Memory configuration. */
struct MemoryConfig
{
    /** Turns kept verbatim in the sliding buffer. */
    std::size_t buffer_turns = 6;
    /** Facts returned by recall. */
    std::size_t recall_k = 3;
    /** Characters kept per turn when summarising. */
    std::size_t summary_snippet = 120;
};

/** Sliding buffer + summary + vector store. */
class ConversationMemory
{
  public:
    explicit ConversationMemory(MemoryConfig cfg = MemoryConfig{});

    /** Record a completed turn. */
    void addTurn(const std::string &user, const std::string &assistant);

    /** Note an explicit fact (e.g. an intermediate result). */
    void noteFact(const std::string &fact);

    /** Verbatim recent turns, oldest first. */
    const std::deque<Turn> &recentTurns() const { return buffer_; }

    /** Rolling summary of turns evicted from the buffer. */
    const std::string &summary() const { return summary_; }

    /** Facts most similar to the query. */
    std::vector<std::string> recall(const std::string &query) const;

    /** Rendered memory block to prepend to a prompt. */
    std::string renderContext(const std::string &query) const;

    /**
     * Same, but over facts the caller already recalled for the query
     * (avoids recalling twice when the caller also needs the facts).
     */
    std::string
    renderContext(const std::vector<std::string> &recalled) const;

    std::size_t factCount() const { return facts_.size(); }
    std::size_t totalTurns() const { return total_turns_; }

  private:
    MemoryConfig cfg_;
    std::deque<Turn> buffer_;
    std::string summary_;
    std::size_t total_turns_ = 0;
    text::HashEmbedder embedder_;
    std::vector<std::string> facts_;
    std::vector<std::vector<float>> fact_vecs_;
};

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_MEMORY_HH
