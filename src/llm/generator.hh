/**
 * @file
 * The generator LLM (§3.2.4) as a simulated backend.
 *
 * The generator is a *grounded reasoner*: it actually performs the
 * task from the retrieved context (reads the matching row, computes
 * rates, ranks policies, checks premises, composes explanations from
 * evidence), with each reasoning step gated by the backend's
 * capability profile through deterministic keyed draws. Failures are
 * characteristic, not random noise: a failed lookup misreads the
 * outcome, a failed comparison picks the runner-up, a failed premise
 * check answers the unanswerable, an unfaithful few-shot reader
 * copies the example's context (§6.1).
 */

#ifndef CACHEMIND_LLM_GENERATOR_HH
#define CACHEMIND_LLM_GENERATOR_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "llm/backend.hh"
#include "llm/prompt.hh"
#include "retrieval/context.hh"

namespace cachemind::llm {

/** Consumer of incremental answer-text fragments (streaming). */
using DeltaFn = std::function<void(const std::string &)>;

/**
 * Split answer text into the delta fragments a streaming generation
 * emits: deterministic, boundary-aligned (fragments end at whitespace
 * or newline where possible), and lossless — concatenating the deltas
 * reproduces the input byte-for-byte. Exposed so consumers and tests
 * can pin the streaming/blocking equivalence.
 */
std::vector<std::string> splitAnswerDeltas(const std::string &text);

/** Structured answer, consumed by the graders and the chat layer. */
struct Answer
{
    /** Natural-language response text. */
    std::string text;
    /** Coverage gate outcome (false = the o3-style whiff). */
    bool engaged = true;
    /** Hit/miss verdict for per-access lookups (true = hit). */
    std::optional<bool> says_hit;
    /** Scalar verdict (rates as fractions, counts, aggregates). */
    std::optional<double> number;
    /** Chosen policy for comparison questions. */
    std::optional<std::string> chosen_policy;
    /** Listed values (PCs/sets) for enumeration answers. */
    std::vector<std::uint64_t> listed_values;
    /** The model rejected the question's premise. */
    bool rejected_premise = false;
    /** Diagnostics: the model copied a few-shot example's context. */
    bool copied_example = false;
    /** Evidence strings the model cited (rubric input). */
    std::vector<std::string> evidence;
};

/** Generation-time options. */
struct GenerationOptions
{
    ShotMode shot_mode = ShotMode::ZeroShot;
    /**
     * Streaming pace in tokens per second (0 = unpaced). A real LLM
     * backend emits deltas at its decode rate; the simulated backends
     * replay theirs instantly, which makes every end-to-end latency
     * comparison retrieval-only. With a pace set, answerStreaming
     * sleeps between deltas (~4 bytes/token) so time-to-last-byte
     * includes a generation term. Pacing changes delta *timing* only:
     * the answer and the delta byte split are untouched, and blocking
     * answer() ignores it entirely.
     */
    double tokens_per_second = 0.0;
};

/** One simulated backend answering from retrieval bundles. */
class GeneratorLlm
{
  public:
    explicit GeneratorLlm(BackendKind kind)
        : name_(backendKey(kind)),
          identity_(static_cast<std::uint64_t>(kind)),
          profile_(profileFor(kind))
    {}

    /**
     * Custom backend: answers per `profile`, with its deterministic
     * draws keyed by `name` so they are independent of the built-in
     * kinds. This is how downstream users benchmark their own model
     * through llm::BackendRegistry.
     */
    GeneratorLlm(const std::string &name, CapabilityProfile profile);

    /** Registry key ("gpt-4o") or the custom backend's name. */
    const std::string &name() const { return name_; }
    const CapabilityProfile &profile() const { return profile_; }

    /**
     * Answer a question given its retrieval bundle. The question key
     * defaults to a hash of the query text, so the same (backend,
     * question) pair always yields the same answer.
     */
    Answer answer(const retrieval::ContextBundle &bundle,
                  const GenerationOptions &opts = GenerationOptions{})
        const;

    /**
     * Incremental generation: produce the same Answer as answer()
     * while emitting its text through `on_delta` fragment by fragment
     * (see splitAnswerDeltas). The returned answer is byte-identical
     * to the blocking call — streaming changes when text becomes
     * visible, never what is generated — so the engine's askStream
     * Done event can carry it directly.
     */
    Answer answerStreaming(const retrieval::ContextBundle &bundle,
                           const GenerationOptions &opts,
                           const DeltaFn &on_delta) const;

    /** Assemble the full prompt that `answer` conceptually consumes. */
    Prompt buildPrompt(const retrieval::ContextBundle &bundle,
                       const GenerationOptions &opts) const;

  private:
    bool roll(std::uint64_t qkey, const char *skill, double p) const;

    Answer answerHitMiss(const retrieval::ContextBundle &bundle,
                         const Prompt &prompt, std::uint64_t qkey) const;
    Answer answerMissRate(const retrieval::ContextBundle &bundle,
                          std::uint64_t qkey) const;
    Answer answerComparison(const retrieval::ContextBundle &bundle,
                            std::uint64_t qkey) const;
    Answer answerCount(const retrieval::ContextBundle &bundle,
                       std::uint64_t qkey) const;
    Answer answerArithmetic(const retrieval::ContextBundle &bundle,
                            std::uint64_t qkey) const;
    Answer answerListing(const retrieval::ContextBundle &bundle,
                         std::uint64_t qkey) const;
    Answer answerSetStats(const retrieval::ContextBundle &bundle,
                          std::uint64_t qkey) const;
    Answer answerTopPcs(const retrieval::ContextBundle &bundle,
                        std::uint64_t qkey) const;
    Answer answerPcStats(const retrieval::ContextBundle &bundle,
                         std::uint64_t qkey) const;
    Answer answerConcept(const retrieval::ContextBundle &bundle,
                         std::uint64_t qkey) const;
    Answer answerCodeGen(const retrieval::ContextBundle &bundle,
                         std::uint64_t qkey) const;
    Answer answerExplain(const retrieval::ContextBundle &bundle,
                         std::uint64_t qkey) const;

    /** Few-shot context adoption (weak models, poor retrieval). */
    bool maybeCopyExample(const retrieval::ContextBundle &bundle,
                          const Prompt &prompt, std::uint64_t qkey,
                          Answer &out) const;

    std::string name_;
    /** Salt for identity-dependent draws (enum value or name hash). */
    std::uint64_t identity_;
    CapabilityProfile profile_;
};

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_GENERATOR_HH
