/**
 * @file
 * Simulated LLM backends and their capability profiles.
 *
 * The paper evaluates five OpenAI backends. Offline, each backend is
 * a *capability profile* over a shared grounded reasoner: the skills
 * gate which reasoning steps succeed, with deterministic hash-keyed
 * draws per (backend, question, skill) so every run reproduces the
 * same outcome. Profiles are calibrated to the qualitative shape of
 * Figure 4 (orderings and gaps, not exact numbers — see DESIGN.md §2):
 * GPT-4o strong and consistent; o3 bimodal (engages or whiffs);
 * GPT-3.5 weak on epistemics; the fine-tuned 4o-mini fluent but
 * hallucination-prone on tricks and semantics.
 */

#ifndef CACHEMIND_LLM_BACKEND_HH
#define CACHEMIND_LLM_BACKEND_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cachemind::llm {

/** The five backends of the paper's evaluation. */
enum class BackendKind {
    Gpt35Turbo,
    O3,
    Gpt4o,
    Gpt4oMini,
    FinetunedGpt4oMini,
};

/** All backends in the paper's presentation order. */
const std::vector<BackendKind> &allBackends();

/** Display name, e.g. "GPT-4o". */
const char *backendName(BackendKind kind);

/** Canonical registry key, e.g. "gpt-4o" (see llm::BackendRegistry). */
const char *backendKey(BackendKind kind);

/** Per-skill success probabilities in [0, 1]. */
struct CapabilityProfile
{
    std::string name;

    /** Reading a present fact from an exact row. */
    double lookup = 0.9;
    /** Computing/reporting a rate from retrieved statistics. */
    double rate_calc = 0.9;
    /** Ranking across several retrieved numbers. */
    double comparison = 0.6;
    /** Multi-value arithmetic from raw rows in the window. */
    double arithmetic = 0.3;
    /** Rejecting false premises instead of guessing. */
    double skepticism = 0.5;
    /** Stable microarchitecture domain knowledge (per key point). */
    double concept_knowledge = 0.6;
    /** Producing faithful analysis code. */
    double codegen = 0.8;
    /** Correct causal link between policy mechanics and PC effects. */
    double causal = 0.6;
    /** Whole-workload synthesis across many PCs. */
    double synthesis = 0.6;
    /** Linking trace statistics to disassembly/source semantics. */
    double semantic = 0.5;
    /**
     * Probability of engaging with the task at all. Below-1 values
     * produce the bimodal all-or-nothing behaviour the paper reports
     * for o3 (Figure 7).
     */
    double coverage = 1.0;
    /**
     * Tendency to adopt a few-shot example's context as if it were
     * the retrieved evidence when the real context is poor (§6.1
     * one/few-shot discussion).
     */
    double context_overreliance = 0.2;
    /** Fluency factor rewarded by the rubric's clarity component. */
    double fluency = 0.8;
};

/** Profile for a backend (static catalogue). */
const CapabilityProfile &profileFor(BackendKind kind);

/**
 * Deterministic per-decision key: mixes the backend identity, a
 * stable question key, and a skill tag.
 */
std::uint64_t decisionKey(BackendKind kind, std::uint64_t question_key,
                          const char *skill);

/**
 * Identity-salted variant backing decisionKey. Built-in backends use
 * their enum value as the salt (bit-identical to decisionKey); custom
 * registry backends use a hash of their name.
 */
std::uint64_t decisionKeyFor(std::uint64_t identity,
                             std::uint64_t question_key,
                             const char *skill);

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_BACKEND_HH
