#include "llm/memory.hh"

#include <algorithm>
#include <sstream>

namespace cachemind::llm {

ConversationMemory::ConversationMemory(MemoryConfig cfg)
    : cfg_(cfg), embedder_(128)
{
}

void
ConversationMemory::addTurn(const std::string &user,
                            const std::string &assistant)
{
    buffer_.push_back(Turn{user, assistant});
    ++total_turns_;
    while (buffer_.size() > cfg_.buffer_turns) {
        // Fold the evicted turn into the rolling summary.
        const Turn &old = buffer_.front();
        std::ostringstream os;
        os << summary_;
        os << "- Q: " << old.user.substr(0, cfg_.summary_snippet)
           << " => A: "
           << old.assistant.substr(0, cfg_.summary_snippet) << "\n";
        summary_ = os.str();
        buffer_.pop_front();
    }
    // Every assistant reply is also a recallable fact.
    noteFact(user + " -> " + assistant);
}

void
ConversationMemory::noteFact(const std::string &fact)
{
    facts_.push_back(fact);
    fact_vecs_.push_back(embedder_.embed(fact));
}

std::vector<std::string>
ConversationMemory::recall(const std::string &query) const
{
    const auto q = embedder_.embed(query);
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(facts_.size());
    for (std::size_t i = 0; i < facts_.size(); ++i)
        scored.emplace_back(text::cosine(q, fact_vecs_[i]), i);
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    std::vector<std::string> out;
    for (std::size_t k = 0; k < std::min(cfg_.recall_k, scored.size());
         ++k) {
        out.push_back(facts_[scored[k].second]);
    }
    return out;
}

std::string
ConversationMemory::renderContext(const std::string &query) const
{
    return renderContext(recall(query));
}

std::string
ConversationMemory::renderContext(
    const std::vector<std::string> &recalled) const
{
    std::ostringstream os;
    if (!summary_.empty())
        os << "[Conversation summary]\n" << summary_;
    if (!buffer_.empty()) {
        os << "[Recent turns]\n";
        for (const auto &t : buffer_) {
            os << "Q: " << t.user << "\nA: "
               << t.assistant.substr(0, 200) << "\n";
        }
    }
    if (!recalled.empty()) {
        os << "[Recalled facts]\n";
        for (const auto &f : recalled)
            os << "- " << f.substr(0, 200) << "\n";
    }
    return os.str();
}

} // namespace cachemind::llm
