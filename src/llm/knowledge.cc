#include "llm/knowledge.hh"

#include "base/str.hh"

namespace cachemind::llm {

const std::vector<ConceptTopic> &
conceptTopics()
{
    static const std::vector<ConceptTopic> topics = {
        {"cache-size-scaling",
         {"increasing cache size", "cache size affect", "sets vs",
          "ways", "associativity"},
         {"a larger cache lowers capacity misses",
          "more sets reduce conflict pressure but leave "
          "associativity unchanged",
          "more ways reduce conflict misses within a set",
          "higher associativity costs lookup energy and latency",
          "diminishing returns once the working set fits"}},
        {"address-decomposition",
         {"offset", "index", "tag", "decompose", "address into"},
         {"the offset is log2(line size) low-order bits",
          "the index selects the set: log2(number of sets) bits",
          "the tag is the remaining high-order bits",
          "for 64-byte lines the offset is 6 bits",
          "for 2048 sets the index is 11 bits"}},
        {"replacement-basics",
         {"what does a replacement policy", "replacement policy do",
          "why replacement matters"},
         {"replacement chooses a victim line on a fill",
          "lru approximates temporal locality",
          "belady's optimal evicts the farthest next use",
          "scans defeat pure recency",
          "pc signatures predict dead-on-arrival lines"}},
        {"miss-classification",
         {"compulsory", "capacity miss", "conflict miss",
          "types of cache misses", "miss taxonomy"},
         {"compulsory misses are first touches",
          "capacity misses would miss even fully associative",
          "conflict misses come from set index collisions",
          "stack distance separates capacity from conflict",
          "bigger caches fix capacity, associativity fixes conflict"}},
        {"prefetching",
         {"prefetch", "prefetcher", "hide latency"},
         {"prefetching moves data in before the demand access",
          "software prefetch instructions do not stall retirement",
          "pointer chasing defeats stride prefetchers",
          "prefetching too early pollutes the cache",
          "accuracy and timeliness trade off"}},
        {"reuse-distance",
         {"reuse distance", "what is reuse", "stack distance"},
         {"reuse distance counts accesses between uses of a line",
          "a policy hits when reuse distance is within retained "
          "capacity",
          "belady uses forward reuse distance",
          "per-pc reuse distances are often predictable",
          "high variance makes prediction unreliable"}},
        {"writeback-coherence",
         {"writeback", "write-back", "dirty line", "write through"},
         {"write-back caches defer memory updates until eviction",
          "dirty evictions cost a writeback transaction",
          "write-through simplifies coherence but burns bandwidth",
          "dirty bits track modified lines",
          "victim writebacks can contend with demand fetches"}},
        {"inclusive-exclusive",
         {"inclusive", "exclusive", "non-inclusive"},
         {"inclusive caches duplicate lines across levels",
          "inclusion simplifies coherence filtering",
          "back-invalidations hurt hot L1 lines",
          "exclusive hierarchies maximise total capacity",
          "non-inclusive is a common compromise"}},
    };
    return topics;
}

const ConceptTopic *
topicFor(const std::string &question)
{
    const std::string lower = str::toLower(question);
    const ConceptTopic *best = nullptr;
    std::size_t best_hits = 0;
    for (const auto &topic : conceptTopics()) {
        std::size_t hits = 0;
        for (const auto &trigger : topic.triggers) {
            if (lower.find(trigger) != std::string::npos)
                ++hits;
        }
        if (hits > best_hits) {
            best_hits = hits;
            best = &topic;
        }
    }
    return best;
}

} // namespace cachemind::llm
