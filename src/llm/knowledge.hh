/**
 * @file
 * Static microarchitecture knowledge base backing the simulated
 * generators' "latent knowledge" for retrieval-light concept
 * questions. Each topic carries key points; a backend's `concept`
 * skill gates how many points make it into an answer, which is what
 * the rubric then scores. Also models the paper's "context can
 * suppress latent knowledge" finding: ambiguous retrieved context can
 * override a known-correct point.
 */

#ifndef CACHEMIND_LLM_KNOWLEDGE_HH
#define CACHEMIND_LLM_KNOWLEDGE_HH

#include <string>
#include <vector>

namespace cachemind::llm {

/** One concept topic with its canonical key points. */
struct ConceptTopic
{
    std::string id;
    /** Trigger phrases that map a question to this topic. */
    std::vector<std::string> triggers;
    /** Key points a complete answer contains. */
    std::vector<std::string> points;
};

/** The static topic catalogue. */
const std::vector<ConceptTopic> &conceptTopics();

/** Best-matching topic for a question, or nullptr. */
const ConceptTopic *topicFor(const std::string &question);

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_KNOWLEDGE_HH
