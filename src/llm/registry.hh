/**
 * @file
 * String-keyed factory registry for generator backends.
 *
 * The five built-in capability profiles self-register from
 * backend.cc under their canonical keys ("gpt-4o", "o3", ...). A
 * downstream user benchmarks their own model by registering a factory
 * that builds a GeneratorLlm from a custom CapabilityProfile (or any
 * subclass behaviour they simulate) and passing the new name to
 * CacheMind::Builder — the engine core never changes.
 */

#ifndef CACHEMIND_LLM_REGISTRY_HH
#define CACHEMIND_LLM_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llm/generator.hh"

namespace cachemind::llm {

/** Process-wide name -> backend-factory table. */
class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<GeneratorLlm>()>;

    /** The singleton registry. */
    static BackendRegistry &instance();

    /**
     * Register a factory under a (case-insensitive) name. Returns
     * false and leaves the registry unchanged when the name is
     * already taken.
     */
    bool add(const std::string &name, Factory factory);

    /** True when a factory is registered under the name. */
    bool has(const std::string &name) const;

    /** Construct the named backend; nullptr when unknown. */
    std::unique_ptr<GeneratorLlm> create(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    BackendRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

/** Static-initialisation helper mirroring RetrieverRegistrar. */
class BackendRegistrar
{
  public:
    BackendRegistrar(const std::string &name,
                     BackendRegistry::Factory factory);
};

} // namespace cachemind::llm

#endif // CACHEMIND_LLM_REGISTRY_HH
