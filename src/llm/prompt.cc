#include "llm/prompt.hh"

#include <sstream>

namespace cachemind::llm {

const char *
shotModeName(ShotMode mode)
{
    switch (mode) {
      case ShotMode::ZeroShot: return "zero-shot";
      case ShotMode::OneShot: return "one-shot";
      case ShotMode::FewShot: return "few-shot";
    }
    return "?";
}

std::string
Prompt::render() const
{
    std::ostringstream os;
    os << "SYSTEM:\n" << system << "\n\n";
    for (std::size_t i = 0; i < shots.size(); ++i) {
        os << "EXAMPLE " << i + 1 << ":\nContext:\n" << shots[i].context
           << "\nQuestion: " << shots[i].question << "\nAnswer: "
           << shots[i].answer << "\n\n";
    }
    os << "Context:\n" << context << "\nQuestion: " << question
       << "\nAnswer:";
    return os.str();
}

std::string
defaultSystemPrompt()
{
    return "You are CacheMind, a cache-replacement analysis assistant. "
           "Answer strictly from the retrieved trace context. Cite the "
           "PCs, addresses, and statistics you use. If the premise of "
           "the question contradicts the trace (wrong workload, PC, or "
           "address), say so instead of guessing.";
}

std::vector<ExampleShot>
canonicalShots(ShotMode mode)
{
    std::vector<ExampleShot> shots;
    if (mode == ShotMode::ZeroShot)
        return shots;

    // The Figure 6 hit/miss example.
    shots.push_back(ExampleShot{
        "For policy LRU on workload lbm at PC 0x401dc9 and address "
        "0x47ea85d37f: Cache result: Cache Miss. Evicted address "
        "0x19e02d19b7f (needed again in 2304 accesses), inserted "
        "address needed again in 3132 accesses.",
        "Does the memory access with PC 0x401dc9 and address "
        "0x47ea85d37f result in a cache hit or cache miss for the lbm "
        "workload and LRU replacement policy?",
        "Cache Miss", false});

    if (mode == ShotMode::FewShot) {
        shots.push_back(ExampleShot{
            "Per-PC statistics for mcf under LRU: pc=0x4037aa "
            "accesses=51210 miss_rate=99.12%.",
            "What is the miss rate for PC 0x4037aa in mcf with LRU?",
            "The miss rate for PC 0x4037aa is 99.12%.", false});
        shots.push_back(ExampleShot{
            "Premise check: PC 0x4090c3 does not appear in trace "
            "mcf_evictions_lru. It appears in astar_evictions_lru "
            "instead.",
            "How many times does PC 0x4090c3 miss in mcf under LRU?",
            "TRICK: the premise is wrong - PC 0x4090c3 belongs to "
            "astar, not mcf.", true});
    }
    return shots;
}

} // namespace cachemind::llm
