#include "llm/registry.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace cachemind::llm {

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

bool
BackendRegistry::add(const std::string &name, Factory factory)
{
    const std::string key = str::toLower(str::trim(name));
    if (key.empty() || !factory)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.emplace(key, std::move(factory)).second;
}

bool
BackendRegistry::has(const std::string &name) const
{
    const std::string key = str::toLower(str::trim(name));
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(key) > 0;
}

std::unique_ptr<GeneratorLlm>
BackendRegistry::create(const std::string &name) const
{
    const std::string key = str::toLower(str::trim(name));
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = factories_.find(key);
        if (it == factories_.end())
            return nullptr;
        factory = it->second;
    }
    return factory();
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

BackendRegistrar::BackendRegistrar(const std::string &name,
                                   BackendRegistry::Factory factory)
{
    if (!BackendRegistry::instance().add(name, std::move(factory)))
        warn("duplicate backend registration ignored: ", name);
}

} // namespace cachemind::llm
