#include "llm/backend.hh"

#include "base/logging.hh"
#include "base/random.hh"
#include "llm/registry.hh"

namespace cachemind::llm {

const std::vector<BackendKind> &
allBackends()
{
    static const std::vector<BackendKind> kinds = {
        BackendKind::Gpt35Turbo, BackendKind::O3, BackendKind::Gpt4o,
        BackendKind::Gpt4oMini, BackendKind::FinetunedGpt4oMini,
    };
    return kinds;
}

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Gpt35Turbo: return "GPT-3.5-Turbo";
      case BackendKind::O3: return "o3";
      case BackendKind::Gpt4o: return "GPT-4o";
      case BackendKind::Gpt4oMini: return "GPT-4o-mini";
      case BackendKind::FinetunedGpt4oMini: return "Finetuned-4o-mini";
    }
    return "?";
}

const char *
backendKey(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Gpt35Turbo: return "gpt-3.5-turbo";
      case BackendKind::O3: return "o3";
      case BackendKind::Gpt4o: return "gpt-4o";
      case BackendKind::Gpt4oMini: return "gpt-4o-mini";
      case BackendKind::FinetunedGpt4oMini: return "finetuned-4o-mini";
    }
    return "?";
}

const CapabilityProfile &
profileFor(BackendKind kind)
{
    // Calibrated to the qualitative shape of Figure 4/7 (see header).
    static const CapabilityProfile gpt35 = {
        "GPT-3.5-Turbo",
        /*lookup*/ 0.95, /*rate_calc*/ 0.88, /*comparison*/ 0.50,
        /*arithmetic*/ 0.00, /*skepticism*/ 0.00, /*concept_knowledge*/ 0.38,
        /*codegen*/ 0.85, /*causal*/ 0.30, /*synthesis*/ 0.14,
        /*semantic*/ 0.14, /*coverage*/ 1.00,
        /*context_overreliance*/ 0.75, /*fluency*/ 0.70,
    };
    static const CapabilityProfile o3 = {
        "o3",
        /*lookup*/ 0.95, /*rate_calc*/ 0.88, /*comparison*/ 0.88,
        /*arithmetic*/ 0.20, /*skepticism*/ 0.50, /*concept_knowledge*/ 0.90,
        /*codegen*/ 0.55, /*causal*/ 0.55, /*synthesis*/ 0.95,
        /*semantic*/ 0.70, /*coverage*/ 0.68,
        /*context_overreliance*/ 0.20, /*fluency*/ 0.85,
    };
    static const CapabilityProfile gpt4o = {
        "GPT-4o",
        /*lookup*/ 0.93, /*rate_calc*/ 0.88, /*comparison*/ 0.78,
        /*arithmetic*/ 0.60, /*skepticism*/ 0.72, /*concept_knowledge*/ 0.72,
        /*codegen*/ 1.00, /*causal*/ 0.72, /*synthesis*/ 0.82,
        /*semantic*/ 0.62, /*coverage*/ 1.00,
        /*context_overreliance*/ 0.10, /*fluency*/ 0.95,
    };
    static const CapabilityProfile gpt4o_mini = {
        "GPT-4o-mini",
        /*lookup*/ 0.93, /*rate_calc*/ 0.88, /*comparison*/ 0.80,
        /*arithmetic*/ 0.20, /*skepticism*/ 0.72, /*concept_knowledge*/ 0.62,
        /*codegen*/ 0.96, /*causal*/ 0.65, /*synthesis*/ 0.70,
        /*semantic*/ 0.62, /*coverage*/ 1.00,
        /*context_overreliance*/ 0.30, /*fluency*/ 0.85,
    };
    static const CapabilityProfile finetuned = {
        "Finetuned-4o-mini",
        /*lookup*/ 0.95, /*rate_calc*/ 0.82, /*comparison*/ 0.50,
        /*arithmetic*/ 0.20, /*skepticism*/ 0.42, /*concept_knowledge*/ 0.50,
        /*codegen*/ 0.40, /*causal*/ 0.57, /*synthesis*/ 0.60,
        /*semantic*/ 0.45, /*coverage*/ 1.00,
        /*context_overreliance*/ 0.65, /*fluency*/ 0.88,
    };

    switch (kind) {
      case BackendKind::Gpt35Turbo: return gpt35;
      case BackendKind::O3: return o3;
      case BackendKind::Gpt4o: return gpt4o;
      case BackendKind::Gpt4oMini: return gpt4o_mini;
      case BackendKind::FinetunedGpt4oMini: return finetuned;
    }
    CM_PANIC("unknown backend kind");
}

std::uint64_t
decisionKey(BackendKind kind, std::uint64_t question_key,
            const char *skill)
{
    return decisionKeyFor(static_cast<std::uint64_t>(kind),
                          question_key, skill);
}

std::uint64_t
decisionKeyFor(std::uint64_t identity, std::uint64_t question_key,
               const char *skill)
{
    return hashCombine(hashCombine(question_key, identity + 0x1001),
                       fnv1a(skill));
}

namespace {

BackendRegistry::Factory
builtinBackendFactory(BackendKind kind)
{
    return [kind] { return std::make_unique<GeneratorLlm>(kind); };
}

// The paper's five backends self-register under their canonical keys.
const BackendRegistrar builtin_backend_registrars[] = {
    {backendKey(BackendKind::Gpt35Turbo),
     builtinBackendFactory(BackendKind::Gpt35Turbo)},
    {backendKey(BackendKind::O3),
     builtinBackendFactory(BackendKind::O3)},
    {backendKey(BackendKind::Gpt4o),
     builtinBackendFactory(BackendKind::Gpt4o)},
    {backendKey(BackendKind::Gpt4oMini),
     builtinBackendFactory(BackendKind::Gpt4oMini)},
    {backendKey(BackendKind::FinetunedGpt4oMini),
     builtinBackendFactory(BackendKind::FinetunedGpt4oMini)},
};

} // namespace

} // namespace cachemind::llm
