/**
 * @file
 * Evaluation harness: runs a (retriever, generator) pipeline over a
 * question suite, grades every answer, and aggregates per category,
 * per tier, per retrieval-quality bucket, and as the paper's weighted
 * total. Powers Figures 4, 5, 6, 7 and 8.
 */

#ifndef CACHEMIND_BENCHSUITE_HARNESS_HH
#define CACHEMIND_BENCHSUITE_HARNESS_HH

#include <map>

#include "benchsuite/grader.hh"
#include "benchsuite/question.hh"
#include "core/cachemind.hh"
#include "llm/generator.hh"
#include "retrieval/context.hh"

namespace cachemind::benchsuite {

/** Per-question evaluation record. */
struct QuestionRecord
{
    std::size_t question_id = 0;
    Category category = Category::HitMiss;
    GradeResult grade;
    retrieval::ContextQuality quality = retrieval::ContextQuality::Low;
    /** Integer rubric score 0-5 (ARA) or 0/1 (TG). */
    int score_bucket = 0;
    std::string answer_text;
};

/** Per-category aggregate. */
struct CategoryScore
{
    Category category = Category::HitMiss;
    double earned = 0.0;
    double max = 0.0;
    std::size_t questions = 0;

    double
    pct() const
    {
        return max > 0.0 ? 100.0 * earned / max : 0.0;
    }
};

/** Whole-run result. */
struct EvalResult
{
    std::vector<QuestionRecord> records;
    std::map<Category, CategoryScore> by_category;

    /** Trace-grounded tier accuracy in percent. */
    double tgPct() const;
    /** Reasoning tier score in percent. */
    double araPct() const;
    /** Paper-style weighted total over all 100 questions. */
    double weightedTotalPct() const;
    /** Accuracy restricted to one retrieval-quality bucket. */
    double qualityBucketPct(retrieval::ContextQuality q) const;
    /** Count of questions in a quality bucket. */
    std::size_t qualityBucketCount(retrieval::ContextQuality q) const;
    /** Histogram of ARA rubric scores 0..5. */
    std::vector<std::size_t> araScoreHistogram() const;
};

/** Runs pipelines over suites. */
class EvalHarness
{
  public:
    explicit EvalHarness(std::vector<Question> suite)
        : suite_(std::move(suite))
    {}

    const std::vector<Question> &suite() const { return suite_; }

    /** Evaluate one (retriever, generator) pipeline. */
    EvalResult evaluate(retrieval::Retriever &retriever,
                        const llm::GeneratorLlm &generator,
                        const llm::GenerationOptions &opts =
                            llm::GenerationOptions{}) const;

    /**
     * Evaluate a Builder-configured engine, driving the whole suite
     * through CacheMind::askBatch on the engine's worker pool.
     */
    EvalResult evaluate(core::CacheMind &engine) const;

  private:
    /** Grade one answered question into an EvalResult. */
    void accumulate(const Question &q,
                    const retrieval::ContextBundle &bundle,
                    const llm::Answer &answer, EvalResult &result) const;

    std::vector<Question> suite_;
};

} // namespace cachemind::benchsuite

#endif // CACHEMIND_BENCHSUITE_HARNESS_HH
