/**
 * @file
 * CacheMindBench graders: binary exact-match for the trace-grounded
 * tier, 0-5 rubric (correctness / evidence use / clarity) for the
 * architectural-reasoning tier (§4.1-4.2).
 */

#ifndef CACHEMIND_BENCHSUITE_GRADER_HH
#define CACHEMIND_BENCHSUITE_GRADER_HH

#include "benchsuite/question.hh"
#include "llm/generator.hh"
#include "retrieval/context.hh"

namespace cachemind::benchsuite {

/** Grade outcome for one question. */
struct GradeResult
{
    /** Points earned. */
    double score = 0.0;
    /** Maximum points (1 for TG, 5 for ARA). */
    double max = 1.0;
    /** Exact-match verdict (TG) or score == max (ARA). */
    bool correct = false;
    /** Short diagnostic note. */
    std::string note;

    double pct() const { return max > 0.0 ? score / max : 0.0; }
};

/** Binary grading for the trace-grounded tier. */
GradeResult gradeExact(const Question &q, const llm::Answer &answer);

/** Rubric grading (0-5) for the reasoning tier. */
GradeResult gradeRubric(const Question &q, const llm::Answer &answer);

/** Dispatch by tier. */
GradeResult grade(const Question &q, const llm::Answer &answer);

} // namespace cachemind::benchsuite

#endif // CACHEMIND_BENCHSUITE_GRADER_HH
